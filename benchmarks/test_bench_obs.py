"""Observability overhead guard: instruments must be free when disabled.

The telemetry layer's design contract is that an uninstrumented run pays
only the cached ``is not None`` / ``_observed`` guards per round — no
event dispatch, no ``perf_counter`` calls. This suite gates that contract
the same way the engine suites gate their speedups: min-of-N wall clocks
of the *round loop only*, comparing a plain run against a run with a base
no-op :class:`repro.obs.Instrument` attached, on both the cached-fast and
the vectorized Luby paths. The instrumented run dispatches real events
(every awake round), so the gate also bounds the *enabled* cost of a
do-nothing instrument.

Both comparisons re-assert bit-identical outputs/metrics/ledgers before
trusting their clocks. ``BENCH_QUICK=1`` shrinks sizes and relaxes the
ceiling for noisy shared runners; ``BENCH_SNAPSHOT=1`` (re)writes the
committed ``BENCH_6.json`` snapshot.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro import graphs
from repro.baselines import LubyProgram
from repro.congest import Network
from repro.obs import Instrument

QUICK = os.environ.get("BENCH_QUICK", "0") not in ("", "0")
SNAPSHOT_PATH = Path(__file__).resolve().parent.parent / "BENCH_6.json"
# Ceiling on (instrumented / plain - 1). The disabled path's per-round cost
# is two pointer comparisons, so a *real* regression shows up as a
# systematic cost far above 10%; the headroom absorbs the residual
# min-of-N jitter of shared runners (observed ±7% on a loaded container).
MAX_OVERHEAD = 0.20 if QUICK else 0.10
TIMING_ATTEMPTS = 7

_RESULTS: dict = {}


@pytest.fixture(scope="session", autouse=True)
def _write_snapshot():
    """Persist overhead numbers to BENCH_6.json when BENCH_SNAPSHOT=1."""
    yield
    if _RESULTS and os.environ.get("BENCH_SNAPSHOT", "0") not in ("", "0"):
        SNAPSHOT_PATH.write_text(
            json.dumps(dict(sorted(_RESULTS.items())), indent=2) + "\n"
        )


def _graph(vectorized):
    # The scalar loop's rounds are ~100x costlier than numpy rounds, so a
    # smaller graph keeps wall clocks comparable across the two gates.
    if vectorized:
        n = 2_000 if QUICK else 10_000
    else:
        n = 500 if QUICK else 2_000
    return graphs.make_family("gnp_log_degree", n, seed=13)


def _timed_pair(make_a, make_b, engine):
    """Interleaved min-of-N wall clocks for two configurations.

    Min, not median: scheduler interference on a shared runner is purely
    *additive* (an interrupted attempt only ever reads high), so the
    minimum over N attempts is the estimator that converges on each
    side's true floor — medians let one or two 2x spikes on one side
    breach a ceiling that compares a *ratio* of clocks. Min can read
    slightly negative overhead when only one side reaches its floor;
    for an upper-ceiling gate that is harmless. Attempts alternate A/B
    so clock drift and cache warm-up hit both sides equally, and one
    untimed warm-up run per side absorbs first-touch effects. Returns
    ``(min_a, network_a, min_b, network_b)``; the runs are bit-identical
    per side, so any attempt's network serves the identity checks.
    """
    times = {0: [], 1: []}
    networks = {}
    for attempt in range(-1, TIMING_ATTEMPTS):
        for side, make in enumerate((make_a, make_b)):
            network = make()
            start = time.perf_counter()
            network.run(engine=engine)
            elapsed = time.perf_counter() - start
            if attempt >= 0:
                times[side].append(elapsed)
            networks[side] = network
    return (min(times[0]), networks[0], min(times[1]), networks[1])


def _gate_overhead(name, engine, vectorized):
    graph = _graph(vectorized)

    def make(instrument=None):
        return Network(
            graph,
            {v: LubyProgram() for v in graph.nodes},
            seed=13,
            instrument=instrument,
        )

    noop = Instrument()  # base class: every hook is a no-op, no profiler
    plain_s, plain_net, instr_s, instr_net = _timed_pair(
        lambda: make(), lambda: make(noop), engine
    )

    # The attached instrument must not perturb the simulation at all.
    assert not plain_net._observed
    assert instr_net._observed
    assert instr_net.metrics() == plain_net.metrics()
    assert instr_net.outputs("in_mis") == plain_net.outputs("in_mis")
    assert instr_net.ledger.snapshot() == plain_net.ledger.snapshot()
    if vectorized:
        assert plain_net.vector_rounds > 0
        assert instr_net.vector_rounds > 0

    overhead = instr_s / plain_s - 1.0
    _RESULTS[f"{name}_plain"] = plain_s
    _RESULTS[f"{name}_instrumented"] = instr_s
    _RESULTS[f"{name}_overhead"] = overhead
    assert overhead <= MAX_OVERHEAD, (
        f"{name}: no-op instrumentation costs {overhead * 100:.1f}% "
        f"(plain {plain_s * 1000:.1f}ms vs instrumented "
        f"{instr_s * 1000:.1f}ms; ceiling {MAX_OVERHEAD * 100:.0f}%)"
    )


def test_fast_path_overhead():
    """Cached scalar loop: NULL instrument vs attached no-op instrument."""
    _gate_overhead("obs_luby_fast", "fast", vectorized=False)


def test_vectorized_path_overhead():
    """Vectorized dense rounds: the guard branches sit outside numpy, so
    per-round overhead should vanish into the array work entirely."""
    _gate_overhead("obs_luby_vectorized", "vectorized", vectorized=True)
