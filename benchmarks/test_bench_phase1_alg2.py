"""E9 — Lemma 3.1: one iteration contracts Δ toward Δ^0.7 with
O(log log n) awake rounds."""


import pytest

from repro import graphs
from repro.analysis import is_independent_set
from repro.core import run_lemma31_iteration

DELTAS = [60, 120, 200, 300]


@pytest.mark.parametrize("delta", DELTAS)
def test_lemma31_contraction(benchmark, once, delta):
    n = max(400, 4 * delta)

    def run_three_seeds():
        residuals = []
        energy = 0
        for seed in range(3):
            graph = graphs.planted_max_degree(n, delta, seed=delta + seed)
            result = run_lemma31_iteration(graph, delta, seed=seed)
            assert is_independent_set(graph, result.joined)
            residuals.append(result.details["residual_max_degree"])
            energy = max(energy, result.metrics.max_energy)
        return sorted(residuals), energy

    residuals, energy = once(benchmark, run_three_seeds)
    median = residuals[1]
    benchmark.extra_info["delta"] = delta
    benchmark.extra_info["residual_degrees"] = residuals
    benchmark.extra_info["target_0_7"] = round(delta**0.7, 1)
    benchmark.extra_info["bound_8x0_6"] = round(8 * delta**0.6, 1)
    benchmark.extra_info["max_energy"] = energy
    # The w.h.p. analysis needs Δ >= log^20 n; at simulation scale single
    # seeds are noisy, so we check the contraction direction on the median.
    assert median <= 0.6 * delta
