"""E10 — Lemma 3.4: the tag-based degree estimate concentrates within a
factor of two once Δ is large."""

import numpy as np
import pytest

DELTAS = [10**4, 10**8, 10**12]


def _fraction_within_factor2(delta, rng, trials=4000):
    """Fraction of tag-based estimates within [d/2, 2d] of the truth.

    The estimate is ``Δ^0.5 · Binomial(d, Δ^-0.5)`` with ``d = Δ^0.6``; its
    relative concentration is controlled by ``E[tags] = Δ^0.1``, which is
    why the paper needs the astronomic ``Δ >= log^20 n`` regime.
    """
    true_degree = max(1, int(delta**0.6))
    estimates = (
        rng.binomial(true_degree, delta**-0.5, size=trials) * delta**0.5
    )
    within = np.mean(
        (estimates >= true_degree / 2) & (estimates <= 2 * true_degree)
    )
    return float(within)


@pytest.mark.parametrize("delta", DELTAS)
def test_degree_estimate_concentration(benchmark, once, delta):
    rng = np.random.default_rng(7)
    within = once(benchmark, _fraction_within_factor2, delta, rng)
    benchmark.extra_info["delta"] = delta
    benchmark.extra_info["expected_tags"] = round(delta**0.1, 2)
    benchmark.extra_info["fraction_within_factor2"] = round(within, 3)
    if delta >= 10**12:  # E[tags] ~ 16: concentration has kicked in
        assert within >= 0.9


def test_concentration_improves_with_delta(benchmark, once):
    rng = np.random.default_rng(11)

    def ladder():
        return [_fraction_within_factor2(d, rng) for d in DELTAS]

    fractions = once(benchmark, ladder)
    benchmark.extra_info["fractions"] = [round(f, 3) for f in fractions]
    assert fractions == sorted(fractions)  # monotone in Δ
