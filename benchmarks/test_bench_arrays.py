"""Array-native core benchmarks: CSR-native builds and column-state rounds.

Two gates for the array-native layer (``BENCH_9.json``):

* **build**: generating a graph straight into :class:`GraphArrays`
  (``as_arrays=True`` — geometric skip-sampling plus one lexsort CSR
  build) must beat generate-via-networkx-then-convert >= 5x at n = 10^5.
  The two paths draw different edge sets (documented), so the build gate
  compares construction cost only and sanity-checks sizes, not identity.
* **state**: vectorized dense rounds over schema-declared state columns
  (wholesale column copy on kernel load/flush) must run no slower than
  the same rounds over dict-backed program state (per-node re-pack loops,
  the pre-refactor layout, kept reachable via ``column_state(False)``) —
  after first re-asserting the two layouts are bit-identical.

Best-of-N wall clocks; ``BENCH_QUICK=1`` shrinks the workloads and relaxes
floors for noisy CI runners, ``BENCH_SNAPSHOT=1`` (re)writes the committed
``BENCH_9.json`` snapshot.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro import graphs
from repro.baselines import LubyProgram
from repro.congest import Network, column_state
from repro.congest.vectorized import GraphArrays

QUICK = os.environ.get("BENCH_QUICK", "0") not in ("", "0")
SNAPSHOT_PATH = Path(__file__).resolve().parent.parent / "BENCH_9.json"
# Acceptance floor: the CSR-native build must beat the networkx path >= 5x
# at n = 10^5 (full profile measures well above; quick mode keeps a CI
# noise margin at n = 2*10^4).
BUILD_N = 20_000 if QUICK else 100_000
MIN_BUILD_SPEEDUP = 2.0 if QUICK else 5.0
# Column-state rounds must not regress the dict-state kernels they
# replaced; allow a hair of clock noise in quick mode.
MIN_STATE_RATIO = 0.9 if QUICK else 1.0
TIMING_ATTEMPTS = 3

_RESULTS: dict = {}


@pytest.fixture(scope="session", autouse=True)
def _write_snapshot():
    """Persist timings to BENCH_9.json when BENCH_SNAPSHOT=1 (see BENCH_2)."""
    yield
    if _RESULTS and os.environ.get("BENCH_SNAPSHOT", "0") not in ("", "0"):
        SNAPSHOT_PATH.write_text(
            json.dumps(dict(sorted(_RESULTS.items())), indent=2) + "\n"
        )


def _best_of(fn):
    best = None
    for _ in range(TIMING_ATTEMPTS):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
            kept = value
    return best, kept


def test_csr_native_build_speedup():
    """as_arrays=True vs generate-with-networkx-then-convert, n = 10^5."""
    native_s, native = _best_of(
        lambda: graphs.gnp_expected_degree(
            BUILD_N, 10.0, seed=3, as_arrays=True
        )
    )
    legacy_s, legacy = _best_of(
        lambda: GraphArrays.from_graph(
            graphs.gnp_expected_degree(BUILD_N, 10.0, seed=3)
        )
    )
    assert isinstance(native, GraphArrays)
    assert native.number_of_nodes() == legacy.number_of_nodes() == BUILD_N
    # Different samplers, same distribution: edge counts within 10% of the
    # expected m = n * d / 2.
    expected_m = BUILD_N * 10.0 / 2.0
    for arrays in (native, legacy):
        assert abs(arrays.number_of_edges() - expected_m) <= 0.1 * expected_m
    _RESULTS["arrays_build_native"] = native_s
    _RESULTS["arrays_build_networkx"] = legacy_s
    _RESULTS["arrays_build_speedup"] = legacy_s / native_s
    _RESULTS["arrays_build_n"] = float(BUILD_N)
    assert legacy_s / native_s >= MIN_BUILD_SPEEDUP, (
        f"CSR-native build only {legacy_s / native_s:.2f}x over the "
        f"networkx path (native {native_s * 1000:.1f}ms vs "
        f"{legacy_s * 1000:.1f}ms at n={BUILD_N})"
    )


def test_column_state_rounds_no_slower_than_dict_state():
    """Vectorized Luby rounds: schema columns vs dict-backed re-packing."""
    n = 2_000 if QUICK else 10_000
    graph = graphs.make_family("gnp_log_degree", n, seed=7)

    def timed(columns):
        def run():
            with column_state(columns):
                network = Network(
                    graph, {v: LubyProgram() for v in graph.nodes}, seed=7
                )
                network.run(engine="vectorized")
            return network

        return _best_of(run)

    column_s, column_net = timed(True)
    dict_s, dict_net = timed(False)
    assert column_net.vector_rounds > 0
    assert dict_net.vector_rounds > 0
    assert column_net.outputs("in_mis") == dict_net.outputs("in_mis")
    assert column_net.metrics() == dict_net.metrics()
    assert column_net.ledger.snapshot() == dict_net.ledger.snapshot()
    _RESULTS["arrays_state_column"] = column_s
    _RESULTS["arrays_state_dict"] = dict_s
    _RESULTS["arrays_state_ratio"] = dict_s / column_s
    assert dict_s / column_s >= MIN_STATE_RATIO, (
        f"column-state rounds regressed: {dict_s / column_s:.2f}x vs the "
        f"dict-state kernels (column {column_s * 1000:.1f}ms vs dict "
        f"{dict_s * 1000:.1f}ms)"
    )
