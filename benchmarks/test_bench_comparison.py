"""E3 (headline) — who wins on what: the paper's central comparison.

One bench per axis at a fixed size: Luby wins time; the new algorithms'
energy grows like loglog (their win is asymptotic — the fitted growth and
the extrapolated crossover are printed by ``python -m repro.harness -e E3``).
"""

import math

from repro import graphs
from repro.baselines import luby_mis
from repro.core import algorithm1, algorithm2


def _workload(n=1024, seed=3):
    return graphs.gnp_expected_degree(n, max(4.0, math.log2(n)), seed=seed)


def test_headline_comparison(benchmark, once):
    graph = _workload()

    def run_all():
        return (
            luby_mis(graph, seed=0),
            algorithm1(graph, seed=0),
            algorithm2(graph, seed=0),
        )

    luby, alg1, alg2 = once(benchmark, run_all)
    benchmark.extra_info["luby_rounds"] = luby.rounds
    benchmark.extra_info["luby_energy"] = luby.max_energy
    benchmark.extra_info["alg1_rounds"] = alg1.rounds
    benchmark.extra_info["alg1_energy"] = alg1.max_energy
    benchmark.extra_info["alg2_rounds"] = alg2.rounds
    benchmark.extra_info["alg2_energy"] = alg2.max_energy

    # Luby wins time at any scale (its round constant is tiny).
    assert luby.rounds <= alg1.rounds
    # The new algorithms sleep: their total awake-time mass sits far below
    # the baseline's energy ≈ rounds coupling.
    assert alg1.average_energy <= luby.rounds
    assert alg2.average_energy <= luby.rounds


def test_energy_growth_rates(benchmark, once):
    """The measurable form of 'exponentially lower energy': growth from
    n to 16n of Luby's energy exceeds Algorithm 1's on the same graphs."""

    def growth():
        lo, hi = 256, 4096
        luby_lo = luby_mis(_workload(lo, seed=1), seed=1).max_energy
        luby_hi = luby_mis(_workload(hi, seed=1), seed=1).max_energy
        alg1_lo = algorithm1(_workload(lo, seed=1), seed=1).max_energy
        alg1_hi = algorithm1(_workload(hi, seed=1), seed=1).max_energy
        return luby_hi - luby_lo, alg1_hi - alg1_lo

    luby_growth, alg1_growth = once(benchmark, growth)
    benchmark.extra_info["luby_energy_growth"] = luby_growth
    benchmark.extra_info["alg1_energy_growth"] = alg1_growth
