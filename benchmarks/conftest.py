"""Shared fixtures for the benchmark suite.

Every benchmark runs its workload once per measurement (``pedantic`` mode):
the quantities of interest are the *model* metrics (rounds, awake rounds)
attached as ``extra_info``, not wall-clock statistics.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single pedantic round, returning its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
