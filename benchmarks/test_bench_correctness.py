"""E11 — correctness: independence always; maximality w.h.p.

Runs every algorithm over several families and seeds; independence must
hold in every single run, maximality in (nearly) all.
"""

import pytest

from repro import graphs
from repro.harness import measure

ALGORITHMS = ["luby", "algorithm1", "algorithm2",
              "algorithm1_avg", "algorithm2_avg"]
FAMILIES = ["gnp_log_degree", "geometric", "barabasi_albert", "grid"]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_correctness_battery(benchmark, once, algorithm):
    def battery():
        runs = independent = maximal = 0
        for family in FAMILIES:
            for seed in range(2):
                graph = graphs.make_family(family, 256, seed=seed)
                outcome = measure(algorithm, graph, seed=seed)
                runs += 1
                independent += int(outcome["independent"])
                maximal += int(outcome["maximal"])
        return runs, independent, maximal

    runs, independent, maximal = once(benchmark, battery)
    benchmark.extra_info["runs"] = runs
    benchmark.extra_info["independent"] = independent
    benchmark.extra_info["maximal"] = maximal
    assert independent == runs  # unconditional
    assert maximal >= runs - 1  # w.h.p. (allow one unlucky component)
