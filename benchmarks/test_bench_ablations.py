"""A1–A3 — ablations of the Phase I design choices DESIGN.md calls out.

* A1: one-shot marking (precomputable schedules) vs the re-marking,
  always-awake baseline (Luby).
* A2: overlap schedules vs staying awake for the whole phase.
* A3: truncating at log Δ − 2·loglog n iterations vs running the cascade to
  the end.
"""

import math


from repro import graphs
from repro.baselines import luby_mis
from repro.core import DEFAULT_CONFIG, run_phase1_alg1


def _dense_graph(n, seed=0):
    degree = min(n / 2, 4.0 * math.log2(n) ** 2)
    return graphs.gnp_expected_degree(n, degree, seed=seed)


def test_a1_one_shot_vs_remarking(benchmark, once):
    from repro.baselines import regularized_luby_mis

    graph = _dense_graph(512)

    def run_all():
        phase = run_phase1_alg1(graph, seed=0, size_bound=512)
        regularized = regularized_luby_mis(graph, seed=0, size_bound=512)
        luby = luby_mis(graph, seed=0)
        return phase, regularized, luby

    phase, regularized, luby = once(benchmark, run_all)
    benchmark.extra_info["one_shot_energy"] = phase.metrics.max_energy
    benchmark.extra_info["regularized_remarking_energy"] = (
        regularized.max_energy
    )
    benchmark.extra_info["luby_energy"] = luby.max_energy
    # One-shot marking is the enabler: its energy sits well below both
    # always-awake re-marking baselines on the same graph.
    assert phase.metrics.max_energy < luby.max_energy
    assert phase.metrics.max_energy < regularized.max_energy


def test_a2_schedules_vs_always_awake(benchmark, once):
    graph = _dense_graph(1024, seed=1)
    result = once(benchmark, run_phase1_alg1, graph, seed=0, size_bound=1024)
    rounds = result.metrics.rounds
    energy = result.metrics.max_energy
    benchmark.extra_info["scheduled_energy"] = energy
    benchmark.extra_info["always_awake_counterfactual"] = rounds
    # Without Lemma 2.5 every Phase-I participant is awake every round.
    assert energy * 3 < rounds


def test_a3_truncation(benchmark, once):
    graph = _dense_graph(512, seed=2)

    def run_both():
        truncated = run_phase1_alg1(graph, seed=0, size_bound=512)
        full = run_phase1_alg1(
            graph, seed=0, size_bound=512,
            config=DEFAULT_CONFIG.with_overrides(phase1_truncation=0.0),
        )
        return truncated, full

    truncated, full = once(benchmark, run_both)
    benchmark.extra_info["truncated_rounds"] = truncated.metrics.rounds
    benchmark.extra_info["full_rounds"] = full.metrics.rounds
    benchmark.extra_info["truncated_residual"] = (
        truncated.details["residual_max_degree"]
    )
    benchmark.extra_info["full_residual"] = (
        full.details["residual_max_degree"]
    )
    # The full cascade burns more rounds for a residue Phase II would have
    # absorbed anyway.
    assert full.metrics.rounds >= truncated.metrics.rounds
