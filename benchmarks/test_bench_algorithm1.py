"""E1 — Theorem 1.1: Algorithm 1 time/energy scaling.

Regenerates the Algorithm-1 rows of the scaling series: measured rounds and
max awake rounds per n, attached as extra_info. The paper's claim: time
O(log² n), energy O(log log n).
"""

import math

import pytest

from repro import graphs
from repro.analysis import verify_mis
from repro.core import algorithm1

SIZES = [256, 512, 1024, 2048]


@pytest.mark.parametrize("n", SIZES)
def test_algorithm1_scaling(benchmark, once, n):
    graph = graphs.gnp_expected_degree(n, max(4.0, math.log2(n)), seed=n)
    result = once(benchmark, algorithm1, graph, 0)
    assert verify_mis(graph, result.mis).independent
    benchmark.extra_info["n"] = n
    benchmark.extra_info["rounds"] = result.rounds
    benchmark.extra_info["max_energy"] = result.max_energy
    benchmark.extra_info["avg_energy"] = round(result.average_energy, 3)
    # Theorem 1.1 shape: rounds within O(log² n), energy far below rounds
    # at the top of the range.
    assert result.rounds <= 8 * math.log2(n) ** 2


def test_algorithm1_dense_graph_exercises_phase1(benchmark, once):
    """Dense input: Phase I must actually run its truncated iterations."""
    n = 512
    graph = graphs.gnp_expected_degree(n, 200.0, seed=1)
    result = once(benchmark, algorithm1, graph, 0)
    assert result.details["phase1"]["iterations"] >= 1
    benchmark.extra_info["phase1_iterations"] = (
        result.details["phase1"]["iterations"]
    )
    benchmark.extra_info["max_energy"] = result.max_energy
