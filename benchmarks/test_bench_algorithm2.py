"""E2 — Theorem 1.2: Algorithm 2 time/energy scaling.

Paper claim: time O(log n · log log n · log* n), energy O(log² log n).
"""

import math

import pytest

from repro import graphs
from repro.analysis import log_star, verify_mis
from repro.core import algorithm2

SIZES = [256, 512, 1024, 2048]


@pytest.mark.parametrize("n", SIZES)
def test_algorithm2_scaling(benchmark, once, n):
    graph = graphs.gnp_expected_degree(n, max(4.0, math.log2(n)), seed=n)
    result = once(benchmark, algorithm2, graph, 0)
    assert verify_mis(graph, result.mis).independent
    benchmark.extra_info["n"] = n
    benchmark.extra_info["rounds"] = result.rounds
    benchmark.extra_info["max_energy"] = result.max_energy
    bound = 16 * math.log2(n) * math.log2(math.log2(n)) * log_star(n)
    assert result.rounds <= bound


def test_algorithm2_dense_graph_exercises_phase1(benchmark, once):
    n = 512
    graph = graphs.gnp_expected_degree(n, 200.0, seed=1)
    result = once(benchmark, algorithm2, graph, 0)
    assert result.details["phase1"]["iterations"] >= 1
    benchmark.extra_info["phase1_iterations"] = (
        result.details["phase1"]["iterations"]
    )
