"""E3 (baseline half) — Luby's algorithm: time O(log n), energy O(log n).

The baseline's defining property: energy ≈ rounds (undecided nodes never
sleep).
"""

import math

import pytest

from repro import graphs
from repro.analysis import verify_mis
from repro.baselines import luby_mis

SIZES = [256, 512, 1024, 2048, 4096]


@pytest.mark.parametrize("n", SIZES)
def test_luby_scaling(benchmark, once, n):
    graph = graphs.gnp_expected_degree(n, max(4.0, math.log2(n)), seed=n)
    result = once(benchmark, luby_mis, graph, 0)
    assert verify_mis(graph, result.mis).valid
    benchmark.extra_info["n"] = n
    benchmark.extra_info["rounds"] = result.rounds
    benchmark.extra_info["max_energy"] = result.max_energy
    assert result.rounds <= 3 * 12 * math.log2(n)
    # energy tracks time: no sleeping in the baseline.
    assert result.max_energy >= result.rounds / 3 - 3
