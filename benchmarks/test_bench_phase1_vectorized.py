"""Schedule-aware vectorized kernels: the paper's own algorithms.

BENCH_5 gated the always-on baselines (Luby, the regularized cascade);
this suite gates the schedule-aware kernels added for the paper's own
pipelines — Algorithm 1's Phase I (regularized Luby under Lemma 2.5
overlap schedules), Algorithm 2's Phase I (degree-tag sampling rounds),
and the Ghaffari-2016 multi-execution shattering rounds of Phase II.

The headline gate is Algorithm 1 Phase I at ``n = 10^4`` in its *dense*
regime — near-saturated sampling, so nearly every node lays down a wake
schedule and a large fraction of the network acts each round.  That is
the workload the dense kernels exist for, and the vectorized path must
win >= 2x there (full profile measures ~3-4x).  The paper's own marking
probability (``2^i / (10 Delta)``) produces deliberately *sparse* wake
calendars — awake sets of a few hundred nodes per round, the regime
scalar dispatch is best at — so that configuration is timed too, with a
regression floor only: vectorized must at least hold its ground where
its whole-array rounds have the least to amortize.

Timings isolate the round loop: ``Network.start()`` (schedule sampling,
identical across engines) runs outside the clock, then ``run_rounds`` is
timed for the phase's fixed round budget.  Attempts interleave the two
engines with one discarded warm-up each and take the minimum (see
BENCH_7's rationale: scheduler noise is additive, so min-of-N converges
on each side's true floor where a median lets one 2x spike on the
vectorized side sink a ratio gate).  Every comparison re-asserts
bit-identical outputs, metrics,
and energy ledgers before trusting its clocks.  ``BENCH_QUICK=1``
shrinks sizes and relaxes floors; ``BENCH_SNAPSHOT=1`` (re)writes the
committed ``BENCH_8.json``.
"""

import json
import math
import os
import time
from pathlib import Path

import pytest

from repro import graphs
from repro.baselines.ghaffari import GhaffariProgram
from repro.congest import Network
from repro.core.config import DEFAULT_CONFIG
from repro.core.phase1_alg1 import Phase1Alg1Program
from repro.core.phase1_alg2 import Phase1Alg2Program
from repro.graphs.properties import max_degree

QUICK = os.environ.get("BENCH_QUICK", "0") not in ("", "0")
SNAPSHOT_PATH = Path(__file__).resolve().parent.parent / "BENCH_8.json"
# The ISSUE gate: Algorithm 1 Phase I, n=10^4, dense regime, >= 2x.
MIN_DENSE_SPEEDUP = 1.3 if QUICK else 2.0
# Paper-faithful sparse schedules: whole-array rounds have almost nothing
# to amortize over (a few hundred awake nodes each), so this floor only
# guards against the vectorized path *losing* to scalar dispatch.
MIN_SPARSE_SPEEDUP = 0.7 if QUICK else 1.2
# Ghaffari shattering rounds are always-on with multi-execution columns —
# the friendliest possible workload (full profile measures ~10x).
MIN_SHATTER_SPEEDUP = 2.5 if QUICK else 4.0
TIMING_ATTEMPTS = 5

_RESULTS: dict = {}


@pytest.fixture(scope="session", autouse=True)
def _write_snapshot():
    """Persist timings to BENCH_8.json when BENCH_SNAPSHOT=1."""
    yield
    if _RESULTS and os.environ.get("BENCH_SNAPSHOT", "0") not in ("", "0"):
        SNAPSHOT_PATH.write_text(
            json.dumps(dict(sorted(_RESULTS.items())), indent=2) + "\n"
        )


def _bench_graph():
    n = 2_000 if QUICK else 10_000
    return graphs.make_family("gnp_log_degree", n, seed=7)


def _timed_pair(make_network, total_rounds):
    """Interleaved min-of-N round-loop clocks for both engines.

    Each attempt builds a fresh network, runs ``start()`` off the clock
    (schedule sampling is engine-independent scalar work), then times
    ``run_rounds(total_rounds)``.  Attempt -1 is an untimed warm-up per
    engine — it also warms the per-graph CSR cache, so neither engine's
    floor pays one-time costs the other skips.
    """
    times = {"fast": [], "vectorized": []}
    networks = {}
    for attempt in range(-1, TIMING_ATTEMPTS):
        for engine in ("fast", "vectorized"):
            network = make_network()
            network.start()
            start = time.perf_counter()
            network.run_rounds(total_rounds, engine=engine)
            elapsed = time.perf_counter() - start
            if attempt >= 0:
                times[engine].append(elapsed)
            networks[engine] = network
    return (
        min(times["fast"]),
        networks["fast"],
        min(times["vectorized"]),
        networks["vectorized"],
    )


def _compare(name, make_network, total_rounds, floor, output_key):
    fast_s, fast_net, vector_s, vector_net = _timed_pair(
        make_network, total_rounds
    )
    assert vector_net.vector_rounds > 0  # really took the numpy path
    assert fast_net.vector_rounds == 0
    assert vector_net.metrics() == fast_net.metrics()
    assert vector_net.outputs(output_key) == fast_net.outputs(output_key)
    assert vector_net.ledger.snapshot() == fast_net.ledger.snapshot()
    _RESULTS[f"{name}_fast"] = fast_s
    _RESULTS[f"{name}_vectorized"] = vector_s
    _RESULTS[f"{name}_speedup"] = fast_s / vector_s
    _RESULTS[f"{name}_rounds"] = float(total_rounds)
    assert fast_s / vector_s >= floor, (
        f"{name}: vectorized rounds only {fast_s / vector_s:.2f}x over the "
        f"cached loop (vectorized {vector_s * 1000:.1f}ms vs fast "
        f"{fast_s * 1000:.1f}ms; floor {floor}x)"
    )


def test_alg1_dense_phase1_speedup():
    """The headline gate: Algorithm 1 Phase I, dense sampling, >= 2x.

    ``mark_divisor = 0.125`` saturates the one-shot sampling (98%+ of
    nodes draw a marked round in the single iteration), so nearly the
    whole network lays down overlap schedules and each round's awake set
    is a few thousand nodes — the dense-round regime the schedule-aware
    kernel targets.
    """
    graph = _bench_graph()
    n = graph.number_of_nodes()
    delta = max_degree(graph)
    rpi = max(1, round(math.log2(n)))

    def make():
        return Network(
            graph,
            {v: Phase1Alg1Program(1, rpi, delta, 0.125) for v in graph.nodes},
            seed=7,
        )

    _compare(
        "phase1_alg1_dense", make, 3 * rpi, MIN_DENSE_SPEEDUP, "joined"
    )


def test_alg1_paper_divisor_phase1():
    """Paper-faithful sparse schedules: marking probability
    ``2^i / (10 Delta)``, ``ceil(log2 Delta)`` iterations.  Awake sets are
    a few hundred nodes per round — scalar dispatch's best case — so the
    vectorized path only has to not regress (it still wins ~1.8x at full
    size thanks to the batched awake-set assembly and shared CSR passes).
    """
    graph = _bench_graph()
    n = graph.number_of_nodes()
    delta = max_degree(graph)
    iterations = max(1, math.ceil(math.log2(max(2, delta))))
    rpi = max(1, round(math.log2(n)))

    def make():
        return Network(
            graph,
            {
                v: Phase1Alg1Program(iterations, rpi, delta, 10.0)
                for v in graph.nodes
            },
            seed=7,
        )

    _compare(
        "phase1_alg1_paper",
        make,
        3 * iterations * rpi,
        MIN_SPARSE_SPEEDUP,
        "joined",
    )


def test_alg2_phase1_speedup():
    """Algorithm 2's Phase I (one Lemma 3.1 iteration): degree-tag
    sampling rounds plus the four-step end block, all schedule-driven."""
    graph = _bench_graph()
    n = graph.number_of_nodes()
    delta = max_degree(graph)
    rounds = max(1, round(math.log2(n)))

    def make():
        return Network(
            graph,
            {
                v: Phase1Alg2Program(delta, rounds, DEFAULT_CONFIG)
                for v in graph.nodes
            },
            seed=7,
        )

    _compare(
        "phase1_alg2", make, 4 * rounds + 4, MIN_DENSE_SPEEDUP, "joined"
    )


def test_ghaffari_shattering_speedup():
    """Phase II's workhorse: truncated multi-execution Ghaffari-2016
    rounds (always-on, ``(n, executions)`` state columns)."""
    graph = _bench_graph()
    delta = max_degree(graph)
    iterations = 2 * max(1, math.ceil(math.log2(max(2, delta))))

    def make():
        return Network(
            graph,
            {
                v: GhaffariProgram(iterations=iterations, executions=3)
                for v in graph.nodes
            },
            seed=7,
        )

    _compare(
        "ghaffari_shatter",
        make,
        2 * iterations,
        MIN_SHATTER_SPEEDUP,
        "in_mis",
    )
