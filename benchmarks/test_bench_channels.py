"""Channel-layer hot-path benchmarks: batched vs per-Message delivery.

The channel refactor's perf claim is that routing a round through flat
per-edge buffers (``CongestChannel(batched=True)``, the default) beats the
seed engine's per-``Message`` delivery loop (kept verbatim as
``congest-per-message``) on message-heavy workloads — with *bit-identical*
outputs, metrics, and ledgers. This suite times three traffic shapes
(broadcast-count, broadcast-read, unicast gossip) plus the LOCAL and radio
broadcast channels, asserts the speedup floors, and writes a
machine-readable ``BENCH_3.json`` snapshot next to the repository root so
the batched hot path cannot rot unnoticed.

Set ``BENCH_QUICK=1`` for the CI-sized variant (smaller graphs, fewer
rounds, relaxed floors — shared runners have noisy clocks); set
``BENCH_SNAPSHOT=1`` to (re)write the committed snapshot.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro import graphs
from repro.baselines import RadioDecayProgram
from repro.congest import Network, NodeProgram

QUICK = os.environ.get("BENCH_QUICK", "0") not in ("", "0")
SNAPSHOT_PATH = Path(__file__).resolve().parent.parent / "BENCH_3.json"
# Acceptance floor: the batched path must beat per-Message delivery ≥2x on
# the message-heavy broadcast storm (full profile measures ~2.5-3x). Quick
# mode keeps a safety margin for CI noise.
MIN_STORM_SPEEDUP = 1.4 if QUICK else 2.0
# Unicast and materializing workloads win less (the saving is send-side
# batching and lazy views, not Message elision); they must still never lose.
MIN_HEAVY_SPEEDUP = 1.0 if QUICK else 1.15
TIMING_ATTEMPTS = 3

_RESULTS: dict = {}


@pytest.fixture(scope="session", autouse=True)
def _write_snapshot():
    """Persist timings to BENCH_3.json when BENCH_SNAPSHOT=1 (see BENCH_2)."""
    yield
    if _RESULTS and os.environ.get("BENCH_SNAPSHOT", "0") not in ("", "0"):
        SNAPSHOT_PATH.write_text(
            json.dumps(dict(sorted(_RESULTS.items())), indent=2) + "\n"
        )


class BroadcastStorm(NodeProgram):
    """Every node broadcasts every round; receivers only count.

    The message-heaviest shape the engine sees (Luby-style mark rounds are
    exactly this), and the one lazy inbox views win most on: ``len()``
    never materializes a single ``Message``.
    """

    def __init__(self, rounds: int):
        self.rounds = rounds

    def on_round(self, ctx):
        ctx.broadcast((True, ctx.round % 7))

    def on_receive(self, ctx, messages):
        ctx.output["heard"] = ctx.output.get("heard", 0) + len(messages)
        if ctx.round + 1 >= self.rounds:
            ctx.halt()


class BroadcastRead(BroadcastStorm):
    """Same storm, but receivers iterate every payload (views materialize)."""

    def on_receive(self, ctx, messages):
        total = 0
        for message in messages:
            total += message.payload[1]
        ctx.output["sum"] = ctx.output.get("sum", 0) + total
        if ctx.round + 1 >= self.rounds:
            ctx.halt()


class UnicastGossip(NodeProgram):
    """Distinct per-neighbor payloads: the non-broadcast batched path."""

    def __init__(self, rounds: int):
        self.rounds = rounds

    def on_round(self, ctx):
        for offset, neighbor in enumerate(ctx.neighbors):
            ctx.send(neighbor, (ctx.round + offset) % 5)

    def on_receive(self, ctx, messages):
        ctx.output["n"] = ctx.output.get("n", 0) + len(messages)
        if ctx.round + 1 >= self.rounds:
            ctx.halt()


def _storm_graph():
    n = 64 if QUICK else 128
    return graphs.make_family("gnp_log_degree", n, seed=7)


def _rounds():
    return 120 if QUICK else 300


def _timed_run(make_network):
    best = None
    for _ in range(TIMING_ATTEMPTS):
        network = make_network()
        start = time.perf_counter()
        network.run()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
            kept = network
    return best, kept


def _compare_channels(name, program_cls, output_key, floor):
    """Time batched vs per-Message congest; assert identity + speedup."""
    graph = _storm_graph()
    rounds = _rounds()

    def make(channel):
        return lambda: Network(
            graph,
            {v: program_cls(rounds) for v in graph.nodes},
            seed=1,
            channel=channel,
        )

    batched_s, batched_net = _timed_run(make("congest"))
    per_msg_s, per_msg_net = _timed_run(make("congest-per-message"))
    assert batched_net.metrics() == per_msg_net.metrics()
    assert batched_net.outputs(output_key) == per_msg_net.outputs(output_key)
    assert batched_net.ledger.snapshot() == per_msg_net.ledger.snapshot()
    _RESULTS[f"{name}_batched"] = batched_s
    _RESULTS[f"{name}_per_message"] = per_msg_s
    _RESULTS[f"{name}_speedup"] = per_msg_s / batched_s
    _RESULTS[f"{name}_msgs_per_sec_batched"] = (
        batched_net.messages_sent / batched_s
    )
    assert per_msg_s / batched_s >= floor, (
        f"{name}: batched delivery only {per_msg_s / batched_s:.2f}x over "
        f"per-Message (batched {batched_s * 1000:.1f}ms vs "
        f"{per_msg_s * 1000:.1f}ms)"
    )
    return batched_s, per_msg_s


def test_broadcast_storm_batched_speedup():
    """The headline: ≥2x round-loop speedup on the message-heavy storm."""
    _compare_channels(
        "channels_broadcast_storm", BroadcastStorm, "heard",
        MIN_STORM_SPEEDUP,
    )


def test_broadcast_read_batched_not_slower():
    """Materializing receivers still win (send-side batching pays alone)."""
    _compare_channels(
        "channels_broadcast_read", BroadcastRead, "sum", MIN_HEAVY_SPEEDUP
    )


def test_unicast_gossip_batched_not_slower():
    """Per-neighbor payloads exercise the slot-dict path; must never lose."""
    _compare_channels(
        "channels_unicast_gossip", UnicastGossip, "n", MIN_HEAVY_SPEEDUP
    )


def test_local_channel_cheaper_than_congest():
    """LOCAL skips pricing: same delivery, strictly less bookkeeping."""
    graph = _storm_graph()
    rounds = _rounds()

    def make(channel):
        return lambda: Network(
            graph,
            {v: BroadcastStorm(rounds) for v in graph.nodes},
            seed=1,
            channel=channel,
        )

    local_s, local_net = _timed_run(make("local"))
    congest_s, congest_net = _timed_run(make("congest"))
    assert local_net.outputs("heard") == congest_net.outputs("heard")
    assert local_net.total_message_bits == 0
    _RESULTS["channels_local_storm"] = local_s
    _RESULTS["channels_local_vs_congest"] = congest_s / local_s
    # Pricing is pure overhead for LOCAL; allow slack for timer noise.
    assert local_s <= congest_s * 1.25


def test_radio_broadcast_scenario_snapshot():
    """Radio MIS end-to-end on the broadcast channel: snapshot the cost.

    No floor — there is no per-Message reference for a shared medium; the
    snapshot tracks regressions and proves collisions are billed.
    """
    n = 96 if QUICK else 192
    graph = graphs.make_family("gnp_log_degree", n, seed=9)

    def make():
        return Network(
            graph,
            {v: RadioDecayProgram() for v in graph.nodes},
            seed=2,
            channel="broadcast",
        )

    elapsed, network = _timed_run(make)
    assert network.collisions > 0
    # Collision billing reaches the ledger: total energy strictly exceeds
    # the sum of awake rounds implied by the trace-free counters.
    _RESULTS["channels_radio_mis_seconds"] = elapsed
    _RESULTS["channels_radio_mis_collisions"] = float(network.collisions)
    _RESULTS["channels_radio_mis_rounds"] = float(network.round_index + 1)
