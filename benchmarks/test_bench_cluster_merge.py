"""E8 — Lemma 2.8: Borůvka merging: O(log k) iterations, O(log n)-diameter
spanning tree, O(1) awake rounds per node per iteration."""

import math

import networkx as nx
import pytest

from repro import graphs
from repro.cluster import Choreography, merge_component_clusters, singleton_clusters
from repro.congest import EnergyLedger

SIZES = [64, 128, 256, 512]


@pytest.mark.parametrize("n", SIZES)
def test_cluster_merge(benchmark, once, n):
    graph = graphs.gnp(n, min(0.9, 4.0 * math.log2(n) / n), seed=n)
    component = max(nx.connected_components(graph), key=len)
    sub = graph.subgraph(component).copy()

    def merge():
        state = singleton_clusters(sub)
        ledger = EnergyLedger(sub.nodes)
        chor = Choreography(ledger)
        tree, report = merge_component_clusters(state, chor)
        return tree, report, ledger, chor

    tree, report, ledger, chor = once(benchmark, merge)
    tree.validate()
    size = len(component)
    benchmark.extra_info["component_size"] = size
    benchmark.extra_info["iterations"] = report.iterations
    benchmark.extra_info["tree_height"] = tree.height
    benchmark.extra_info["max_energy"] = ledger.max_energy()
    benchmark.extra_info["clock_rounds"] = chor.clock
    assert report.iterations <= 2 * math.ceil(math.log2(max(2, size))) + 8
    assert tree.height <= size  # <= total cluster mass (O(log n) in-context)
    per_iteration = ledger.max_energy() / max(1, report.iterations)
    assert per_iteration <= 45  # O(1) per iteration, generous constant
