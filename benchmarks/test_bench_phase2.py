"""E7 — Lemma 2.6: shattering leaves poly(log n)-size components clustered
into O(log log n)-diameter clusters."""

import math

import pytest

from repro import graphs
from repro.core import run_phase2
from repro.core.config import DEFAULT_CONFIG

SIZES = [512, 1024, 2048]


@pytest.mark.parametrize("n", SIZES)
def test_shattering(benchmark, once, n):
    graph = graphs.gnp_expected_degree(n, max(8.0, n**0.5), seed=n)
    result = once(benchmark, run_phase2, graph, seed=0, size_bound=n)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["undecided"] = len(result.remaining)
    benchmark.extra_info["largest_component"] = (
        result.details["largest_component"]
    )
    benchmark.extra_info["components"] = result.details["components"]
    assert result.details["largest_component"] <= 4 * math.log2(n) ** 2
    radius = DEFAULT_CONFIG.phase2_radius(n)
    for state in result.components:
        for tree in state.trees.values():
            assert tree.height <= radius
