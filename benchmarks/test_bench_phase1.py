"""E5 — Lemma 2.1: Phase I leaves residual degree O(log² n) with
O(log log n) energy."""

import math

import pytest

from repro import graphs
from repro.core import run_phase1_alg1

CASES = [(400, 160.0), (800, 250.0), (1600, 400.0)]


@pytest.mark.parametrize("n,degree", CASES)
def test_phase1_degree_reduction(benchmark, once, n, degree):
    graph = graphs.gnp_expected_degree(n, min(degree, n / 2), seed=n)
    result = once(benchmark, run_phase1_alg1, graph)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["input_degree"] = int(degree)
    benchmark.extra_info["iterations"] = result.details["iterations"]
    benchmark.extra_info["residual_degree"] = (
        result.details["residual_max_degree"]
    )
    benchmark.extra_info["max_energy"] = result.metrics.max_energy
    assert result.details["iterations"] >= 1
    assert result.details["residual_max_degree"] <= 4 * math.log2(n) ** 2
    total_rounds = (
        result.details["iterations"] * result.details["rounds_per_iteration"]
    )
    assert result.metrics.max_energy <= (
        3 * (math.floor(math.log2(max(2, total_rounds))) + 1) + 1
    )
