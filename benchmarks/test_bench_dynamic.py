"""Dynamic maintenance — the payoff of repairing instead of re-electing.

The headline dynamic claim: across a churn timeline, incremental repair
confines work to the invalidated region, so its *cumulative* energy (total
awake-rounds summed over every node's lifetime, the battery drain that the
paper's motivation cares about) stays strictly below re-running the
election from scratch each epoch — on the very sensor workload the paper
opens with.
"""

from repro.dynamic import make_workload, run_dynamic


def _sensor_timeline(n=150, epochs=8, seed=13):
    return make_workload("sensor_battery_decay", n=n, epochs=epochs, seed=seed)


def test_incremental_vs_full_recompute_energy(benchmark, once):
    graph, timeline = _sensor_timeline()

    def run_both():
        incremental = run_dynamic(
            graph, timeline, "algorithm1", strategy="incremental", seed=13
        )
        full = run_dynamic(
            graph, timeline, "algorithm1", strategy="full_recompute", seed=13
        )
        return incremental, full

    incremental, full = once(benchmark, run_both)
    benchmark.extra_info["incremental_energy"] = incremental.cumulative_energy
    benchmark.extra_info["full_energy"] = full.cumulative_energy
    benchmark.extra_info["incremental_rounds"] = incremental.total_rounds
    benchmark.extra_info["full_rounds"] = full.total_rounds
    benchmark.extra_info["incremental_repair_region"] = (
        incremental.total_repair_region
    )

    assert incremental.all_valid and full.all_valid
    # The acceptance bar: repair spends strictly less lifetime energy than
    # recomputation on the same seed — and less wall-clock rounds too.
    assert incremental.cumulative_energy < full.cumulative_energy
    assert incremental.total_rounds < full.total_rounds
    # Locality: post-election repairs touch a small fraction of the field.
    n = graph.number_of_nodes()
    assert incremental.total_repair_region < n * len(timeline) / 4


def test_repair_stability_under_link_flaps(benchmark, once):
    """Link flapping should perturb the backbone, not rebuild it: the
    maintained set changes far less per epoch than a fresh election's."""
    graph, timeline = make_workload("link_flap", n=150, epochs=8, seed=29)

    def run_both():
        incremental = run_dynamic(
            graph, timeline, "algorithm1", strategy="incremental", seed=29
        )
        full = run_dynamic(
            graph, timeline, "algorithm1", strategy="full_recompute", seed=29
        )
        return incremental, full

    incremental, full = once(benchmark, run_both)
    benchmark.extra_info["incremental_mis_churn"] = incremental.total_mis_churn
    benchmark.extra_info["full_mis_churn"] = full.total_mis_churn

    assert incremental.all_valid and full.all_valid
    assert incremental.total_mis_churn < full.total_mis_churn
