"""E6 — Lemma 2.5: overlap schedules have size O(log T) and satisfy the
pairwise-overlap property."""

import math

import pytest

from repro.schedule import (
    schedule_for_round,
    schedule_size_bound,
    verify_overlap_property,
)

TOTALS = [2**6, 2**10, 2**14]


@pytest.mark.parametrize("total", TOTALS)
def test_schedule_construction(benchmark, once, total):
    def build():
        sizes = [
            len(schedule_for_round(total, k))
            for k in range(0, total, max(1, total // 256))
        ]
        return max(sizes)

    max_size = once(benchmark, build)
    benchmark.extra_info["T"] = total
    benchmark.extra_info["max_schedule_size"] = max_size
    benchmark.extra_info["bound"] = schedule_size_bound(total)
    assert max_size <= math.floor(math.log2(total)) + 1


def test_overlap_property_exhaustive(benchmark, once):
    verified = once(benchmark, verify_overlap_property, 256)
    benchmark.extra_info["T"] = 256
    assert verified
