"""E4 — Section 4: constant node-averaged energy.

Regenerates the average-energy series for the augmented algorithms vs Luby.
"""


import pytest

from repro import graphs
from repro.analysis import is_independent_set
from repro.baselines import luby_mis
from repro.core import (
    algorithm1_constant_average_energy,
    algorithm2_constant_average_energy,
)

SIZES = [256, 1024]


@pytest.mark.parametrize("n", SIZES)
def test_algorithm1_avg_energy(benchmark, once, n):
    graph = graphs.gnp_expected_degree(n, 32.0, seed=n)
    result = once(benchmark, algorithm1_constant_average_energy, graph, 0)
    assert is_independent_set(graph, result.mis)
    luby = luby_mis(graph, seed=0)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["avg_energy"] = round(result.average_energy, 3)
    benchmark.extra_info["luby_avg_energy"] = round(luby.average_energy, 3)
    benchmark.extra_info["max_energy"] = result.max_energy
    # The augmentation must not blow up the worst case.
    assert result.max_energy <= result.rounds


@pytest.mark.parametrize("n", SIZES)
def test_algorithm2_avg_energy(benchmark, once, n):
    graph = graphs.gnp_expected_degree(n, 32.0, seed=n)
    result = once(benchmark, algorithm2_constant_average_energy, graph, 0)
    assert is_independent_set(graph, result.mis)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["avg_energy"] = round(result.average_energy, 3)


def test_average_energy_flatness(benchmark, once):
    """The E4 series in one number: avg energy barely moves across 8x n."""

    def growth():
        small = algorithm1_constant_average_energy(
            graphs.gnp_expected_degree(256, 32.0, seed=0), 0
        ).average_energy
        large = algorithm1_constant_average_energy(
            graphs.gnp_expected_degree(2048, 32.0, seed=0), 0
        ).average_energy
        return large - small

    delta = once(benchmark, growth)
    benchmark.extra_info["avg_energy_growth_256_to_2048"] = round(delta, 3)
    assert delta <= 4.0
