"""Fault-layer overhead guard: zero-rate wrappers must be (nearly) free.

The fault-injection design contract is *zero-rate transparency*: a
``lossy(drop=0.0)`` wrapper draws no randomness, allocates nothing, and
passes every inbox through untouched — so wrapping a channel "just in
case" (as sweep configuration code does) must not tax clean runs. This
suite gates that contract like the engine suites gate their speedups:
best-of-N wall clocks of the round loop only, comparing a bare CONGEST
run against a ``lossy(drop=0.0)``-wrapped run on both the cached-fast
scalar path and the vectorized Luby path (where the wrapper also sits on
the dense CSR delivery route).

Both comparisons re-assert bit-identical outputs/metrics/ledgers before
trusting their clocks — if transparency is broken, the gate fails on
correctness, not on noise. ``BENCH_QUICK=1`` shrinks sizes and relaxes
the ceiling for noisy shared runners; ``BENCH_SNAPSHOT=1`` (re)writes the
committed ``BENCH_7.json`` snapshot.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro import graphs
from repro.baselines import LubyProgram
from repro.congest import Network

QUICK = os.environ.get("BENCH_QUICK", "0") not in ("", "0")
SNAPSHOT_PATH = Path(__file__).resolve().parent.parent / "BENCH_7.json"
# Ceiling on (wrapped / bare - 1). A zero-rate wrapper's per-round cost is
# one rate check and a pass-through call, so 5% is generous headroom for
# clock noise; quick mode (CI shared runners) relaxes further.
MAX_OVERHEAD = 0.15 if QUICK else 0.05
TIMING_ATTEMPTS = 5

ZERO_FAULT = "lossy(drop=0.0,seed=1):congest"

_RESULTS: dict = {}


@pytest.fixture(scope="session", autouse=True)
def _write_snapshot():
    """Persist overhead numbers to BENCH_7.json when BENCH_SNAPSHOT=1."""
    yield
    if _RESULTS and os.environ.get("BENCH_SNAPSHOT", "0") not in ("", "0"):
        SNAPSHOT_PATH.write_text(
            json.dumps(dict(sorted(_RESULTS.items())), indent=2) + "\n"
        )


def _graph(vectorized):
    # Scalar rounds are ~100x costlier than numpy rounds, so a smaller
    # graph keeps wall clocks comparable across the two gates.
    if vectorized:
        n = 2_000 if QUICK else 10_000
    else:
        n = 500 if QUICK else 2_000
    return graphs.make_family("gnp_log_degree", n, seed=13)


def _timed_run(make_network, engine):
    best = None
    for _ in range(TIMING_ATTEMPTS):
        network = make_network()
        start = time.perf_counter()
        network.run(engine=engine)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
            kept = network
    return best, kept


def _gate_overhead(name, engine, vectorized):
    graph = _graph(vectorized)

    def make(channel="congest"):
        return Network(
            graph,
            {v: LubyProgram() for v in graph.nodes},
            seed=13,
            channel=channel,
        )

    bare_s, bare_net = _timed_run(lambda: make(), engine)
    wrapped_s, wrapped_net = _timed_run(lambda: make(ZERO_FAULT), engine)

    # Transparency first: the wrapper must not perturb the run at all.
    assert wrapped_net.metrics() == bare_net.metrics()
    assert wrapped_net.outputs("in_mis") == bare_net.outputs("in_mis")
    assert wrapped_net.ledger.snapshot() == bare_net.ledger.snapshot()
    if vectorized:
        assert bare_net.vector_rounds > 0
        assert wrapped_net.vector_rounds > 0

    overhead = wrapped_s / bare_s - 1.0
    _RESULTS[f"{name}_bare"] = bare_s
    _RESULTS[f"{name}_wrapped"] = wrapped_s
    _RESULTS[f"{name}_overhead"] = overhead
    assert overhead <= MAX_OVERHEAD, (
        f"{name}: zero-rate fault wrapper costs {overhead * 100:.1f}% "
        f"(bare {bare_s * 1000:.1f}ms vs wrapped "
        f"{wrapped_s * 1000:.1f}ms; ceiling {MAX_OVERHEAD * 100:.0f}%)"
    )


def test_fast_path_zero_fault_overhead():
    """Cached scalar loop: bare CONGEST vs zero-rate lossy wrapper."""
    _gate_overhead("faults_luby_fast", "fast", vectorized=False)


def test_vectorized_path_zero_fault_overhead():
    """Vectorized dense rounds: the wrapper's vector_faults hook returns
    no mask at rate 0, so the CSR delivery route must be untouched."""
    _gate_overhead("faults_luby_vectorized", "vectorized", vectorized=True)
