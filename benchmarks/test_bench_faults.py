"""Fault-layer overhead guard: zero-rate wrappers must be (nearly) free.

The fault-injection design contract is *zero-rate transparency*: a
``lossy(drop=0.0)`` wrapper draws no randomness, allocates nothing, and
passes every inbox through untouched — so wrapping a channel "just in
case" (as sweep configuration code does) must not tax clean runs. This
suite gates that contract like the engine suites gate their speedups:
min-of-N wall clocks of the round loop only, comparing a bare CONGEST
run against a ``lossy(drop=0.0)``-wrapped run on both the cached-fast
scalar path and the vectorized Luby path (where the wrapper also sits on
the dense CSR delivery route).

Both comparisons re-assert bit-identical outputs/metrics/ledgers before
trusting their clocks — if transparency is broken, the gate fails on
correctness, not on noise. ``BENCH_QUICK=1`` shrinks sizes and relaxes
the ceiling for noisy shared runners; ``BENCH_SNAPSHOT=1`` (re)writes the
committed ``BENCH_7.json`` snapshot.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro import graphs
from repro.baselines import LubyProgram
from repro.congest import Network

QUICK = os.environ.get("BENCH_QUICK", "0") not in ("", "0")
SNAPSHOT_PATH = Path(__file__).resolve().parent.parent / "BENCH_7.json"
# Ceiling on (wrapped / bare - 1). A zero-rate wrapper's per-round cost is
# one rate check and a pass-through call, so a *real* regression shows up
# as a systematic cost far above 10%; the headroom absorbs the residual
# min-of-N jitter of shared runners (observed ±7% on a loaded container).
MAX_OVERHEAD = 0.20 if QUICK else 0.10
TIMING_ATTEMPTS = 7

ZERO_FAULT = "lossy(drop=0.0,seed=1):congest"

_RESULTS: dict = {}


@pytest.fixture(scope="session", autouse=True)
def _write_snapshot():
    """Persist overhead numbers to BENCH_7.json when BENCH_SNAPSHOT=1."""
    yield
    if _RESULTS and os.environ.get("BENCH_SNAPSHOT", "0") not in ("", "0"):
        SNAPSHOT_PATH.write_text(
            json.dumps(dict(sorted(_RESULTS.items())), indent=2) + "\n"
        )


def _graph(vectorized):
    # Scalar rounds are ~100x costlier than numpy rounds, so a smaller
    # graph keeps wall clocks comparable across the two gates.
    if vectorized:
        n = 2_000 if QUICK else 10_000
    else:
        n = 500 if QUICK else 2_000
    return graphs.make_family("gnp_log_degree", n, seed=13)


def _timed_pair(make_a, make_b, engine):
    """Interleaved min-of-N wall clocks for two configurations.

    Min, not median: scheduler interference on a shared runner is purely
    *additive* (an interrupted attempt only ever reads high), so the
    minimum over N attempts is the estimator that converges on each
    side's true floor — medians let one or two 2x spikes on one side
    breach a ceiling that compares a *ratio* of clocks. Min can read
    slightly negative overhead when only one side reaches its floor;
    for an upper-ceiling gate that is harmless. Attempts alternate A/B
    so clock drift and cache warm-up hit both sides equally, and one
    untimed warm-up run per side absorbs first-touch effects. Returns
    ``(min_a, network_a, min_b, network_b)``; the runs are bit-identical
    per side, so any attempt's network serves the identity checks.
    """
    times = {0: [], 1: []}
    networks = {}
    for attempt in range(-1, TIMING_ATTEMPTS):
        for side, make in enumerate((make_a, make_b)):
            network = make()
            start = time.perf_counter()
            network.run(engine=engine)
            elapsed = time.perf_counter() - start
            if attempt >= 0:
                times[side].append(elapsed)
            networks[side] = network
    return (min(times[0]), networks[0], min(times[1]), networks[1])


def _gate_overhead(name, engine, vectorized):
    graph = _graph(vectorized)

    def make(channel="congest"):
        return Network(
            graph,
            {v: LubyProgram() for v in graph.nodes},
            seed=13,
            channel=channel,
        )

    bare_s, bare_net, wrapped_s, wrapped_net = _timed_pair(
        lambda: make(), lambda: make(ZERO_FAULT), engine
    )

    # Transparency first: the wrapper must not perturb the run at all.
    assert wrapped_net.metrics() == bare_net.metrics()
    assert wrapped_net.outputs("in_mis") == bare_net.outputs("in_mis")
    assert wrapped_net.ledger.snapshot() == bare_net.ledger.snapshot()
    if vectorized:
        assert bare_net.vector_rounds > 0
        assert wrapped_net.vector_rounds > 0

    overhead = wrapped_s / bare_s - 1.0
    _RESULTS[f"{name}_bare"] = bare_s
    _RESULTS[f"{name}_wrapped"] = wrapped_s
    _RESULTS[f"{name}_overhead"] = overhead
    assert overhead <= MAX_OVERHEAD, (
        f"{name}: zero-rate fault wrapper costs {overhead * 100:.1f}% "
        f"(bare {bare_s * 1000:.1f}ms vs wrapped "
        f"{wrapped_s * 1000:.1f}ms; ceiling {MAX_OVERHEAD * 100:.0f}%)"
    )


def test_fast_path_zero_fault_overhead():
    """Cached scalar loop: bare CONGEST vs zero-rate lossy wrapper."""
    _gate_overhead("faults_luby_fast", "fast", vectorized=False)


def test_vectorized_path_zero_fault_overhead():
    """Vectorized dense rounds: the wrapper's vector_faults hook returns
    no mask at rate 0, so the CSR delivery route must be untouched."""
    _gate_overhead("faults_luby_vectorized", "vectorized", vectorized=True)
