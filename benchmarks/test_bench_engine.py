"""Engine hot-path benchmarks: dense vs sparse wake schedules.

The paper's regime is nodes that sleep almost always, so the engine must
make simulated time nearly free when nobody is awake. This suite times the
same workloads on the fast path (idle-round fast-forward + cached round
loop) and on the naive per-round legacy loop, asserts the fast path wins by
the required margin on sparse schedules with *bit-identical* results, and
writes a machine-readable ``BENCH_2.json`` perf snapshot (bench name →
seconds) next to the repository root so future PRs have a trajectory.

Set ``BENCH_QUICK=1`` for the CI-sized variant (smaller graphs, shorter
schedules, relaxed speedup floor — shared runners have noisy clocks).
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro import graphs
from repro.baselines import LubyProgram
from repro.congest import Network, NodeProgram

QUICK = os.environ.get("BENCH_QUICK", "0") not in ("", "0")
SNAPSHOT_PATH = Path(__file__).resolve().parent.parent / "BENCH_2.json"
# Wall-clock floor for sparse-schedule speedup (acceptance: ≥5x). The full
# profile measures ~15-40x; quick mode keeps a safety margin for CI noise.
MIN_SPARSE_SPEEDUP = 3.0 if QUICK else 5.0
# Timings are best-of-N so one scheduler hiccup on a shared runner cannot
# fail the speedup floors when this file runs inside the tier-1 suite.
TIMING_ATTEMPTS = 3

_RESULTS: dict = {}


@pytest.fixture(scope="session", autouse=True)
def _write_snapshot():
    """Persist the collected timings to BENCH_2.json when asked.

    Gated behind ``BENCH_SNAPSHOT=1`` so ordinary test runs (tier-1 collects
    this file too) never dirty the committed trajectory snapshot with
    machine-local or quick-profile numbers.
    """
    yield
    if _RESULTS and os.environ.get("BENCH_SNAPSHOT", "0") not in ("", "0"):
        SNAPSHOT_PATH.write_text(
            json.dumps(dict(sorted(_RESULTS.items())), indent=2) + "\n"
        )


class SparseHeartbeat(NodeProgram):
    """All nodes sleep ``period - 1`` of every ``period`` rounds.

    At each synchronized wake every node pings one neighbor — the cheap,
    rare coordination beat of a long-lived sensor network. With the default
    profile nodes sleep 99.99% of all rounds.
    """

    def __init__(self, period: int, wakes: int):
        self.period = period
        self.wakes = wakes

    def on_start(self, ctx):
        ctx.use_wake_schedule(
            [(i + 1) * self.period for i in range(self.wakes)]
        )

    def on_round(self, ctx):
        if ctx.neighbors:
            beat = ctx.round // self.period
            ctx.send(ctx.neighbors[beat % len(ctx.neighbors)], True)

    def on_receive(self, ctx, messages):
        ctx.output["heard"] = ctx.output.get("heard", 0) + len(messages)
        if ctx.round >= self.period * self.wakes:
            ctx.halt()


class StaggeredTicker(NodeProgram):
    """One node awake at a time, round-robin — maximally sparse schedules."""

    def __init__(self, spacing: int, wakes: int, n: int):
        self.spacing = spacing
        self.wakes = wakes
        self.n = n

    def on_start(self, ctx):
        base = (ctx.node % self.n) * self.spacing
        stride = self.spacing * self.n
        ctx.use_wake_schedule(
            [base + 1 + i * stride for i in range(self.wakes)]
        )

    def on_round(self, ctx):
        ctx.output["ticks"] = ctx.output.get("ticks", 0) + 1

    def on_receive(self, ctx, messages):
        if ctx.output["ticks"] >= self.wakes:
            ctx.halt()


def _timed_run(make_network, legacy):
    """Best-of-N wall clock for one engine path (runs are deterministic)."""
    best = None
    for _ in range(TIMING_ATTEMPTS):
        network = make_network()
        start = time.perf_counter()
        metrics = network.run(legacy=legacy)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, metrics, network


def _compare_paths(name, make_network, output_key):
    """Time fast vs legacy; record both; assert bit-identical results."""
    fast_s, fast_metrics, fast_net = _timed_run(make_network, legacy=False)
    legacy_s, legacy_metrics, legacy_net = _timed_run(make_network, legacy=True)
    assert fast_metrics == legacy_metrics
    assert fast_net.outputs(output_key) == legacy_net.outputs(output_key)
    assert fast_net.ledger.snapshot() == legacy_net.ledger.snapshot()
    _RESULTS[f"{name}_fast"] = fast_s
    _RESULTS[f"{name}_legacy"] = legacy_s
    return fast_s, legacy_s, fast_metrics


def test_sparse_heartbeat_fast_forward_speedup():
    """The headline: ≥95%-asleep schedules must run ≥5x faster, identically."""
    n = 48 if QUICK else 64
    period = 2_000 if QUICK else 10_000
    wakes = 10
    graph = graphs.gnp(n, 0.08, seed=7)

    def make_network():
        return Network(
            graph, {v: SparseHeartbeat(period, wakes) for v in graph.nodes}
        )

    fast_s, legacy_s, metrics = _compare_paths(
        "engine_sparse_heartbeat", make_network, "heard"
    )
    assert metrics.rounds == period * wakes + 1
    # Sleep fraction of the schedule: wakes awake rounds out of all rounds.
    assert wakes / metrics.rounds < 0.05
    _RESULTS["engine_sparse_heartbeat_speedup"] = legacy_s / fast_s
    _RESULTS["engine_sparse_heartbeat_rounds_per_sec_fast"] = (
        metrics.rounds / fast_s
    )
    _RESULTS["engine_sparse_heartbeat_rounds_per_sec_legacy"] = (
        metrics.rounds / legacy_s
    )
    assert legacy_s / fast_s >= MIN_SPARSE_SPEEDUP, (
        f"sparse fast path only {legacy_s / fast_s:.1f}x faster "
        f"(fast {fast_s * 1000:.1f}ms vs legacy {legacy_s * 1000:.1f}ms)"
    )


def test_staggered_ticker_fast_forward():
    """Round-robin single-node wakes: many small events, long idle gaps."""
    n = 64 if QUICK else 128
    spacing = 50 if QUICK else 150
    wakes = 10
    graph = graphs.gnp(n, 0.05, seed=3)

    def make_network():
        return Network(
            graph, {v: StaggeredTicker(spacing, wakes, n) for v in graph.nodes}
        )

    fast_s, legacy_s, metrics = _compare_paths(
        "engine_staggered_ticker", make_network, "ticks"
    )
    _RESULTS["engine_staggered_ticker_speedup"] = legacy_s / fast_s
    # Every node ticked its full schedule in both paths.
    assert metrics.total_energy == graph.number_of_nodes() * wakes


def test_dense_luby_round_loop():
    """Dense awake sets (Luby): no fast-forward possible; the cached round
    loop must stay at least on par with the naive loop."""
    n = 128 if QUICK else 512
    graph = graphs.gnp_expected_degree(n, 16.0, seed=11)

    def make_network():
        return Network(graph, {v: LubyProgram() for v in graph.nodes}, seed=1)

    fast_s, legacy_s, metrics = _compare_paths(
        "engine_dense_luby", make_network, "in_mis"
    )
    _RESULTS["engine_dense_luby_rounds_per_sec_fast"] = metrics.rounds / fast_s
    # Dense schedules never fast-forward, so both paths run the same rounds;
    # guard against the fast path regressing badly on its worst case.
    assert fast_s <= legacy_s * 2.0
