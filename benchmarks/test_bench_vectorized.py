"""Vectorized dense-round engine benchmarks: numpy rounds vs cached loop.

The vectorized path's perf claim is that dense always-on phases (Luby-style
duel rounds, regularized-Luby marking cascades) run >= 2x faster when node
state is flattened into numpy columns and each round is executed
whole-network — with *bit-identical* outputs, metrics, and ledgers, which
every timing below re-asserts before trusting its clocks. A radio scenario
additionally snapshots the bincount listener scan of the broadcast channel
against the scalar reference scan.

Timings isolate the round loop (``Network.run``): network construction is
identical across engine paths and excluded. Best-of-N wall clocks; set
``BENCH_QUICK=1`` for the CI-sized variant (smaller graphs, relaxed floors
— shared runners have noisy clocks) and ``BENCH_SNAPSHOT=1`` to (re)write
the committed ``BENCH_5.json`` snapshot.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro import graphs
from repro.baselines import (
    LubyProgram,
    RadioDecayProgram,
    RegularizedLubyProgram,
)
from repro.congest import Network
from repro.graphs.properties import max_degree

QUICK = os.environ.get("BENCH_QUICK", "0") not in ("", "0")
SNAPSHOT_PATH = Path(__file__).resolve().parent.parent / "BENCH_5.json"
# Acceptance floor: the vectorized dense round must beat the cached round
# loop >= 2x on n >= 10k dense-phase workloads (full profile measures
# ~3-3.5x on Luby). Quick mode keeps a safety margin for CI noise.
MIN_DENSE_SPEEDUP = 1.3 if QUICK else 2.0
# The regularized cascade has cheaper rounds (no degree payloads), so the
# python-dispatch saving is smaller; it must still clearly win.
MIN_CASCADE_SPEEDUP = 1.1 if QUICK else 1.5
# The bincount listener scan must never lose to the O(deg)-per-listener
# reference scan on a contention-heavy radio workload.
MIN_RADIO_SPEEDUP = 1.0 if QUICK else 1.15
TIMING_ATTEMPTS = 3

_RESULTS: dict = {}


@pytest.fixture(scope="session", autouse=True)
def _write_snapshot():
    """Persist timings to BENCH_5.json when BENCH_SNAPSHOT=1 (see BENCH_2)."""
    yield
    if _RESULTS and os.environ.get("BENCH_SNAPSHOT", "0") not in ("", "0"):
        SNAPSHOT_PATH.write_text(
            json.dumps(dict(sorted(_RESULTS.items())), indent=2) + "\n"
        )


def _dense_graph():
    n = 2_000 if QUICK else 10_000
    return graphs.make_family("gnp_log_degree", n, seed=7)


def _timed_run(make_network, engine):
    best = None
    for _ in range(TIMING_ATTEMPTS):
        network = make_network()
        start = time.perf_counter()
        network.run(engine=engine)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
            kept = network
    return best, kept


def _compare_engines(name, make_network, floor, output_key="in_mis"):
    """Time vectorized vs cached-fast run; assert identity + speedup."""
    vector_s, vector_net = _timed_run(make_network, "vectorized")
    fast_s, fast_net = _timed_run(make_network, "fast")
    assert vector_net.vector_rounds > 0  # really took the numpy path
    assert fast_net.vector_rounds == 0
    assert vector_net.metrics() == fast_net.metrics()
    assert vector_net.outputs(output_key) == fast_net.outputs(output_key)
    assert vector_net.ledger.snapshot() == fast_net.ledger.snapshot()
    _RESULTS[f"{name}_vectorized"] = vector_s
    _RESULTS[f"{name}_fast"] = fast_s
    _RESULTS[f"{name}_speedup"] = fast_s / vector_s
    _RESULTS[f"{name}_rounds"] = float(vector_net.round_index + 1)
    _RESULTS[f"{name}_rounds_per_sec_vectorized"] = (
        (vector_net.round_index + 1) / vector_s
    )
    assert fast_s / vector_s >= floor, (
        f"{name}: vectorized round only {fast_s / vector_s:.2f}x over the "
        f"cached loop (vectorized {vector_s * 1000:.1f}ms vs "
        f"{fast_s * 1000:.1f}ms)"
    )


def test_luby_dense_rounds_speedup():
    """The headline: >= 2x over the cached loop on n >= 10k Luby."""
    graph = _dense_graph()

    def make():
        return Network(
            graph, {v: LubyProgram() for v in graph.nodes}, seed=7
        )

    _compare_engines("vectorized_luby_dense", make, MIN_DENSE_SPEEDUP)


def test_regularized_luby_cascade_speedup():
    """The paper's Phase-I base: long always-on marking cascades."""
    graph = _dense_graph()
    n = graph.number_of_nodes()
    delta = max_degree(graph)
    import math

    iterations = max(1, math.ceil(math.log2(max(2, delta))))
    rounds_per_iteration = max(1, round(math.log2(max(2, n))))

    def make():
        return Network(
            graph,
            {
                v: RegularizedLubyProgram(
                    iterations, rounds_per_iteration, delta
                )
                for v in graph.nodes
            },
            seed=7,
        )

    _compare_engines(
        "vectorized_regularized_cascade", make, MIN_CASCADE_SPEEDUP
    )


def test_radio_listener_scan_speedup():
    """Bincount listener scan vs the scalar per-listener scan, end to end
    on a contention-heavy radio MIS (same seeds, bit-identical runs).
    The sqrt-degree family keeps neighborhoods wide, which is exactly the
    regime where the O(deg)-per-listener reference scan hurts."""
    n = 512 if QUICK else 2_048
    graph = graphs.make_family("gnp_sqrt_degree", n, seed=9)

    def make(channel):
        return lambda: Network(
            graph,
            {v: RadioDecayProgram() for v in graph.nodes},
            seed=2,
            channel=channel,
        )

    vector_s, vector_net = _timed_run(make("broadcast"), "fast")
    scalar_s, scalar_net = _timed_run(make("broadcast-scalar"), "fast")
    assert vector_net.metrics() == scalar_net.metrics()
    assert vector_net.outputs("in_mis") == scalar_net.outputs("in_mis")
    assert vector_net.ledger.snapshot() == scalar_net.ledger.snapshot()
    assert vector_net.collisions > 0  # real contention happened
    _RESULTS["vectorized_radio_scan"] = vector_s
    _RESULTS["vectorized_radio_scan_scalar"] = scalar_s
    _RESULTS["vectorized_radio_scan_speedup"] = scalar_s / vector_s
    _RESULTS["vectorized_radio_collisions"] = float(vector_net.collisions)
    assert scalar_s / vector_s >= MIN_RADIO_SPEEDUP, (
        f"radio bincount scan only {scalar_s / vector_s:.2f}x over the "
        f"scalar listener scan"
    )
