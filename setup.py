"""Setup shim for environments that cannot build PEP 660 editable wheels.

All project metadata lives in ``pyproject.toml`` (the ``[project]`` table
plus the ``[tool.setuptools]`` src-layout configuration). Normally you
install with::

    pip install -e .

Offline/minimal environments whose toolchain lacks the ``wheel`` package
(pip then refuses both the PEP 660 and the legacy editable paths) can fall
back to::

    python setup.py develop

which produces the same importable editable install and the ``repro``
console script without building a wheel. Running straight from a checkout
with ``PYTHONPATH=src`` keeps working too.
"""

from setuptools import setup

setup()
