"""Setup shim: lets ``pip install -e .`` work in offline environments whose
setuptools predates PEP 660 editable wheels. All metadata is in
``pyproject.toml``."""

from setuptools import setup

setup()
