"""The time/energy trade-off across the algorithm family.

The paper's two algorithms sit at different points of the trade-off:

* Algorithm 1: time O(log² n), energy O(log log n) — cheapest energy.
* Algorithm 2: time O(log n·loglog n·log* n), energy O(log² log n) — almost
  Luby-fast, still exponentially cheaper energy than Luby.
* Luby: time O(log n), energy O(log n) — fastest, most power-hungry.

This example sweeps n, prints the measured trade-off table, and fits the
growth shapes (the claims are asymptotic; at simulation sizes the *slopes*
are the signal, and the absolute constants are ours, not the paper's).

Run:  python examples/energy_time_tradeoff.py  [--quick]
"""

import sys

from repro.analysis import best_model
from repro.harness import format_table, series, sweep


def main(quick: bool = False):
    sizes = [128, 256, 512] if quick else [256, 512, 1024, 2048]
    algorithms = ["luby", "algorithm2", "algorithm1"]
    print(f"sweeping n in {sizes} (3 seeds each; this takes a minute)...")
    points = sweep(algorithms, sizes, seeds=3)

    rows = []
    for n in sizes:
        row = [n]
        for algorithm in algorithms:
            row.append(series(points, algorithm, "rounds")[n])
            row.append(series(points, algorithm, "max_energy")[n])
        rows.append(row)
    headers = ["n"]
    for algorithm in algorithms:
        headers += [f"{algorithm} time", f"{algorithm} energy"]
    print()
    print(format_table(headers, rows))

    print("\nfitted energy growth (candidates: const/loglog/loglog²/log/log²):")
    for algorithm in algorithms:
        ys = [series(points, algorithm, "max_energy")[n] for n in sizes]
        fit = best_model(
            sizes, ys, candidates=("const", "loglog", "loglog_sq", "log", "log_sq")
        )
        print(f"  {algorithm:12s} ~ {fit.model} "
              f"(scale {fit.scale:.2f}, R² {fit.r_squared:.3f})")

    print(
        "\nThe paper's prediction: luby's energy grows like log n, while the"
        "\ntwo new algorithms' energy grows like log log n (squared for"
        "\nAlgorithm 2) — the flattest curves belong to the new algorithms."
    )


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
