"""Section 4 demo: constant node-averaged energy.

The worst-case energy bounds of Theorems 1.1/1.2 still let *most* nodes be
awake for Θ(log log n) rounds. Section 4 adds an intermediate phase
(Lemma 4.1) that shrinks the set of nodes paying for Phases II/III to
O(n / log² log n), after which the *average* awake time over all nodes is
O(1) — matching [CGP20, GP22] while keeping the new worst-case bounds.

This example contrasts the augmented algorithms against their plain
versions and Luby, and shows the distribution of awake rounds over nodes.

Run:  python examples/average_energy_demo.py
"""

from collections import Counter

from repro import graphs
from repro.baselines import luby_mis
from repro.congest import EnergyLedger
from repro.core import algorithm1, algorithm1_constant_average_energy


def histogram(ledger: EnergyLedger, buckets=(1, 3, 6, 12, 24, 48, 1 << 30)):
    counts = Counter()
    for node in ledger.nodes:
        awake = ledger.awake_rounds(node)
        for bucket in buckets:
            if awake <= bucket:
                counts[bucket] += 1
                break
    return counts


def main():
    n = 1500
    graph = graphs.gnp_expected_degree(n, 32.0, seed=5)
    print(f"graph: {n} nodes, expected degree 32\n")

    runs = {}
    for name, runner in [
        ("luby", lambda g, ledger: luby_mis(g, seed=0, ledger=ledger)),
        ("algorithm1", lambda g, ledger: algorithm1(g, seed=0, ledger=ledger)),
        ("algorithm1_avg", lambda g, ledger: algorithm1_constant_average_energy(
            g, seed=0, ledger=ledger)),
    ]:
        ledger = EnergyLedger(graph.nodes)
        result = runner(graph, ledger)
        runs[name] = (result, ledger)

    print(f"{'algorithm':18s} {'max awake':>10s} {'avg awake':>10s}")
    for name, (result, _) in runs.items():
        print(f"{name:18s} {result.max_energy:10d} "
              f"{result.average_energy:10.2f}")

    print("\ndistribution of awake rounds (nodes per bucket):")
    buckets = (1, 3, 6, 12, 24, 48, 1 << 30)
    labels = ["<=1", "<=3", "<=6", "<=12", "<=24", "<=48", ">48"]
    print(f"{'algorithm':18s}" + "".join(f"{label:>8s}" for label in labels))
    for name, (_, ledger) in runs.items():
        counts = histogram(ledger, buckets)
        print(f"{name:18s}" + "".join(
            f"{counts.get(bucket, 0):8d}" for bucket in buckets
        ))

    print(
        "\nThe augmented algorithm pushes the mass of the distribution into"
        "\nthe low buckets: most nodes hardly ever wake, only the few that"
        "\nsurvive into Phases II/III pay the (still polyloglog) worst case."
    )


if __name__ == "__main__":
    main()
