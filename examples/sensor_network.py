"""Sensor-network scenario: the paper's motivating application.

A wireless sensor network is modeled as a random geometric graph: nodes are
sensors scattered on the unit square, connected when within radio range.
Computing an MIS selects a set of coordinator nodes (an independent
dominating set: every sensor either coordinates or hears a coordinator).

Sensors run on batteries, so what matters is not wall-clock rounds but how
long each radio is powered: exactly the paper's energy complexity. This
example runs Luby's algorithm and both of the paper's algorithms on the
same network and translates awake rounds into battery lifetime.

Run:  python examples/sensor_network.py
"""

import repro
from repro import graphs
from repro.analysis import verify_mis

# One awake round costs one battery unit; sensors ship with a budget.
BATTERY_UNITS = 120.0


def lifetime(result) -> float:
    """How many MIS recomputations the worst-placed sensor could survive."""
    return BATTERY_UNITS / max(1, result.max_energy)


def main():
    network = graphs.random_geometric(800, seed=3)
    print(f"sensor field: {network.number_of_nodes()} sensors, "
          f"{network.number_of_edges()} radio links")

    runs = {
        "luby": repro.luby_mis(network, seed=0),
        "algorithm1": repro.algorithm1(network, seed=0),
        "algorithm2": repro.algorithm2(network, seed=0),
    }

    print(f"\n{'algorithm':14s} {'coordinators':>12s} {'rounds':>7s} "
          f"{'max awake':>10s} {'avg awake':>10s} {'recomputes':>11s}")
    for name, result in runs.items():
        assert verify_mis(network, result.mis).independent
        print(f"{name:14s} {len(result.mis):12d} {result.rounds:7d} "
              f"{result.max_energy:10d} {result.average_energy:10.2f} "
              f"{lifetime(result):11.1f}")

    print(
        "\nReading: 'recomputes' is how often the network could re-elect"
        "\ncoordinators before the busiest sensor dies. The paper's claim is"
        "\nabout growth: Luby's awake time grows like log n while the new"
        "\nalgorithms' grows like log log n. At this network size the"
        "\nconstant factors still favor Luby — run experiment E3"
        "\n(python -m repro.harness -e E3) for the fitted growth curves and"
        "\nthe extrapolated crossover."
    )


if __name__ == "__main__":
    main()
