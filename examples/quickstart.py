"""Quickstart: compute an MIS with the paper's Algorithm 1 and inspect the
time/energy accounting.

Run:  python examples/quickstart.py
"""

import repro
from repro import graphs
from repro.analysis import verify_mis


def main():
    # A random graph with expected degree 32 on 1000 nodes.
    graph = graphs.gnp_expected_degree(1000, 32.0, seed=7)
    print(f"graph: {graph.number_of_nodes()} nodes, "
          f"{graph.number_of_edges()} edges")

    # Algorithm 1 (Theorem 1.1): O(log² n) time, O(log log n) energy.
    result = repro.algorithm1(graph, seed=0)
    print(f"\n{result!r}")

    # The MIS is independent unconditionally and maximal w.h.p. — verify.
    report = verify_mis(graph, result.mis)
    print(f"independent: {report.independent}, maximal: {report.maximal}")

    # Phase breakdown: where the rounds and the energy went.
    print("\nper-phase breakdown:")
    for name, phase in result.metrics.phases.items():
        print(f"  {name:8s} rounds={phase.rounds:5d} "
              f"max_energy={phase.max_energy:4d} "
              f"avg_energy={phase.average_energy:6.2f}")

    # Compare with Luby's classic algorithm: same task, but every undecided
    # node stays awake every round.
    luby = repro.luby_mis(graph, seed=0)
    print(f"\nluby:  rounds={luby.rounds}, max_energy={luby.max_energy}")
    print(f"alg1:  rounds={result.rounds}, max_energy={result.max_energy}")
    print("\n(energy = max awake rounds per node; the paper's point is that"
          "\n it grows like log log n instead of log n — at this size the"
          "\n constants still dominate, see examples/energy_time_tradeoff.py"
          "\n and experiment E3 for the growth-rate evidence)")


if __name__ == "__main__":
    main()
