"""Fault injection demo: jam a radio MIS run, then self-heal the damage.

Three acts, mirroring the layers of `repro.faults`:

1. **Channel faults** — run the radio decay MIS under an adversarial
   jammer (`jam(rate=...):broadcast`): collisions spike, energy is
   billed for every jammed listen, and the output MIS degrades.
2. **Healing** — `heal_mis` repairs the damaged candidate: conflicted
   members are evicted and the uncovered region re-elects, for a cost
   far below a full re-election.
3. **Node faults + self-stabilization** — a seeded crash/recover
   `FaultPlan` driven through `run_self_healing`: every epoch is
   verified, recovered nodes rejoin through the dynamic maintainer, and
   after the last fault the MIS is valid on the full original graph.

Run:  python examples/fault_demo.py
"""

from repro.analysis import verify_mis
from repro.faults import FaultPlan, heal_mis, run_self_healing
from repro.graphs import make_family
from repro.harness import run_algorithm

N = 256
SEED = 11


def main():
    graph = make_family("gnp_log_degree", N, seed=SEED)

    # ------------------------------------------------------------------
    # 1. A radio MIS under adversarial jamming. The jammer destroys
    #    reception on ~30% of rounds; every jammed listener is billed the
    #    collision cost (listening costs energy in the radio model).
    # ------------------------------------------------------------------
    clean = run_algorithm("radio_decay", graph, seed=SEED, channel="broadcast")
    jammed = run_algorithm(
        "radio_decay", graph, seed=SEED, channel="jam(rate=0.3,seed=5):broadcast"
    )
    print("== radio decay MIS: clean vs jammed medium ==")
    for label, result in (("clean", clean), ("jammed", jammed)):
        report = verify_mis(graph, result.mis)
        print(f"{label:8s} |MIS|={len(result.mis):3d} rounds={result.rounds:4d} "
              f"collisions={result.metrics.collisions:5d} "
              f"max_energy={result.max_energy:3d} "
              f"independent={report.independent} maximal={report.maximal}")

    # ------------------------------------------------------------------
    # 2. Heal the jammed output instead of re-electing from scratch:
    #    drop conflicted members, re-elect only the uncovered region.
    # ------------------------------------------------------------------
    healed, repair = heal_mis(graph, jammed.mis, seed=SEED)
    check = verify_mis(graph, healed)
    print("\n== healing the jammed candidate ==")
    print(f"dropped {repair.dropped} conflicted members, re-elected "
          f"{repair.uncovered} uncovered nodes in {repair.rounds} rounds "
          f"(energy {repair.energy:.0f})")
    print(f"healed |MIS|={len(healed)} independent={check.independent} "
          f"maximal={check.maximal}")
    print(f"(a from-scratch election took {clean.rounds} rounds)")

    # ------------------------------------------------------------------
    # 3. Crash faults with recovery, driven through the maintainer:
    #    each fault epoch repairs incrementally and is verified; after
    #    the last recovery the MIS must be valid on the FULL graph.
    # ------------------------------------------------------------------
    plan = FaultPlan.random(
        graph.nodes, seed=3, crash=0.12, horizon=6, recover_after=3
    )
    outcome = run_self_healing(graph, plan, seed=SEED)
    print("\n== crash/recover self-healing ==")
    print(f"{outcome.crash_count} crashes, {outcome.recover_count} recoveries "
          f"over {len(outcome.epochs)} epochs")
    for epoch in outcome.epochs:
        print(f"  t={epoch.time:2d} -{len(epoch.crashed)} +{len(epoch.recovered)} "
              f"repair_rounds={epoch.report.rounds:3d} |MIS|={epoch.mis_size:3d} "
              f"valid={epoch.valid}")
    final = verify_mis(graph, outcome.final_mis)
    print(f"stabilized={outcome.stabilized} (every epoch valid: "
          f"{outcome.all_valid}); final MIS valid on the full graph: "
          f"independent={final.independent} maximal={final.maximal}")
    print(f"total repair cost: {outcome.total_rounds} rounds, "
          f"{outcome.total_energy:.0f} energy")


if __name__ == "__main__":
    main()
