"""Telemetry demo: profile a run, stream a sweep to JSONL, aggregate it.

The observability layer (`repro.obs`) has three user-facing faces:

1. a wall-clock **profiler** you can attach to any run
   (`run_algorithm(..., profile=True)` or `repro --profile`);
2. a **streaming JSONL sink**: every measured run appends one
   self-describing record as it completes (`--telemetry runs.jsonl`),
   safe under process-pool sweeps — tail it while the sweep runs;
3. the **report** aggregator (`python -m repro report runs.jsonl`),
   which tolerates in-flight, partially-written files.

Run:  python examples/telemetry_demo.py
"""

import os
import tempfile

from repro import graphs
from repro.harness import run_algorithm, sweep
from repro.obs import RecordingInstrument, instrument_scope, render_profile
from repro.obs.report import report_file
from repro.obs.telemetry import telemetry_scope


def main():
    graph = graphs.gnp_expected_degree(2000, 16.0, seed=3)

    # ------------------------------------------------------------------
    # 1. Profile one run: where does the wall clock go?
    # ------------------------------------------------------------------
    result = run_algorithm("algorithm1", graph, seed=0, profile=True)
    print("== profile of one algorithm1 run ==")
    print(render_profile(result.details["profile"]))

    # ------------------------------------------------------------------
    # 2. Attach a custom instrument: the same event stream the engines
    #    emit for the profiler is available to any Instrument subclass.
    # ------------------------------------------------------------------
    rec = RecordingInstrument()
    with instrument_scope(rec):
        run_algorithm("luby", graph, seed=0)
    rounds = rec.of_kind("round")
    print("\n== luby event stream ==")
    print(f"engine emitted {len(rounds)} awake rounds, "
          f"{rec.awake_total} node-awakenings total")

    # ------------------------------------------------------------------
    # 3. Stream a sweep to JSONL and aggregate it with the report tool.
    #    (Equivalent CLI: repro -a luby --seeds 5 --telemetry runs.jsonl
    #     then: python -m repro report runs.jsonl)
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        sink = os.path.join(tmp, "runs.jsonl")
        with telemetry_scope(sink):
            sweep(["luby", "algorithm1"], [128, 256], seeds=3)
        with open(sink) as stream:
            lines = stream.readlines()
        print(f"\n== sweep streamed {len(lines)} records to runs.jsonl ==")
        print(lines[0][:120] + "...")
        print()
        print(report_file(sink, max_keys=6))


if __name__ == "__main__":
    main()
