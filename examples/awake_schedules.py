"""Visualizing Lemma 2.5 awake-overlap schedules.

Phase I of both algorithms needs a node acting in round ``r_v`` to learn
whether any earlier-acting neighbor joined the MIS — while sleeping through
almost the whole phase. Lemma 2.5 assigns each round ``k`` a set ``S_k`` of
``O(log T)`` wake rounds such that any two rounds share a wake round between
them.

This example prints the schedule matrix for a small T and demonstrates the
overlap witness for a few pairs.

Run:  python examples/awake_schedules.py
"""

from repro.schedule import (
    all_schedules,
    common_round,
    schedule_for_round,
    schedule_size_bound,
)


def main():
    total = 16
    schedules = all_schedules(total)
    print(f"T = {total} rounds; bound on |S_k| = {schedule_size_bound(total)}\n")
    print("round | awake rounds (S_k)        | as a timeline")
    print("------+---------------------------+-" + "-" * total)
    for k, schedule in enumerate(schedules):
        timeline = "".join(
            "#" if r in schedule else ("." if r != k else "!")
            for r in range(total)
        )
        print(f"  {k:3d} | {str(schedule):25s} | {timeline}")

    print("\noverlap witnesses (node acting at j hears about i <= j):")
    for i, j in [(0, 1), (3, 12), (7, 8), (5, 5), (0, 15)]:
        witness = common_round(schedules[i], schedules[j], i, j)
        print(f"  rounds {i:2d} and {j:2d} share wake round {witness:2d} "
              f"with {i} <= {witness} <= {j}")

    big = 1 << 20
    sample = schedule_for_round(big, 123_456)
    print(f"\nfor T = 2^20, round 123456 wakes only {len(sample)} times:")
    print(f"  {sample}")
    print("\nEnergy per Phase-I participant = O(|S_k|) = O(log T)"
          " = O(log log n) for T = polylog(n).")


if __name__ == "__main__":
    main()
