"""Radio-network MIS: one shared medium, collisions, and their energy bill.

The sensor networks the paper motivates are *radio* networks: a node does
not have a private wire to each neighbor, it has one antenna. When two
nearby sensors key up at once, their packets collide and a listener hears
noise. The `broadcast` channel models exactly this (half-duplex, collision
detection, one transmission per node per round), and `radio_decay` is an
MIS protocol built for it: candidates duel by randomized beacons, withdraw
on hearing *anything* (a clean beacon or a collision — both prove
competition), and winners announce with a guaranteed final beacon so
neighbors retire even when several announcements collide.

This example elects coordinators for the same sensor field on three
channels and shows what the shared medium costs: every collision a sensor
suffers while listening is a wasted receive slot, billed to the energy
ledger next to its awake rounds.

Run:  python examples/radio_collisions.py
"""

from repro import graphs
from repro.analysis import verify_mis
from repro.baselines import radio_decay_mis


def main():
    field = graphs.random_geometric(400, seed=11)
    print(f"sensor field: n={field.number_of_nodes()}, "
          f"m={field.number_of_edges()}\n")

    header = (f"{'channel':>18} {'|MIS|':>6} {'rounds':>7} "
              f"{'max energy':>11} {'avg energy':>11} {'collisions':>11}")
    print(header)
    for channel in ("broadcast", "congest"):
        result = radio_decay_mis(field, seed=11, channel=channel)
        report = verify_mis(field, result.mis)
        assert report.independent, f"{channel}: independence violated"
        print(f"{channel:>18} {len(result.mis):>6} {result.rounds:>7} "
              f"{result.max_energy:>11} {result.average_energy:>11.1f} "
              f"{result.metrics.collisions:>11}")

    print(
        "\nThe broadcast row pays for contention directly: every collision"
        "\nis billed to the ledger as a wasted listening slot. The congest"
        "\nrow is the same protocol on reliable full-duplex delivery —"
        "\ncollisions cost nothing there, but competing candidates now hear"
        "\neach other *symmetrically* and annihilate in pairs, so elections"
        "\nneed more epochs and the energy ends up higher. The radio"
        "\nmedium's half-duplex asymmetry (a transmitter is deaf) is what"
        "\nbreaks ties quickly."
    )

    # Collision *detection* is load-bearing, not a luxury: without it a
    # candidate standing between two colliding competitors hears silence,
    # never withdraws, and adjacent winners slip into the set together.
    result = radio_decay_mis(field, seed=11, channel="broadcast-no-cd")
    report = verify_mis(field, result.mis)
    print(
        f"\nwithout collision detection (broadcast-no-cd): "
        f"|MIS|={len(result.mis)}, independent={report.independent} — "
        f"the decay protocol is only sound when noise is audible."
    )


if __name__ == "__main__":
    main()
