"""MIS maintenance under churn — the dynamic-network subsystem end to end.

A sensor field is never static: batteries die, links flap, radios get
provisioned, attackers target hubs. This demo runs every named churn
workload through the dynamic maintainer twice — repairing incrementally
versus re-electing from scratch each epoch — and prints the lifetime
cost of each policy. The invariant is verified after every epoch, so the
energy numbers compare *valid* backbones only.

Run:  python examples/churn_demo.py
"""

from repro.dynamic import WORKLOADS, make_workload, run_dynamic

N = 150
EPOCHS = 8
SEED = 42
ALGORITHM = "algorithm1"


def main():
    print(f"dynamic MIS maintenance: n={N}, {EPOCHS} epochs of churn, "
          f"algorithm={ALGORITHM}\n")
    header = (f"{'workload':22} {'strategy':15} {'rounds':>7} "
              f"{'cum.energy':>11} {'max.energy':>11} {'repair':>7} "
              f"{'churn':>6}")
    print(header)
    print("-" * len(header))

    for name in sorted(WORKLOADS):
        graph, timeline = make_workload(name, n=N, epochs=EPOCHS, seed=SEED)
        for strategy in ("incremental", "full_recompute"):
            result = run_dynamic(
                graph, timeline, ALGORITHM, strategy=strategy, seed=SEED
            )
            assert result.all_valid  # verified after every epoch
            print(f"{name:22} {strategy:15} {result.total_rounds:>7} "
                  f"{result.cumulative_energy:>11} {result.max_energy:>11} "
                  f"{result.total_repair_region:>7} "
                  f"{result.total_mis_churn:>6}")
        print()

    print(
        "Incremental repair wakes only the ≤2-hop neighborhood of each\n"
        "update and re-elects just the uncovered region, so its lifetime\n"
        "awake-round bill (the battery drain) stays far below re-running\n"
        "the election — while maintaining exactly the same invariant."
    )


if __name__ == "__main__":
    main()
