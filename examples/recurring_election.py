"""Coordinator maintenance under battery drain — a lifecycle study.

Sensor networks do not elect coordinators once: nodes fail and the MIS
backbone must be repaired. Earlier versions of this example faked churn
by re-running the election from zero each epoch; it now drives the real
dynamic subsystem (``repro.dynamic``) in closed loop. Each epoch every
sensor pays a fixed sensing duty plus whatever awake-rounds MIS
maintenance charged it; sensors die at zero battery, their departure is
fed back to the maintainer as churn events, and the field dies below 50%
coverage. Longevity is the operational meaning of energy complexity.

Run:  python examples/recurring_election.py
"""

from repro import graphs
from repro.dynamic import GraphEvent, MISMaintainer
from repro.dynamic.events import NODE_REMOVE

BATTERY = 400.0
SENSING_DUTY = 2.0  # awake-rounds per epoch spent on the actual sensing job
MAX_EPOCHS = 60
ALIVE_FRACTION_FLOOR = 0.5  # network "dies" below 50% living sensors


def simulate(algorithm, strategy, network, seed=0):
    maintainer = MISMaintainer(
        network, algorithm, strategy=strategy, seed=seed
    )
    batteries = {node: BATTERY for node in network.nodes}
    charged = {node: 0 for node in network.nodes}

    def drain():
        """Bill each sensor its new awake-rounds; return the casualties."""
        casualties = []
        for node in maintainer.graph.nodes:
            spent = maintainer.ledger.awake_rounds(node)
            batteries[node] -= (spent - charged[node]) + SENSING_DUTY
            charged[node] = spent
            if batteries[node] <= 0:
                casualties.append(node)
        return sorted(casualties)

    epochs = 0
    dead = drain()  # the initial election's bill
    while epochs < MAX_EPOCHS:
        alive = maintainer.graph.number_of_nodes() - len(dead)
        if alive < ALIVE_FRACTION_FLOOR * len(network):
            break
        maintainer.apply_epoch([GraphEvent(NODE_REMOVE, v) for v in dead])
        epochs += 1
        dead = drain()
    return epochs, maintainer.graph.number_of_nodes() - len(dead)


def main():
    network = graphs.random_geometric(500, seed=11)
    print(f"sensor field: {network.number_of_nodes()} sensors, "
          f"battery budget {BATTERY:.0f} awake-rounds each, "
          f"sensing duty {SENSING_DUTY:.0f}/epoch\n")

    contenders = [
        ("luby", "full_recompute"),
        ("algorithm1", "full_recompute"),
        ("algorithm1", "incremental"),
        ("algorithm1_avg", "incremental"),
    ]

    print(f"{'algorithm':16} {'strategy':15} {'epochs survived':>16} "
          f"{'sensors alive':>14}")
    for algorithm, strategy in contenders:
        epochs, survivors = simulate(algorithm, strategy, network)
        capped = "+" if epochs >= MAX_EPOCHS else ""
        print(f"{algorithm:16} {strategy:15} {epochs:>15}{capped:1} "
              f"{survivors:>14}")

    print(
        "\nRe-electing from scratch bills every sensor every epoch, so the"
        "\nfleet burns out quickly regardless of the algorithm. Incremental"
        "\nmaintenance only wakes the neighborhoods of failed sensors: the"
        "\nbackbone outlives its batteries' sensing budget instead of its"
        "\nelection budget."
    )


if __name__ == "__main__":
    main()
