"""Recurring coordinator election under battery drain — a lifecycle study.

Sensor networks do not elect coordinators once: nodes fail, topology
changes, and the election repeats. Each election drains every node's
battery by the number of rounds it was awake. This example repeats MIS
elections (with nodes dying when their battery empties) and reports how
many election epochs the network survives under each algorithm — the
operational meaning of worst-case energy complexity.

Run:  python examples/recurring_election.py
"""

import networkx as nx

from repro import graphs
from repro.baselines import luby_mis
from repro.congest import EnergyLedger
from repro.core import algorithm1, algorithm1_constant_average_energy

BATTERY = 400.0
MAX_EPOCHS = 60
ALIVE_FRACTION_FLOOR = 0.5  # network "dies" below 50% living sensors


def simulate(name, runner, network, seed=0):
    batteries = {node: BATTERY for node in network.nodes}
    alive = set(network.nodes)
    epochs = 0
    while epochs < MAX_EPOCHS:
        graph = network.subgraph(alive).copy()
        if graph.number_of_nodes() < ALIVE_FRACTION_FLOOR * len(network):
            break
        ledger = EnergyLedger(graph.nodes)
        runner(graph, seed=seed + epochs, ledger=ledger)
        epochs += 1
        for node in list(alive):
            batteries[node] -= ledger.awake_rounds(node)
            if batteries[node] <= 0:
                alive.discard(node)
    survivors = len(alive)
    return epochs, survivors


def main():
    network = graphs.random_geometric(500, seed=11)
    print(f"sensor field: {network.number_of_nodes()} sensors, "
          f"battery budget {BATTERY:.0f} awake-rounds each\n")

    contenders = {
        "luby": lambda g, seed, ledger: luby_mis(g, seed=seed, ledger=ledger),
        "algorithm1": lambda g, seed, ledger: algorithm1(
            g, seed=seed, ledger=ledger),
        "algorithm1_avg": lambda g, seed, ledger: (
            algorithm1_constant_average_energy(g, seed=seed, ledger=ledger)),
    }

    print(f"{'algorithm':{16}} {'epochs survived':>16} {'sensors alive':>14}")
    for name, runner in contenders.items():
        epochs, survivors = simulate(name, runner, network)
        capped = "+" if epochs >= MAX_EPOCHS else ""
        print(f"{name:16} {epochs:>15}{capped:1} {survivors:>14}")

    print(
        "\nEach epoch charges every node its awake rounds; nodes die at"
        "\nzero battery, and the field dies below 50% coverage. The"
        "\nSection 4 variant shines here: most nodes barely wake per epoch,"
        "\nso the fleet outlives both worst-case-oriented algorithms."
    )


if __name__ == "__main__":
    main()
