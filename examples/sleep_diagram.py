"""Who sleeps when: tracing an execution round by round.

The engine can record every round's awake set. This example traces Luby's
algorithm (everyone awake until decided) side by side with Phase I of
Algorithm 1 (nodes wake only at their Lemma 2.5 schedule slots) on the same
dense graph, and prints ASCII sleep diagrams — the visual version of the
energy-complexity separation.

Run:  python examples/sleep_diagram.py
"""

from repro import graphs
from repro.baselines import LubyProgram
from repro.congest import Network
from repro.core import DEFAULT_CONFIG
from repro.core.phase1_alg1 import Phase1Alg1Program
from repro.graphs.properties import max_degree


def main():
    n = 600
    graph = graphs.gnp_expected_degree(n, 200.0, seed=2)
    delta = max_degree(graph)
    sample_nodes = sorted(graph.nodes)[:12]

    # --- Luby: no sleeping until decided -----------------------------
    luby_net = Network(
        graph, {v: LubyProgram() for v in graph.nodes}, seed=0, trace=True
    )
    luby_net.run()
    print("Luby's algorithm (every undecided node awake every round):\n")
    print(luby_net.trace.sleep_diagram(sample_nodes, width=60))
    print(f"\n  rounds={luby_net.metrics().rounds} "
          f"max_energy={luby_net.metrics().max_energy}")

    # --- Phase I of Algorithm 1: scheduled micro-naps -----------------
    config = DEFAULT_CONFIG
    iterations = config.phase1_iterations(n, delta)
    rounds_per_iteration = config.phase1_rounds_per_iteration(n)
    programs = {
        v: Phase1Alg1Program(
            iterations, rounds_per_iteration, delta, config.phase1_mark_divisor
        )
        for v in graph.nodes
    }
    phase_net = Network(graph, programs, seed=0, trace=True)
    phase_net.run_rounds(3 * iterations * rounds_per_iteration)
    print("\n\nPhase I of Algorithm 1 (awake only at schedule slots, '#'):\n")
    print(phase_net.trace.sleep_diagram(sample_nodes, width=60))
    print(f"\n  rounds={phase_net.metrics().rounds} "
          f"max_energy={phase_net.metrics().max_energy}")

    counts = phase_net.trace.awake_counts()
    print(f"\n  awake nodes per round: min={min(counts)}, "
          f"max={max(counts)}, mean={sum(counts)/len(counts):.1f} "
          f"(of {n} nodes)")
    print("\nThe diagram is the paper in one picture: the baseline's rows"
          "\nare solid, Phase I's rows are almost entirely dots.")


if __name__ == "__main__":
    main()
