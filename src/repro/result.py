"""Common result type returned by every MIS algorithm in this package."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Set

from .congest.metrics import RunMetrics


@dataclass
class MISResult:
    """Output of one MIS computation.

    Attributes
    ----------
    mis:
        The computed independent set (maximal w.h.p. for the randomized
        algorithms; callers can check with :func:`repro.analysis.verify_mis`).
    metrics:
        Time/energy/message accounting for the whole run; for multi-phase
        algorithms, ``metrics.phases`` holds the per-phase breakdown.
    algorithm:
        Human-readable algorithm name.
    details:
        Free-form per-algorithm extras (phase residual degrees, component
        statistics, iteration counts, ...).
    """

    mis: Set[int]
    metrics: RunMetrics
    algorithm: str
    details: Dict[str, Any] = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        """Time complexity of the run (total clock rounds)."""
        return self.metrics.rounds

    @property
    def max_energy(self) -> int:
        """Energy complexity of the run (max awake rounds over nodes)."""
        return self.metrics.max_energy

    @property
    def average_energy(self) -> float:
        """Node-averaged energy (Section 4's measure)."""
        return self.metrics.average_energy

    def to_dict(self, *, include_mis: bool = False) -> Dict[str, Any]:
        """JSON-friendly export of the full result.

        ``metrics`` round-trips through :meth:`RunMetrics.to_dict`
        (including per-phase breakdowns). ``details`` is passed through
        as-is; keeping its leaves JSON-serializable is the producer's
        concern (the profile tree the engine stores there already is).
        The raw node set is omitted unless ``include_mis`` is set — it can
        be huge, and its size is always present.
        """
        data: Dict[str, Any] = {
            "algorithm": self.algorithm,
            "mis_size": len(self.mis),
            "metrics": self.metrics.to_dict(),
        }
        if self.details:
            data["details"] = self.details
        if include_mis:
            data["mis"] = sorted(self.mis)
        return data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MISResult({self.algorithm}: |MIS|={len(self.mis)}, "
            f"rounds={self.rounds}, energy={self.max_energy}, "
            f"avg_energy={self.average_energy:.2f})"
        )
