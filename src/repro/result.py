"""Common result type returned by every MIS algorithm in this package."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Set

from .congest.metrics import RunMetrics


@dataclass
class MISResult:
    """Output of one MIS computation.

    Attributes
    ----------
    mis:
        The computed independent set (maximal w.h.p. for the randomized
        algorithms; callers can check with :func:`repro.analysis.verify_mis`).
    metrics:
        Time/energy/message accounting for the whole run; for multi-phase
        algorithms, ``metrics.phases`` holds the per-phase breakdown.
    algorithm:
        Human-readable algorithm name.
    details:
        Free-form per-algorithm extras (phase residual degrees, component
        statistics, iteration counts, ...).
    """

    mis: Set[int]
    metrics: RunMetrics
    algorithm: str
    details: Dict[str, Any] = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        """Time complexity of the run (total clock rounds)."""
        return self.metrics.rounds

    @property
    def max_energy(self) -> int:
        """Energy complexity of the run (max awake rounds over nodes)."""
        return self.metrics.max_energy

    @property
    def average_energy(self) -> float:
        """Node-averaged energy (Section 4's measure)."""
        return self.metrics.average_energy

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MISResult({self.algorithm}: |MIS|={len(self.mis)}, "
            f"rounds={self.rounds}, energy={self.max_energy}, "
            f"avg_energy={self.average_energy:.2f})"
        )
