"""Self-healing MIS maintenance under crash/recover fault timelines.

Two altitudes of healing:

* :func:`heal_mis` — one-shot repair of a *damaged* MIS candidate on a
  static graph (e.g. the output of a jammed radio run): drop every
  conflicted member, find the uncovered region, and re-elect on the
  induced subgraph with a fresh seed — the same conflict-drop / probe /
  re-elect rule the dynamic :class:`~repro.dynamic.maintainer
  .MISMaintainer` applies per epoch, exposed for single repairs.
* :func:`run_self_healing` — drive a :class:`~repro.faults.plan.FaultPlan`
  of ``crash``/``recover`` events through the maintainer: a crash becomes
  a ``NODE_REMOVE`` epoch, a recovery rejoins the node (program state
  reset — it re-enters with no memory) via ``NODE_ADD`` plus ``EDGE_ADD``
  events restoring its original edges to currently-alive neighbors.  Every
  epoch is checked with :func:`~repro.analysis.verify_mis`, and the result
  records how many repair rounds the final fault epoch needed — the
  self-stabilization cost: once faults cease, a valid MIS is restored
  within that (bounded) number of rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

import networkx as nx

from ..analysis.verify import verify_mis
from ..congest.metrics import EnergyLedger
from ..dynamic.events import EDGE_ADD, NODE_ADD, NODE_REMOVE, GraphEvent
from ..dynamic.maintainer import (
    INCREMENTAL,
    STRATEGIES,
    MISMaintainer,
    RepairReport,
    _accepts_kwarg,
    _resolve_algorithm,
)
from .plan import CRASH, RECOVER, STRAGGLE, FaultPlan

__all__ = [
    "HealReport",
    "HealingEpoch",
    "SelfHealingResult",
    "heal_mis",
    "run_self_healing",
]


@dataclass(frozen=True)
class HealReport:
    """Accounting for one :func:`heal_mis` repair."""

    dropped: int          # conflicted MIS members evicted
    uncovered: int        # nodes re-electing in the repair region
    rounds: int           # rounds of the repair election (0 if none needed)
    energy: float         # ledger energy spent healing
    changed: bool         # did the candidate set change at all


def heal_mis(
    graph: nx.Graph,
    mis,
    algorithm: Any = "luby",
    *,
    seed: int = 0,
    ledger: Optional[EnergyLedger] = None,
    algorithm_kwargs: Optional[Dict[str, Any]] = None,
) -> Tuple[Set, HealReport]:
    """Repair a damaged MIS candidate on ``graph``.

    Conflicted members (adjacent pairs inside the candidate) are dropped,
    then the uncovered region re-elects with ``algorithm`` under a shared
    ``ledger``.  Returns ``(healed_set, HealReport)``; the healed set is
    a maximal independent set whenever the algorithm's own output on the
    repair region is one.
    """
    candidate = set(mis) & set(graph.nodes)
    conflicted = {
        node
        for node in candidate
        if any(neighbor in candidate for neighbor in graph.neighbors(node))
    }
    kept = candidate - conflicted
    uncovered = {
        node
        for node in graph.nodes
        if node not in kept
        and not any(neighbor in kept for neighbor in graph.neighbors(node))
    }
    if ledger is None:
        ledger = EnergyLedger(graph.nodes)
    else:
        ledger.ensure_nodes(graph.nodes)
    before = ledger.total_energy()
    rounds = 0
    healed = set(kept)
    if uncovered:
        _, run = _resolve_algorithm(algorithm)
        kwargs: Dict[str, Any] = dict(algorithm_kwargs or {})
        kwargs.setdefault("ledger", ledger)
        if _accepts_kwarg(run, "size_bound"):
            kwargs.setdefault("size_bound", graph.number_of_nodes())
        region = graph.subgraph(uncovered).copy()
        result = run(region, seed=seed, **kwargs)
        healed |= set(result.mis)
        rounds = result.rounds
    report = HealReport(
        dropped=len(conflicted),
        uncovered=len(uncovered),
        rounds=rounds,
        energy=ledger.total_energy() - before,
        changed=healed != set(mis),
    )
    return healed, report


@dataclass(frozen=True)
class HealingEpoch:
    """One fault epoch: what struck, what the repair cost, and validity."""

    time: int
    crashed: Tuple[Any, ...]
    recovered: Tuple[Any, ...]
    report: RepairReport
    valid: bool
    mis_size: int


@dataclass
class SelfHealingResult:
    """Outcome of :func:`run_self_healing` over a full fault timeline."""

    epochs: List[HealingEpoch] = field(default_factory=list)
    final_mis: Set = field(default_factory=set)
    all_valid: bool = True          # every epoch ended with a valid MIS
    stabilized: bool = False        # valid MIS after the last fault epoch
    stabilization_rounds: int = 0   # repair rounds of the final fault epoch
    total_rounds: int = 0
    total_energy: float = 0.0

    @property
    def crash_count(self) -> int:
        return sum(len(epoch.crashed) for epoch in self.epochs)

    @property
    def recover_count(self) -> int:
        return sum(len(epoch.recovered) for epoch in self.epochs)


def run_self_healing(
    graph: nx.Graph,
    plan: FaultPlan,
    algorithm: Any = "luby",
    *,
    strategy: str = INCREMENTAL,
    seed: int = 0,
    algorithm_kwargs: Optional[Dict[str, Any]] = None,
) -> SelfHealingResult:
    """Run a crash/recover :class:`FaultPlan` through the MIS maintainer.

    Each distinct fault time becomes one maintainer epoch: crashes remove
    their node, recoveries re-add it (fresh state) and restore its
    original edges to neighbors that are currently alive.  ``straggle``
    events are a *round*-level fault with no epoch meaning and are
    rejected here (inject them via ``Network(faults=...)`` instead).
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; have {list(STRATEGIES)}")
    if any(event.kind == STRAGGLE for event in plan.events):
        raise ValueError(
            "straggler faults act on rounds, not epochs; inject them with "
            "Network(faults=plan) / run_algorithm(faults=plan)"
        )
    maintainer = MISMaintainer(
        graph,
        algorithm,
        strategy=strategy,
        seed=seed,
        algorithm_kwargs=algorithm_kwargs,
    )
    result = SelfHealingResult()
    before_energy = maintainer.ledger.total_energy()
    by_time = plan.by_time()
    absent: Set = set()
    for time in sorted(by_time):
        events: List[GraphEvent] = []
        crashed: List[Any] = []
        recovered: List[Any] = []
        present = set(maintainer.graph.nodes)
        for fault in by_time[time]:
            if fault.kind == CRASH:
                if fault.node not in present:
                    continue
                events.append(GraphEvent(NODE_REMOVE, fault.node))
                present.discard(fault.node)
                absent.add(fault.node)
                crashed.append(fault.node)
            elif fault.kind == RECOVER:
                if fault.node not in absent or fault.node in present:
                    continue
                events.append(GraphEvent(NODE_ADD, fault.node))
                present.add(fault.node)
                for neighbor in graph.neighbors(fault.node):
                    if neighbor in present and neighbor != fault.node:
                        events.append(GraphEvent(EDGE_ADD, fault.node, neighbor))
                absent.discard(fault.node)
                recovered.append(fault.node)
        report = maintainer.apply_epoch(events)
        check = verify_mis(maintainer.graph, maintainer.mis)
        epoch = HealingEpoch(
            time=time,
            crashed=tuple(crashed),
            recovered=tuple(recovered),
            report=report,
            valid=check.maximal,
            mis_size=len(maintainer.mis),
        )
        result.epochs.append(epoch)
        result.all_valid = result.all_valid and epoch.valid
    result.final_mis = set(maintainer.mis)
    if result.epochs:
        last = result.epochs[-1]
        result.stabilized = last.valid
        result.stabilization_rounds = last.report.rounds
    else:
        result.stabilized = verify_mis(maintainer.graph, maintainer.mis).maximal
    result.total_rounds = maintainer.total_rounds
    result.total_energy = maintainer.ledger.total_energy() - before_energy
    return result
