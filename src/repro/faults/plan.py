"""Seeded node-fault timelines: crash, crash-recover, and straggler faults.

A :class:`FaultPlan` is an immutable, picklable timeline of
:class:`NodeFault` events keyed by round (for in-run injection through the
network step loop) or by epoch (for the self-healing driver in
:mod:`repro.faults.healing`).  Plans are either hand-built or drawn by
:meth:`FaultPlan.random` from a seeded RNG that is independent of the
algorithm's randomness.

In-run semantics (``Network(faults=plan)`` or ambient
:func:`repro.congest.network.fault_scope`):

* ``crash`` — the node halts at the start of the given round: it never
  wakes again, sends nothing, and charges no further energy.  This is the
  fail-stop model; recovery *within* a run is not meaningful (a crashed
  node's program state is gone), so ``recover`` events are rejected by the
  injector and handled by the healing driver instead, which resets state
  and rejoins the node through the dynamic maintainer.
* ``straggle`` — the node is forcibly asleep for ``duration`` rounds: it
  is removed from the awake set (no sending, no receiving, no energy
  charges — consistent with the sleeping model, where messages to a
  sleeping node are dropped by the *channel*), and scheduled-wake nodes
  have their missed wakes deferred to the end of the stall.

The vectorized engine declines to engage while an injector is active
(dense whole-network rounds assume the awake set is exactly the alive
set); forced ``engine="vectorized"`` raises instead of silently ignoring
the plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["CRASH", "RECOVER", "STRAGGLE", "FAULT_KINDS", "FaultPlan", "NodeFault"]

CRASH = "crash"
RECOVER = "recover"
STRAGGLE = "straggle"
FAULT_KINDS = (CRASH, RECOVER, STRAGGLE)


@dataclass(frozen=True)
class NodeFault:
    """One fault event: ``kind`` strikes ``node`` at ``time``.

    ``time`` is a round index for in-run injection and an epoch index for
    the healing driver.  ``duration`` is only meaningful for stragglers
    (how many rounds the node stalls).
    """

    time: int
    kind: str
    node: Any
    duration: int = 0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.time < 0:
            raise ValueError(f"fault time must be non-negative, got {self.time}")
        if self.duration < 0:
            raise ValueError(
                f"fault duration must be non-negative, got {self.duration}"
            )
        if self.kind == STRAGGLE and self.duration == 0:
            object.__setattr__(self, "duration", 1)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable timeline of :class:`NodeFault` events."""

    events: Tuple[NodeFault, ...] = ()
    seed: int = 0

    def __init__(self, events: Iterable[NodeFault] = (), seed: int = 0):
        events = tuple(events)
        for event in events:
            if not isinstance(event, NodeFault):
                raise TypeError(f"FaultPlan events must be NodeFault, got {event!r}")
        object.__setattr__(self, "events", events)
        object.__setattr__(self, "seed", int(seed))

    # ------------------------------------------------------------------
    @property
    def empty(self) -> bool:
        return not self.events

    @property
    def max_time(self) -> int:
        return max((event.time for event in self.events), default=-1)

    def kinds(self) -> frozenset:
        return frozenset(event.kind for event in self.events)

    def by_time(self) -> Dict[int, List[NodeFault]]:
        """Events grouped by time, preserving in-plan order within a time."""
        grouped: Dict[int, List[NodeFault]] = {}
        for event in self.events:
            grouped.setdefault(event.time, []).append(event)
        return grouped

    def nodes(self) -> frozenset:
        return frozenset(event.node for event in self.events)

    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        nodes: Sequence,
        *,
        seed: int = 0,
        horizon: int = 32,
        crash: float = 0.0,
        straggle: float = 0.0,
        recover_after: Optional[int] = None,
        straggle_duration: int = 8,
    ) -> "FaultPlan":
        """Draw a random plan over ``nodes`` with per-node fault rates.

        Each node independently crashes with probability ``crash`` (at a
        uniform time in ``[0, horizon)``; recovering ``recover_after``
        epochs later when set) and straggles with probability
        ``straggle`` for ``straggle_duration`` rounds.  Deterministic in
        ``(sorted(nodes), seed)`` and independent of algorithm RNG.
        """
        for name, rate in (("crash", crash), ("straggle", straggle)):
            if not 0.0 <= float(rate) <= 1.0:
                raise ValueError(
                    f"{name} rate must be a probability in [0, 1], got {rate!r}"
                )
        if horizon < 1:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if recover_after is not None and recover_after < 1:
            raise ValueError(
                f"recover_after must be positive, got {recover_after}"
            )
        rng = np.random.default_rng(np.random.SeedSequence([int(seed)]))
        events: List[NodeFault] = []
        for node in sorted(nodes):
            if crash and rng.random() < crash:
                time = int(rng.integers(horizon))
                events.append(NodeFault(time, CRASH, node))
                if recover_after is not None:
                    events.append(NodeFault(time + recover_after, RECOVER, node))
            if straggle and rng.random() < straggle:
                time = int(rng.integers(horizon))
                events.append(
                    NodeFault(time, STRAGGLE, node, duration=straggle_duration)
                )
        events.sort(key=lambda event: event.time)
        return cls(events, seed=int(seed))

    # ------------------------------------------------------------------
    def bind(self, network) -> Optional["_NetworkFaultInjector"]:
        """Build the in-run injector for ``network`` (``None`` if empty)."""
        if self.empty:
            return None
        return _NetworkFaultInjector(self, network)


class _NetworkFaultInjector:
    """Applies a :class:`FaultPlan` inside ``Network.step``.

    The network calls :meth:`begin_round` right after advancing the round
    counter (crashes halt their node before awake-set assembly) and
    :meth:`filter_awake` on the assembled awake view (stragglers are
    removed without mutating the engine's cached always-on structures).
    """

    def __init__(self, plan: FaultPlan, network):
        known = set(network.graph.nodes)
        by_time: Dict[int, List[NodeFault]] = {}
        for event in plan.events:
            if event.kind == RECOVER:
                raise ValueError(
                    "recover faults cannot be injected into a single run "
                    "(a crashed node's program state is gone); use "
                    "repro.faults.healing.run_self_healing, which rejoins "
                    "nodes through the dynamic maintainer"
                )
            # Events naming nodes absent from THIS network are skipped,
            # not rejected: multi-phase algorithms build sub-networks over
            # node subsets under the same ambient fault scope, and a
            # crashed node must simply not strike where it does not exist.
            # (run_algorithm validates the plan against the full graph.)
            if event.node in known:
                by_time.setdefault(event.time, []).append(event)
        self._by_round = by_time
        #: node -> first round at which it is awake again (exclusive stall end)
        self._stalled: Dict[Any, int] = {}
        self.crashed: set = set()
        self.straggled: set = set()

    @property
    def pending(self) -> bool:
        return bool(self._by_round) or bool(self._stalled)

    def begin_round(self, network, round_index: int) -> None:
        if not self._by_round:
            return
        # Apply every event due by now, not just this exact round: the
        # engine fast-forwards idle stretches, and a fault scheduled in a
        # skipped round must still land (a crash during sleep takes effect
        # at the next round the engine actually simulates).
        due = sorted(t for t in self._by_round if t <= round_index)
        events = [event for t in due for event in self._by_round.pop(t)]
        for event in events:
            ctx = network.contexts.get(event.node)
            if ctx is None or ctx._halted:
                continue
            if event.kind == CRASH:
                ctx.halt()
                self.crashed.add(event.node)
            elif event.kind == STRAGGLE:
                until = round_index + event.duration
                current = self._stalled.get(event.node, 0)
                self._stalled[event.node] = max(until, current)
                self.straggled.add(event.node)

    def filter_awake(self, network, round_index, ordered, awake):
        """Drop stalled nodes from this round's awake view.

        Returns fresh ``(ordered, awake)`` structures; the inputs may be
        the engine's cached always-on view and are never mutated.
        """
        if not self._stalled:
            return ordered, awake
        drop = set()
        for node, until in list(self._stalled.items()):
            if round_index >= until:
                del self._stalled[node]
            elif node in awake:
                drop.add(node)
        if not drop:
            return ordered, awake
        for node in drop:
            ctx = network.contexts[node]
            if not ctx._always_awake and not ctx._halted:
                # Scheduled sleepers lose this wake; defer it to the end of
                # the stall so the node still gets its turn.
                network._schedule_wake(node, self._stalled[node])
        ordered = [node for node in ordered if node not in drop]
        return ordered, awake - drop
