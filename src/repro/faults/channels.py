"""Composable fault-injecting channel wrappers.

Every wrapper decorates an inner :class:`~repro.congest.channels.Channel`
and post-processes the inboxes it delivers, so the clean channel semantics
(pricing, budget checks, collision scans, counters) stay in exactly one
place.  Wrappers compose: ``lossy(corrupt(jam(broadcast)))`` is a radio
medium that is jammed on some rounds, flips bits on reception, and then
drops messages iid — and :meth:`Channel.unwrapped` still reports the base
medium so radio-safety checks and the vectorized engine see through the
whole stack.

Fault randomness is *independent of algorithm randomness* and stateless
per round: each wrapper derives its draws from
``SeedSequence([fault_seed, round_index])``, so the fault pattern of round
``r`` does not depend on which earlier rounds were simulated (idle rounds
are fast-forwarded by some engines) nor on the channel's bind history.
Zero-rate wrappers draw nothing at all and are bit-identical to the
unwrapped channel — a contract the fault test-suite and the ``BENCH_7``
overhead gate both enforce.

The vectorized engine asks a channel for its fault state via
:meth:`Channel.vector_faults`; wrappers answer with a per-round boolean
*keep* mask over the CSR edge-slot arrays (slot ``e`` of row ``r`` masks
the delivery ``indices[e] -> r``), composed across the wrapper stack by
logical AND.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..congest.channels import (
    COLLISION_MESSAGE,
    BroadcastChannel,
    Channel,
    make_channel,
)
from ..congest.errors import ChannelError
from ..congest.message import Message
from ..congest.program import NO_BROADCAST

__all__ = [
    "CORRUPTED",
    "AdversarialJammer",
    "CorruptingChannel",
    "FaultChannel",
    "LossyChannel",
]


class _CorruptedSignal:
    """Sentinel payload for corrupted messages with no flippable bits."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<CORRUPTED>"


#: Replacement payload when a corrupted value has no representable bit flip
#: (``None`` beacons, exotic payload types).  Receivers that pattern-match on
#: payload shape will treat it as garbage, which is the point.
CORRUPTED = _CorruptedSignal()


def _validate_probability(name: str, value: float) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return value


def _validate_seed(seed: int) -> int:
    if not isinstance(seed, (int, np.integer)) or isinstance(seed, bool):
        raise ValueError(f"fault seed must be an integer, got {seed!r}")
    if seed < 0:
        raise ValueError(f"fault seed must be non-negative, got {seed}")
    return int(seed)


class FaultChannel(Channel):
    """Base class for fault wrappers: delegate everything, then perturb.

    Subclasses override :meth:`deliver` (and optionally
    :meth:`_vector_state`) and leave pricing/validation/counters to the
    wrapped channel.  ``inner`` may be a channel instance, a registry name,
    or ``None`` for the wrapper's default base medium.
    """

    #: Short grammar label; also the head keyword in channel-spec strings.
    kind = "fault"
    #: Default inner channel spec when ``inner`` is None.  Deliberately NOT
    #: the ambient scoped spec: a scope typically holds the *wrapped* spec
    #: itself, and resolving it here would recurse.
    default_inner = "congest"

    def __init__(self, inner: Any = None, *, seed: int = 0):
        super().__init__()
        if inner is None:
            inner = self.default_inner
        self.inner = inner if isinstance(inner, Channel) else make_channel(inner)
        self.seed = _validate_seed(seed)
        self.name = f"{self.spec_label()}:{self.inner.name}"
        self._network = None

    # -- spec/grammar introspection ------------------------------------
    def spec_label(self) -> str:
        """The wrapper's own label, e.g. ``lossy(drop=0.1,seed=7)``."""
        params = ",".join(f"{k}={v}" for k, v in self._spec_params())
        return f"{self.kind}({params})" if params else self.kind

    def _spec_params(self) -> List[tuple]:
        return []

    #: Whether this wrapper can perturb anything at its configured rates.
    #: Subclasses override with their rate checks; inactive wrappers have
    #: their ``deliver`` aliased straight through at bind time.
    @property
    def active(self) -> bool:
        return True

    # -- delegation -----------------------------------------------------
    def bind(self, network) -> None:
        self._network = network
        self.inner.bind(network)
        # Hot-path aliasing: per-message hooks (price/on_send/on_broadcast)
        # and per-round finish_round are pure delegation, so point them at
        # the inner channel's bound methods — this removes one Python
        # frame per message per wrapper layer (the inner channel has
        # already bound, so a stack collapses to the innermost methods).
        self.price = self.inner.price
        self.on_send = self.inner.on_send
        self.on_broadcast = self.inner.on_broadcast
        self.finish_round = self.inner.finish_round
        if not self.active:
            # Zero-rate transparency, for free: an inactive wrapper's
            # deliver is definitionally the inner deliver (rates are
            # immutable after construction), so alias it too and the
            # wrapped fast path costs nothing per round.
            self.deliver = self.inner.deliver

    def price(self, payload: Any) -> int:
        return self.inner.price(payload)

    def on_send(self, ctx, neighbor, payload) -> None:
        self.inner.on_send(ctx, neighbor, payload)

    def on_broadcast(self, ctx, payload) -> None:
        self.inner.on_broadcast(ctx, payload)

    def deliver(self, ordered, awake):
        return self.inner.deliver(ordered, awake)

    def finish_round(self) -> None:
        self.inner.finish_round()

    def unwrapped(self) -> Channel:
        return self.inner.unwrapped()

    # -- fault randomness ----------------------------------------------
    def _round_rng(self, round_index: int) -> np.random.Generator:
        """A stateless per-round generator, independent of algorithm RNG."""
        return np.random.default_rng(np.random.SeedSequence([self.seed, round_index]))

    # -- vectorized-engine hook ----------------------------------------
    def vector_faults(self, arrays):
        """Compose this wrapper's edge-drop state with the inner stack's."""
        inner = self.inner.vector_faults(arrays)
        own = self._vector_state(arrays)
        if inner is None:
            return own
        if own is None:
            return inner
        return _ComposedFaultState([own, inner])

    def _vector_state(self, arrays):
        return None

    # -- shared accounting helpers -------------------------------------
    def _count_fault_drops(self, lost: int) -> None:
        network = self._network
        network.messages_delivered -= lost
        network.messages_dropped += lost


class LossyChannel(FaultChannel):
    """iid per-message drops plus whole-round burst loss.

    Each delivered message survives with probability ``1 - drop``;
    additionally, with probability ``burst`` per round the *entire* round's
    traffic is lost (a fade / partition blink).  Dropped messages were
    still sent and priced — only delivery fails — so ``messages_dropped``
    and the bit counters stay consistent with the sleeping-model rule that
    a transmission costs the sender regardless of reception.
    """

    kind = "lossy"

    def __init__(self, inner: Any = None, *, drop: float = 0.0,
                 burst: float = 0.0, seed: int = 0):
        self.drop = _validate_probability("drop", drop)
        self.burst = _validate_probability("burst", burst)
        super().__init__(inner, seed=seed)
        #: Messages this wrapper destroyed (scalar paths only; vectorized
        #: runs account drops directly in the network counters).
        self.fault_drops = 0
        self.burst_rounds = 0

    def _spec_params(self):
        return [("drop", self.drop), ("burst", self.burst), ("seed", self.seed)]

    @property
    def active(self) -> bool:
        return self.drop > 0.0 or self.burst > 0.0

    def deliver(self, ordered, awake):
        inboxes = self.inner.deliver(ordered, awake)
        if not self.active or not inboxes:
            # Zero-rate wrappers must be bit-identical to the bare channel:
            # no RNG draw, no inbox copying.
            return inboxes
        rng = self._round_rng(self._network.round_index)
        if self.burst and rng.random() < self.burst:
            lost = sum(
                sum(1 for m in inbox if m is not COLLISION_MESSAGE)
                for inbox in inboxes.values()
            )
            self._count_fault_drops(lost)
            self.fault_drops += lost
            self.burst_rounds += 1
            return {}
        if not self.drop:
            return inboxes
        out: Dict[Any, List[Message]] = {}
        lost = 0
        # Receivers are visited in sorted order so the fault pattern is a
        # pure function of (seed, round, inbox shape), not dict history.
        for receiver in sorted(inboxes):
            messages = list(inboxes[receiver])
            keep = rng.random(len(messages)) >= self.drop
            kept = [
                m for m, k in zip(messages, keep)
                if k or m is COLLISION_MESSAGE
            ]
            lost += len(messages) - len(kept)
            if kept:
                out[receiver] = kept
        if lost:
            self._count_fault_drops(lost)
            self.fault_drops += lost
        return out

    def _vector_state(self, arrays):
        if not self.active:
            return None
        return _EdgeDropState(arrays, seed=self.seed, drop=self.drop,
                              burst=self.burst)


class CorruptingChannel(FaultChannel):
    """Bit-flip corruption: each delivered message is corrupted iid.

    Corruption flips one uniformly-chosen bit of an integer payload,
    negates a boolean, corrupts one element of a tuple, and replaces
    unflippable payloads (``None`` beacons and friends) with the
    :data:`CORRUPTED` sentinel.  A flipped bit never exceeds the original
    value's bit length, so a corrupted message still fits the CONGEST
    budget it was priced under.

    The vectorized engine models corruption as *detected loss* (the keep
    mask drops the slot): dense vector programs consume aggregate
    statistics of their inboxes rather than payload bytes, so a garbled
    flag is indistinguishable from an erasure at that altitude.  Faulty
    runs therefore need not match between scalar and vectorized engines —
    only the zero-rate wrapper is required to be transparent everywhere.
    """

    kind = "corrupt"

    def __init__(self, inner: Any = None, *, flip: float = 0.0, seed: int = 0):
        self.flip = _validate_probability("flip", flip)
        super().__init__(inner, seed=seed)
        self.corruptions = 0

    def _spec_params(self):
        return [("flip", self.flip), ("seed", self.seed)]

    @property
    def active(self) -> bool:
        return self.flip > 0.0

    @staticmethod
    def corrupt_payload(payload: Any, rng: np.random.Generator) -> Any:
        if isinstance(payload, bool):
            return not payload
        if isinstance(payload, int):
            width = max(1, payload.bit_length())
            return payload ^ (1 << int(rng.integers(width)))
        if isinstance(payload, tuple) and payload:
            index = int(rng.integers(len(payload)))
            items = list(payload)
            items[index] = CorruptingChannel.corrupt_payload(items[index], rng)
            return tuple(items)
        return CORRUPTED

    def deliver(self, ordered, awake):
        inboxes = self.inner.deliver(ordered, awake)
        if not self.active or not inboxes:
            return inboxes
        rng = self._round_rng(self._network.round_index)
        out: Dict[Any, Sequence[Message]] = {}
        for receiver in sorted(inboxes):
            messages = list(inboxes[receiver])
            hits = rng.random(len(messages)) < self.flip
            if hits.any():
                for i, hit in enumerate(hits):
                    message = messages[i]
                    if not hit or message is COLLISION_MESSAGE:
                        continue
                    messages[i] = Message(
                        message.sender,
                        self.corrupt_payload(message.payload, rng),
                    )
                    self.corruptions += 1
            out[receiver] = messages
        return out

    def _vector_state(self, arrays):
        if not self.active:
            return None
        return _EdgeDropState(arrays, seed=self.seed, drop=self.flip, burst=0.0)


class AdversarialJammer(FaultChannel):
    """Round/region jamming attack on a radio (:class:`BroadcastChannel`).

    On a jammed round, every awake listener inside the jammed region hears
    only noise: its inbox is destroyed, the round counts as a collision,
    and — because listening costs energy in the radio model — the
    collision cost is billed to its ledger.  Transmitters are unaffected
    (they were not listening), matching the standard jamming model where
    the adversary attacks *reception*.

    Jammed rounds are chosen by an explicit ``rounds`` set and/or an iid
    per-round ``rate``; the region is either an explicit node set or a
    seeded random ``fraction`` of the nodes picked at bind time (``None``
    means the whole network).
    """

    kind = "jam"
    default_inner = "broadcast"

    def __init__(self, inner: Any = None, *, rate: float = 0.0,
                 rounds: Sequence[int] = (), region: Optional[Sequence] = None,
                 fraction: Optional[float] = None, seed: int = 0):
        self.rate = _validate_probability("rate", rate)
        self.rounds = frozenset(int(r) for r in rounds)
        if any(r < 0 for r in self.rounds):
            raise ValueError("jammed rounds must be non-negative")
        if region is not None and fraction is not None:
            raise ValueError("pass either an explicit region or a fraction, not both")
        self.fraction = (
            None if fraction is None else _validate_probability("fraction", fraction)
        )
        self._explicit_region = None if region is None else frozenset(region)
        super().__init__(inner, seed=seed)
        self._region: Optional[frozenset] = self._explicit_region
        self._base: Optional[BroadcastChannel] = None
        self.jammed_rounds = 0
        self.jam_hits = 0

    def _spec_params(self):
        params = [("rate", self.rate)]
        if self.rounds:
            params.append(("rounds", sorted(self.rounds)))
        if self.fraction is not None:
            params.append(("fraction", self.fraction))
        params.append(("seed", self.seed))
        return params

    @property
    def active(self) -> bool:
        return self.rate > 0.0 or bool(self.rounds)

    def bind(self, network) -> None:
        super().bind(network)
        base = self.unwrapped()
        if not isinstance(base, BroadcastChannel):
            raise ChannelError(
                f"AdversarialJammer attacks a radio medium, but the base "
                f"channel is {base.name!r}; wrap a BroadcastChannel"
            )
        self._base = base
        if self.fraction is not None:
            nodes = sorted(network.graph.nodes)
            count = int(round(self.fraction * len(nodes)))
            rng = np.random.default_rng(np.random.SeedSequence([self.seed]))
            picked = rng.choice(len(nodes), size=count, replace=False)
            self._region = frozenset(nodes[i] for i in picked)

    def is_jammed(self, round_index: int) -> bool:
        if round_index in self.rounds:
            return True
        if self.rate:
            return bool(self._round_rng(round_index).random() < self.rate)
        return False

    def deliver(self, ordered, awake):
        if not self.active:
            return self.inner.deliver(ordered, awake)
        network = self._network
        if not self.is_jammed(network.round_index):
            return self.inner.deliver(ordered, awake)
        # Transmitter peek must happen before the inner channel drains the
        # pending-broadcast markers.
        contexts = network.contexts
        transmitters = {
            node for node in ordered
            if contexts[node]._bcast is not NO_BROADCAST
        }
        inboxes = self.inner.deliver(ordered, awake)
        region = self._region
        base = self._base
        self.jammed_rounds += 1
        for node in ordered:
            if node in transmitters:
                continue
            if region is not None and node not in region:
                continue
            ctx = contexts[node]
            if ctx._halted:
                continue
            inbox = inboxes.pop(node, None)
            if inbox and inbox[0] is COLLISION_MESSAGE:
                # Already hearing a genuine collision (counted and billed by
                # the base channel); jamming adds nothing on top.
                inboxes[node] = inbox
                continue
            if inbox:
                self._count_fault_drops(len(inbox))
            network.collisions += 1
            self.jam_hits += 1
            if base.collision_cost:
                network.ledger.charge(node, base.collision_cost)
            if base.collision_detection:
                inboxes[node] = [COLLISION_MESSAGE]
        return inboxes


class _EdgeDropState:
    """Per-round keep masks over CSR edge slots for one lossy wrapper.

    Slot ``e`` lies in the row of receiver ``edge_source[e]`` and masks the
    delivery from sender ``indices[e]``; masks are drawn slot-major from the
    same stateless per-round stream family the scalar wrapper uses (the
    *patterns* differ — scalar draws follow inbox shapes — which is fine:
    cross-engine bit-identity is only promised at zero rates).
    """

    def __init__(self, arrays, *, seed: int, drop: float, burst: float):
        self.arrays = arrays
        self.seed = seed
        self.drop = drop
        self.burst = burst

    def round_keep(self, round_index: int) -> Optional[np.ndarray]:
        """Keep mask for this round, or ``None`` when nothing is dropped."""
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, round_index])
        )
        if self.burst and rng.random() < self.burst:
            return np.zeros(self.arrays.indices.shape[0], dtype=bool)
        if not self.drop:
            return None
        return rng.random(self.arrays.indices.shape[0]) >= self.drop


class _ComposedFaultState:
    """AND-composition of the keep masks of a wrapper stack."""

    def __init__(self, states):
        self.states = states

    def round_keep(self, round_index: int) -> Optional[np.ndarray]:
        keep: Optional[np.ndarray] = None
        for state in self.states:
            mask = state.round_keep(round_index)
            if mask is None:
                continue
            keep = mask if keep is None else (keep & mask)
        return keep
