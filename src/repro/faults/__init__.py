"""Seeded fault injection for the CONGEST-with-sleeping simulator.

The package adds the fault axis the paper's clean synchronous model leaves
out, in three layers:

* **Channel faults** (:mod:`repro.faults.channels`) — composable wrappers
  over any :class:`~repro.congest.channels.Channel`:
  :class:`LossyChannel` (iid drops + burst loss), :class:`CorruptingChannel`
  (payload bit-flips), and :class:`AdversarialJammer` (round/region radio
  jamming, collisions billed to the energy ledger).  All fault randomness
  is seeded independently of algorithm RNG and stateless per round; a
  zero-rate wrapper is bit-identical to the bare channel on every engine
  path, and active wrappers run vectorized as boolean keep-masks over the
  CSR edge arrays.
* **Node faults** (:mod:`repro.faults.plan`) — a seeded
  :class:`FaultPlan` timeline of crash / crash-recover / straggler
  events, injected through the network step loop
  (``Network(faults=plan)``, :func:`~repro.congest.network.fault_scope`,
  ``run_algorithm(faults=plan)``).
* **Self-healing** (:mod:`repro.faults.healing`) — :func:`heal_mis`
  repairs a damaged MIS candidate in place, and :func:`run_self_healing`
  drives crash/recover plans through the dynamic
  :class:`~repro.dynamic.maintainer.MISMaintainer` with per-epoch
  ``verify_mis`` checks and a self-stabilization account.

Spec strings (:mod:`repro.faults.spec`) make every fault configuration
expressible as a plain string — ``lossy(drop=0.1,seed=7):congest``,
``jam(rate=0.2):broadcast`` — accepted anywhere a channel name is
(``--channel``, ``Network(channel=)``, sweep task tuples).
"""

from .channels import (
    CORRUPTED,
    AdversarialJammer,
    CorruptingChannel,
    FaultChannel,
    LossyChannel,
)
from .healing import (
    HealReport,
    HealingEpoch,
    SelfHealingResult,
    heal_mis,
    run_self_healing,
)
from .plan import CRASH, FAULT_KINDS, RECOVER, STRAGGLE, FaultPlan, NodeFault
from .spec import (
    WRAPPERS,
    compose_faulty_spec,
    format_fault_grammar,
    parse_channel_spec,
    parse_fault_flags,
)

__all__ = [
    "AdversarialJammer",
    "CORRUPTED",
    "CRASH",
    "CorruptingChannel",
    "FAULT_KINDS",
    "FaultChannel",
    "FaultPlan",
    "HealReport",
    "HealingEpoch",
    "LossyChannel",
    "NodeFault",
    "RECOVER",
    "STRAGGLE",
    "SelfHealingResult",
    "WRAPPERS",
    "compose_faulty_spec",
    "format_fault_grammar",
    "heal_mis",
    "parse_channel_spec",
    "parse_fault_flags",
    "run_self_healing",
]
