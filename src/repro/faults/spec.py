"""Fault channel-spec grammar and the ``--faults`` CLI shorthand.

Grammar (chainable, innermost last)::

    spec     := wrapper ":" spec | base
    wrapper  := kind [ "(" params ")" ]
    kind     := "lossy" | "corrupt" | "jam"
    params   := key "=" value { "," key "=" value }
    base     := any registered channel name (CHANNELS)

Examples::

    lossy(drop=0.1,burst=0.02,seed=7):congest
    jam(rate=0.2,seed=5):broadcast
    jam(rounds=[3,5,9],fraction=0.5):broadcast-no-cd
    lossy(drop=0.05):corrupt(flip=0.01):congest

Values are parsed with :func:`ast.literal_eval` (so lists/tuples/floats
work) and fall back to bare strings; parameter validation itself lives in
the wrapper constructors, which raise ``ValueError`` with the offending
name and value.  :func:`repro.congest.channels.make_channel` dispatches
any unknown spec string containing ``(`` or ``:`` here, so every surface
that accepts a channel name (``Network(channel=)``, ``--channel``, sweep
task tuples) accepts the grammar for free.

The ``--faults`` flag is a flat ``key=value,...`` shorthand parsed by
:func:`parse_fault_flags`; channel-level keys compose wrappers around the
selected base channel and node-level keys (``crash``, ``straggle`` …)
build a random :class:`~repro.faults.plan.FaultPlan` once the graph is
known.
"""

from __future__ import annotations

import ast
import re
from typing import Any, Dict, List, Optional, Tuple

from ..congest.channels import CHANNELS, Channel, make_channel
from .channels import AdversarialJammer, CorruptingChannel, LossyChannel

__all__ = [
    "WRAPPERS",
    "compose_faulty_spec",
    "format_fault_grammar",
    "parse_channel_spec",
    "parse_fault_flags",
]

#: Registered wrapper kinds, keyed by the grammar head keyword.
WRAPPERS: Dict[str, type] = {
    LossyChannel.kind: LossyChannel,
    CorruptingChannel.kind: CorruptingChannel,
    AdversarialJammer.kind: AdversarialJammer,
}

_HEAD_RE = re.compile(r"^([A-Za-z][\w-]*)(?:\((.*)\))?$")

#: ``--faults`` keys that configure channel wrappers, mapped to
#: ``(wrapper kind, constructor kwarg)``.
_CHANNEL_KEYS = {
    "drop": ("lossy", "drop"),
    "burst": ("lossy", "burst"),
    "flip": ("corrupt", "flip"),
    "jam": ("jam", "rate"),
    "jam_fraction": ("jam", "fraction"),
    "jam_rounds": ("jam", "rounds"),
}

#: ``--faults`` keys forwarded to :meth:`FaultPlan.random` once the graph
#: (and hence the node set) exists.
_PLAN_KEYS = ("crash", "straggle", "recover_after", "straggle_duration", "horizon")


def _split_top_level(text: str, separator: str) -> List[str]:
    """Split on ``separator`` outside any (), [] or {} nesting."""
    parts: List[str] = []
    depth = 0
    start = 0
    for i, char in enumerate(text):
        if char in "([{":
            depth += 1
        elif char in ")]}":
            depth -= 1
            if depth < 0:
                raise ValueError(f"unbalanced brackets in spec {text!r}")
        elif char == separator and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    if depth != 0:
        raise ValueError(f"unbalanced brackets in spec {text!r}")
    parts.append(text[start:])
    return parts


def _parse_value(text: str) -> Any:
    text = text.strip()
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _parse_params(text: Optional[str], context: str) -> Dict[str, Any]:
    if not text or not text.strip():
        return {}
    params: Dict[str, Any] = {}
    for item in _split_top_level(text, ","):
        if not item.strip():
            continue
        key, sep, value = item.partition("=")
        if not sep or not key.strip():
            raise ValueError(
                f"malformed parameter {item.strip()!r} in {context!r}: "
                f"expected key=value"
            )
        params[key.strip()] = _parse_value(value)
    return params


def parse_channel_spec(spec: str) -> Channel:
    """Parse a compound fault-channel spec string into a channel instance.

    Raises ``ValueError`` for syntax errors, unknown wrapper/base names,
    and out-of-range wrapper parameters.
    """
    parts = _split_top_level(spec.strip(), ":")
    if any(not part.strip() for part in parts):
        raise ValueError(f"empty segment in channel spec {spec!r}")
    channel: Optional[Channel] = None
    # Build innermost (base) first.
    for depth, part in enumerate(reversed(parts)):
        part = part.strip()
        match = _HEAD_RE.match(part)
        if match is None:
            raise ValueError(f"malformed channel spec segment {part!r}")
        kind, params_text = match.group(1), match.group(2)
        if kind in WRAPPERS:
            params = _parse_params(params_text, part)
            try:
                channel = WRAPPERS[kind](channel, **params)
            except TypeError as exc:
                raise ValueError(f"bad parameters for {part!r}: {exc}") from None
        else:
            if depth != 0:
                raise ValueError(
                    f"base channel {kind!r} must be the last segment of "
                    f"{spec!r}"
                )
            if params_text is not None:
                raise ValueError(
                    f"base channel {kind!r} takes no parameters; known "
                    f"wrappers: {', '.join(sorted(WRAPPERS))}"
                )
            if kind not in CHANNELS:
                known = ", ".join(sorted(CHANNELS))
                raise ValueError(
                    f"unknown channel {kind!r}; known channels: {known}; "
                    f"known fault wrappers: {', '.join(sorted(WRAPPERS))}"
                )
            channel = make_channel(kind)
    assert channel is not None
    return channel


def parse_fault_flags(
    text: str,
) -> Tuple[Dict[str, Dict[str, Any]], Dict[str, Any]]:
    """Parse a ``--faults key=value,...`` string.

    Returns ``(wrapper_params, plan_params)`` where ``wrapper_params``
    maps wrapper kind -> constructor kwargs (to be composed around the
    base channel by :func:`compose_faulty_channel`) and ``plan_params``
    holds :meth:`FaultPlan.random` keyword arguments.  A shared ``seed``
    key seeds both layers.  Raises ``ValueError`` on unknown keys.
    """
    wrapper_params: Dict[str, Dict[str, Any]] = {}
    plan_params: Dict[str, Any] = {}
    seed: Optional[int] = None
    for item in _split_top_level(text, ","):
        if not item.strip():
            continue
        key, sep, value_text = item.partition("=")
        key = key.strip()
        if not sep:
            raise ValueError(f"malformed fault flag {item.strip()!r}: expected key=value")
        value = _parse_value(value_text)
        if key == "seed":
            seed = value
        elif key in _CHANNEL_KEYS:
            kind, kwarg = _CHANNEL_KEYS[key]
            wrapper_params.setdefault(kind, {})[kwarg] = value
        elif key in _PLAN_KEYS:
            # Validate eagerly: these otherwise only reach
            # FaultPlan.random once the graph exists, far past the CLI
            # boundary where a clean argparse error is still possible.
            if key in ("crash", "straggle"):
                if (
                    not isinstance(value, (int, float))
                    or not 0.0 <= float(value) <= 1.0
                ):
                    raise ValueError(
                        f"{key} must be a probability in [0, 1], got {value!r}"
                    )
            else:  # recover_after, straggle_duration, horizon
                if not isinstance(value, int) or value < 1:
                    raise ValueError(
                        f"{key} must be a positive integer, got {value!r}"
                    )
            plan_params[key] = value
        else:
            known = sorted({"seed", *_CHANNEL_KEYS, *_PLAN_KEYS})
            raise ValueError(
                f"unknown fault key {key!r}; known keys: {', '.join(known)}"
            )
    if seed is not None:
        for params in wrapper_params.values():
            params.setdefault("seed", seed)
        if plan_params:
            plan_params.setdefault("seed", seed)
    return wrapper_params, plan_params


def compose_faulty_spec(
    channel: Optional[str], wrapper_params: Dict[str, Dict[str, Any]]
) -> Optional[str]:
    """Compose a spec *string* wrapping ``channel`` with fault layers.

    Composition order is ``lossy(corrupt(jam(base)))``: the medium jams,
    reception corrupts, and loss is the outermost erasure.  The result is
    a plain string so it stays picklable inside ``parallel_map`` task
    tuples; validation happens when :func:`parse_channel_spec` builds it
    (callers should do so eagerly to surface errors at the CLI boundary).
    """
    if not wrapper_params:
        return channel
    segments = []
    for kind in ("lossy", "corrupt", "jam"):
        params = wrapper_params.get(kind)
        if params is not None:
            text = ",".join(
                f"{key}={repr(value).replace(' ', '')}"
                for key, value in sorted(params.items())
            )
            segments.append(f"{kind}({text})" if text else kind)
    base = channel or ("broadcast" if "jam" in wrapper_params else "congest")
    return ":".join(segments + [base])


def format_fault_grammar() -> str:
    """One-line grammar summary for CLI help text."""
    return (
        "wrapper[:wrapper...]:base with wrappers "
        + ", ".join(sorted(WRAPPERS))
        + " — e.g. lossy(drop=0.1,seed=7):congest or jam(rate=0.2):broadcast"
    )
