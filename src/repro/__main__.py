"""Top-level CLI: run any algorithm on any generated workload.

Examples::

    python -m repro --algorithm algorithm1 --family geometric --n 1000
    python -m repro --algorithm luby --family gnp_sqrt_degree --n 512 -v
    python -m repro --algorithm radio_decay --channel broadcast --n 256
    python -m repro --algorithm luby --seeds 20 --telemetry runs.jsonl
    python -m repro --algorithm algorithm1 --n 1000 --profile
    python -m repro --algorithm luby --faults drop=0.1,crash=0.05,seed=7
    python -m repro -a luby --seeds 50 -j 4 --checkpoint cp.jsonl --resume
    python -m repro report runs.jsonl
    python -m repro lint src/repro
    python -m repro lint --explain RL101
    python -m repro --list
    python -m repro dynamic --workload sensor_battery_decay -a algorithm1
    python -m repro dynamic --workload link_flap --strategy full_recompute
"""

from __future__ import annotations

import argparse
import sys
from time import perf_counter

from .analysis import verify_mis
from .congest import CHANNELS, ENGINE_MODES, set_engine_mode
from .graphs import FAMILIES, make_family
from .harness import ALGORITHMS, run_algorithm
from .obs import configure_logging, get_logger, set_telemetry_path

_log = get_logger("cli")


def _probability(text: str) -> float:
    """argparse type: a float in [0, 1]."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}")
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"probability must be in [0, 1], got {value}"
        )
    return value


def _non_negative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _jobs_count(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value != -1 and value < 1:
        raise argparse.ArgumentTypeError(
            f"jobs must be positive or -1 (all cores), got {value}"
        )
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _non_negative_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    """Per-task retry/timeout knobs shared by run-executing subcommands."""
    parser.add_argument(
        "--retries", type=_non_negative_int, default=None, metavar="K",
        help="retry each failed/timed-out task up to K more times "
             "(exponential backoff; default 0)",
    )
    parser.add_argument(
        "--task-timeout", type=_positive_float, default=None, metavar="SEC",
        help="per-task wall-clock budget in seconds (default: unlimited)",
    )


def _install_resilience(args) -> None:
    """Install --retries/--task-timeout as the module-wide defaults."""
    from .harness import set_default_resilience

    overrides = {}
    if args.retries is not None:
        overrides["retries"] = args.retries
    if getattr(args, "task_timeout", None) is not None:
        overrides["task_timeout"] = args.task_timeout
    if overrides:
        set_default_resilience(**overrides)


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    """The flags every subcommand shares: logging, telemetry, profiling."""
    parser.add_argument(
        "--verbose", "-v", action="count", default=0,
        help="diagnostics on stderr: -v progress, -vv per-cell detail "
             "(also enables extra result detail where noted)",
    )
    parser.add_argument(
        "--quiet", "-q", action="store_true",
        help="suppress all diagnostics below ERROR",
    )
    parser.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="append one JSONL record per completed run to PATH "
             "(streamed as runs finish; aggregate with 'repro report')",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="attach a wall-clock profiler and print the section tree",
    )


def _static_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Distributed MIS with Low Energy and Time "
            "Complexities' (PODC 2023): run an MIS algorithm on a generated "
            "graph and report time/energy. (See also: "
            "'python -m repro dynamic --help' for churn workloads.)"
        ),
    )
    parser.add_argument(
        "--algorithm", "-a", default="algorithm1",
        help=f"one of {sorted(ALGORITHMS)}",
    )
    parser.add_argument(
        "--family", "-f", default="gnp_log_degree",
        help=f"one of {sorted(FAMILIES)}",
    )
    parser.add_argument("--n", "-n", type=_positive_int, default=512)
    parser.add_argument("--seed", "-s", type=_non_negative_int, default=0)
    parser.add_argument(
        "--arrays", action="store_true",
        help=(
            "build the graph as a CSR-native GraphArrays instead of a "
            "networkx Graph (skips per-edge dict adjacency; the only "
            "practical route at n >= 10^6). Array-native families sample "
            "edges directly into arrays; others convert after generation."
        ),
    )
    parser.add_argument(
        "--channel", "-c", default=None, metavar="CHANNEL",
        help=(
            f"delivery model, one of {sorted(CHANNELS)} or a fault-wrapper "
            "spec like 'lossy(drop=0.1):congest' "
            "(default: the algorithm's own, CONGEST for most)"
        ),
    )
    parser.add_argument(
        "--faults", default=None, metavar="KEY=VAL,...",
        help=(
            "inject faults: channel keys drop/burst/flip/jam/jam_fraction/"
            "jam_rounds wrap --channel; node keys crash/straggle/"
            "recover_after/straggle_duration/horizon build a crash plan; "
            "seed applies to both (e.g. 'drop=0.1,crash=0.05,seed=7')"
        ),
    )
    parser.add_argument(
        "--engine", default="auto", choices=list(ENGINE_MODES),
        help=(
            "engine path: auto (vectorized dense rounds when the program "
            "declares the capability), fast (cached loop only), legacy "
            "(naive per-round loop), or vectorized (require the "
            "vectorized path; error if it cannot engage)"
        ),
    )
    parser.add_argument(
        "--seeds", type=_positive_int, default=1, metavar="K",
        help="run K seeds (seed, seed+1, ...) and report per-seed + mean",
    )
    parser.add_argument(
        "--jobs", "-j", type=_jobs_count, default=1, metavar="N",
        help="worker processes for multi-seed runs (-1 = all cores)",
    )
    _add_resilience_flags(parser)
    parser.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="record each finished multi-seed task to PATH (JSONL); with "
             "--resume, skip tasks already recorded there",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint instead of truncating it",
    )
    _add_observability_flags(parser)
    parser.add_argument(
        "--list", action="store_true", help="list algorithms and families"
    )
    args = parser.parse_args(argv)
    configure_logging(verbose=args.verbose, quiet=args.quiet)

    if args.list:
        from .dynamic import WORKLOADS

        print("algorithms:", ", ".join(sorted(ALGORITHMS)))
        print("families:  ", ", ".join(sorted(FAMILIES)))
        print("workloads: ", ", ".join(sorted(WORKLOADS)), "(via 'dynamic')")
        return 0

    if args.resume and not args.checkpoint:
        parser.error("--resume requires --checkpoint PATH")

    fault_wrappers, fault_plan_params = {}, {}
    if args.faults:
        from .faults import parse_fault_flags

        try:
            fault_wrappers, fault_plan_params = parse_fault_flags(args.faults)
        except ValueError as error:
            parser.error(str(error))
    channel = args.channel
    if fault_wrappers:
        from .faults import compose_faulty_spec

        channel = compose_faulty_spec(channel, fault_wrappers)
    if channel is not None:
        from .congest import make_channel

        try:
            make_channel(channel)
        except (KeyError, ValueError) as error:
            parser.error(str(error))
        # Delegate to the isinstance-based check so every broadcast
        # variant (broadcast, broadcast-no-cd, fault-wrapped ones, future
        # variants) gets the clean argparse error, not a traceback later.
        from .harness.runner import _check_radio_safety

        try:
            _check_radio_safety(args.algorithm, channel)
        except ValueError as error:
            parser.error(str(error))

    set_engine_mode(args.engine)
    set_telemetry_path(args.telemetry)
    _install_resilience(args)

    if args.seeds > 1:
        if args.arrays:
            parser.error(
                "--arrays applies to single-seed runs; multi-seed workers "
                "regenerate graphs from task tuples"
            )
        return _static_multi_seed(args, channel, fault_plan_params)

    _log.info(
        "running %s on %s n=%d seed=%d (engine=%s)",
        args.algorithm, args.family, args.n, args.seed, args.engine,
    )
    graph = make_family(
        args.family, args.n, seed=args.seed, as_arrays=args.arrays
    )
    faults = None
    if fault_plan_params:
        from .faults import FaultPlan

        faults = FaultPlan.random(graph.nodes, **fault_plan_params)
        _log.info(
            "fault plan: %d node events (%s)",
            len(faults.events), ", ".join(sorted(faults.kinds())) or "none",
        )
    started = perf_counter()
    result = run_algorithm(
        args.algorithm, graph, seed=args.seed, channel=channel,
        profile=args.profile, faults=faults,
    )
    elapsed = perf_counter() - started
    _log.info("run finished in %.3fs", elapsed)
    report = verify_mis(graph, result.mis)
    from .harness import emit_static_record

    emit_static_record(
        args.algorithm, graph, args.seed, channel, result, report,
        elapsed, extra={"family": args.family},
    )

    print(f"graph:        {args.family}, n={graph.number_of_nodes()}, "
          f"m={graph.number_of_edges()}")
    channel_name = channel or result.details.get("channel", "congest")
    print(f"algorithm:    {result.algorithm} (channel: {channel_name})")
    print(f"|MIS|:        {len(result.mis)}")
    print(f"rounds:       {result.rounds}")
    print(f"max energy:   {result.max_energy}")
    print(f"avg energy:   {result.average_energy:.2f}")
    if result.metrics.collisions:
        print(f"collisions:   {result.metrics.collisions} "
              f"(billed to the energy ledger)")
    print(f"independent:  {report.independent}")
    print(f"maximal:      {report.maximal}")
    if args.verbose and result.metrics.phases:
        print("phases:")
        for name, phase in result.metrics.phases.items():
            print(f"  {name:10s} rounds={phase.rounds:6d} "
                  f"max_energy={phase.max_energy:5d} "
                  f"avg_energy={phase.average_energy:7.2f}")
    if args.profile:
        from .obs import render_profile

        print(render_profile(result.details["profile"]))
    return 0 if report.independent else 2


def _static_multi_seed(args, channel, fault_plan_params) -> int:
    """Run one algorithm across several seeds (optionally in parallel)."""
    from .harness import measure_many

    if args.profile:
        _log.warning("--profile profiles a single run; ignored with --seeds")
    seeds = list(range(args.seed, args.seed + args.seeds))
    _log.info(
        "measuring %s on %s n=%d, %d seeds, jobs=%s%s",
        args.algorithm, args.family, args.n, args.seeds, args.jobs,
        f", streaming telemetry to {args.telemetry}" if args.telemetry else "",
    )
    tasks = [
        (args.algorithm, args.family, args.n, seed, channel)
        + ((fault_plan_params,) if fault_plan_params else ())
        for seed in seeds
    ]
    checkpoint = None
    if args.checkpoint:
        from .harness import SweepCheckpoint

        checkpoint = SweepCheckpoint(args.checkpoint, resume=args.resume)
    # Engine mode is ambient (not part of the task tuple), so it must be
    # re-installed inside each worker — spawn-started pools inherit
    # nothing from the parent's set_engine_mode call.
    outcomes = measure_many(
        tasks, n_jobs=args.jobs, checkpoint=checkpoint,
        initializer=set_engine_mode, initargs=(args.engine,),
    )

    print(f"graph:     {args.family}, n={args.n}")
    print(f"algorithm: {args.algorithm}, seeds {seeds[0]}..{seeds[-1]}, "
          f"jobs={args.jobs}")
    keys = ["rounds", "max_energy", "average_energy", "mis_size",
            "independent", "maximal"]
    header = f"{'seed':>6} " + " ".join(f"{key:>14}" for key in keys)
    print(header)
    for seed, outcome in zip(seeds, outcomes):
        if outcome is None:
            print(f"{seed:>6} " + " ".join(f"{'FAILED':>14}" for _ in keys))
        else:
            print(f"{seed:>6} "
                  + " ".join(f"{outcome[key]:>14.2f}" for key in keys))
    completed = [outcome for outcome in outcomes if outcome is not None]
    if not completed:
        _log.error("every task failed; see the checkpoint manifest")
        return 1
    if len(completed) < len(outcomes) and checkpoint is not None:
        _log.warning(
            "%d/%d tasks failed permanently; manifest in %s",
            len(outcomes) - len(completed), len(outcomes), checkpoint.path,
        )
    means = {
        key: sum(outcome[key] for outcome in completed) / len(completed)
        for key in keys
    }
    print(f"{'mean':>6} " + " ".join(f"{means[key]:>14.2f}" for key in keys))
    return 0 if means["independent"] == 1.0 else 2


def _dynamic_main(argv) -> int:
    from .dynamic import STRATEGIES, WORKLOADS
    from .harness import run_dynamic_workload

    parser = argparse.ArgumentParser(
        prog="repro dynamic",
        description=(
            "Maintain an MIS across a churn timeline: apply batched "
            "topology updates, repair the independent set, verify the "
            "invariant after every epoch, and report lifetime time/energy."
        ),
    )
    parser.add_argument(
        "--workload", "-w", default="sensor_battery_decay",
        choices=sorted(WORKLOADS), metavar="WORKLOAD",
        help=f"one of {sorted(WORKLOADS)}",
    )
    parser.add_argument(
        "--algorithm", "-a", default="algorithm1",
        choices=sorted(ALGORITHMS), metavar="ALGORITHM",
        help=f"one of {sorted(ALGORITHMS)}",
    )
    parser.add_argument(
        "--strategy", default="incremental",
        choices=list(STRATEGIES),
        help="repair only the invalidated region, or re-elect from scratch",
    )
    parser.add_argument("--n", "-n", type=_positive_int, default=200)
    parser.add_argument("--epochs", "-e", type=_positive_int, default=10)
    parser.add_argument("--seed", "-s", type=_non_negative_int, default=0)
    parser.add_argument(
        "--rate", type=_non_negative_float, default=1.0, metavar="R",
        help="churn-rate multiplier (scales events per epoch)",
    )
    parser.add_argument(
        "--seeds", type=_positive_int, default=1, metavar="K",
        help="run K seeds (seed, seed+1, ...) and report summary means",
    )
    parser.add_argument(
        "--jobs", "-j", type=_jobs_count, default=1, metavar="N",
        help="worker processes for multi-seed runs (-1 = all cores)",
    )
    _add_resilience_flags(parser)
    _add_observability_flags(parser)
    parser.add_argument(
        "--list", action="store_true", help="list workloads and strategies"
    )
    args = parser.parse_args(argv)
    configure_logging(verbose=args.verbose, quiet=args.quiet)
    set_telemetry_path(args.telemetry)
    _install_resilience(args)

    if args.list:
        print("workloads: ", ", ".join(sorted(WORKLOADS)))
        for name, workload in sorted(WORKLOADS.items()):
            print(f"  {name}: {workload.description}")
        print("strategies:", ", ".join(STRATEGIES))
        return 0

    if args.seeds > 1:
        from .harness import measure_dynamic_many

        if args.profile:
            _log.warning(
                "--profile profiles a single run; ignored with --seeds"
            )
        seeds = list(range(args.seed, args.seed + args.seeds))
        _log.info(
            "measuring %s/%s n=%d epochs=%d, %d seeds, jobs=%s",
            args.workload, args.algorithm, args.n, args.epochs, args.seeds,
            args.jobs,
        )
        tasks = [
            (args.workload, args.algorithm, args.strategy, args.n,
             args.epochs, seed, args.rate)
            for seed in seeds
        ]
        summaries = measure_dynamic_many(tasks, n_jobs=args.jobs)
        print(f"workload:  {args.workload}, n={args.n}, epochs={args.epochs}")
        print(f"algorithm: {args.algorithm} ({args.strategy}), "
              f"seeds {seeds[0]}..{seeds[-1]}, jobs={args.jobs}")
        keys = sorted(summaries[0])
        for key in keys:
            values = [summary[key] for summary in summaries]
            print(f"  {key:20s} mean={sum(values) / len(values):10.2f} "
                  f"min={min(values):10.2f} max={max(values):10.2f}")
        all_valid = all(summary["all_valid"] == 1.0 for summary in summaries)
        return 0 if all_valid else 2

    _log.info(
        "maintaining MIS across %s (n=%d, epochs=%d, strategy=%s)",
        args.workload, args.n, args.epochs, args.strategy,
    )
    profiler = None
    if args.profile:
        from .obs import Profiler

        profiler = Profiler()
    from .obs import instrument_scope

    # Record (rather than raise on) invariant violations so a failed
    # w.h.p. run reports cleanly through the exit code below.
    started = perf_counter()
    with instrument_scope(profiler):
        result = run_dynamic_workload(
            args.workload,
            args.algorithm,
            strategy=args.strategy,
            n=args.n,
            epochs=args.epochs,
            seed=args.seed,
            rate=args.rate,
            check_invariant=False,
        )
    elapsed = perf_counter() - started
    from .harness import emit_dynamic_record

    emit_dynamic_record(
        args.workload, args.algorithm, args.strategy, args.n, args.epochs,
        args.seed, args.rate, result.summary(), elapsed,
    )

    print(f"workload:           {args.workload}, n={args.n}, "
          f"epochs={args.epochs}")
    print(f"algorithm:          {result.algorithm} ({result.strategy})")
    final = result.epochs[-1]
    print(f"final topology:     n={final.nodes}, m={final.edges}, "
          f"|MIS|={final.mis_size}")
    print(f"total rounds:       {result.total_rounds}")
    print(f"cumulative energy:  {result.cumulative_energy}")
    print(f"max energy:         {result.max_energy}")
    print(f"avg energy:         {result.average_energy:.2f}")
    print(f"repair region (Σ):  {result.total_repair_region}")
    print(f"MIS churn (Σ):      {result.total_mis_churn}")
    print(f"invariant held:     {result.all_valid}")
    if args.verbose:
        print("timeline:")
        print(f"  {'epoch':>5} {'events':>6} {'nodes':>6} {'|MIS|':>6} "
              f"{'repair':>6} {'rounds':>6} {'energy':>7} {'churn':>6}")
        for row in result.epochs:
            print(f"  {row.epoch:>5} {row.events:>6} {row.nodes:>6} "
                  f"{row.mis_size:>6} {row.repair_region:>6} "
                  f"{row.rounds:>6} {row.energy:>7} {row.mis_churn:>6}")
    if profiler is not None:
        from .obs import render_profile

        print(render_profile(profiler.as_dict()))
    return 0 if result.all_valid else 2


def _report_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro report",
        description=(
            "Aggregate a telemetry JSONL stream (written via --telemetry) "
            "into per-configuration summary tables. Works on finished and "
            "in-flight streams alike: a partially-written final line is "
            "counted and skipped, so this doubles as a live progress view."
        ),
    )
    parser.add_argument("path", help="telemetry JSONL file to aggregate")
    parser.add_argument(
        "--max-keys", type=int, default=None, metavar="K",
        help="show at most K metrics per group (default: all)",
    )
    parser.add_argument(
        "--verbose", "-v", action="count", default=0,
        help="diagnostics on stderr",
    )
    parser.add_argument(
        "--quiet", "-q", action="store_true",
        help="suppress all diagnostics below ERROR",
    )
    args = parser.parse_args(argv)
    configure_logging(verbose=args.verbose, quiet=args.quiet)
    # Imported here, not at module top: the report loader pulls in the
    # analysis package, which plain runs never need.
    from .obs import report

    try:
        print(report.report_file(args.path, max_keys=args.max_keys))
    except OSError as error:
        _log.error("cannot read %s: %s", args.path, error)
        return 1
    return 0


def _lint_main(argv) -> int:
    # Imported here, not at module top: the analyzer is pure stdlib-ast
    # tooling that plain runs never need.
    from .lint.cli import main as lint_main

    return lint_main(argv)


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "dynamic":
        return _dynamic_main(argv[1:])
    if argv and argv[0] == "report":
        return _report_main(argv[1:])
    if argv and argv[0] == "lint":
        return _lint_main(argv[1:])
    return _static_main(argv)


if __name__ == "__main__":
    sys.exit(main())
