"""Top-level CLI: run any algorithm on any generated workload.

Examples::

    python -m repro --algorithm algorithm1 --family geometric --n 1000
    python -m repro --algorithm luby --family gnp_sqrt_degree --n 512 -v
    python -m repro --list
"""

from __future__ import annotations

import argparse
import sys

from .analysis import verify_mis
from .graphs import FAMILIES, make_family
from .harness import ALGORITHMS, run_algorithm


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Distributed MIS with Low Energy and Time "
            "Complexities' (PODC 2023): run an MIS algorithm on a generated "
            "graph and report time/energy."
        ),
    )
    parser.add_argument(
        "--algorithm", "-a", default="algorithm1",
        help=f"one of {sorted(ALGORITHMS)}",
    )
    parser.add_argument(
        "--family", "-f", default="gnp_log_degree",
        help=f"one of {sorted(FAMILIES)}",
    )
    parser.add_argument("--n", "-n", type=int, default=512)
    parser.add_argument("--seed", "-s", type=int, default=0)
    parser.add_argument(
        "--verbose", "-v", action="store_true",
        help="print the per-phase breakdown",
    )
    parser.add_argument(
        "--list", action="store_true", help="list algorithms and families"
    )
    args = parser.parse_args(argv)

    if args.list:
        print("algorithms:", ", ".join(sorted(ALGORITHMS)))
        print("families:  ", ", ".join(sorted(FAMILIES)))
        return 0

    graph = make_family(args.family, args.n, seed=args.seed)
    result = run_algorithm(args.algorithm, graph, seed=args.seed)
    report = verify_mis(graph, result.mis)

    print(f"graph:        {args.family}, n={graph.number_of_nodes()}, "
          f"m={graph.number_of_edges()}")
    print(f"algorithm:    {result.algorithm}")
    print(f"|MIS|:        {len(result.mis)}")
    print(f"rounds:       {result.rounds}")
    print(f"max energy:   {result.max_energy}")
    print(f"avg energy:   {result.average_energy:.2f}")
    print(f"independent:  {report.independent}")
    print(f"maximal:      {report.maximal}")
    if args.verbose and result.metrics.phases:
        print("phases:")
        for name, phase in result.metrics.phases.items():
            print(f"  {name:10s} rounds={phase.rounds:6d} "
                  f"max_energy={phase.max_energy:5d} "
                  f"avg_energy={phase.average_energy:7.2f}")
    return 0 if report.independent else 2


if __name__ == "__main__":
    sys.exit(main())
