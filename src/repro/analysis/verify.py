"""Verification of independent sets and MIS outputs.

The paper's algorithms always output an independent set; maximality holds
with high probability. The verifier distinguishes the two so experiments can
report failure *rates* for the probabilistic part (experiment E11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

import networkx as nx


@dataclass
class MISReport:
    """Outcome of verifying a candidate MIS."""

    independent: bool
    maximal: bool
    conflicting_edges: List[Tuple[int, int]] = field(default_factory=list)
    uncovered_nodes: List[int] = field(default_factory=list)

    @property
    def valid(self) -> bool:
        return self.independent and self.maximal


def is_independent_set(graph: nx.Graph, candidate: Set[int]) -> bool:
    """True iff no two candidate nodes are adjacent."""
    return not _conflicting_edges(graph, candidate, limit=1)


def _conflicting_edges(graph: nx.Graph, candidate: Set[int], limit=None):
    conflicts = []
    for node in candidate:
        if node not in graph:
            raise KeyError(f"candidate node {node} not in graph")
        for neighbor in graph.neighbors(node):
            if neighbor in candidate and node < neighbor:
                conflicts.append((node, neighbor))
                if limit is not None and len(conflicts) >= limit:
                    return conflicts
    return conflicts


def uncovered_nodes(graph: nx.Graph, candidate: Set[int]) -> List[int]:
    """Nodes that are neither in the candidate set nor adjacent to it."""
    uncovered = []
    for node in graph.nodes:
        if node in candidate:
            continue
        if not any(neighbor in candidate for neighbor in graph.neighbors(node)):
            uncovered.append(node)
    return uncovered


def is_maximal_independent_set(graph: nx.Graph, candidate: Set[int]) -> bool:
    """True iff the candidate is independent and dominates every node."""
    return (
        is_independent_set(graph, candidate)
        and not uncovered_nodes(graph, candidate)
    )


def verify_mis(graph: nx.Graph, candidate: Set[int]) -> MISReport:
    """Full report: independence violations and uncovered nodes."""
    conflicts = _conflicting_edges(graph, candidate)
    uncovered = uncovered_nodes(graph, candidate)
    return MISReport(
        independent=not conflicts,
        maximal=not conflicts and not uncovered,
        conflicting_edges=conflicts,
        uncovered_nodes=uncovered,
    )


def greedy_completion(graph: nx.Graph, candidate: Set[int]) -> Set[int]:
    """Extend an independent set to a maximal one greedily (by node id).

    Useful for measuring how far a probabilistic output was from maximality.
    Raises if the candidate is not independent.
    """
    if not is_independent_set(graph, candidate):
        raise ValueError("cannot complete a non-independent set")
    completed = set(candidate)
    blocked = set(candidate)
    for node in candidate:
        blocked.update(graph.neighbors(node))
    for node in sorted(graph.nodes):
        if node not in blocked:
            completed.add(node)
            blocked.add(node)
            blocked.update(graph.neighbors(node))
    return completed
