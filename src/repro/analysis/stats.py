"""Trial aggregation for multi-seed experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence


@dataclass
class Summary:
    """Five-number-ish summary of one measured quantity across trials."""

    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    count: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "Summary":
        if not values:
            raise ValueError("cannot summarize an empty sequence")
        ordered = sorted(float(v) for v in values)
        count = len(ordered)
        mean = sum(ordered) / count
        variance = sum((v - mean) ** 2 for v in ordered) / count
        mid = count // 2
        if count % 2 == 1:
            median = ordered[mid]
        else:
            median = 0.5 * (ordered[mid - 1] + ordered[mid])
        return cls(
            mean=mean,
            std=math.sqrt(variance),
            minimum=ordered[0],
            maximum=ordered[-1],
            median=median,
            count=count,
        )


def aggregate_trials(
    trials: Iterable[Mapping[str, float]]
) -> Dict[str, Summary]:
    """Aggregate a list of per-trial metric dicts into per-key summaries.

    All trials must expose the same keys; this catches accidental metric
    drift between seeds.
    """
    collected: Dict[str, List[float]] = {}
    expected_keys = None
    for trial in trials:
        keys = set(trial.keys())
        if expected_keys is None:
            expected_keys = keys
        elif keys != expected_keys:
            raise ValueError(
                f"inconsistent trial keys: {sorted(keys)} vs {sorted(expected_keys)}"
            )
        for key, value in trial.items():
            collected.setdefault(key, []).append(float(value))
    if not collected:
        raise ValueError("no trials to aggregate")
    return {key: Summary.of(values) for key, values in collected.items()}


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (values must be positive)."""
    if not values:
        raise ValueError("cannot average an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean needs positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
