"""Trial aggregation for multi-seed experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence


@dataclass
class Summary:
    """Five-number-ish summary of one measured quantity across trials."""

    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    count: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "Summary":
        if not values:
            raise ValueError("cannot summarize an empty sequence")
        ordered = sorted(float(v) for v in values)
        count = len(ordered)
        mean = sum(ordered) / count
        variance = sum((v - mean) ** 2 for v in ordered) / count
        mid = count // 2
        if count % 2 == 1:
            median = ordered[mid]
        else:
            median = 0.5 * (ordered[mid - 1] + ordered[mid])
        return cls(
            mean=mean,
            std=math.sqrt(variance),
            minimum=ordered[0],
            maximum=ordered[-1],
            median=median,
            count=count,
        )


def aggregate_trials(
    trials: Iterable[Mapping[str, float]]
) -> Dict[str, Summary]:
    """Aggregate a list of per-trial metric dicts into per-key summaries.

    All trials must expose the same keys; this catches accidental metric
    drift between seeds.
    """
    collected: Dict[str, List[float]] = {}
    expected_keys = None
    for trial in trials:
        keys = set(trial.keys())
        if expected_keys is None:
            expected_keys = keys
        elif keys != expected_keys:
            raise ValueError(
                f"inconsistent trial keys: {sorted(keys)} vs {sorted(expected_keys)}"
            )
        for key, value in trial.items():
            collected.setdefault(key, []).append(float(value))
    if not collected:
        raise ValueError("no trials to aggregate")
    return {key: Summary.of(values) for key, values in collected.items()}


class RunningStat:
    """Incremental (streaming) aggregation of one measured quantity.

    Welford's algorithm: one observation at a time, O(1) memory, no stored
    sample list — the aggregation primitive for telemetry streams that are
    still being written (``repro report`` folds a JSONL file through these
    without materializing the trials). ``summary()`` produces the same
    :class:`Summary` shape batch aggregation yields, except that the
    median — which a one-pass stream cannot compute exactly — is reported
    as the mean.
    """

    __slots__ = ("count", "mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def std(self) -> float:
        """Population standard deviation (matches :meth:`Summary.of`)."""
        return math.sqrt(self._m2 / self.count) if self.count else 0.0

    def summary(self) -> Summary:
        if not self.count:
            raise ValueError("cannot summarize an empty stream")
        return Summary(
            mean=self.mean,
            std=self.std,
            minimum=self.minimum,
            maximum=self.maximum,
            median=self.mean,
            count=self.count,
        )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (values must be positive)."""
    if not values:
        raise ValueError("cannot average an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean needs positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
