"""Complexity functions and scaling-shape fits.

The experiments do not try to match the paper's constants (our substrate is
a simulator); they check the *shape* of growth: Luby's energy grows like
``log n`` while Algorithm 1's grows like ``log log n``, etc. This module
provides the reference curves and a small least-squares fitter that reports
which curve explains a measured series best.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Sequence

import numpy as np


def log2_safe(x: float) -> float:
    """log2 clamped below at 1 so iterated logs stay defined and positive."""
    return math.log2(max(2.0, float(x)))


def loglog(x: float) -> float:
    """log2 log2 x, clamped to stay >= 1."""
    return max(1.0, math.log2(max(2.0, log2_safe(x))))


def log_star(x: float) -> int:
    """Iterated logarithm base 2: steps of log2 until the value drops to <= 1."""
    if x <= 1:
        return 0
    count = 0
    value = float(x)
    while value > 1.0:
        value = math.log2(value)
        count += 1
        if count > 64:  # unreachable for finite inputs; guard anyway
            break
    return count


# ----------------------------------------------------------------------
# Reference complexity curves (as functions of n)
# ----------------------------------------------------------------------
def luby_time(n: float) -> float:
    return log2_safe(n)


def luby_energy(n: float) -> float:
    return log2_safe(n)


def algorithm1_time(n: float) -> float:
    return log2_safe(n) ** 2


def algorithm1_energy(n: float) -> float:
    return loglog(n)


def algorithm2_time(n: float) -> float:
    return log2_safe(n) * loglog(n) * max(1, log_star(n))


def algorithm2_energy(n: float) -> float:
    return loglog(n) ** 2


# ----------------------------------------------------------------------
# Shape fitting
# ----------------------------------------------------------------------
MODELS: Dict[str, Callable[[float], float]] = {
    "const": lambda n: 1.0,
    "loglog": loglog,
    "loglog_sq": lambda n: loglog(n) ** 2,
    "log": log2_safe,
    "log_times_loglog": lambda n: log2_safe(n) * loglog(n),
    "log_sq": lambda n: log2_safe(n) ** 2,
    "sqrt": lambda n: math.sqrt(max(1.0, n)),
    "linear": lambda n: float(n),
}


@dataclass
class FitResult:
    """Least-squares fit of ``y ≈ scale * f(x) + offset``."""

    model: str
    scale: float
    offset: float
    r_squared: float
    residual: float

    def predict(self, x: float) -> float:
        return self.scale * MODELS[self.model](x) + self.offset


def fit_model(
    xs: Sequence[float], ys: Sequence[float], model: str
) -> FitResult:
    """Fit one named model by ordinary least squares."""
    if model not in MODELS:
        raise KeyError(f"unknown model {model!r}; have {sorted(MODELS)}")
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) pairs of equal length")
    feature = np.array([MODELS[model](x) for x in xs], dtype=float)
    target = np.array(ys, dtype=float)
    design = np.column_stack([feature, np.ones_like(feature)])
    coeffs, _, _, _ = np.linalg.lstsq(design, target, rcond=None)
    prediction = design @ coeffs
    residual = float(np.sum((target - prediction) ** 2))
    total = float(np.sum((target - target.mean()) ** 2))
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return FitResult(
        model=model,
        scale=float(coeffs[0]),
        offset=float(coeffs[1]),
        r_squared=r_squared,
        residual=residual,
    )


def best_model(
    xs: Sequence[float],
    ys: Sequence[float],
    candidates: Iterable[str] = ("const", "loglog", "loglog_sq", "log", "log_sq"),
) -> FitResult:
    """Return the candidate model with the smallest residual.

    Near-ties (e.g., a constant series fits every model with ~zero residual
    once scaled to zero) resolve toward the earlier candidate, so list
    candidates from slowest-growing to fastest.
    """
    fits = [fit_model(xs, ys, name) for name in candidates]
    smallest = min(fit.residual for fit in fits)
    tolerance = 1e-9 * (1.0 + smallest) + 1e-12
    for fit in fits:
        if fit.residual <= smallest + tolerance:
            return fit
    return fits[0]  # unreachable; appeases static analysis


def growth_ratio(
    xs: Sequence[float], ys: Sequence[float]
) -> float:
    """Ratio y_last / y_first — a crude but model-free growth signal."""
    if len(ys) < 2:
        raise ValueError("need at least two points")
    first = ys[0] if ys[0] != 0 else 1.0
    return ys[-1] / first
