"""Terminal plotting: ASCII scatter/line charts for experiment reports.

No plotting dependency is available offline, so the harness renders its
series as ASCII charts — good enough to see a log curve bend away from a
loglog one.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Optional, Sequence, Tuple

_MARKERS = "ox+*#@%&"


def ascii_chart(
    serieses: Mapping[str, Mapping[float, float]],
    *,
    width: int = 64,
    height: int = 16,
    log_x: bool = True,
    title: Optional[str] = None,
) -> str:
    """Render one or more ``{x: y}`` series as an ASCII chart.

    ``log_x`` spaces the x axis logarithmically (natural for n sweeps).
    Each series gets a marker; a legend is appended.
    """
    if not serieses:
        raise ValueError("nothing to plot")
    points: List[Tuple[float, float, int]] = []
    names = list(serieses)
    for index, name in enumerate(names):
        series = serieses[name]
        if not series:
            raise ValueError(f"series {name!r} is empty")
        for x, y in series.items():
            points.append((float(x), float(y), index))
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if log_x and min(xs) <= 0:
        raise ValueError("log_x requires positive x values")

    def x_pos(x: float) -> float:
        if log_x:
            lo, hi = math.log(min(xs)), math.log(max(xs))
            value = math.log(x)
        else:
            lo, hi = min(xs), max(xs)
            value = x
        if hi == lo:
            return 0.0
        return (value - lo) / (hi - lo)

    y_lo, y_hi = min(ys), max(ys)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, index in points:
        column = min(width - 1, int(round(x_pos(x) * (width - 1))))
        row = min(
            height - 1,
            int(round((1.0 - (y - y_lo) / (y_hi - y_lo)) * (height - 1))),
        )
        marker = _MARKERS[index % len(_MARKERS)]
        grid[row][column] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:.6g}"
    bottom_label = f"{y_lo:.6g}"
    label_width = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label.rjust(label_width)
        elif row_index == height - 1:
            label = bottom_label.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    x_left = f"{min(xs):.6g}"
    x_right = f"{max(xs):.6g}"
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    gap = max(1, width - len(x_left) - len(x_right))
    lines.append(
        " " * (label_width + 2) + x_left + " " * gap + x_right
        + ("  (log x)" if log_x else "")
    )
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(names)
    )
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """A one-line sparkline (8 levels) of a numeric series."""
    if not values:
        raise ValueError("nothing to sparkle")
    blocks = "▁▂▃▄▅▆▇█"
    data = list(values)
    if width is not None and width > 0 and len(data) > width:
        # Downsample by bucket means.
        buckets = []
        for column in range(width):
            low = column * len(data) // width
            high = max(low + 1, (column + 1) * len(data) // width)
            chunk = data[low:high]
            buckets.append(sum(chunk) / len(chunk))
        data = buckets
    lo, hi = min(data), max(data)
    if hi == lo:
        return blocks[0] * len(data)
    return "".join(
        blocks[min(7, int((v - lo) / (hi - lo) * 7.999))] for v in data
    )
