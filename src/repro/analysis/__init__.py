"""Verification, complexity curves, and trial statistics."""

from .complexity import (
    MODELS,
    FitResult,
    algorithm1_energy,
    algorithm1_time,
    algorithm2_energy,
    algorithm2_time,
    best_model,
    fit_model,
    growth_ratio,
    log2_safe,
    log_star,
    loglog,
    luby_energy,
    luby_time,
)
from .plotting import ascii_chart, sparkline
from .stats import RunningStat, Summary, aggregate_trials, geometric_mean
from .verify import (
    MISReport,
    greedy_completion,
    is_independent_set,
    is_maximal_independent_set,
    uncovered_nodes,
    verify_mis,
)

__all__ = [
    "MODELS",
    "FitResult",
    "MISReport",
    "RunningStat",
    "Summary",
    "aggregate_trials",
    "algorithm1_energy",
    "algorithm1_time",
    "algorithm2_energy",
    "algorithm2_time",
    "ascii_chart",
    "best_model",
    "fit_model",
    "geometric_mean",
    "greedy_completion",
    "growth_ratio",
    "is_independent_set",
    "is_maximal_independent_set",
    "log2_safe",
    "log_star",
    "loglog",
    "luby_energy",
    "luby_time",
    "sparkline",
    "uncovered_nodes",
    "verify_mis",
]
