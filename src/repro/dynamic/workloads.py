"""Named end-to-end churn scenarios (the dynamic ``graphs.FAMILIES``).

Each workload bundles an initial topology with a matching churn-event
timeline, so a whole dynamic experiment is one name::

    graph, timeline = make_workload("sensor_battery_decay", n=200, epochs=10)
    result = run_dynamic(graph, timeline, "algorithm1")

Scenarios
---------
``sensor_battery_decay``
    Geometric sensor field; ~1% of nodes exhaust their battery per epoch.
    The paper's motivating deployment.
``link_flap``
    Geometric field with Poisson radio-link flapping around the initial
    topology (interference, weather, mobility at the fringe).
``growth``
    A small bootstrap network that keeps provisioning new radios, each
    attaching to a couple of in-range predecessors.
``adversarial_hubs``
    Heavy-tailed (preferential-attachment) network under targeted
    highest-degree deletion — the worst case for local repair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import networkx as nx

from ..graphs import generators
from .events import (
    Epoch,
    adversarial_hub_deletion,
    battery_deaths,
    node_growth,
    poisson_link_flaps,
)

WorkloadFactory = Callable[
    [int, int, int, float], Tuple[nx.Graph, List[Epoch]]
]


@dataclass(frozen=True)
class DynamicWorkload:
    """A named (initial graph, churn timeline) recipe."""

    name: str
    description: str
    factory: WorkloadFactory

    def build(
        self, n: int = 200, epochs: int = 10, seed: int = 0,
        rate: float = 1.0,
    ) -> Tuple[nx.Graph, List[Epoch]]:
        if n < 1:
            raise ValueError(f"workload size must be positive, got n={n}")
        if epochs < 0:
            raise ValueError(f"epochs must be non-negative, got {epochs}")
        if rate <= 0:
            raise ValueError(f"churn rate must be positive, got {rate}")
        return self.factory(n, epochs, seed, rate)


def _sensor_battery_decay(n, epochs, seed, rate=1.0):
    graph = generators.random_geometric(n, seed=seed)
    deaths = max(1, round(rate * max(1, n // 100)))
    return graph, battery_deaths(
        graph, epochs, deaths_per_epoch=deaths, seed=seed + 1
    )


def _link_flap(n, epochs, seed, rate=1.0):
    graph = generators.random_geometric(n, seed=seed)
    flap_rate = rate * max(2.0, graph.number_of_edges() / 50.0)
    return graph, poisson_link_flaps(
        graph, epochs, rate=flap_rate, seed=seed + 1
    )


def _growth(n, epochs, seed, rate=1.0):
    bootstrap = max(2, n // 4)
    graph = generators.random_geometric(bootstrap, seed=seed)
    joins = max(1, round(rate * max(1, (n - bootstrap) // max(1, epochs))))
    return graph, node_growth(
        graph, epochs, joins_per_epoch=joins, attachments=2, seed=seed + 1
    )


def _adversarial_hubs(n, epochs, seed, rate=1.0):
    graph = generators.barabasi_albert(n, 3, seed=seed)
    return graph, adversarial_hub_deletion(
        graph, epochs, hubs_per_epoch=max(1, round(rate))
    )


WORKLOADS: Dict[str, DynamicWorkload] = {
    workload.name: workload
    for workload in (
        DynamicWorkload(
            "sensor_battery_decay",
            "geometric sensor field, ~1%/epoch battery deaths",
            _sensor_battery_decay,
        ),
        DynamicWorkload(
            "link_flap",
            "geometric field, Poisson radio-link flapping",
            _link_flap,
        ),
        DynamicWorkload(
            "growth",
            "bootstrap network provisioning new radios every epoch",
            _growth,
        ),
        DynamicWorkload(
            "adversarial_hubs",
            "preferential-attachment graph under targeted hub deletion",
            _adversarial_hubs,
        ),
    )
}


def make_workload(
    name: str, n: int = 200, epochs: int = 10, seed: int = 0,
    rate: float = 1.0,
) -> Tuple[nx.Graph, List[Epoch]]:
    """Instantiate a registered workload by name.

    ``rate`` scales the churn intensity (events per epoch) around each
    scenario's default of 1.0, which is what energy-vs-churn-rate curves
    sweep.
    """
    if name not in WORKLOADS:
        raise KeyError(
            f"unknown dynamic workload {name!r}; have {sorted(WORKLOADS)}"
        )
    return WORKLOADS[name].build(n=n, epochs=epochs, seed=seed, rate=rate)
