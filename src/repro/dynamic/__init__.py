"""Dynamic-network subsystem: MIS maintenance under churn.

The static algorithms elect a coordinator backbone once; real battery-
powered deployments then watch it erode — nodes die, radios join, links
flap. This package simulates seeded timelines of such topology updates
(:mod:`~repro.dynamic.events`), repairs the MIS incrementally on the
invalidated region only (:mod:`~repro.dynamic.maintainer`), drives and
verifies whole timelines (:mod:`~repro.dynamic.simulator`), and names
ready-made end-to-end scenarios (:mod:`~repro.dynamic.workloads`)::

    from repro.dynamic import make_workload, run_dynamic
    graph, timeline = make_workload("sensor_battery_decay", n=200, epochs=10)
    result = run_dynamic(graph, timeline, "algorithm1")
    print(result.cumulative_energy, result.all_valid)
"""

from .events import (
    EDGE_ADD,
    EDGE_REMOVE,
    NODE_ADD,
    NODE_REMOVE,
    GraphEvent,
    adversarial_hub_deletion,
    apply_epoch,
    apply_event,
    battery_deaths,
    edge_churn,
    node_growth,
    poisson_link_flaps,
    touched_nodes,
)
from .maintainer import (
    FULL_RECOMPUTE,
    INCREMENTAL,
    STRATEGIES,
    MISMaintainer,
    RepairReport,
)
from .simulator import (
    DynamicRunResult,
    EpochResult,
    MISInvariantError,
    run_dynamic,
)
from .workloads import WORKLOADS, DynamicWorkload, make_workload

__all__ = [
    "EDGE_ADD",
    "EDGE_REMOVE",
    "FULL_RECOMPUTE",
    "INCREMENTAL",
    "NODE_ADD",
    "NODE_REMOVE",
    "STRATEGIES",
    "WORKLOADS",
    "DynamicRunResult",
    "DynamicWorkload",
    "EpochResult",
    "GraphEvent",
    "MISInvariantError",
    "MISMaintainer",
    "RepairReport",
    "adversarial_hub_deletion",
    "apply_epoch",
    "apply_event",
    "battery_deaths",
    "edge_churn",
    "make_workload",
    "node_growth",
    "poisson_link_flaps",
    "run_dynamic",
    "touched_nodes",
]
