"""Seeded, deterministic churn-event streams for dynamic-network runs.

The paper's motivating deployments (battery-powered radio/sensor networks,
Section 1) are never static: sensors exhaust their batteries, new radios are
provisioned, and wireless links flap with interference. This module models
those topology changes as discrete :class:`GraphEvent`\\ s delivered in
batches ("epochs"), matching the synchronized-batch dynamic-network model:
all events of an epoch are applied atomically, then the MIS is repaired.

Every generator is deterministic in its ``seed`` and *consistent*: it
simulates the evolving topology internally, so each emitted event is valid
at the moment it is applied (no deleting absent edges, no double-adds).

Event kinds
-----------
``EDGE_ADD(u, v)``     a link appears between two existing nodes;
``EDGE_REMOVE(u, v)``  an existing link disappears;
``NODE_ADD(u)``        a new isolated node joins (attachments arrive as
                       ``EDGE_ADD`` events in the same epoch);
``NODE_REMOVE(u)``     a node leaves, dropping all incident edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..congest.vectorized import invalidate_graph_arrays

EDGE_ADD = "edge_add"
EDGE_REMOVE = "edge_remove"
NODE_ADD = "node_add"
NODE_REMOVE = "node_remove"

_KINDS = frozenset({EDGE_ADD, EDGE_REMOVE, NODE_ADD, NODE_REMOVE})


@dataclass(frozen=True)
class GraphEvent:
    """One atomic topology update."""

    kind: str
    u: int
    v: Optional[int] = None

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")
        if self.kind in (EDGE_ADD, EDGE_REMOVE):
            if self.v is None:
                raise ValueError(f"{self.kind} needs two endpoints")
            if self.u == self.v:
                raise ValueError("self-loops are not allowed")
        elif self.v is not None:
            raise ValueError(f"{self.kind} takes a single node")

    @property
    def endpoints(self) -> Tuple[int, ...]:
        return (self.u,) if self.v is None else (self.u, self.v)


Epoch = List[GraphEvent]


def apply_event(graph: nx.Graph, event: GraphEvent) -> None:
    """Apply one event to ``graph`` in place, validating preconditions.

    Every mutation explicitly drops any cached
    :class:`~repro.congest.vectorized.GraphArrays` CSR snapshot of the
    graph — relying on networkx's own cache clearing would silently
    resurrect stale adjacency on versions (or graph subclasses) that skip
    it, and a stale CSR makes vectorized rounds disagree with the mutated
    topology.
    """
    _apply_event(graph, event)
    invalidate_graph_arrays(graph)


def _apply_event(graph: nx.Graph, event: GraphEvent) -> None:
    if event.kind == EDGE_ADD:
        if event.u not in graph or event.v not in graph:
            raise KeyError(f"edge endpoints missing from graph: {event}")
        if graph.has_edge(event.u, event.v):
            raise ValueError(f"edge already present: {event}")
        graph.add_edge(event.u, event.v)
    elif event.kind == EDGE_REMOVE:
        if not graph.has_edge(event.u, event.v):
            raise ValueError(f"edge not present: {event}")
        graph.remove_edge(event.u, event.v)
    elif event.kind == NODE_ADD:
        if event.u in graph:
            raise ValueError(f"node already present: {event}")
        graph.add_node(event.u)
    else:  # NODE_REMOVE
        if event.u not in graph:
            raise KeyError(f"node not present: {event}")
        graph.remove_node(event.u)


def apply_epoch(graph: nx.Graph, epoch: Sequence[GraphEvent]) -> None:
    """Apply one batch of events in order."""
    for event in epoch:
        apply_event(graph, event)


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence(seed))


def _sample_absent_edge(graph, nodes, rng, tries: int = 64):
    """One uniform-ish absent edge among ``nodes``, or None."""
    if len(nodes) < 2:
        return None
    for _ in range(tries):
        u, v = rng.choice(len(nodes), size=2, replace=False)
        u, v = nodes[int(u)], nodes[int(v)]
        if not graph.has_edge(u, v):
            return (u, v) if u < v else (v, u)
    return None


class _EdgeList:
    """Present edges as an O(1)-sample, O(1)-update list (deterministic).

    Rebuilding ``sorted(graph.edges)`` per flip is quadratic in m; this
    keeps a stable list updated by append/swap-pop instead, so generating
    a timeline stays linear in the number of events.
    """

    def __init__(self, graph: nx.Graph):
        self.edges = sorted(tuple(sorted(edge)) for edge in graph.edges)
        self.index = {edge: i for i, edge in enumerate(self.edges)}

    def __len__(self):
        return len(self.edges)

    def sample(self, rng) -> Tuple[int, int]:
        return self.edges[int(rng.integers(len(self.edges)))]

    def add(self, edge: Tuple[int, int]) -> None:
        self.index[edge] = len(self.edges)
        self.edges.append(edge)

    def discard(self, edge: Tuple[int, int]) -> None:
        slot = self.index.pop(edge)
        last = self.edges.pop()
        if last != edge:
            self.edges[slot] = last
            self.index[last] = slot


def edge_churn(
    graph: nx.Graph,
    epochs: int,
    flips_per_epoch: int = 4,
    seed: int = 0,
) -> List[Epoch]:
    """Uniform link churn: each epoch toggles ``flips_per_epoch`` links.

    Each flip is a fair coin between inserting a currently-absent edge and
    deleting a currently-present one (degrading gracefully when the graph is
    empty or complete).
    """
    if epochs < 0 or flips_per_epoch < 0:
        raise ValueError("epochs and flips_per_epoch must be non-negative")
    rng = _rng(seed)
    work = graph.copy()
    nodes = sorted(work.nodes)
    present = _EdgeList(work)
    timeline: List[Epoch] = []
    for _ in range(epochs):
        batch: Epoch = []
        for _ in range(flips_per_epoch):
            want_add = bool(rng.integers(2)) or not present
            if want_add:
                pair = _sample_absent_edge(work, nodes, rng)
                if pair is None:
                    continue
                event = GraphEvent(EDGE_ADD, *pair)
                present.add(pair)
            else:
                u, v = present.sample(rng)
                event = GraphEvent(EDGE_REMOVE, u, v)
                present.discard((u, v))
            apply_event(work, event)
            batch.append(event)
        timeline.append(batch)
    return timeline


def poisson_link_flaps(
    graph: nx.Graph,
    epochs: int,
    rate: float = 3.0,
    seed: int = 0,
) -> List[Epoch]:
    """Interference-style link flapping: Poisson(``rate``) toggles per epoch.

    A flap picks a *present* edge and drops it, or re-inserts a previously
    dropped edge (so long-run topology hovers around the initial one, the
    classic "flapping radio link" behavior).
    """
    if epochs < 0 or rate < 0:
        raise ValueError("epochs and rate must be non-negative")
    rng = _rng(seed)
    work = graph.copy()
    present = _EdgeList(work)
    down: List[Tuple[int, int]] = []  # edges currently flapped out
    timeline: List[Epoch] = []
    for _ in range(epochs):
        batch: Epoch = []
        for _ in range(int(rng.poisson(rate))):
            revive = down and bool(rng.integers(2))
            if not revive and not present:
                revive = bool(down)
            if revive:
                u, v = down.pop(int(rng.integers(len(down))))
                event = GraphEvent(EDGE_ADD, u, v)
                present.add((u, v))
            else:
                if not present:
                    continue
                u, v = present.sample(rng)
                event = GraphEvent(EDGE_REMOVE, u, v)
                present.discard((u, v))
                down.append((u, v))
            apply_event(work, event)
            batch.append(event)
        timeline.append(batch)
    return timeline


def battery_deaths(
    graph: nx.Graph,
    epochs: int,
    deaths_per_epoch: int = 2,
    seed: int = 0,
) -> List[Epoch]:
    """Battery-exhaustion churn: random alive nodes die each epoch.

    Models the sensor-network failure mode the paper's energy measure is
    built for — nodes stop participating once their battery empties, and the
    coordinator backbone must be repaired around the holes.
    """
    if epochs < 0 or deaths_per_epoch < 0:
        raise ValueError("epochs and deaths_per_epoch must be non-negative")
    rng = _rng(seed)
    alive = sorted(graph.nodes)
    timeline: List[Epoch] = []
    for _ in range(epochs):
        batch: Epoch = []
        kills = min(deaths_per_epoch, max(0, len(alive) - 1))
        for _ in range(kills):
            victim = alive.pop(int(rng.integers(len(alive))))
            batch.append(GraphEvent(NODE_REMOVE, victim))
        timeline.append(batch)
    return timeline


def node_growth(
    graph: nx.Graph,
    epochs: int,
    joins_per_epoch: int = 2,
    attachments: int = 2,
    seed: int = 0,
) -> List[Epoch]:
    """Provisioning churn: new nodes join, each wiring to random old nodes.

    Fresh ids continue past the current maximum so they never collide.
    Every join emits one ``NODE_ADD`` plus up to ``attachments``
    ``EDGE_ADD`` events in the same epoch.
    """
    if epochs < 0 or joins_per_epoch < 0 or attachments < 0:
        raise ValueError("growth parameters must be non-negative")
    rng = _rng(seed)
    population = sorted(graph.nodes)
    next_id = (max(population) + 1) if population else 0
    timeline: List[Epoch] = []
    for _ in range(epochs):
        batch: Epoch = []
        for _ in range(joins_per_epoch):
            newcomer = next_id
            next_id += 1
            batch.append(GraphEvent(NODE_ADD, newcomer))
            if population:
                k = min(attachments, len(population))
                picks = rng.choice(len(population), size=k, replace=False)
                for index in sorted(int(i) for i in picks):
                    batch.append(
                        GraphEvent(EDGE_ADD, population[index], newcomer)
                    )
            population.append(newcomer)
        timeline.append(batch)
    return timeline


def adversarial_hub_deletion(
    graph: nx.Graph,
    epochs: int,
    hubs_per_epoch: int = 1,
) -> List[Epoch]:
    """Targeted attack: delete the highest-degree surviving node(s) each epoch.

    Deterministic (ties broken by node id). On heavy-tailed graphs
    (``barabasi_albert``) this maximizes the repair region per event, the
    worst case for incremental maintenance.
    """
    if epochs < 0 or hubs_per_epoch < 0:
        raise ValueError("epochs and hubs_per_epoch must be non-negative")
    work = graph.copy()
    timeline: List[Epoch] = []
    for _ in range(epochs):
        batch: Epoch = []
        for _ in range(hubs_per_epoch):
            if work.number_of_nodes() <= 1:
                break
            hub = max(sorted(work.nodes), key=lambda v: (work.degree(v), -v))
            event = GraphEvent(NODE_REMOVE, hub)
            apply_event(work, event)
            batch.append(event)
        timeline.append(batch)
    return timeline


def touched_nodes(epoch: Iterable[GraphEvent]) -> List[int]:
    """All node ids named by an epoch's events (sorted, deduplicated)."""
    seen = set()
    for event in epoch:
        seen.update(event.endpoints)
    return sorted(seen)
