"""Incremental MIS repair across topology updates.

The repair rule is the locality argument behind all dynamic-MIS work
(e.g. Assadi et al., STOC 2018): after a batch of updates, the old MIS can
only be invalid *near* the update sites. Concretely:

* a new edge inside the MIS creates a **conflict** — both endpoints are
  dropped and re-decided;
* a deleted edge, a deleted MIS node, or a dropped conflict endpoint can
  leave nodes **uncovered** — and every such node is within one hop of an
  update site or of a dropped MIS node.

So the maintainer wakes only the ≤2-hop neighborhood of the update sites
(the "probe" region), collects the uncovered nodes ``A``, and re-runs a
registered MIS algorithm **on the induced subgraph** ``G[A]`` with the
shared :class:`~repro.congest.metrics.EnergyLedger`. Because no node of
``A`` has a surviving-MIS neighbor, the union of the old survivors with the
freshly elected set is independent, and maximal whenever the sub-run is.

A ``full_recompute`` strategy (throw the MIS away, re-run on the whole
graph) provides the from-scratch baseline the energy comparison is measured
against; both strategies charge the same ledger, so cumulative per-node
totals are directly comparable across a whole timeline.
"""

from __future__ import annotations

import hashlib
import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Optional, Sequence, Set

import networkx as nx

from ..congest.metrics import EnergyLedger
from ..result import MISResult
from .events import NODE_ADD, NODE_REMOVE, GraphEvent, apply_event

INCREMENTAL = "incremental"
FULL_RECOMPUTE = "full_recompute"
STRATEGIES = (INCREMENTAL, FULL_RECOMPUTE)

def _epoch_seed(seed: int, epoch: int) -> int:
    """Independent per-epoch sub-seed, explicit and platform-stable.

    The (seed, epoch) pair is hashed through SHA-256 over a fixed text
    encoding — no ``hash()`` (which is salted per process for str/bytes
    and implementation-defined), no word-size-dependent arithmetic — so
    the same master seed reproduces the same repair sequence on every
    platform, python version, and process.  The digest is folded into the
    non-negative int32 range every registered algorithm accepts.
    """
    digest = hashlib.sha256(
        f"repro.dynamic.epoch:{seed}:{epoch}".encode("ascii")
    ).digest()
    return int.from_bytes(digest[:8], "big") % (2**31 - 1)


@dataclass
class RepairReport:
    """Accounting for one epoch of maintenance (or the initial election)."""

    epoch: int
    strategy: str
    events: int
    repair_region: int  #: nodes the MIS algorithm actually re-ran on
    probed: int  #: nodes woken to re-check the invariant locally
    dropped: int  #: old MIS members lost to conflicts or departures
    rounds: int  #: clock rounds this epoch (probe + repair run)
    energy: int  #: awake-rounds charged to the shared ledger this epoch
    mis_churn: int  #: ``|MIS_t symdiff MIS_{t-1}|``
    recomputed: bool  #: True when the whole graph was re-elected


class MISMaintainer:
    """Maintain a valid MIS of an evolving graph under batched churn.

    The constructor runs the initial election (epoch 0); afterwards
    :meth:`apply_epoch` keeps the invariant across each batch of events.

    Parameters
    ----------
    graph:
        Initial topology (copied; the maintainer owns its evolution).
    algorithm:
        A registered algorithm name (see ``repro.harness.ALGORITHMS``) or
        any callable ``fn(graph, seed=..., ledger=...) -> MISResult``.
    strategy:
        ``"incremental"`` (repair only the invalidated region) or
        ``"full_recompute"`` (re-elect from scratch every epoch).
    seed:
        Master seed; epochs derive independent sub-seeds.
    ledger:
        Optional shared :class:`EnergyLedger`; one is created over the
        initial nodes otherwise. Nodes that join later are added with zero
        history; nodes that leave keep their spent energy on the books, so
        ledger totals are true lifetime costs.
    algorithm_kwargs:
        Extra keyword arguments forwarded to every algorithm invocation
        (e.g. ``config=AlgorithmConfig(...)``).
    """

    def __init__(
        self,
        graph: nx.Graph,
        algorithm: Any = "algorithm1",
        *,
        strategy: str = INCREMENTAL,
        seed: int = 0,
        ledger: Optional[EnergyLedger] = None,
        algorithm_kwargs: Optional[Dict[str, Any]] = None,
    ):
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; have {list(STRATEGIES)}"
            )
        if graph.number_of_nodes() == 0:
            raise ValueError("MISMaintainer needs a non-empty initial graph")
        self.graph = graph.copy()
        self.algorithm_name, self._algorithm = _resolve_algorithm(algorithm)
        self.strategy = strategy
        self.seed = seed
        self.ledger = ledger if ledger is not None else EnergyLedger(self.graph.nodes)
        self.ledger.ensure_nodes(self.graph.nodes)
        self.algorithm_kwargs = dict(algorithm_kwargs or {})
        self._accepts_size_bound = _accepts_kwarg(self._algorithm, "size_bound")
        self.mis: Set[int] = set()
        self.epoch = 0
        self.total_rounds = 0
        self.initial = self._elect_all(events=0)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def apply_epoch(self, epoch: Sequence[GraphEvent]) -> RepairReport:
        """Apply one batch of events and repair the MIS. Returns accounting."""
        self.epoch += 1
        if self.strategy == FULL_RECOMPUTE:
            self._apply_events(epoch)
            return self._elect_all(events=len(epoch))
        return self._repair_incremental(epoch)

    def run_timeline(self, epochs: Iterable[Sequence[GraphEvent]]):
        """Apply every epoch in order; yields one :class:`RepairReport` each."""
        for batch in epochs:
            yield self.apply_epoch(batch)

    # ------------------------------------------------------------------
    # strategies
    # ------------------------------------------------------------------
    def _elect_all(self, events: int) -> RepairReport:
        """Throw the current MIS away and re-elect over the whole graph."""
        old_mis = set(self.mis)
        before = self.ledger.total_energy()
        n = self.graph.number_of_nodes()
        rounds = 0
        if n:
            result = self._run_algorithm(self.graph, self.epoch)
            self.mis = set(result.mis)
            rounds = result.rounds
        else:
            self.mis = set()
        self.total_rounds += rounds
        return RepairReport(
            epoch=self.epoch,
            strategy=self.strategy,
            events=events,
            repair_region=n,
            probed=n,
            dropped=len(old_mis - self.mis),
            rounds=rounds,
            energy=self.ledger.total_energy() - before,
            mis_churn=len(old_mis ^ self.mis),
            recomputed=True,
        )

    def _repair_incremental(self, epoch: Sequence[GraphEvent]) -> RepairReport:
        old_mis = set(self.mis)
        before = self.ledger.total_energy()
        touched = self._apply_events(epoch)

        # Conflict resolution: a new edge may join two MIS members. Drop
        # every conflicted member (they re-compete in the repair run) and
        # wake their neighborhoods, which may have lost their dominator.
        conflicted = {
            node
            for node in touched & self.mis
            if any(nb in self.mis for nb in self.graph.neighbors(node))
        }
        if conflicted:
            self.mis -= conflicted
            touched |= conflicted
            for node in conflicted:
                touched.update(self.graph.neighbors(node))

        # Probe region: update sites plus their immediate neighbors — the
        # only nodes whose covered/uncovered status can have changed.
        probe = set(touched)
        for node in touched:
            probe.update(self.graph.neighbors(node))
        if probe:
            self.ledger.charge_many(probe, 1)

        uncovered = {
            node
            for node in probe
            if node not in self.mis
            and not any(nb in self.mis for nb in self.graph.neighbors(node))
        }

        rounds = 1 if epoch else 0  # the probe round
        if uncovered:
            region = self.graph.subgraph(uncovered).copy()
            result = self._run_algorithm(region, self.epoch)
            self.mis |= result.mis
            rounds += result.rounds
        self.total_rounds += rounds
        return RepairReport(
            epoch=self.epoch,
            strategy=self.strategy,
            events=len(epoch),
            repair_region=len(uncovered),
            probed=len(probe),
            dropped=len(old_mis - self.mis),
            rounds=rounds,
            energy=self.ledger.total_energy() - before,
            mis_churn=len(old_mis ^ self.mis),
            recomputed=False,
        )

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _apply_events(self, epoch: Sequence[GraphEvent]) -> Set[int]:
        """Mutate the graph; return surviving nodes adjacent to any update."""
        touched: Set[int] = set()
        for event in epoch:
            if event.kind == NODE_REMOVE and event.u in self.graph:
                # Capture the doomed node's neighbors before they lose it.
                touched.update(self.graph.neighbors(event.u))
            apply_event(self.graph, event)
            if event.kind == NODE_ADD:
                self.ledger.ensure_nodes([event.u])
            elif event.kind == NODE_REMOVE:
                self.mis.discard(event.u)
            touched.update(event.endpoints)
        return {node for node in touched if node in self.graph}

    def _run_algorithm(self, graph: nx.Graph, epoch: int) -> MISResult:
        kwargs: Dict[str, Any] = dict(self.algorithm_kwargs)
        kwargs.setdefault("ledger", self.ledger)
        if self._accepts_size_bound:
            # Round/energy schedules should scale with the *deployment* size,
            # not the (much smaller) repair region, as a real network would.
            kwargs.setdefault("size_bound", self.graph.number_of_nodes())
        return self._algorithm(
            graph, seed=_epoch_seed(self.seed, epoch), **kwargs
        )


def _resolve_algorithm(algorithm: Any):
    """Accept a registry name or a bare callable."""
    if callable(algorithm):
        name = getattr(algorithm, "__name__", str(algorithm))
        return name, algorithm
    from ..harness.runner import ALGORITHMS  # local import: avoids a cycle

    if algorithm not in ALGORITHMS:
        raise KeyError(
            f"unknown algorithm {algorithm!r}; have {sorted(ALGORITHMS)}"
        )
    return algorithm, ALGORITHMS[algorithm]


def _accepts_kwarg(fn: Callable, name: str) -> bool:
    try:
        parameters = inspect.signature(fn).parameters
    except (TypeError, ValueError):  # builtins / C callables
        return False
    if name in parameters:
        return True
    return any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )
