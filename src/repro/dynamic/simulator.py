"""Timeline driver: apply churn epochs, repair the MIS, verify, account.

This is the dynamic analogue of :func:`repro.harness.run_algorithm` — one
call runs a whole churn timeline and returns a :class:`DynamicRunResult`
with per-epoch accounting (repair-region size, rounds, energy, MIS churn)
plus lifetime aggregates read off the shared energy ledger.

The simulator re-verifies the MIS invariant on the **full** graph after
every epoch with :func:`repro.analysis.verify_mis` — the maintainer only
ever looks at local neighborhoods, so this is a genuine end-to-end check,
not a restatement of the repair rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import networkx as nx

from ..analysis import verify_mis
from ..congest.metrics import EnergyLedger
from ..obs import current_instrument
from .events import GraphEvent
from .maintainer import INCREMENTAL, MISMaintainer, RepairReport


class MISInvariantError(AssertionError):
    """The maintained set stopped being a valid MIS after some epoch."""


@dataclass
class EpochResult:
    """One row of the timeline: topology, cost, and stability after an epoch."""

    epoch: int
    events: int
    nodes: int
    edges: int
    mis_size: int
    repair_region: int
    probed: int
    rounds: int
    energy: int
    cumulative_rounds: int
    cumulative_energy: int
    mis_churn: int
    independent: bool
    maximal: bool
    verified: bool = True

    @property
    def valid(self) -> bool:
        return self.independent and self.maximal


@dataclass
class DynamicRunResult:
    """Outcome of maintaining an MIS across a whole churn timeline."""

    algorithm: str
    strategy: str
    seed: int
    epochs: List[EpochResult] = field(default_factory=list)
    ledger_snapshot: Dict[int, int] = field(default_factory=dict)

    @property
    def total_rounds(self) -> int:
        return self.epochs[-1].cumulative_rounds if self.epochs else 0

    @property
    def cumulative_energy(self) -> int:
        """Lifetime awake-rounds summed over every node ever deployed."""
        return sum(self.ledger_snapshot.values())

    @property
    def max_energy(self) -> int:
        """Lifetime energy complexity: max awake-rounds over all nodes."""
        return max(self.ledger_snapshot.values(), default=0)

    @property
    def average_energy(self) -> float:
        """Lifetime node-averaged energy (Section 4's measure, cumulative)."""
        if not self.ledger_snapshot:
            return 0.0
        return self.cumulative_energy / len(self.ledger_snapshot)

    @property
    def total_mis_churn(self) -> int:
        """Set-change volume of the backbone, excluding the initial election."""
        return sum(row.mis_churn for row in self.epochs[1:])

    @property
    def total_repair_region(self) -> int:
        return sum(row.repair_region for row in self.epochs[1:])

    @property
    def all_valid(self) -> bool:
        return all(row.valid for row in self.epochs)

    def summary(self) -> Dict[str, float]:
        """Flat numbers for tables/benchmarks (mirrors ``harness.measure``)."""
        return {
            "epochs": float(max(0, len(self.epochs) - 1)),
            "total_rounds": float(self.total_rounds),
            "cumulative_energy": float(self.cumulative_energy),
            "max_energy": float(self.max_energy),
            "average_energy": float(self.average_energy),
            "total_repair_region": float(self.total_repair_region),
            "total_mis_churn": float(self.total_mis_churn),
            "all_valid": 1.0 if self.all_valid else 0.0,
        }


def run_dynamic(
    graph: nx.Graph,
    timeline: Sequence[Sequence[GraphEvent]],
    algorithm: Any = "algorithm1",
    *,
    strategy: str = INCREMENTAL,
    seed: int = 0,
    check_invariant: bool = True,
    verify_every: int = 1,
    ledger: Optional[EnergyLedger] = None,
    algorithm_kwargs: Optional[Dict[str, Any]] = None,
) -> DynamicRunResult:
    """Maintain an MIS of ``graph`` across ``timeline`` and account every epoch.

    Epoch 0 of the result is the initial election on the starting topology;
    epoch ``i >= 1`` covers ``timeline[i-1]``. With ``check_invariant`` (the
    default) a broken invariant raises :class:`MISInvariantError`
    immediately; otherwise the failure is recorded in the per-epoch flags
    and the run continues.

    ``verify_every`` is a performance knob for long timelines: the full-graph
    :func:`verify_mis` check (O(n + m) per epoch, easily dominating cheap
    incremental repairs) runs only every ``verify_every``-th epoch, plus
    always on the first and last. Skipped epochs are marked
    ``verified=False`` and count as valid; the default of 1 keeps the
    original verify-everything behavior.
    """
    if verify_every < 1:
        raise ValueError(f"verify_every must be >= 1, got {verify_every}")
    maintainer = MISMaintainer(
        graph,
        algorithm,
        strategy=strategy,
        seed=seed,
        ledger=ledger,
        algorithm_kwargs=algorithm_kwargs,
    )
    result = DynamicRunResult(
        algorithm=maintainer.algorithm_name,
        strategy=maintainer.strategy,
        seed=seed,
    )
    total_epochs = len(timeline) + 1
    _record(result, maintainer, maintainer.initial, check_invariant,
            verify=True)
    for index, batch in enumerate(timeline, start=1):
        report = maintainer.apply_epoch(batch)
        verify = index % verify_every == 0 or index == total_epochs - 1
        _record(result, maintainer, report, check_invariant, verify=verify)
    result.ledger_snapshot = maintainer.ledger.snapshot()
    return result


def _record(
    result: DynamicRunResult,
    maintainer: MISMaintainer,
    report: RepairReport,
    check_invariant: bool,
    verify: bool = True,
) -> None:
    graph = maintainer.graph
    if not verify:
        independent = maximal = True
    elif graph.number_of_nodes():
        verdict = verify_mis(graph, maintainer.mis)
        independent, maximal = verdict.independent, verdict.maximal
    else:
        independent = maximal = not maintainer.mis
    if verify and check_invariant and not (independent and maximal):
        raise MISInvariantError(
            f"epoch {report.epoch} ({maintainer.strategy}/"
            f"{maintainer.algorithm_name}): independent={independent}, "
            f"maximal={maximal}"
        )
    previous = result.epochs[-1] if result.epochs else None
    result.epochs.append(
        EpochResult(
            epoch=report.epoch,
            events=report.events,
            nodes=graph.number_of_nodes(),
            edges=graph.number_of_edges(),
            mis_size=len(maintainer.mis),
            repair_region=report.repair_region,
            probed=report.probed,
            rounds=report.rounds,
            energy=report.energy,
            cumulative_rounds=(previous.cumulative_rounds if previous else 0)
            + report.rounds,
            cumulative_energy=(previous.cumulative_energy if previous else 0)
            + report.energy,
            mis_churn=report.mis_churn,
            independent=independent,
            maximal=maximal,
            verified=verify,
        )
    )
    current_instrument().on_epoch(result.epochs[-1])
