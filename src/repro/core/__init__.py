"""The paper's algorithms: phases, compositions, and the Section 4 extension."""

from .algorithm1 import algorithm1
from .algorithm2 import algorithm2
from .average_energy import (
    algorithm1_constant_average_energy,
    algorithm2_constant_average_energy,
    run_lemma42,
    run_sparsify,
)
from .config import DEFAULT_CONFIG, AlgorithmConfig
from .phase1_alg1 import Phase1Alg1Program, run_phase1_alg1
from .phase1_alg2 import (
    Phase1Alg2Program,
    run_lemma31_iteration,
    run_phase1_alg2,
)
from .phase2 import Phase2Result, ball_carving, run_phase2
from .phase3 import run_phase3
from .phase_result import PhaseResult

__all__ = [
    "AlgorithmConfig",
    "DEFAULT_CONFIG",
    "Phase1Alg1Program",
    "Phase1Alg2Program",
    "Phase2Result",
    "PhaseResult",
    "algorithm1",
    "algorithm1_constant_average_energy",
    "algorithm2",
    "algorithm2_constant_average_energy",
    "ball_carving",
    "run_lemma31_iteration",
    "run_lemma42",
    "run_phase1_alg1",
    "run_phase1_alg2",
    "run_phase2",
    "run_phase3",
    "run_sparsify",
]
