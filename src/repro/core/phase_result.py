"""Shared result container for the individual phases."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Set

from ..congest.metrics import RunMetrics


@dataclass
class PhaseResult:
    """Output of one phase of a multi-phase MIS algorithm.

    Attributes
    ----------
    joined:
        Nodes this phase added to the independent set.
    dominated:
        Nodes removed because a neighbor joined (in this phase).
    remaining:
        Nodes still undecided after the phase (the next phase's input).
    metrics:
        Time/energy accounting for this phase alone.
    details:
        Phase-specific extras (residual degree, component stats, ...).
    """

    joined: Set[int]
    dominated: Set[int]
    remaining: Set[int]
    metrics: RunMetrics
    details: Dict[str, Any] = field(default_factory=dict)

    def check_partition(self, nodes: Set[int]) -> None:
        """Sanity: joined/dominated/remaining partition the phase's input."""
        union = self.joined | self.dominated | self.remaining
        if union != set(nodes):
            raise ValueError("phase outputs do not cover the input nodes")
        if self.joined & self.dominated or self.joined & self.remaining:
            raise ValueError("joined overlaps dominated/remaining")
        if self.dominated & self.remaining:
            raise ValueError("dominated overlaps remaining")
