"""Algorithm 1 (Theorem 1.1): MIS in ``O(log² n)`` time and
``O(log log n)`` energy.

Composition of the three phases exactly as in Section 2.4:

1. Phase I (Lemma 2.1) — regularized Luby with one-shot marking and awake
   schedules; leaves a residual graph of maximum degree ``O(log² n)``.
2. Phase II (Lemma 2.6) — Ghaffari-2016 shattering on the residual graph
   (all nodes awake; affordable because the degree is now polylog), plus
   clustering of the undecided residue.
3. Phase III (Lemma 2.7) — per shattered component: cluster merging into a
   spanning tree, ``Θ(log n)`` parallel 1-bit MIS executions, and
   convergecast selection of a successful one.

The union of the three joined sets is an MIS of the input w.h.p.; it is an
independent set unconditionally. One shared :class:`EnergyLedger` threads
through all phases, so the reported energy is the true per-node total.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from ..congest import EnergyLedger, channel_scope
from ..congest.metrics import RunMetrics
from ..obs import current_instrument, section_scope
from ..result import MISResult
from .config import DEFAULT_CONFIG, AlgorithmConfig
from .phase1_alg1 import run_phase1_alg1
from .phase2 import run_phase2
from .phase3 import _derive_seed, run_phase3


def algorithm1(
    graph: nx.Graph,
    seed: int = 0,
    *,
    config: AlgorithmConfig = DEFAULT_CONFIG,
    ledger: Optional[EnergyLedger] = None,
    size_bound: Optional[int] = None,
    channel=None,
) -> MISResult:
    """Compute an MIS of ``graph`` with Algorithm 1 of the paper.

    Parameters
    ----------
    graph:
        Undirected input graph (any hashable, comparable node ids).
    seed:
        Master seed; phases derive independent sub-seeds from it.
    config:
        Constant-scaling knobs (see :class:`AlgorithmConfig`).
    size_bound:
        The ``n`` the round/energy schedules scale with; defaults to the
        graph's size. Pass the deployment size when running on a subgraph
        (e.g. dynamic repair regions) so schedules stay network-scaled.
    channel:
        Channel spec threaded (via :func:`repro.congest.channel_scope`)
        through every network the three phases build; default CONGEST.

    Returns
    -------
    MISResult
        ``mis`` is independent always and maximal w.h.p.; ``metrics``
        carries the total rounds and the per-phase breakdown.
    """
    if graph.number_of_nodes() == 0:
        raise ValueError("algorithm1 needs a non-empty graph")
    n = size_bound if size_bound is not None else graph.number_of_nodes()
    if ledger is None:
        ledger = EnergyLedger(graph.nodes)

    instrument = current_instrument()
    prof = instrument.profiler
    with channel_scope(channel):
        instrument.on_phase_start("phase1")
        with section_scope(prof, "phase1"):
            phase1 = run_phase1_alg1(
                graph,
                seed=_derive_seed(seed, 1),
                config=config,
                ledger=ledger,
                size_bound=n,
            )
        instrument.on_phase_end("phase1", phase1.metrics)

        residual = graph.subgraph(phase1.remaining).copy()
        instrument.on_phase_start("phase2")
        with section_scope(prof, "phase2"):
            phase2 = run_phase2(
                residual,
                seed=_derive_seed(seed, 2),
                config=config,
                ledger=ledger,
                size_bound=n,
            )
        instrument.on_phase_end("phase2", phase2.metrics)

        instrument.on_phase_start("phase3")
        with section_scope(prof, "phase3"):
            phase3 = run_phase3(
                phase2.components,
                seed=_derive_seed(seed, 3),
                config=config,
                ledger=ledger,
                size_bound=n,
                variant="alg1",
            )
        instrument.on_phase_end("phase3", phase3.metrics)

    mis = phase1.joined | phase2.joined | phase3.joined
    metrics = RunMetrics.combine_sequential(
        {
            "phase1": phase1.metrics,
            "phase2": phase2.metrics,
            "phase3": phase3.metrics,
        },
        ledger=ledger,
    )
    return MISResult(
        mis=mis,
        metrics=metrics,
        algorithm="algorithm1",
        details={
            "phase1": phase1.details,
            "phase2": phase2.details,
            "phase3": phase3.details,
            "undecided": sorted(phase3.remaining),
        },
    )
