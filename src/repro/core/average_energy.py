"""Section 4: constant node-averaged energy.

Phase I of both algorithms already has O(1) *average* energy (Section 4.1):
only ``O(n / log n)`` nodes are ever sampled, and unsampled nodes sleep.
The worst-case-energy phases II and III become affordable on average once
at most ``O(n / log² log n)`` nodes still participate. The intermediate
"Phase I-II" (Lemma 4.1) gets the graph there in two steps:

* **Lemma 4.2** — a compressed variant of the Lemma 2.1 algorithm on the
  ``Δ₂ = polylog`` residual: only ``O(log log n)`` rounds per iteration and
  truncation at degree ``polyloglog``; nodes that keep too many active
  neighbors (conditions (A)/(B)) declare themselves *failed* and retire to
  the set ``F`` (w.h.p. a tiny fraction). Every iteration ends with a
  three-round status block in which active nodes are awake, which is how
  joins, counts, and failures propagate between iterations.

* **Lemma 4.5 (substituted)** — the paper imports a sparsifier from
  [GP22, §3.2] that leaves ``O(n/2^k)`` nodes. Its internals are not in
  this paper's text, so per the reproduction's substitution rule we build
  the closest equivalent with the machinery already at hand: a full
  (untruncated) one-shot regularized-Luby cascade on the now
  polyloglog-degree graph, with ``O(log log n)`` rounds per degree-halving
  iteration. It decides all but a small remainder and keeps the one-shot,
  schedule-driven energy profile. The contract (few remaining nodes, O(1)
  average energy) is measured in experiment E4.

The composition wrappers run: Phase I → Lemma 4.2 → sparsifier → Phases
II/III on what little remains (the failed set ``F`` plus the sparsifier's
leftovers).
"""

from __future__ import annotations

import math
from typing import Optional, Set

import networkx as nx
import numpy as np

from ..congest import (
    EnergyLedger,
    Network,
    NodeProgram,
    StateField,
    channel_scope,
)
from ..congest.metrics import RunMetrics
from ..graphs.properties import max_degree
from ..obs import current_instrument, section_scope
from ..result import MISResult
from .config import DEFAULT_CONFIG, AlgorithmConfig, loglog2n
from .phase1_alg1 import Phase1Alg1Program, run_phase1_alg1
from .phase1_alg2 import run_phase1_alg2
from .phase2 import run_phase2
from .phase3 import _derive_seed, run_phase3
from .phase_result import PhaseResult


class Lemma42Program(NodeProgram):
    """Node program for the Lemma 4.2 degree reduction with failure sets.

    Layout: iteration ``i`` occupies ``2·R + 3`` engine rounds — ``R``
    algorithm rounds of two sub-rounds (mark, join), then a three-round
    status block (joins / active counts / failures). A sampled node is
    awake for all of its own iteration; every node attends every block.
    """

    def __init__(
        self,
        iterations: int,
        rounds_per_iteration: int,
        delta: int,
        config: AlgorithmConfig,
        n: int,
    ):
        self.iterations = iterations
        self.rounds_per_iteration = rounds_per_iteration
        self.stride = 2 * rounds_per_iteration + 3
        self.delta = max(1, delta)
        self.config = config
        self.n = n
        self.sampled_iteration: Optional[int] = None
        self.sampled_round: Optional[int] = None
        self.joined = False
        self.announced_join = False
        self.dominated = False
        self.failed = False
        self.saw_marked_neighbor = False
        self.spoiled_count = 0
        self.nonspoiled_count = 0

    @classmethod
    def state_schema(cls):
        # ``sampled_iteration``/``sampled_round`` stay Optional[int]
        # instance slots: written once in ``on_start``, never in the round
        # loop.
        return (
            StateField("joined", np.bool_),
            StateField("announced_join", np.bool_),
            StateField("dominated", np.bool_),
            StateField("failed", np.bool_),
            StateField("saw_marked_neighbor", np.bool_),
            StateField("spoiled_count", np.int64),
            StateField("nonspoiled_count", np.int64),
        )

    # ------------------------------------------------------------------
    def _sample(self, rng):
        for iteration in range(self.iterations):
            probability = min(1.0, (2.0**iteration) / (10.0 * self.delta))
            if probability <= 0.0:
                continue
            gap = int(rng.geometric(probability))
            if gap <= self.rounds_per_iteration:
                return iteration, gap - 1
        return None, None

    def on_start(self, ctx):
        ctx.output["joined"] = False
        ctx.output["failed"] = False
        ctx.output["sampled"] = False
        self.sampled_iteration, self.sampled_round = self._sample(ctx.rng)
        wake = set()
        if self.sampled_iteration is not None:
            ctx.output["sampled"] = True
            base = self.sampled_iteration * self.stride
            wake.update(range(base, base + 2 * self.rounds_per_iteration))
        for iteration in range(self.iterations):
            block = iteration * self.stride + 2 * self.rounds_per_iteration
            wake.update((block, block + 1, block + 2))
        ctx.use_wake_schedule(sorted(wake))

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        return not (self.joined or self.dominated or self.failed)

    def _position(self, round_index: int):
        iteration, offset = divmod(round_index, self.stride)
        in_block = offset >= 2 * self.rounds_per_iteration
        if in_block:
            return iteration, None, offset - 2 * self.rounds_per_iteration
        algo_round, sub = divmod(offset, 2)
        return iteration, (algo_round, sub), None

    def _spoiled_at(self, iteration: int) -> bool:
        """Sampled in this or an earlier iteration (its round has passed)."""
        return (
            self.sampled_iteration is not None
            and self.sampled_iteration <= iteration
        )

    def on_round(self, ctx):
        iteration, action, block_step = self._position(ctx.round)
        if action is not None:
            algo_round, sub = action
            mine = (
                iteration == self.sampled_iteration
                and algo_round == self.sampled_round
            )
            if sub == 0:
                if mine and self.active:
                    ctx.broadcast(True)
            else:
                if mine and self.active and not self.saw_marked_neighbor:
                    self.joined = True
                    ctx.output["joined"] = True
                    ctx.broadcast(True)
            return
        # Status block.
        if block_step == 0:
            if self.joined and not self.announced_join:
                self.announced_join = True
                ctx.broadcast(True)
        elif block_step == 1:
            if self.active:
                ctx.broadcast(bool(self._spoiled_at(iteration)))
        else:  # block_step == 2
            if self.active and self._check_failure(iteration):
                self.failed = True
                ctx.output["failed"] = True
                ctx.broadcast(True)

    def _check_failure(self, iteration: int) -> bool:
        threshold_a = (
            (iteration + 1) * self.config.avg_fail_factor * loglog2n(self.n)
        )
        threshold_b = self.delta / (2.0 ** (iteration + 1))
        return (
            self.spoiled_count > threshold_a
            or self.nonspoiled_count > threshold_b
        )

    def on_receive(self, ctx, messages):
        iteration, action, block_step = self._position(ctx.round)
        if action is not None:
            algo_round, sub = action
            mine = (
                iteration == self.sampled_iteration
                and algo_round == self.sampled_round
            )
            if sub == 0:
                if mine:
                    self.saw_marked_neighbor = bool(messages)
            else:
                if messages and not self.joined:
                    self.dominated = True
            return
        if block_step == 0:
            if messages and not self.joined:
                self.dominated = True
            if self.joined and self.announced_join:
                ctx.halt()
            elif self.dominated or self.failed:
                ctx.halt()
        elif block_step == 1:
            self.spoiled_count = sum(1 for m in messages if m.payload)
            self.nonspoiled_count = sum(1 for m in messages if not m.payload)
        else:
            if self.failed:
                ctx.halt()
                return
            if iteration + 1 >= self.iterations:
                ctx.halt()


def run_lemma42(
    graph: nx.Graph,
    *,
    seed: int = 0,
    config: AlgorithmConfig = DEFAULT_CONFIG,
    ledger: Optional[EnergyLedger] = None,
    size_bound: Optional[int] = None,
) -> PhaseResult:
    """Lemma 4.2: reduce the polylog-degree graph to polyloglog degree,
    shedding a small failed set ``F`` (reported in ``details['failed']``).

    ``remaining`` is ``A ∪ F``; callers split it via the details.
    """
    n = size_bound if size_bound is not None else graph.number_of_nodes()
    if ledger is None and graph.number_of_nodes() > 0:
        ledger = EnergyLedger(graph.nodes)

    if graph.number_of_nodes() == 0:
        empty = RunMetrics(rounds=0, max_energy=0, average_energy=0.0,
                           total_energy=0)
        return PhaseResult(set(), set(), set(), empty,
                           details={"failed": set(), "reduced": set(),
                                    "iterations": 0})

    before = ledger.snapshot()
    delta2 = max_degree(graph)
    target = max(
        1.0, loglog2n(n) ** max(1.0, config.avg_truncation)
    )
    iterations = max(
        0, math.floor(math.log2(max(2, delta2)) - math.log2(target))
    )
    rounds_per_iteration = max(2, math.ceil(
        config.avg_round_factor * loglog2n(n)
    ))

    if iterations == 0:
        metrics = RunMetrics.from_snapshots(
            0, before, ledger.snapshot(), graph.nodes
        )
        return PhaseResult(
            joined=set(), dominated=set(), remaining=set(graph.nodes),
            metrics=metrics,
            details={"failed": set(), "reduced": set(graph.nodes),
                     "iterations": 0, "delta2": delta2},
        )

    programs = {
        node: Lemma42Program(iterations, rounds_per_iteration, delta2,
                             config, n)
        for node in graph.nodes
    }
    network = Network(graph, programs, seed=seed, ledger=ledger, size_bound=n)
    total_rounds = iterations * (2 * rounds_per_iteration + 3)
    network.run_rounds(total_rounds)

    joined = {v for v, f in network.outputs("joined").items() if f}
    failed = {v for v, f in network.outputs("failed").items() if f}
    dominated: Set[int] = set()
    for node in joined:
        dominated.update(graph.neighbors(node))
    dominated -= joined
    failed -= joined | dominated
    reduced = set(graph.nodes) - joined - dominated - failed

    metrics = RunMetrics.from_snapshots(
        total_rounds, before, ledger.snapshot(), graph.nodes,
        messages_sent=network.messages_sent,
        messages_delivered=network.messages_delivered,
        messages_dropped=network.messages_dropped,
        total_message_bits=network.total_message_bits,
        max_message_bits=network.max_message_bits,
    )
    result = PhaseResult(
        joined=joined,
        dominated=dominated,
        remaining=reduced | failed,
        metrics=metrics,
        details={
            "failed": failed,
            "reduced": reduced,
            "iterations": iterations,
            "rounds_per_iteration": rounds_per_iteration,
            "delta2": delta2,
            "reduced_max_degree": max_degree(graph.subgraph(reduced)),
        },
    )
    result.check_partition(set(graph.nodes))
    return result


def run_sparsify(
    graph: nx.Graph,
    *,
    seed: int = 0,
    config: AlgorithmConfig = DEFAULT_CONFIG,
    ledger: Optional[EnergyLedger] = None,
    size_bound: Optional[int] = None,
) -> PhaseResult:
    """Lemma 4.5 substitute: decide most nodes of a low-degree graph.

    A full one-shot regularized-Luby cascade (degree halving from Δ down to
    1) with only ``O(log log n)`` rounds per iteration. See the module
    docstring for why this stands in for [GP22, §3.2].
    """
    n = size_bound if size_bound is not None else graph.number_of_nodes()
    if ledger is None and graph.number_of_nodes() > 0:
        ledger = EnergyLedger(graph.nodes)

    if graph.number_of_nodes() == 0:
        empty = RunMetrics(rounds=0, max_energy=0, average_energy=0.0,
                           total_energy=0)
        return PhaseResult(set(), set(), set(), empty, details={})

    before = ledger.snapshot()
    degree = max_degree(graph)
    iterations = math.ceil(math.log2(max(2, degree))) + 1
    rounds_per_iteration = max(
        2, math.ceil(config.sparsify_round_factor * loglog2n(n))
    )
    programs = {
        node: Phase1Alg1Program(iterations, rounds_per_iteration,
                                max(1, degree), 10.0)
        for node in graph.nodes
    }
    network = Network(graph, programs, seed=seed, ledger=ledger, size_bound=n)
    total_rounds = 3 * iterations * rounds_per_iteration
    network.run_rounds(total_rounds)
    ledger.charge_many(graph.nodes, 1)  # hand-off status round

    joined = {v for v, f in network.outputs("joined").items() if f}
    dominated: Set[int] = set()
    for node in joined:
        dominated.update(graph.neighbors(node))
    dominated -= joined
    remaining = set(graph.nodes) - joined - dominated

    metrics = RunMetrics.from_snapshots(
        total_rounds + 1, before, ledger.snapshot(), graph.nodes,
        messages_sent=network.messages_sent,
        messages_delivered=network.messages_delivered,
        max_message_bits=network.max_message_bits,
    )
    result = PhaseResult(
        joined=joined, dominated=dominated, remaining=remaining,
        metrics=metrics,
        details={
            "iterations": iterations,
            "rounds_per_iteration": rounds_per_iteration,
            "input_degree": degree,
            "remaining_fraction": len(remaining) / graph.number_of_nodes(),
        },
    )
    result.check_partition(set(graph.nodes))
    return result


def _compose_average_energy(
    graph: nx.Graph,
    seed: int,
    config: AlgorithmConfig,
    ledger: Optional[EnergyLedger],
    phase1_runner,
    name: str,
    variant: str,
    size_bound: Optional[int] = None,
) -> MISResult:
    if graph.number_of_nodes() == 0:
        raise ValueError(f"{name} needs a non-empty graph")
    n = size_bound if size_bound is not None else graph.number_of_nodes()
    if ledger is None:
        ledger = EnergyLedger(graph.nodes)

    instrument = current_instrument()
    prof = instrument.profiler

    def observed_phase(phase_name, runner):
        # Phase names match the combine_sequential keys below, so the
        # event stream, the profile tree, and metrics.phases line up.
        instrument.on_phase_start(phase_name)
        with section_scope(prof, phase_name):
            result = runner()
        instrument.on_phase_end(phase_name, result.metrics)
        return result

    phase1 = observed_phase("phase1", lambda: phase1_runner(
        graph, seed=_derive_seed(seed, 11), config=config, ledger=ledger,
        size_bound=n,
    ))
    residual = graph.subgraph(phase1.remaining).copy()

    lemma42 = observed_phase("lemma42", lambda: run_lemma42(
        residual, seed=_derive_seed(seed, 12), config=config, ledger=ledger,
        size_bound=n,
    ))
    reduced = lemma42.details.get("reduced", set())
    failed = lemma42.details.get("failed", set())

    sparsified = observed_phase("sparsify", lambda: run_sparsify(
        residual.subgraph(reduced).copy(),
        seed=_derive_seed(seed, 13), config=config, ledger=ledger,
        size_bound=n,
    ))

    # Failed nodes slept through the sparsifier but live in the same
    # residual graph: any of them adjacent to a sparsifier joiner is
    # dominated, not leftover. They learn this in the one status round
    # charged below (concurrent with the sparsifier's hand-off round).
    if failed:
        ledger.charge_many(failed, 1)
    dominated_failed = {
        node
        for node in failed
        if any(u in sparsified.joined for u in residual.neighbors(node))
    }
    leftover = (failed - dominated_failed) | sparsified.remaining
    phase2 = observed_phase("phase2", lambda: run_phase2(
        residual.subgraph(leftover).copy(),
        seed=_derive_seed(seed, 14), config=config, ledger=ledger,
        size_bound=n,
    ))
    phase3 = observed_phase("phase3", lambda: run_phase3(
        phase2.components,
        seed=_derive_seed(seed, 15), config=config, ledger=ledger,
        size_bound=n, variant=variant,
    ))

    mis = (
        phase1.joined | lemma42.joined | sparsified.joined
        | phase2.joined | phase3.joined
    )
    metrics = RunMetrics.combine_sequential(
        {
            "phase1": phase1.metrics,
            "lemma42": lemma42.metrics,
            "sparsify": sparsified.metrics,
            "phase2": phase2.metrics,
            "phase3": phase3.metrics,
        },
        ledger=ledger,
    )
    return MISResult(
        mis=mis,
        metrics=metrics,
        algorithm=name,
        details={
            "failed_nodes": len(failed),
            "sparsify_leftover": len(sparsified.remaining),
            "phase2_input": len(leftover),
            "undecided": sorted(phase3.remaining),
            "phase3_failures": phase3.details.get("failures", 0),
        },
    )


def algorithm1_constant_average_energy(
    graph: nx.Graph,
    seed: int = 0,
    *,
    config: AlgorithmConfig = DEFAULT_CONFIG,
    ledger: Optional[EnergyLedger] = None,
    size_bound: Optional[int] = None,
    channel=None,
) -> MISResult:
    """Algorithm 1 augmented per Section 4: O(1) node-averaged energy while
    keeping the Theorem 1.1 worst-case time/energy bounds."""
    with channel_scope(channel):
        return _compose_average_energy(
            graph, seed, config, ledger, run_phase1_alg1,
            "algorithm1_avg_energy", "alg1", size_bound=size_bound,
        )


def algorithm2_constant_average_energy(
    graph: nx.Graph,
    seed: int = 0,
    *,
    config: AlgorithmConfig = DEFAULT_CONFIG,
    ledger: Optional[EnergyLedger] = None,
    size_bound: Optional[int] = None,
    channel=None,
) -> MISResult:
    """Algorithm 2 augmented per Section 4."""
    with channel_scope(channel):
        return _compose_average_energy(
            graph, seed, config, ledger, run_phase1_alg2,
            "algorithm2_avg_energy", "alg2", size_bound=size_bound,
        )
