"""Phase III: finishing the small shattered components (Lemma 2.7).

Each component left by Phase II has ``poly(log n)`` nodes grouped into
``O(log n / log log n)`` clusters of diameter ``O(log log n)``. Per
component (all components run in parallel):

1. **Merge** all clusters into one, with a rooted spanning tree of diameter
   ``O(log n)`` (Lemma 2.8; see :mod:`repro.cluster.merge`).
2. **Parallel executions** — run ``Θ(log n)`` independent executions of
   Ghaffari's 1-bit MIS algorithm simultaneously (one CONGEST message carries
   one bit per execution) for ``O(log log n)`` iterations each.
3. **Success selection** — every node checks each execution locally (it is
   happy iff it joined with no joining neighbor, or it has a joining
   neighbor); a convergecast-AND per execution tells the root which
   executions decided every node, and one broadcast announces the first
   successful execution. Its output is the component's MIS.

With probability ``1 - 1/poly(n)`` some execution succeeds; if none does
(possible at simulation scales), the block reruns with fresh randomness up
to ``config.phase3_retries`` times, charging its rounds honestly; a
component that still fails leaves its undecided nodes in ``remaining``
(and the failure is reported in the details).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..baselines.ghaffari import ACTIVE, JOINED, GhaffariProgram
from ..cluster import Choreography, ClusterState, merge_component_clusters
from ..congest import EnergyLedger, Network
from ..congest.metrics import RunMetrics
from .config import DEFAULT_CONFIG, AlgorithmConfig
from .phase_result import PhaseResult


def _derive_seed(*parts: int) -> int:
    return int(np.random.SeedSequence(list(parts)).generate_state(1)[0])


def _run_executions(
    state: ClusterState,
    executions: int,
    iterations: int,
    seed: int,
    ledger: EnergyLedger,
    size_bound: int,
) -> Tuple[Dict[int, GhaffariProgram], int]:
    """One block of parallel Ghaffari executions on a component."""
    programs = {
        node: GhaffariProgram(iterations=iterations, executions=executions)
        for node in state.graph.nodes
    }
    network = Network(
        state.graph, programs, seed=seed, ledger=ledger, size_bound=size_bound
    )
    metrics = network.run(max_rounds=10 * iterations + 16)
    return programs, metrics.rounds


def _successful_executions(
    programs: Dict[int, GhaffariProgram], executions: int
) -> List[int]:
    """Executions in which every node of the component is decided."""
    return [
        e
        for e in range(executions)
        if all(program.status[e] != ACTIVE for program in programs.values())
    ]


def run_phase3(
    components: List[ClusterState],
    *,
    seed: int = 0,
    config: AlgorithmConfig = DEFAULT_CONFIG,
    ledger: Optional[EnergyLedger] = None,
    size_bound: int,
    variant: str = "alg1",
) -> PhaseResult:
    """Run Lemma 2.7 on every component (in parallel; rounds = the maximum).

    ``variant`` selects the finishing strategy:

    * ``"alg1"`` — two Linial rounds in the matching step (Section 2.3);
    * ``"alg2"`` — constant palette via ``O(log* n)`` Linial rounds
      (Section 3.2 / [BM21a]);
    * ``"local"`` — the LOCAL-model shortcut the paper mentions before
      introducing the parallel executions: with unbounded messages, one
      convergecast ships the whole component topology to the root, which
      solves the MIS locally and broadcasts the answer. No randomness, no
      failure probability; only meaningful outside CONGEST.
    """
    if variant not in ("alg1", "alg2", "local"):
        raise ValueError(f"unknown variant {variant!r}")
    all_nodes: Set[int] = set()
    for state in components:
        all_nodes |= set(state.graph.nodes)
    if ledger is None and all_nodes:
        ledger = EnergyLedger(all_nodes)

    if not all_nodes:
        empty = RunMetrics(rounds=0, max_energy=0, average_energy=0.0,
                           total_energy=0)
        return PhaseResult(
            joined=set(), dominated=set(), remaining=set(), metrics=empty,
            details={"components": 0, "failures": 0},
        )

    before = ledger.snapshot()
    executions = config.phase3_executions(size_bound)
    if variant == "alg2":
        linial_kwargs = dict(
            linial_rounds=None,
            linial_target_palette=config.alg2_linial_target_palette,
        )
    else:
        linial_kwargs = dict(
            linial_rounds=config.phase3_linial_rounds,
            linial_target_palette=None,
        )

    joined: Set[int] = set()
    remaining: Set[int] = set()
    max_component_rounds = 0
    failures = 0
    merge_iterations_max = 0
    tree_height_max = 0
    messages = {"sent": 0, "delivered": 0, "dropped": 0, "bits": 0, "max_bits": 0}

    for state in components:
        component_nodes = sorted(state.graph.nodes)
        component_id = component_nodes[0]
        choreography = Choreography(ledger)

        if state.cluster_count > 1:
            tree, merge_report = merge_component_clusters(
                state, choreography, **linial_kwargs
            )
            merge_iterations_max = max(
                merge_iterations_max, merge_report.iterations
            )
        else:
            tree = next(iter(state.trees.values()))
        tree_height_max = max(tree_height_max, tree.height)

        if variant == "local":
            # LOCAL shortcut: topology up, solution down; two tree ops.
            from ..baselines.sequential import greedy_mis

            allotment = tree.height + 2
            choreography.convergecast(tree, allotment)
            choreography.broadcast(tree, allotment)
            joined |= greedy_mis(state.graph)
            max_component_rounds = max(
                max_component_rounds, choreography.clock
            )
            continue

        iterations = config.phase3_iterations(len(component_nodes))
        engine_rounds = 0
        winner: Optional[int] = None
        programs: Dict[int, GhaffariProgram] = {}
        for attempt in range(config.phase3_retries + 1):
            block_seed = _derive_seed(seed, component_id, attempt)
            programs, rounds = _run_executions(
                state, executions, iterations, block_seed, ledger, size_bound
            )
            engine_rounds += rounds
            # Local success checks (already known from received join bits),
            # then a convergecast-AND per execution and one broadcast of the
            # chosen execution index.
            choreography.exchange(component_nodes)
            allotment = tree.height + 2
            choreography.convergecast(tree, allotment)
            choreography.broadcast(tree, allotment)
            successful = _successful_executions(programs, executions)
            if successful:
                winner = successful[0]
                break

        if winner is None:
            failures += 1
            undecided = {
                node
                for node, program in programs.items()
                if program.status[0] == ACTIVE
            }
            joined |= {
                node
                for node, program in programs.items()
                if program.status[0] == JOINED
            }
            remaining |= undecided
        else:
            joined |= {
                node
                for node, program in programs.items()
                if program.status[winner] == JOINED
            }
        max_component_rounds = max(
            max_component_rounds, choreography.clock + engine_rounds
        )

    dominated = all_nodes - joined - remaining
    metrics = RunMetrics.from_snapshots(
        max_component_rounds,
        before,
        ledger.snapshot(),
        all_nodes,
    )
    result = PhaseResult(
        joined=joined,
        dominated=dominated,
        remaining=remaining,
        metrics=metrics,
        details={
            "components": len(components),
            "executions": executions,
            "failures": failures,
            "merge_iterations_max": merge_iterations_max,
            "tree_height_max": tree_height_max,
        },
    )
    result.check_partition(all_nodes)
    return result
