"""Phase I of Algorithm 2: degree reduction Δ → Δ^0.7 (Lemma 3.1, Cor 3.2).

One iteration, on a graph of maximum degree Δ (paper: ``Δ = Ω(log²⁰ n)``):

* **Two one-shot samplings**, both fixed before the iteration starts, so
  each node acts in at most one round ``r_v`` and awake schedules apply:

  - type (A) *tagging* at rate ``Δ^-0.5`` per round — tagged nodes announce
    themselves so this round's pre-marked neighbors can estimate degrees;
  - type (B) *pre-marking* at rate ``1/(2·Δ^0.6)`` per round.

* **Degree estimation** — a node pre-marked in round ``i`` counts tagged
  neighbors ``A_v`` and estimates ``d̃eg(v) = Δ^0.5 · A_v``; it then
  re-samples itself with probability ``min(1, 2Δ^0.6 / (5·d̃eg))``,
  emulating a ``min(1/(2Δ^0.6), 1/(5·d̃eg))`` marking rate.

* **Conflict rule** — adjacent marked nodes: the lower estimated degree
  unmarks (ties unmark both); surviving marked nodes join the MIS.

* **Final sweep** — after the sampling rounds, every active node counts its
  active non-spoiled neighbors exactly; nodes above ``4·Δ^0.6`` with no
  above-threshold neighbor join. With high probability no two
  above-threshold nodes are adjacent (Corollary 3.9), so the residual
  degree falls to ``≤ 8·Δ^0.6 ≪ Δ^0.7``.

Engine mapping: four sub-rounds per round (status / tags / marks / joins),
then a four-round all-active end block (status / counts / high flags /
final joins). A sampled node is awake at its Lemma 2.5 schedule rounds plus
the end block; an unsampled node only at the end block.

Scaled constant (documented in DESIGN.md): the paper runs ``c·log n``
sampling rounds, affordable because ``Δ ≥ log²⁰ n`` keeps the spoiling rate
``R·Δ^-0.5`` negligible. Below that astronomic floor the same ``R`` would
spoil everything, so we cap ``R ≤ 4·Δ^0.1`` — the cap is inactive in the
paper's regime (there ``4Δ^0.1 ≥ 4 log² n ≥ log n``) and binding only at
simulation scales.
"""

from __future__ import annotations

import math
from typing import Optional, Set

import networkx as nx
import numpy as np

from ..congest import EnergyLedger, Network, NodeProgram, StateField
from ..congest.metrics import RunMetrics
from ..congest.vectorized import VectorRound, int_bit_length
from ..graphs.properties import max_degree
from ..schedule import schedule_for_round
from .config import DEFAULT_CONFIG, AlgorithmConfig
from .phase3 import _derive_seed
from .phase_result import PhaseResult

_STATUS = 0
_TAG = 1
_MARK = 2
_JOIN = 3


def sampling_rounds(n: int, delta: int, config: AlgorithmConfig) -> int:
    """Per-iteration sampling rounds R (the paper's c·log n, capped)."""
    base = config.alg2_rounds(n)
    cap = max(4, math.ceil(4.0 * delta**0.1))
    return min(base, cap)


class Phase1Alg2Program(NodeProgram):
    """Node program for one Lemma 3.1 iteration with parameter ``delta``."""

    def __init__(self, delta: int, rounds: int, config: AlgorithmConfig):
        self.delta = max(2, delta)
        self.rounds = rounds
        self.config = config
        self.tag_probability = min(
            1.0, self.delta ** (-config.alg2_tag_exponent)
        )
        self.premark_probability = min(
            1.0, 1.0 / (2.0 * self.delta**config.alg2_mark_exponent)
        )
        self.high_threshold = (
            config.alg2_high_degree_factor
            * self.delta**config.alg2_mark_exponent
        )
        # Sampling outcomes (filled in on_start); -1 = "never".
        self.tag_round = -1
        self.premark_round = -1
        self.action_round = -1
        # Execution state.
        self.joined = False
        self.join_round = -1
        self.dominated = False
        self.tagged_neighbors = 0
        self.marked = False
        self.estimate = 0.0
        self.competitors: list = []
        self.active_nonspoiled = 0
        self.high = False
        self.saw_high_neighbor = False

    @classmethod
    def state_schema(cls):
        # ``competitors`` (the per-duel inbox list) stays instance-local;
        # everything scalar is a typed column with -1 round sentinels.
        return (
            StateField("tag_round", np.int64, default=-1),
            StateField("premark_round", np.int64, default=-1),
            StateField("action_round", np.int64, default=-1),
            StateField("joined", np.bool_),
            StateField("join_round", np.int64, default=-1),
            StateField("dominated", np.bool_),
            StateField("tagged_neighbors", np.int64),
            StateField("marked", np.bool_),
            StateField("estimate", np.float64),
            StateField("active_nonspoiled", np.int64),
            StateField("high", np.bool_),
            StateField("saw_high_neighbor", np.bool_),
        )

    # ------------------------------------------------------------------
    def _first_heads(self, rng, probability: float) -> int:
        if probability <= 0.0:
            return -1
        gap = int(rng.geometric(min(1.0, probability)))
        return gap - 1 if gap <= self.rounds else -1

    @property
    def spoiled(self) -> bool:
        return self.action_round >= 0

    def on_start(self, ctx):
        ctx.output["joined"] = False
        ctx.output["sampled"] = False
        self.tag_round = self._first_heads(ctx.rng, self.tag_probability)
        self.premark_round = self._first_heads(
            ctx.rng, self.premark_probability
        )
        candidates = [
            r for r in (self.tag_round, self.premark_round) if r >= 0
        ]
        self.action_round = min(candidates) if candidates else -1
        # A later sampling of the other type never happens (the node is
        # spoiled after its first action round).
        if self.tag_round != self.action_round:
            self.tag_round = -1
        if self.premark_round != self.action_round:
            self.premark_round = -1

        wake = set()
        if self.action_round >= 0:
            ctx.output["sampled"] = True
            for entry in schedule_for_round(self.rounds, self.action_round):
                wake.add(4 * entry + _STATUS)
                wake.add(4 * entry + _JOIN)
            wake.add(4 * self.action_round + _TAG)
            wake.add(4 * self.action_round + _MARK)
        # End block: every node, sampled or not.
        end = 4 * self.rounds
        wake.update((end, end + 1, end + 2, end + 3))
        ctx.use_wake_schedule(sorted(wake))

    # ------------------------------------------------------------------
    def on_round(self, ctx):
        if ctx.round >= 4 * self.rounds:
            self._end_block_round(ctx)
            return
        algo_round, sub = divmod(ctx.round, 4)
        if sub == _STATUS:
            if self.joined and self.join_round < algo_round:
                ctx.broadcast(True)
        elif sub == _TAG:
            if algo_round == self.tag_round and not self.dominated:
                ctx.broadcast(True)
        elif sub == _MARK:
            if algo_round == self.premark_round and not self.dominated:
                self._decide_marking(ctx)
        else:  # _JOIN
            if (
                algo_round == self.premark_round
                and self.marked
                and not self.dominated
            ):
                mine = self.tagged_neighbors
                if all(theirs < mine for theirs in self.competitors):
                    self.joined = True
                    self.join_round = algo_round
                    ctx.output["joined"] = True
                    ctx.broadcast(True)

    def _decide_marking(self, ctx):
        self.estimate = (
            self.delta**self.config.alg2_tag_exponent * self.tagged_neighbors
        )
        if self.estimate <= 0:
            probability = 1.0
        else:
            probability = min(
                1.0,
                (2.0 * self.delta**self.config.alg2_mark_exponent)
                / (5.0 * self.estimate),
            )
        self.marked = bool(ctx.rng.random() < probability)
        if self.marked:
            # The count A_v suffices for neighbors to reconstruct the
            # estimate; it is an integer <= n, hence O(log n) bits.
            ctx.broadcast(self.tagged_neighbors)

    def on_receive(self, ctx, messages):
        if ctx.round >= 4 * self.rounds:
            self._end_block_receive(ctx, messages)
            return
        algo_round, sub = divmod(ctx.round, 4)
        if sub == _TAG:
            if algo_round == self.premark_round:
                self.tagged_neighbors = len(messages)
        elif sub == _MARK:
            if algo_round == self.premark_round and self.marked:
                self.competitors = [m.payload for m in messages]
        else:  # _STATUS or _JOIN carry join announcements
            if messages and not self.joined:
                self.dominated = True

    # ------------------------------------------------------------------
    # End block: status / exact counts / high flags / final joins.
    # ------------------------------------------------------------------
    def _end_block_round(self, ctx):
        step = ctx.round - 4 * self.rounds
        if step == 0:
            if self.joined:
                ctx.broadcast(True)
        elif step == 1:
            if not self.joined and not self.dominated:
                ctx.broadcast(bool(self.spoiled))
        elif step == 2:
            if not self.joined and not self.dominated:
                self.high = self.active_nonspoiled > self.high_threshold
                if self.high:
                    ctx.broadcast(True)
        else:  # step == 3
            if (
                not self.joined
                and not self.dominated
                and self.high
                and not self.saw_high_neighbor
            ):
                self.joined = True
                ctx.output["joined"] = True
                ctx.broadcast(True)

    def _end_block_receive(self, ctx, messages):
        step = ctx.round - 4 * self.rounds
        if step == 0:
            if messages and not self.joined:
                self.dominated = True
                ctx.halt()  # skips the rest of the end block
        elif step == 1:
            self.active_nonspoiled = sum(
                1 for m in messages if m.payload is False
            )
        elif step == 2:
            self.saw_high_neighbor = bool(messages)
        else:
            if messages and not self.joined:
                self.dominated = True
            ctx.output["joined"] = self.joined
            ctx.halt()

    @classmethod
    def vector_round(cls, network):
        """Engine capability hook: one flat column set per network needs
        every node to share the iteration parameters (the drivers always
        build them that way; hand-built heterogeneous networks decline)."""
        programs = list(network.programs.values())
        first = programs[0]
        signature = (
            first.delta,
            first.rounds,
            first.high_threshold,
            first.config.alg2_tag_exponent,
            first.config.alg2_mark_exponent,
        )
        for program in programs:
            if (
                program.delta,
                program.rounds,
                program.high_threshold,
                program.config.alg2_tag_exponent,
                program.config.alg2_mark_exponent,
            ) != signature:
                return None
        return _Phase1Alg2VectorRound(network)


class _Phase1Alg2VectorRound(VectorRound):
    """Whole-network Lemma 3.1 sub-rounds over flat numpy columns.

    Schedule-driven like the Algorithm 1 phase (the active set of every
    round is a calendar mask via :meth:`VectorRound.pop_scheduled_awake`),
    with two extra twists the kernel must mirror exactly:

    * the only in-round randomness is the re-marking coin of a pre-marked
      node at its action round — the probability pipeline
      ``estimate = Δ^0.5 · A_v``, ``p = min(1, 2Δ^0.6 / (5·estimate))``
      runs in float64 either way, so the comparison against the node's
      next uniform draw is bit-identical;
    * domination does **not** halt during the sampling rounds (a dominated
      node keeps its remaining wake appointments and simply stops acting);
      halting happens only in the end block (step 0 listeners and the
      final step-3 teardown), which the kernel drives through the real
      contexts so the calendar stays consistent.

    The duel at the JOIN sub-round compares the receiver's tagged-neighbor
    count against the max over the mark announcements it *heard* — kept as
    a ``rival_max`` column (−1 = silence), rebuilt into the scalar
    ``competitors`` list only when a flush lands between a MARK and its
    JOIN (the one boundary where the scalar path would read it).
    """

    supports_schedules = True
    supports_edge_faults = True

    def load(self) -> None:
        arrays = self.arrays
        network = self.network
        n = arrays.n
        first = network.programs[arrays.nodes[0]]
        config = first.config
        self.rounds = first.rounds
        self.tag_factor = first.delta**config.alg2_tag_exponent
        self.mark_numerator = 2.0 * first.delta**config.alg2_mark_exponent
        self.high_threshold = first.high_threshold
        self.rival_max = np.full(n, -1, dtype=np.int64)
        columns = self.state_columns
        if columns is not None:
            self.tag_round = columns["tag_round"].copy()
            self.premark_round = columns["premark_round"].copy()
            self.joined = columns["joined"].copy()
            self.join_round = columns["join_round"].copy()
            self.dominated = columns["dominated"].copy()
            self.tagged = columns["tagged_neighbors"].copy()
            self.marked = columns["marked"].copy()
            self.estimate = columns["estimate"].copy()
            self.active_nonspoiled = columns["active_nonspoiled"].copy()
            self.high = columns["high"].copy()
            self.saw_high = columns["saw_high_neighbor"].copy()
            for i, node in enumerate(arrays.nodes):
                competitors = network.programs[node].competitors
                if competitors:
                    self.rival_max[i] = max(competitors)
        else:
            self.tag_round = np.full(n, -1, dtype=np.int64)
            self.premark_round = np.full(n, -1, dtype=np.int64)
            self.joined = np.zeros(n, dtype=bool)
            self.join_round = np.full(n, -1, dtype=np.int64)
            self.dominated = np.zeros(n, dtype=bool)
            self.tagged = np.zeros(n, dtype=np.int64)
            self.marked = np.zeros(n, dtype=bool)
            self.estimate = np.zeros(n, dtype=np.float64)
            self.active_nonspoiled = np.zeros(n, dtype=np.int64)
            self.high = np.zeros(n, dtype=bool)
            self.saw_high = np.zeros(n, dtype=bool)
            for i, node in enumerate(arrays.nodes):
                program = network.programs[node]
                self.tag_round[i] = program.tag_round
                self.premark_round[i] = program.premark_round
                self.joined[i] = program.joined
                self.join_round[i] = program.join_round
                self.dominated[i] = program.dominated
                self.tagged[i] = program.tagged_neighbors
                self.marked[i] = program.marked
                self.estimate[i] = program.estimate
                if program.competitors:
                    self.rival_max[i] = max(program.competitors)
                self.active_nonspoiled[i] = program.active_nonspoiled
                self.high[i] = program.high
                self.saw_high[i] = program.saw_high_neighbor
        self._one_bit = np.ones(n, dtype=np.int64) if self.priced else None

    def flush_state(self) -> None:
        arrays = self.arrays
        network = self.network
        next_round = network.round_index + 1
        # ``competitors`` is read by the scalar path only at the JOIN
        # sub-round of the algorithm round whose MARK already ran.
        rebuild_a = (
            next_round // 4
            if next_round < 4 * self.rounds and next_round % 4 == _JOIN
            else None
        )
        indptr, indices = arrays.indptr, arrays.indices
        columns = self.state_columns
        if columns is not None:
            columns["tag_round"][:] = self.tag_round
            columns["premark_round"][:] = self.premark_round
            columns["joined"][:] = self.joined
            columns["join_round"][:] = self.join_round
            columns["dominated"][:] = self.dominated
            columns["tagged_neighbors"][:] = self.tagged
            columns["marked"][:] = self.marked
            columns["estimate"][:] = self.estimate
            columns["active_nonspoiled"][:] = self.active_nonspoiled
            columns["high"][:] = self.high
            columns["saw_high_neighbor"][:] = self.saw_high
        else:
            for i, node in enumerate(arrays.nodes):
                program = network.programs[node]
                program.joined = bool(self.joined[i])
                program.join_round = int(self.join_round[i])
                program.dominated = bool(self.dominated[i])
                program.tagged_neighbors = int(self.tagged[i])
                program.marked = bool(self.marked[i])
                program.estimate = float(self.estimate[i])
                program.active_nonspoiled = int(self.active_nonspoiled[i])
                program.high = bool(self.high[i])
                program.saw_high_neighbor = bool(self.saw_high[i])
        if rebuild_a is not None:
            duelists = np.nonzero(
                self.marked & (self.premark_round == rebuild_a)
            )[0]
            for i in duelists:
                row = indices[indptr[i]:indptr[i + 1]]
                network.programs[arrays.nodes[i]].competitors = [
                    int(self.tagged[u])
                    for u in row
                    if self.marked[u] and self.premark_round[u] == rebuild_a
                ]

    # ------------------------------------------------------------------
    def step_round(self) -> None:
        network = self.network
        arrays = self.arrays
        awake = self.pop_scheduled_awake()
        self.charge_awake(awake)
        round_index = network.round_index
        keep = self.fault_keep() if self.faults is not None else None
        if round_index >= 4 * self.rounds:
            self._end_block(round_index - 4 * self.rounds, awake, keep)
            return
        algo_round, sub = divmod(round_index, 4)
        if sub == _STATUS:
            senders = awake & self.joined & (self.join_round < algo_round)
            self._dominate(senders, awake, keep)
        elif sub == _TAG:
            senders = awake & (self.tag_round == algo_round) & ~self.dominated
            counts = self._broadcast_wave(senders, awake, keep)
            receivers = awake & (self.premark_round == algo_round)
            self.tagged[receivers] = counts[receivers]
        elif sub == _MARK:
            deciders = (
                awake & (self.premark_round == algo_round) & ~self.dominated
            )
            idx = np.nonzero(deciders)[0]
            marked_now = np.zeros(arrays.n, dtype=bool)
            if idx.size:
                estimate = self.tag_factor * self.tagged[idx].astype(
                    np.float64
                )
                probability = np.ones(idx.size, dtype=np.float64)
                positive = estimate > 0.0
                probability[positive] = np.minimum(
                    1.0, self.mark_numerator / (5.0 * estimate[positive])
                )
                self.estimate[idx] = estimate
                self.marked[idx] = self.draws.take(idx) < probability
                marked_now[idx] = self.marked[idx]
            bits = (
                np.maximum(1, int_bit_length(self.tagged)) + 1
                if self.priced
                else None
            )
            tag_values = np.where(marked_now, self.tagged, np.int64(-1))
            if keep is None:
                self.count_broadcasts(marked_now, awake, bits)
                rival = arrays.neighbor_max(tag_values, empty=np.int64(-1))
            else:
                self.count_broadcasts(marked_now, awake, bits, keep=keep)
                rival = arrays.masked_neighbor_max(
                    tag_values, np.int64(-1), keep
                )
            self.rival_max[marked_now] = rival[marked_now]
        else:  # _JOIN
            winners = (
                awake
                & (self.premark_round == algo_round)
                & self.marked
                & ~self.dominated
                & (self.rival_max < self.tagged)
            )
            winner_idx = np.nonzero(winners)[0]
            if winner_idx.size:
                self.joined[winner_idx] = True
                self.join_round[winner_idx] = algo_round
                for i in winner_idx:
                    self.output_of(i)["joined"] = True
            self._dominate(winners, awake, keep)

    def _broadcast_wave(
        self,
        senders: np.ndarray,
        awake: np.ndarray,
        keep: Optional[np.ndarray],
    ) -> np.ndarray:
        """Account one broadcast wave; return per-receiver heard counts
        (surviving copies only when a fault mask is active — one CSR pass
        serves both the heard-test and the delivery count)."""
        if keep is None:
            heard_counts = self.arrays.neighbor_count(senders)
            self.count_broadcasts(
                senders, awake, self._one_bit, sender_counts=heard_counts
            )
        else:
            heard_counts = self.arrays.masked_neighbor_count(senders, keep)
            self.count_broadcasts(senders, awake, self._one_bit, keep=keep)
        return heard_counts

    def _dominate(
        self,
        senders: np.ndarray,
        awake: np.ndarray,
        keep: Optional[np.ndarray],
    ) -> None:
        """Sampling-round join announcements: listeners become dominated
        (but stay on their wake schedules — no halt until the end block)."""
        heard_counts = self._broadcast_wave(senders, awake, keep)
        self.dominated |= awake & ~self.joined & (heard_counts > 0)

    def _end_block(
        self, step: int, awake: np.ndarray, keep
    ) -> None:
        arrays = self.arrays
        if step == 0:
            senders = awake & self.joined
            heard_counts = self._broadcast_wave(senders, awake, keep)
            victims = np.nonzero(
                awake & ~self.joined & (heard_counts > 0)
            )[0]
            if victims.size:
                self.dominated[victims] = True
                self.halt_ranks(victims)
        elif step == 1:
            actors = awake & ~self.joined & ~self.dominated
            spoiled = (self.tag_round >= 0) | (self.premark_round >= 0)
            # The heard-test mask (non-spoiled actors) differs from the
            # broadcast mask, so no shared CSR pass here.
            if keep is None:
                self.count_broadcasts(actors, awake, self._one_bit)
                counts = arrays.neighbor_count(actors & ~spoiled)
            else:
                self.count_broadcasts(actors, awake, self._one_bit, keep=keep)
                counts = arrays.masked_neighbor_count(
                    actors & ~spoiled, keep
                )
            self.active_nonspoiled[awake] = counts[awake]
        elif step == 2:
            actors = awake & ~self.joined & ~self.dominated
            reaches = self.active_nonspoiled > self.high_threshold
            self.high[actors] = reaches[actors]
            senders = actors & self.high
            heard_counts = self._broadcast_wave(senders, awake, keep)
            self.saw_high[awake] = heard_counts[awake] > 0
        else:  # step == 3: final joins, outputs, and teardown
            joiners = (
                awake
                & ~self.joined
                & ~self.dominated
                & self.high
                & ~self.saw_high
            )
            self.joined |= joiners
            heard_counts = self._broadcast_wave(joiners, awake, keep)
            self.dominated |= (
                awake & ~self.joined & (heard_counts > 0)
            )
            awake_idx = np.nonzero(awake)[0]
            joined = self.joined
            for i in awake_idx:
                self.output_of(i)["joined"] = bool(joined[i])
            self.halt_ranks(awake_idx)


def run_lemma31_iteration(
    graph: nx.Graph,
    delta: int,
    *,
    seed: int = 0,
    config: AlgorithmConfig = DEFAULT_CONFIG,
    ledger: Optional[EnergyLedger] = None,
    size_bound: Optional[int] = None,
) -> PhaseResult:
    """One Lemma 3.1 iteration on ``graph`` with degree parameter ``delta``."""
    n = size_bound if size_bound is not None else graph.number_of_nodes()
    if ledger is None:
        ledger = EnergyLedger(graph.nodes)
    before = ledger.snapshot()
    rounds = sampling_rounds(n, delta, config)
    programs = {
        node: Phase1Alg2Program(delta, rounds, config) for node in graph.nodes
    }
    network = Network(graph, programs, seed=seed, ledger=ledger, size_bound=n)
    network.run_rounds(4 * rounds + 4)

    joined = {v for v, flag in network.outputs("joined").items() if flag}
    dominated: Set[int] = set()
    for node in joined:
        dominated.update(graph.neighbors(node))
    dominated -= joined
    remaining = set(graph.nodes) - joined - dominated

    metrics = RunMetrics.from_snapshots(
        4 * rounds + 4,
        before,
        ledger.snapshot(),
        graph.nodes,
        messages_sent=network.messages_sent,
        messages_delivered=network.messages_delivered,
        messages_dropped=network.messages_dropped,
        total_message_bits=network.total_message_bits,
        max_message_bits=network.max_message_bits,
    )
    sampled = sum(1 for v, f in network.outputs("sampled").items() if f)
    result = PhaseResult(
        joined=joined,
        dominated=dominated,
        remaining=remaining,
        metrics=metrics,
        details={
            "delta": delta,
            "rounds": rounds,
            "sampled_nodes": sampled,
            "residual_max_degree": max_degree(graph.subgraph(remaining)),
        },
    )
    result.check_partition(set(graph.nodes))
    return result


def run_phase1_alg2(
    graph: nx.Graph,
    *,
    seed: int = 0,
    config: AlgorithmConfig = DEFAULT_CONFIG,
    ledger: Optional[EnergyLedger] = None,
    size_bound: Optional[int] = None,
) -> PhaseResult:
    """Corollary 3.2: iterate Lemma 3.1 until the degree falls to the floor.

    Runs ``O(log log Δ)`` iterations, each contracting the degree parameter
    ``Δ → Δ^0.7``, stopping at ``Δ <= polylog(n)`` (scaled floor; the paper
    uses ``log²⁰ n``).
    """
    n = size_bound if size_bound is not None else graph.number_of_nodes()
    if ledger is None:
        ledger = EnergyLedger(graph.nodes)
    before = ledger.snapshot()

    floor = config.alg2_degree_floor(n)
    joined: Set[int] = set()
    dominated: Set[int] = set()
    current = graph
    delta = max_degree(graph)
    total_rounds = 0
    iteration_details = []
    failures = 0
    iteration = 0
    while delta > floor and current.number_of_nodes() > 0:
        iteration += 1
        if iteration > 64:
            raise RuntimeError("Corollary 3.2 recursion failed to converge")
        step = run_lemma31_iteration(
            current,
            delta,
            seed=_derive_seed(seed, iteration),
            config=config,
            ledger=ledger,
            size_bound=n,
        )
        joined |= step.joined
        dominated |= step.dominated
        total_rounds += step.metrics.rounds
        iteration_details.append(step.details)
        current = current.subgraph(step.remaining).copy()
        target = max(1, math.ceil(delta**config.alg2_target_exponent))
        actual = max_degree(current)
        if actual > target:
            failures += 1  # low-probability event; fall back to the truth
            delta = actual
        else:
            delta = target

    metrics = RunMetrics.from_snapshots(
        total_rounds, before, ledger.snapshot(), graph.nodes
    )
    result = PhaseResult(
        joined=joined,
        dominated=dominated,
        remaining=set(current.nodes),
        metrics=metrics,
        details={
            "iterations": iteration,
            "degree_floor": floor,
            "final_delta": delta,
            "contraction_failures": failures,
            "per_iteration": iteration_details,
            "residual_max_degree": max_degree(current),
        },
    )
    result.check_partition(set(graph.nodes))
    return result
