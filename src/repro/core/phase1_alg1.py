"""Phase I of Algorithm 1: low-energy regularized Luby (Lemma 2.1).

Goal: compute an independent set whose removal (with its neighborhood)
leaves a residual graph of maximum degree ``O(log² n)``, in
``O(log Δ · log n)`` rounds with each node awake ``O(log log n)`` rounds.

Structure (Section 2.1 of the paper):

* **Regularized Luby** — iteration ``i`` marks nodes with probability
  ``2^i / (10 Δ)`` for ``c·log n`` rounds; marked nodes with no marked
  neighbor join the MIS. Degrees halve per iteration w.h.p.
* **One-shot marking** — a node is marked at most once ever (afterwards it
  is *spoiled*), so all marking rounds can be sampled before the algorithm
  starts. Invariants A(i)/B(i) bound the spoiled and non-spoiled residual
  neighbors, giving the ``O(log² n)`` residual degree after
  ``log Δ − 2 log log n`` iterations.
* **Awake schedules** — a sampled node wakes only at the ``O(log log n)``
  rounds of its Lemma 2.5 overlap schedule; never-sampled nodes sleep
  through the whole phase.

Engine mapping: each algorithm round is three CONGEST sub-rounds:

* sub-round 0 (*status*): earlier joiners announce; listeners learn they
  are dominated;
* sub-round 1 (*mark*): this round's sampled nodes announce their marks to
  each other;
* sub-round 2 (*join*): unopposed marked nodes join and announce.

Announcing in both sub-rounds 0 and 2 is what closes the two corner cases
of the overlap schedule (the only common round being ``r_u`` itself, or
being ``r_v`` itself); with the paper's single third sub-round, a node
acting at ``r_v`` could otherwise decide before its only common round with
an earlier-acting neighbor delivered the neighbor's outcome.
"""

from __future__ import annotations

from typing import Optional, Set

import networkx as nx
import numpy as np

from ..congest import EnergyLedger, Network, NodeProgram, StateField
from ..congest.vectorized import VectorRound
from ..graphs.properties import max_degree
from ..schedule import schedule_for_round
from .config import DEFAULT_CONFIG, AlgorithmConfig
from .phase_result import PhaseResult

_STATUS = 0
_MARK = 1
_JOIN = 2


class Phase1Alg1Program(NodeProgram):
    """Node program for the regularized-Luby phase."""

    def __init__(
        self,
        iterations: int,
        rounds_per_iteration: int,
        delta: int,
        mark_divisor: float,
    ):
        self.iterations = iterations
        self.rounds_per_iteration = rounds_per_iteration
        self.total_rounds = iterations * rounds_per_iteration
        self.delta = max(1, delta)
        self.mark_divisor = mark_divisor
        self.marked_round: Optional[int] = None
        self.joined = False
        self.dominated = False
        self.saw_marked_neighbor = False

    @classmethod
    def state_schema(cls):
        # ``marked_round`` keeps its Optional[int] instance slot: it is
        # written once in ``on_start`` and the kernel maps None to -1 on
        # load, so a typed column would buy nothing in the hot loop.
        return (
            StateField("joined", np.bool_),
            StateField("dominated", np.bool_),
            StateField("saw_marked_neighbor", np.bool_),
        )

    # ------------------------------------------------------------------
    def _sample_marked_round(self, rng) -> Optional[int]:
        """First round with a heads, marking probability fixed per iteration.

        One geometric draw per iteration instead of a coin per round: the
        node is marked in iteration ``i`` iff a Geometric(p_i) variable
        lands within the iteration's round budget.
        """
        for iteration in range(self.iterations):
            probability = min(
                1.0, (2.0**iteration) / (self.mark_divisor * self.delta)
            )
            if probability <= 0.0:
                continue
            gap = int(rng.geometric(probability))
            if gap <= self.rounds_per_iteration:
                return iteration * self.rounds_per_iteration + (gap - 1)
        return None

    def on_start(self, ctx):
        ctx.output["joined"] = False
        ctx.output["sampled"] = False
        self.marked_round = self._sample_marked_round(ctx.rng)
        if self.marked_round is None:
            ctx.use_wake_schedule([])  # sleeps through the entire phase
            return
        ctx.output["sampled"] = True
        schedule = schedule_for_round(self.total_rounds, self.marked_round)
        wake_rounds = []
        for algo_round in schedule:
            wake_rounds.append(3 * algo_round + _STATUS)
            if algo_round == self.marked_round:
                wake_rounds.append(3 * algo_round + _MARK)
            wake_rounds.append(3 * algo_round + _JOIN)
        ctx.use_wake_schedule(sorted(set(wake_rounds)))

    # ------------------------------------------------------------------
    def on_round(self, ctx):
        algo_round, sub = divmod(ctx.round, 3)
        if sub == _STATUS:
            if self.joined and self.marked_round < algo_round:
                ctx.broadcast(True)
        elif sub == _MARK:
            if algo_round == self.marked_round and not self.dominated:
                ctx.broadcast(True)
        else:  # _JOIN
            if (
                algo_round == self.marked_round
                and not self.dominated
                and not self.saw_marked_neighbor
            ):
                self.joined = True
                ctx.output["joined"] = True
                ctx.broadcast(True)

    def on_receive(self, ctx, messages):
        algo_round, sub = divmod(ctx.round, 3)
        if sub == _MARK:
            if algo_round == self.marked_round:
                self.saw_marked_neighbor = bool(messages)
            return
        # _STATUS and _JOIN sub-rounds carry join announcements.
        if messages and not self.joined:
            self.dominated = True
            ctx.halt()

    @classmethod
    def vector_round(cls, network):
        """Engine capability hook: the sub-round structure vectorizes
        whole-network (the kernel reads only each node's pre-sampled
        ``marked_round``, so heterogeneous tuning parameters are fine)."""
        return _Phase1Alg1VectorRound(network)


class _Phase1Alg1VectorRound(VectorRound):
    """Whole-network regularized-Luby sub-rounds over flat numpy columns.

    Unlike the always-on baselines, this phase is *schedule-driven*: the
    active set of every round comes from the wake calendar the programs
    laid down in ``on_start`` (Lemma 2.5 overlap schedules), so the kernel
    assembles a boolean awake mask per round via
    :meth:`VectorRound.pop_scheduled_awake` and masks every reduction with
    it.  All randomness was consumed in ``on_start`` (the one-shot
    ``marked_round`` sample), so the dense rounds draw nothing and the
    per-node RNG streams need no rewinding.

    Bit-identity hinges on mirroring the scalar receive rules exactly:

    * STATUS/JOIN listeners that hear any join announcement become
      dominated and halt *unless they are joined themselves* — and a node
      that joined this very JOIN sub-round already counts as joined;
    * MARK listeners acting this algorithm round *assign*
      ``saw_marked_neighbor = bool(messages)`` (a node marked in a later
      round than a halted neighbor can overwrite True with False — the
      scalar program does too, and the column must follow).
    """

    supports_schedules = True
    supports_edge_faults = True

    def load(self) -> None:
        arrays = self.arrays
        network = self.network
        n = arrays.n
        self.marked_round = np.full(n, -1, dtype=np.int64)
        columns = self.state_columns
        if columns is not None:
            self.joined = columns["joined"].copy()
            self.dominated = columns["dominated"].copy()
            self.saw_marked = columns["saw_marked_neighbor"].copy()
            for i, node in enumerate(arrays.nodes):
                marked_round = network.programs[node].marked_round
                if marked_round is not None:
                    self.marked_round[i] = marked_round
        else:
            self.joined = np.zeros(n, dtype=bool)
            self.dominated = np.zeros(n, dtype=bool)
            self.saw_marked = np.zeros(n, dtype=bool)
            for i, node in enumerate(arrays.nodes):
                program = network.programs[node]
                if program.marked_round is not None:
                    self.marked_round[i] = program.marked_round
                self.joined[i] = program.joined
                self.dominated[i] = program.dominated
                self.saw_marked[i] = program.saw_marked_neighbor
        self._one_bit = np.ones(n, dtype=np.int64) if self.priced else None

    def flush_state(self) -> None:
        network = self.network
        columns = self.state_columns
        if columns is not None:
            columns["joined"][:] = self.joined
            columns["dominated"][:] = self.dominated
            columns["saw_marked_neighbor"][:] = self.saw_marked
            return
        joined = self.joined
        dominated = self.dominated
        saw = self.saw_marked
        for i, node in enumerate(self.arrays.nodes):
            program = network.programs[node]
            program.joined = bool(joined[i])
            program.dominated = bool(dominated[i])
            program.saw_marked_neighbor = bool(saw[i])

    # ------------------------------------------------------------------
    def step_round(self) -> None:
        awake = self.pop_scheduled_awake()
        self.charge_awake(awake)
        keep = self.fault_keep() if self.faults is not None else None
        algo_round, sub = divmod(self.network.round_index, 3)
        if sub == _STATUS:
            senders = awake & self.joined & (self.marked_round < algo_round)
            self._join_wave(senders, awake, keep)
        elif sub == _MARK:
            acting = awake & (self.marked_round == algo_round)
            senders = acting & ~self.dominated
            heard_counts = self._broadcast_wave(senders, awake, keep)
            self.saw_marked[acting] = heard_counts[acting] > 0
        else:  # _JOIN
            joiners = (
                awake
                & (self.marked_round == algo_round)
                & ~self.dominated
                & ~self.saw_marked
            )
            self.joined |= joiners
            for i in np.nonzero(joiners)[0]:
                self.output_of(i)["joined"] = True
            self._join_wave(joiners, awake, keep)

    def _broadcast_wave(
        self,
        senders: np.ndarray,
        awake: np.ndarray,
        keep: Optional[np.ndarray],
    ) -> np.ndarray:
        """Account one broadcast wave; return per-receiver heard counts
        (surviving copies only when a fault mask is active — one CSR pass
        serves both the heard-test and the delivery count)."""
        if keep is None:
            heard_counts = self.arrays.neighbor_count(senders)
            self.count_broadcasts(
                senders, awake, self._one_bit, sender_counts=heard_counts
            )
        else:
            heard_counts = self.arrays.masked_neighbor_count(senders, keep)
            self.count_broadcasts(senders, awake, self._one_bit, keep=keep)
        return heard_counts

    def _join_wave(
        self,
        senders: np.ndarray,
        awake: np.ndarray,
        keep: Optional[np.ndarray],
    ) -> None:
        """Deliver join announcements: awake non-joined listeners that hear
        one become dominated and halt (freshly-joined nodes are immune)."""
        heard_counts = self._broadcast_wave(senders, awake, keep)
        victims = np.nonzero(
            awake & ~self.joined & (heard_counts > 0)
        )[0]
        if victims.size:
            self.dominated[victims] = True
            self.halt_ranks(victims)


def run_phase1_alg1(
    graph: nx.Graph,
    *,
    seed: int = 0,
    config: AlgorithmConfig = DEFAULT_CONFIG,
    ledger: Optional[EnergyLedger] = None,
    size_bound: Optional[int] = None,
) -> PhaseResult:
    """Run Lemma 2.1's phase on ``graph``; see :class:`PhaseResult`.

    The metrics include one trailing round in which every node is awake to
    exchange joined-status — the hand-off the paper performs at the start
    of the (all-awake) Phase II.
    """
    n = size_bound if size_bound is not None else graph.number_of_nodes()
    delta = max_degree(graph)
    iterations = config.phase1_iterations(n, delta)
    rounds_per_iteration = config.phase1_rounds_per_iteration(n)
    total_rounds = iterations * rounds_per_iteration

    if ledger is None:
        ledger = EnergyLedger(graph.nodes)
    before = ledger.snapshot()

    if total_rounds == 0 or graph.number_of_nodes() == 0:
        from ..congest.metrics import RunMetrics

        metrics = RunMetrics.from_snapshots(0, before, ledger.snapshot(),
                                            graph.nodes)
        result = PhaseResult(
            joined=set(),
            dominated=set(),
            remaining=set(graph.nodes),
            metrics=metrics,
            details={
                "iterations": 0,
                "rounds_per_iteration": 0,
                "delta": delta,
                "sampled_nodes": 0,
                "residual_max_degree": delta,
            },
        )
        return result

    programs = {
        node: Phase1Alg1Program(
            iterations, rounds_per_iteration, delta, config.phase1_mark_divisor
        )
        for node in graph.nodes
    }
    network = Network(
        graph, programs, seed=seed, ledger=ledger, size_bound=n
    )
    network.run_rounds(3 * total_rounds)

    # Hand-off round: everyone wakes once so dominated status is known.
    ledger.charge_many(graph.nodes, 1)

    joined = {v for v, flag in network.outputs("joined").items() if flag}
    dominated: Set[int] = set()
    for node in joined:
        dominated.update(graph.neighbors(node))
    dominated -= joined
    remaining = set(graph.nodes) - joined - dominated

    from ..congest.metrics import RunMetrics

    metrics = RunMetrics.from_snapshots(
        3 * total_rounds + 1,
        before,
        ledger.snapshot(),
        graph.nodes,
        messages_sent=network.messages_sent,
        messages_delivered=network.messages_delivered,
        messages_dropped=network.messages_dropped,
        total_message_bits=network.total_message_bits,
        max_message_bits=network.max_message_bits,
    )
    sampled = sum(1 for v, f in network.outputs("sampled").items() if f)
    result = PhaseResult(
        joined=joined,
        dominated=dominated,
        remaining=remaining,
        metrics=metrics,
        details={
            "iterations": iterations,
            "rounds_per_iteration": rounds_per_iteration,
            "delta": delta,
            "sampled_nodes": sampled,
            "residual_max_degree": max_degree(graph.subgraph(remaining)),
        },
    )
    result.check_partition(set(graph.nodes))
    return result
