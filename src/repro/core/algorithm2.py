"""Algorithm 2 (Theorem 1.2): MIS in ``O(log n · log log n · log* n)`` time
and ``O(log² log n)`` energy.

Composition (Section 3.3): the degree-reduction Phase I of Lemma 3.1 /
Corollary 3.2 (iterating Δ → Δ^0.7 down to a polylog floor), the same
Phase II as Algorithm 1, and Phase III with the [BM21a]-style trade-off —
Linial coloring run for ``O(log* n)`` rounds down to a constant palette, so
iterating the color classes costs ``O(1)`` instead of ``O(log log n)``
rounds per Borůvka iteration.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from ..congest import EnergyLedger, channel_scope
from ..congest.metrics import RunMetrics
from ..obs import current_instrument, section_scope
from ..result import MISResult
from .config import DEFAULT_CONFIG, AlgorithmConfig
from .phase1_alg2 import run_phase1_alg2
from .phase2 import run_phase2
from .phase3 import _derive_seed, run_phase3


def algorithm2(
    graph: nx.Graph,
    seed: int = 0,
    *,
    config: AlgorithmConfig = DEFAULT_CONFIG,
    ledger: Optional[EnergyLedger] = None,
    size_bound: Optional[int] = None,
    channel=None,
) -> MISResult:
    """Compute an MIS of ``graph`` with Algorithm 2 of the paper.

    Same contract as :func:`repro.core.algorithm1.algorithm1`; the
    difference is the phase mix — faster overall rounds at slightly higher
    (``log² log n`` vs ``log log n``) energy.
    """
    if graph.number_of_nodes() == 0:
        raise ValueError("algorithm2 needs a non-empty graph")
    n = size_bound if size_bound is not None else graph.number_of_nodes()
    if ledger is None:
        ledger = EnergyLedger(graph.nodes)

    instrument = current_instrument()
    prof = instrument.profiler
    with channel_scope(channel):
        instrument.on_phase_start("phase1")
        with section_scope(prof, "phase1"):
            phase1 = run_phase1_alg2(
                graph,
                seed=_derive_seed(seed, 101),
                config=config,
                ledger=ledger,
                size_bound=n,
            )
        instrument.on_phase_end("phase1", phase1.metrics)

        residual = graph.subgraph(phase1.remaining).copy()
        instrument.on_phase_start("phase2")
        with section_scope(prof, "phase2"):
            phase2 = run_phase2(
                residual,
                seed=_derive_seed(seed, 102),
                config=config,
                ledger=ledger,
                size_bound=n,
            )
        instrument.on_phase_end("phase2", phase2.metrics)

        instrument.on_phase_start("phase3")
        with section_scope(prof, "phase3"):
            phase3 = run_phase3(
                phase2.components,
                seed=_derive_seed(seed, 103),
                config=config,
                ledger=ledger,
                size_bound=n,
                variant="alg2",
            )
        instrument.on_phase_end("phase3", phase3.metrics)

    mis = phase1.joined | phase2.joined | phase3.joined
    metrics = RunMetrics.combine_sequential(
        {
            "phase1": phase1.metrics,
            "phase2": phase2.metrics,
            "phase3": phase3.metrics,
        },
        ledger=ledger,
    )
    return MISResult(
        mis=mis,
        metrics=metrics,
        algorithm="algorithm2",
        details={
            "phase1": phase1.details,
            "phase2": phase2.details,
            "phase3": phase3.details,
            "undecided": sorted(phase3.remaining),
        },
    )
