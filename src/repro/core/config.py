"""Tunable constants for the paper's algorithms.

The paper's constants are chosen to drive ``1 - n^{-c}`` success proofs at
asymptotic ``n``; running the same code at simulation scales needs the same
*structure* with friendlier constants. Every such scaling lives here, with
the paper's value noted, so experiments (and ablations) can dial them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


def log2n(n: int) -> float:
    return math.log2(max(2, n))


def loglog2n(n: int) -> float:
    return math.log2(max(2.0, log2n(n)))


@dataclass(frozen=True)
class AlgorithmConfig:
    """Knobs for Algorithms 1 and 2 and the Section 4 extension."""

    # ---- Phase I of Algorithm 1 (Lemma 2.1) --------------------------
    #: rounds per iteration = round(phase1_round_factor * log2 n)
    #: (paper: c·log n with a large constant c).
    phase1_round_factor: float = 1.0
    #: iterations = log2 Δ − phase1_truncation * loglog n (paper: 2).
    phase1_truncation: float = 2.0
    #: marking probability in iteration i is 2^i / (mark_divisor · Δ)
    #: (paper: divisor 10).
    phase1_mark_divisor: float = 10.0

    # ---- Phase II (Lemma 2.6) ----------------------------------------
    #: Ghaffari-2016 shattering iterations = factor * log2(Δ₂ + 2).
    #: Calibrated so the residue genuinely shatters into small components
    #: (factor 4 decides everything and Phase III would never run).
    phase2_shatter_factor: float = 2.0
    #: cluster ball radius = ceil(factor * (loglog n + 1)).
    phase2_radius_factor: float = 1.0

    # ---- Phase III (Lemmas 2.7/2.8) ----------------------------------
    #: parallel executions K = max(2, ceil(factor * log2 n)).
    phase3_execution_factor: float = 1.0
    #: per-execution iterations = max(4, ceil(factor * log2(size + 2))).
    phase3_iteration_factor: float = 1.5
    #: Linial reduction rounds in the matching step (Algorithm 1 uses 2;
    #: Algorithm 2 sets this to None and uses the constant target below).
    phase3_linial_rounds: int = 2
    #: re-runs of the parallel-execution block if no execution succeeded.
    phase3_retries: int = 3

    # ---- Phase I of Algorithm 2 (Lemma 3.1 / Corollary 3.2) ----------
    #: degree floor below which the Δ → Δ^0.7 recursion stops:
    #: floor = log2(n) ** alg2_floor_exponent (paper: exponent 20).
    alg2_floor_exponent: float = 2.0
    #: rounds per Lemma 3.1 iteration = max(4, round(factor * log2 n)).
    alg2_round_factor: float = 1.0
    #: tagging probability Δ^-alg2_tag_exponent (paper: 0.5).
    alg2_tag_exponent: float = 0.5
    #: pre-marking probability 1/(2·Δ^alg2_mark_exponent) (paper: 0.6).
    alg2_mark_exponent: float = 0.6
    #: recursion target degree Δ^alg2_target_exponent (paper: 0.7).
    alg2_target_exponent: float = 0.7
    #: end-of-iteration high-degree threshold 4·Δ^mark_exponent (paper: 4).
    alg2_high_degree_factor: float = 4.0

    # ---- Algorithm 2 Phase III trade-off (Section 3.2) ---------------
    #: target palette for the O(log* n)-round coloring (O(1) colors;
    #: 121 = next_prime(10·1+1)² is the Linial fixed point for Δ=10).
    alg2_linial_target_palette: int = 121

    # ---- Section 4 (constant average energy) -------------------------
    #: Lemma 4.2 iterations = log2 Δ₂ − factor·logloglog n (paper: 100).
    avg_truncation: float = 1.0
    #: Lemma 4.2 rounds per iteration = ceil(factor · loglog n) (paper: C).
    avg_round_factor: float = 3.0
    #: failure thresholds (paper: C log log n and Δ/2^(i+1)).
    avg_fail_factor: float = 6.0
    #: Lemma 4.5-substitute sweep: rounds per degree-halving iteration
    #: = max(2, ceil(factor · loglog n)).
    sparsify_round_factor: float = 2.0

    def with_overrides(self, **kwargs) -> "AlgorithmConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)

    # ---- Derived quantities ------------------------------------------
    def phase1_iterations(self, n: int, delta: int) -> int:
        if delta <= 1:
            return 0
        value = math.floor(
            math.log2(delta) - self.phase1_truncation * loglog2n(n)
        )
        return max(0, value)

    def phase1_rounds_per_iteration(self, n: int) -> int:
        return max(1, round(self.phase1_round_factor * log2n(n)))

    def alg2_degree_floor(self, n: int) -> float:
        return log2n(n) ** self.alg2_floor_exponent

    def alg2_rounds(self, n: int) -> int:
        return max(4, round(self.alg2_round_factor * log2n(n)))

    def phase2_shatter_iterations(self, n: int, delta: int) -> int:
        return max(1, math.ceil(self.phase2_shatter_factor * math.log2(delta + 2)))

    def phase2_radius(self, n: int) -> int:
        return max(1, math.ceil(self.phase2_radius_factor * (loglog2n(n) + 1)))

    def phase3_executions(self, n: int) -> int:
        return max(2, math.ceil(self.phase3_execution_factor * log2n(n)))

    def phase3_iterations(self, component_size: int) -> int:
        return max(
            4,
            math.ceil(
                self.phase3_iteration_factor * math.log2(component_size + 2)
            ),
        )


DEFAULT_CONFIG = AlgorithmConfig()
