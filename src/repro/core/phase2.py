"""Phase II: shattering the poly(log n)-degree residual graph (Lemma 2.6).

The residual graph left by Phase I has maximum degree ``Δ₂ = O(log² n)``
(Algorithm 1) or ``O(log²⁰ n)`` (Algorithm 2). Running Ghaffari's MIS
algorithm for ``O(log Δ₂)`` rounds with *all nodes awake* leaves every node
undecided only with probability ``1/poly(Δ₂)``, which shatters the graph:
undecided nodes form small connected components. The phase then groups each
component's nodes into clusters of diameter ``O(log log n)``, each with a
rooted spanning tree — the structure Phase III consumes.

Since ``Δ₂`` is polylogarithmic, keeping every node awake for the whole
phase costs only ``O(log Δ₂) = O(log log n)`` energy, which the paper simply
absorbs into the budget.

Clustering substitution (documented in DESIGN.md): the paper inherits its
clustering from the internals of [Gha16]; we build it directly with
iterated minimum-id ball carving of radius ``Θ(log log n)``: local minima
within the radius become centers, a first-adoption multi-source BFS builds
connected clusters with BFS spanning trees, and leftover nodes repeat. This
yields exactly the interface Lemma 2.6 promises — connected clusters of
bounded diameter with rooted trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import networkx as nx

from ..baselines.ghaffari import ghaffari_shatter
from ..cluster import Choreography, ClusterState, RootedTree, state_from_trees
from ..congest import EnergyLedger
from ..congest.metrics import RunMetrics
from ..graphs.properties import max_degree
from .config import DEFAULT_CONFIG, AlgorithmConfig
from .phase_result import PhaseResult


@dataclass
class Phase2Result(PhaseResult):
    """Phase II output: the usual partition plus per-component clusterings."""

    components: List[ClusterState] = field(default_factory=list)


def ball_carving(
    graph: nx.Graph, radius: int, choreography: Choreography
) -> Dict[int, RootedTree]:
    """Cluster ``graph`` into connected balls of radius <= ``radius``.

    Iterated min-id carving: per sweep, every node that holds the minimum
    id within its ``radius``-ball of still-unclustered nodes becomes a
    center; a first-adoption multi-source BFS (capped at ``radius``) grows
    connected clusters around the centers. Unreached nodes go to the next
    sweep. Every sweep clusters at least the globally minimal unclustered
    node, so the loop terminates.

    All unclustered nodes are awake during a sweep (2·radius rounds), which
    matches the paper's "all nodes awake in Phase II" accounting.
    """
    if radius < 1:
        raise ValueError(f"radius must be >= 1, got {radius}")
    trees: Dict[int, RootedTree] = {}
    unclustered: Set[int] = set(graph.nodes)
    sweeps = 0
    while unclustered:
        sweeps += 1
        if sweeps > graph.number_of_nodes() + 1:
            raise RuntimeError("ball carving failed to make progress")

        # Min-id relaxation: after `radius` rounds each node knows the
        # minimum id within its radius-ball (restricted to unclustered).
        best = {node: node for node in unclustered}
        for _ in range(radius):
            updated = dict(best)
            for node in unclustered:
                for neighbor in graph.neighbors(node):
                    if neighbor in unclustered and best[neighbor] < updated[node]:
                        updated[node] = best[neighbor]
            best = updated
        choreography.awake_all(unclustered, radius)

        centers = sorted(node for node in unclustered if best[node] == node)
        owner: Dict[int, int] = {center: center for center in centers}
        parent: Dict[int, Optional[int]] = {center: None for center in centers}
        depth: Dict[int, int] = {center: 0 for center in centers}
        frontier = centers
        for distance in range(1, radius + 1):
            candidates: Dict[int, tuple] = {}
            for via in frontier:
                for node in graph.neighbors(via):
                    if node in unclustered and node not in owner:
                        key = (owner[via], via)
                        if node not in candidates or key < candidates[node]:
                            candidates[node] = key
            if not candidates:
                break
            for node in sorted(candidates):
                center, via = candidates[node]
                owner[node] = center
                parent[node] = via
                depth[node] = distance
            frontier = sorted(candidates)
        choreography.awake_all(unclustered, radius)

        for center in centers:
            members = [node for node, c in owner.items() if c == center]
            tree = RootedTree(
                root=center,
                parent={node: parent[node] for node in members},
                depth={node: depth[node] for node in members},
            )
            tree.validate()
            trees[center] = tree
        unclustered -= set(owner)
    return trees


def run_phase2(
    graph: nx.Graph,
    *,
    seed: int = 0,
    config: AlgorithmConfig = DEFAULT_CONFIG,
    ledger: Optional[EnergyLedger] = None,
    size_bound: Optional[int] = None,
) -> Phase2Result:
    """Run Lemma 2.6's phase on the residual graph.

    Returns the phase partition plus one :class:`ClusterState` per connected
    component of the undecided residue.
    """
    n = size_bound if size_bound is not None else graph.number_of_nodes()
    if ledger is None and graph.number_of_nodes() > 0:
        ledger = EnergyLedger(graph.nodes)

    if graph.number_of_nodes() == 0:
        empty = RunMetrics(rounds=0, max_energy=0, average_energy=0.0,
                           total_energy=0)
        return Phase2Result(
            joined=set(), dominated=set(), remaining=set(), metrics=empty,
            details={"components": 0}, components=[],
        )

    before = ledger.snapshot()
    delta2 = max_degree(graph)
    iterations = config.phase2_shatter_iterations(n, delta2)
    joined, undecided, network = ghaffari_shatter(
        graph, iterations, seed=seed, ledger=ledger, size_bound=n
    )
    dominated = set(graph.nodes) - joined - undecided
    shatter_rounds = network.metrics().rounds

    residue = graph.subgraph(undecided).copy()
    choreography = Choreography(ledger)
    radius = config.phase2_radius(n)
    trees = (
        ball_carving(residue, radius, choreography) if undecided else {}
    )

    components: List[ClusterState] = []
    for component in sorted(
        nx.connected_components(residue), key=lambda c: min(c)
    ):
        component_graph = residue.subgraph(component).copy()
        component_trees = {
            center: tree
            for center, tree in trees.items()
            if center in component
        }
        components.append(state_from_trees(component_graph, component_trees))

    metrics = RunMetrics.from_snapshots(
        shatter_rounds + choreography.clock,
        before,
        ledger.snapshot(),
        graph.nodes,
        messages_sent=network.messages_sent,
        messages_delivered=network.messages_delivered,
        messages_dropped=network.messages_dropped,
        total_message_bits=network.total_message_bits,
        max_message_bits=network.max_message_bits,
    )
    result = Phase2Result(
        joined=joined,
        dominated=dominated,
        remaining=undecided,
        metrics=metrics,
        details={
            "delta2": delta2,
            "shatter_iterations": iterations,
            "cluster_radius": radius,
            "components": len(components),
            "largest_component": max(
                (len(c.graph) for c in components), default=0
            ),
            "cluster_count": sum(c.cluster_count for c in components),
        },
        components=components,
    )
    result.check_partition(set(graph.nodes))
    return result
