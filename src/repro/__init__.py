"""repro — reproduction of "Distributed MIS with Low Energy and Time
Complexities" (Ghaffari & Portmann, PODC 2023).

Public API
----------
The two headline algorithms and their constant-average-energy variants::

    import repro
    graph = repro.graphs.random_geometric(1000, seed=0)
    result = repro.algorithm1(graph, seed=0)
    print(result.rounds, result.max_energy, result.average_energy)

Baselines (:func:`luby_mis`, :func:`ghaffari_mis`, greedy variants) and the
verification/experiment tooling live in the subpackages re-exported below.
"""

from . import analysis, baselines, cluster, congest, dynamic, graphs, schedule
from .baselines import ghaffari_mis, greedy_mis, luby_mis
from .core import (
    DEFAULT_CONFIG,
    AlgorithmConfig,
    algorithm1,
    algorithm1_constant_average_energy,
    algorithm2,
    algorithm2_constant_average_energy,
)
from .result import MISResult

__version__ = "1.0.0"

__all__ = [
    "AlgorithmConfig",
    "DEFAULT_CONFIG",
    "MISResult",
    "algorithm1",
    "algorithm1_constant_average_energy",
    "algorithm2",
    "algorithm2_constant_average_energy",
    "analysis",
    "baselines",
    "cluster",
    "congest",
    "dynamic",
    "ghaffari_mis",
    "graphs",
    "greedy_mis",
    "luby_mis",
    "schedule",
]
