"""Experiment registry: every theorem-derived experiment from DESIGN.md.

Each experiment returns ``(report, data)``: a human-readable text block and
the raw numbers. ``python -m repro.harness --experiment E1`` prints the
report; ``--all`` runs the full battery (EXPERIMENTS.md records one such
run). ``quick=True`` shrinks sizes/seeds for smoke runs; ``--jobs N`` (or
``run_all(n_jobs=N)`` / ``run_experiment(..., n_jobs=N)``) fans every
sweep/measure batch inside the experiments out to a process pool.

Beyond the theorem experiments (E*) and ablations (A*), the registry holds
C1 (awake complexity across the congest/local/broadcast channel models),
D1 (dynamic MIS energy vs churn rate, covering ``repro.dynamic``), and
F1 (MIS quality/energy degradation under seeded channel faults, covering
``repro.faults``).
"""

from __future__ import annotations

import math
from time import perf_counter
from typing import Callable, Dict, List, Tuple

import networkx as nx
import numpy as np

from .. import graphs
from ..obs import get_logger
from ..analysis import (
    ascii_chart,
    best_model,
    fit_model,
    log2_safe,
    loglog,
)
from ..baselines import luby_mis
from ..cluster import Choreography, merge_component_clusters, singleton_clusters
from ..congest import EnergyLedger
from ..core import (
    DEFAULT_CONFIG,
    run_lemma31_iteration,
    run_phase1_alg1,
    run_phase2,
)
from ..schedule import schedule_for_round, schedule_size_bound, verify_overlap_property
from .parallel import parallel_map, use_jobs
from .runner import measure_dynamic_many, measure_many
from .sweep import series, sweep
from .tables import format_table, section

ExperimentFn = Callable[[bool], Tuple[str, dict]]

REGISTRY: Dict[str, ExperimentFn] = {}
DESCRIPTIONS: Dict[str, str] = {}

_log = get_logger("harness.experiments")


def experiment(name: str, description: str):
    def wrap(fn: ExperimentFn) -> ExperimentFn:
        REGISTRY[name] = fn
        DESCRIPTIONS[name] = description
        return fn

    return wrap


def _sizes(quick: bool) -> List[int]:
    return [128, 256, 512] if quick else [256, 512, 1024, 2048, 4096]


def _seeds(quick: bool) -> int:
    return 2 if quick else 3


def _scaling_report(
    name: str,
    claim_time: str,
    claim_energy: str,
    algorithm: str,
    quick: bool,
) -> Tuple[str, dict]:
    sizes = _sizes(quick)
    seeds = _seeds(quick)
    points = sweep([algorithm, "luby"], sizes, seeds=seeds)
    rows = []
    for n in sizes:
        alg_rounds = series(points, algorithm, "rounds")[n]
        alg_energy = series(points, algorithm, "max_energy")[n]
        luby_rounds = series(points, "luby", "rounds")[n]
        luby_energy = series(points, "luby", "max_energy")[n]
        rows.append(
            [n, alg_rounds, alg_energy, luby_rounds, luby_energy]
        )
    xs = sizes
    alg_energy = [series(points, algorithm, "max_energy")[n] for n in xs]
    luby_energy = [series(points, "luby", "max_energy")[n] for n in xs]
    alg_rounds = [series(points, algorithm, "rounds")[n] for n in xs]
    energy_fit = fit_model(xs, alg_energy, "loglog")
    luby_energy_fit = fit_model(xs, luby_energy, "log")
    time_fit = best_model(
        xs,
        alg_rounds,
        candidates=("const", "loglog", "log", "log_times_loglog", "log_sq"),
    )
    span = xs[-1] / xs[0]
    body = format_table(
        ["n", f"{algorithm} rounds", f"{algorithm} energy",
         "luby rounds", "luby energy"],
        rows,
    )
    body += (
        f"\n\nPaper claim: time {claim_time}, energy {claim_energy}."
        f"\nEnergy growth over a {span:.0f}x size span:"
        f" {algorithm} x{alg_energy[-1] / max(1, alg_energy[0]):.2f},"
        f" luby x{luby_energy[-1] / max(1, luby_energy[0]):.2f}"
        f"\n{algorithm} energy ~ a·loglog n + b: a={energy_fit.scale:.1f},"
        f" b={energy_fit.offset:.1f} (R²={energy_fit.r_squared:.2f})"
        f"\nluby energy ~ a·log n + b:        a={luby_energy_fit.scale:.1f},"
        f" b={luby_energy_fit.offset:.1f} (R²={luby_energy_fit.r_squared:.2f})"
        f"\nBest-fit growth of {algorithm} rounds: {time_fit.model}"
        "\nNote: small-n points include the Phase II/III turn-on transient"
        "\n(residual components growing from trivial to typical); see E8 for"
        "\nthe per-phase plateau evidence."
    )
    data = {
        "points": points,
        "energy_fit": energy_fit,
        "luby_energy_fit": luby_energy_fit,
        "time_fit": time_fit,
    }
    return section(name, body), data


@experiment("E1", "Theorem 1.1: Algorithm 1 time/energy scaling")
def experiment_e1(quick: bool = False):
    return _scaling_report(
        "E1 — Theorem 1.1 (Algorithm 1)",
        "O(log² n)",
        "O(log log n)",
        "algorithm1",
        quick,
    )


@experiment("E2", "Theorem 1.2: Algorithm 2 time/energy scaling")
def experiment_e2(quick: bool = False):
    return _scaling_report(
        "E2 — Theorem 1.2 (Algorithm 2)",
        "O(log n · log log n · log* n)",
        "O(log² log n)",
        "algorithm2",
        quick,
    )


@experiment("E3", "Luby baseline and the headline comparison")
def experiment_e3(quick: bool = False):
    sizes = _sizes(quick)
    seeds = _seeds(quick)
    points = sweep(["luby", "algorithm1", "algorithm2"], sizes, seeds=seeds)
    rows = []
    for n in sizes:
        rows.append([
            n,
            series(points, "luby", "rounds")[n],
            series(points, "luby", "max_energy")[n],
            series(points, "algorithm1", "max_energy")[n],
            series(points, "algorithm2", "max_energy")[n],
        ])
    luby_fit = fit_model(
        sizes, [series(points, "luby", "max_energy")[n] for n in sizes], "log"
    )
    # Fit Algorithm 1 on the tail sizes only: the small-n points reflect the
    # Phase II/III machinery "turning on" (components grow from trivial to
    # typical), not the asymptotic loglog growth.
    tail = sizes[-3:] if len(sizes) >= 3 else sizes
    alg1_fit = fit_model(
        tail,
        [series(points, "algorithm1", "max_energy")[n] for n in tail],
        "loglog",
    )
    # Search for the crossover only beyond the measured range (backward
    # extrapolation of the tail fit is meaningless).
    start_exponent = math.ceil(math.log2(max(sizes))) + 1
    crossover = None
    for exponent in range(start_exponent, 2000):
        n = 2.0**exponent
        if alg1_fit.predict(n) < luby_fit.predict(n):
            crossover = exponent
            break
    body = format_table(
        ["n", "luby rounds", "luby energy", "alg1 energy", "alg2 energy"],
        rows,
    )
    body += "\n\n" + ascii_chart(
        {
            "luby": series(points, "luby", "max_energy"),
            "alg1": series(points, "algorithm1", "max_energy"),
            "alg2": series(points, "algorithm2", "max_energy"),
        },
        title="max awake rounds vs n",
        height=12,
    )
    body += (
        "\n\nLuby energy fit (a·log n + b):   "
        f"a={luby_fit.scale:.2f}, b={luby_fit.offset:.2f}, R²={luby_fit.r_squared:.3f}"
        "\nAlg1 tail energy fit (a·loglog n + b): "
        f"a={alg1_fit.scale:.2f}, b={alg1_fit.offset:.2f}"
        "\n(small-n algorithm-1 energy reflects phase machinery turning on,"
        "\n so the loglog fit uses the largest sizes only)"
    )
    if crossover is not None:
        body += (
            f"\nExtrapolated energy crossover (alg1 beats luby): n ≈ 2^{crossover}"
            "\n(with our simulation-scale constants; the paper's claim is the"
            "\n growth-rate separation, which the fits above measure)"
        )
    else:
        body += (
            "\nNo crossover within the extrapolation horizon: at simulation"
            "\nscales the measured algorithm-1 energy still includes the"
            "\ncomponent-size turn-on transient (see E8 for the per-phase"
            "\nplateau evidence), so the tail slope overestimates the"
            "\nasymptotic constant."
        )
    return section("E3 — Baseline comparison", body), {
        "points": points,
        "luby_fit": luby_fit,
        "alg1_fit": alg1_fit,
        "crossover_exponent": crossover,
    }


@experiment("E4", "Section 4: constant node-averaged energy")
def experiment_e4(quick: bool = False):
    sizes = _sizes(quick)
    seeds = _seeds(quick)
    algorithms = ["luby", "algorithm1", "algorithm1_avg", "algorithm2_avg"]
    points = sweep(algorithms, sizes, seeds=seeds)
    rows = []
    for n in sizes:
        rows.append([
            n,
            series(points, "luby", "average_energy")[n],
            series(points, "algorithm1", "average_energy")[n],
            series(points, "algorithm1_avg", "average_energy")[n],
            series(points, "algorithm2_avg", "average_energy")[n],
        ])
    fits = {}
    for algorithm in algorithms:
        ys = [series(points, algorithm, "average_energy")[n] for n in sizes]
        fits[algorithm] = best_model(sizes, ys, candidates=("const", "loglog", "log"))
    body = format_table(
        ["n", "luby avg", "alg1 (plain) avg", "alg1_avg avg", "alg2_avg avg"],
        rows,
    )
    body += "\n\nBest-fit growth of node-averaged energy:"
    for algorithm in algorithms:
        body += f"\n  {algorithm}: {fits[algorithm].model}"
    body += (
        "\n\nSection 4's claim, measured: the augmented variants keep the"
        "\nnode-averaged energy flat and below the plain Algorithm 1, whose"
        "\naverage rises with the Phase II/III participation; Luby's average"
        "\nstays low on random graphs because most nodes decide quickly —"
        "\nthe paper's contrast is about guarantees (O(1) average alongside"
        "\npolyloglog worst case), which the augmented rows exhibit."
    )
    return section("E4 — Constant average energy", body), {
        "points": points,
        "fits": fits,
    }


def _e5_task(n: int) -> dict:
    """One Phase-I degree-reduction cell (module-level for process pools)."""
    degree = min(n / 2.5, 4.0 * log2_safe(n) ** 2)
    graph = graphs.gnp_expected_degree(n, degree, seed=n)
    result = run_phase1_alg1(graph, seed=0, size_bound=n)
    return {
        "n": n,
        "degree": degree,
        "details": result.details,
        "max_energy": result.metrics.max_energy,
    }


@experiment("E5", "Lemma 2.1: Phase I residual degree O(log² n)")
def experiment_e5(quick: bool = False):
    sizes = [200, 400] if quick else [200, 400, 800, 1600]
    rows = []
    data = []
    for cell in parallel_map(_e5_task, sizes):
        n = cell["n"]
        bound = 4 * log2_safe(n) ** 2
        rows.append([
            n,
            int(cell["degree"]),
            cell["details"]["iterations"],
            cell["details"]["residual_max_degree"],
            f"{bound:.0f}",
            cell["max_energy"],
        ])
        data.append(cell["details"])
    body = format_table(
        ["n", "input Δ", "iterations", "residual Δ", "4·log² n", "energy"],
        rows,
    )
    body += "\n\nPaper claim: residual degree O(log² n), energy O(log log n)."
    return section("E5 — Phase I degree reduction", body), {"rows": data}


@experiment("E6", "Lemma 2.5: overlap schedule size and property")
def experiment_e6(quick: bool = False):
    totals = [2**k for k in (4, 6, 8, 10)] if quick else [2**k for k in range(4, 15, 2)]
    rows = []
    for total in totals:
        max_size = max(
            len(schedule_for_round(total, k))
            for k in range(0, total, max(1, total // 64))
        )
        rows.append([total, max_size, schedule_size_bound(total)])
    verified = all(verify_overlap_property(t) for t in (16, 64, 256))
    body = format_table(["T", "max |S_k| (sampled)", "⌈log T⌉+1 bound"], rows)
    body += f"\n\nExhaustive overlap property verified for T in {{16, 64, 256}}: {verified}"
    return section("E6 — Awake-overlap schedules", body), {"verified": verified}


def _e7_task(n: int) -> dict:
    """One shattering cell (module-level for process pools)."""
    graph = graphs.gnp_expected_degree(n, max(8.0, n**0.5), seed=n)
    result = run_phase2(graph, seed=0, size_bound=n)
    return {"n": n, "details": result.details,
            "undecided": len(result.remaining)}


@experiment("E7", "Lemma 2.6: shattering leaves small components")
def experiment_e7(quick: bool = False):
    sizes = [256, 512] if quick else [256, 512, 1024, 2048, 4096]
    rows = []
    data = []
    for cell in parallel_map(_e7_task, sizes):
        n = cell["n"]
        bound = 4 * log2_safe(n) ** 2
        rows.append([
            n,
            cell["details"]["delta2"],
            cell["undecided"],
            cell["details"]["largest_component"],
            f"{bound:.0f}",
            cell["details"]["components"],
        ])
        data.append(cell["details"])
    body = format_table(
        ["n", "Δ₂", "undecided", "largest comp", "4·log² n", "#components"],
        rows,
    )
    body += "\n\nPaper claim: every component has poly(log n) nodes."
    return section("E7 — Shattering", body), {"rows": data}


@experiment("E8", "Lemma 2.8: cluster merging builds an O(log n)-diameter tree")
def experiment_e8(quick: bool = False):
    sizes = [64, 128] if quick else [64, 128, 256, 512]
    rows = []
    data = []
    for n in sizes:
        graph = graphs.gnp(n, min(0.9, 4.0 / n * log2_safe(n)), seed=n)
        component = max(nx.connected_components(graph), key=len)
        sub = graph.subgraph(component).copy()
        state = singleton_clusters(sub)
        ledger = EnergyLedger(sub.nodes)
        choreography = Choreography(ledger)
        tree, report = merge_component_clusters(state, choreography)
        rows.append([
            len(component),
            report.iterations,
            f"{2 * math.ceil(log2_safe(len(component))):.0f}",
            tree.height,
            ledger.max_energy(),
        ])
        data.append(report)
    body = format_table(
        ["component size", "iterations", "2·⌈log s⌉ bound", "tree height",
         "max energy"],
        rows,
    )
    body += (
        "\n\nPaper claim: O(log #clusters) iterations, tree diameter O(log n),"
        "\nO(1) awake rounds per node per iteration."
    )
    return section("E8 — Cluster merging", body), {"reports": data}


def _e9_task(task) -> dict:
    """One Lemma-3.1 contraction trial (module-level for process pools)."""
    delta, seed = task
    n = max(400, 4 * delta)
    graph = graphs.planted_max_degree(n, delta, seed=delta + seed)
    result = run_lemma31_iteration(graph, delta, seed=seed, size_bound=n)
    return {
        "residual": result.details["residual_max_degree"],
        "energy": result.metrics.max_energy,
    }


@experiment("E9", "Lemma 3.1: one iteration contracts Δ toward Δ^0.7")
def experiment_e9(quick: bool = False):
    deltas = [60, 120] if quick else [60, 120, 200, 300]
    seeds = 2 if quick else 3
    rows = []
    data = []
    trials = iter(parallel_map(
        _e9_task,
        [(delta, seed) for delta in deltas for seed in range(seeds)],
    ))
    for delta in deltas:
        n = max(400, 4 * delta)
        residuals = []
        energy = 0
        for seed in range(seeds):
            trial = next(trials)
            residuals.append(trial["residual"])
            energy = max(energy, trial["energy"])
        residuals.sort()
        rows.append([
            n,
            delta,
            residuals[len(residuals) // 2],
            f"{min(residuals)}..{max(residuals)}",
            f"{delta ** 0.7:.0f}",
            f"{8 * delta ** 0.6:.0f}",
            energy,
        ])
        data.append({"delta": delta, "residuals": residuals})
    body = format_table(
        ["n", "Δ", "median residual Δ", "range", "Δ^0.7", "8·Δ^0.6",
         "energy"],
        rows,
    )
    body += (
        "\n\nPaper claim: residual degree ≤ 8·Δ^0.6 ≪ Δ^0.7 w.h.p. (the"
        "\nw.h.p. part needs Δ ≥ log²⁰ n; at our Δ the contraction holds in"
        "\nthe median with occasional above-target seeds, which the"
        "\nCorollary 3.2 driver absorbs by falling back to the true degree)."
    )
    return section("E9 — Lemma 3.1 contraction", body), {"rows": data}


@experiment("E10", "Lemma 3.4: degree-estimate concentration")
def experiment_e10(quick: bool = False):
    rng = np.random.default_rng(0)
    # The estimate's relative concentration is controlled by
    # E[tags] = Δ^0.1, so the paper's Δ >= log^20 n regime is what makes it
    # sharp. We span Δ up to that regime directly (the estimator is a plain
    # binomial, so no graph is needed at astronomic Δ).
    deltas = [10**4, 10**8] if quick else [10**4, 10**6, 10**8, 10**10, 10**12]
    trials = 1000 if quick else 4000
    rows = []
    data = {}
    for delta in deltas:
        tag_probability = delta**-0.5
        true_degree = max(1, int(delta**0.6))
        estimates = (
            rng.binomial(true_degree, tag_probability, size=trials)
            * delta**0.5
        )
        within = np.mean(
            (estimates >= true_degree / 2) & (estimates <= 2 * true_degree)
        )
        rows.append([
            f"1e{int(math.log10(delta))}",
            true_degree,
            f"{delta**0.1:.1f}",
            f"{100 * within:.0f}%",
        ])
        data[delta] = float(within)
    body = format_table(
        ["Δ", "true degree Δ^0.6", "E[tags] = Δ^0.1", "within [d/2, 2d]"],
        rows,
    )
    body += (
        "\n\nPaper claim (Lemma 3.4): within a factor 2 w.h.p. once"
        "\nΔ ≥ log²⁰ n. The concentration is governed by E[tags] = Δ^0.1,"
        "\nclearly sharpening along the ladder."
    )
    return section("E10 — Degree-estimate concentration", body), data


@experiment("E11", "Correctness: independence always, maximality w.h.p.")
def experiment_e11(quick: bool = False):
    families = ["gnp_log_degree", "geometric", "barabasi_albert", "grid"]
    algorithms = ["luby", "algorithm1", "algorithm2",
                  "algorithm1_avg", "algorithm2_avg"]
    n = 200 if quick else 400
    seeds = 2 if quick else 3
    rows = []
    total = {"runs": 0, "independent": 0, "maximal": 0}
    tasks = [
        (algorithm, family, n, seed)
        for algorithm in algorithms
        for family in families
        for seed in range(seeds)
    ]
    outcomes = iter(measure_many(tasks))
    for algorithm in algorithms:
        runs = independent = maximal = 0
        for family in families:
            for seed in range(seeds):
                outcome = next(outcomes)
                runs += 1
                independent += int(outcome["independent"])
                maximal += int(outcome["maximal"])
        rows.append([
            algorithm, runs, independent, maximal,
            f"{100 * maximal / runs:.0f}%",
        ])
        total["runs"] += runs
        total["independent"] += independent
        total["maximal"] += maximal
    body = format_table(
        ["algorithm", "runs", "independent", "maximal", "maximal rate"], rows
    )
    body += (
        "\n\nIndependence must be 100% (it holds unconditionally);"
        "\nmaximality is the w.h.p. part."
    )
    return section("E11 — Correctness", body), total


@experiment("A1", "Ablation: one-shot marking vs always-awake re-marking")
def experiment_a1(quick: bool = False):
    from ..baselines import regularized_luby_mis

    sizes = [256, 512] if quick else [256, 512, 1024]
    rows = []
    for n in sizes:
        degree = 4.0 * log2_safe(n) ** 2
        graph = graphs.gnp_expected_degree(n, min(degree, n / 2), seed=n)
        one_shot = run_phase1_alg1(graph, seed=0, size_bound=n)
        regularized = regularized_luby_mis(graph, seed=0, size_bound=n)
        luby = luby_mis(graph, seed=0)
        rows.append([
            n,
            one_shot.metrics.max_energy,
            regularized.max_energy,
            luby.max_energy,
            one_shot.details["residual_max_degree"],
        ])
    body = format_table(
        ["n", "phase-I energy (one-shot)",
         "regularized-luby energy (re-marking)", "luby energy",
         "phase-I residual Δ"],
        rows,
    )
    body += (
        "\n\nThe ladder the paper climbs: regularized Luby (the unmodified"
        "\nbase, re-marking every round) is even costlier than plain Luby;"
        "\nthe one-shot modification makes the marking schedule precomputable"
        "\nand collapses the energy to O(log log n)."
    )
    return section("A1 — One-shot marking", body), {}


@experiment("A2", "Ablation: overlap schedules vs staying awake")
def experiment_a2(quick: bool = False):
    sizes = [256, 512] if quick else [256, 512, 1024, 2048]
    rows = []
    for n in sizes:
        degree = 4.0 * log2_safe(n) ** 2
        graph = graphs.gnp_expected_degree(n, min(degree, n / 2), seed=n)
        result = run_phase1_alg1(graph, seed=0, size_bound=n)
        total_rounds = result.metrics.rounds
        rows.append([
            n,
            result.metrics.max_energy,
            total_rounds,
            (
                f"{total_rounds / max(1, result.metrics.max_energy):.1f}x"
            ),
        ])
    body = format_table(
        ["n", "energy with schedules", "always-awake counterfactual",
         "savings"],
        rows,
    )
    body += (
        "\n\nWithout Lemma 2.5 schedules every Phase-I participant would be"
        "\nawake for all rounds (energy = rounds)."
    )
    return section("A2 — Overlap schedules", body), {}


@experiment("A3", "Ablation: iteration truncation (−2 log log n term)")
def experiment_a3(quick: bool = False):
    sizes = [256, 512] if quick else [256, 512, 1024]
    rows = []
    for n in sizes:
        degree = 4.0 * log2_safe(n) ** 2
        graph = graphs.gnp_expected_degree(n, min(degree, n / 2), seed=n)
        truncated = run_phase1_alg1(graph, seed=0, size_bound=n)
        full = run_phase1_alg1(
            graph,
            seed=0,
            size_bound=n,
            config=DEFAULT_CONFIG.with_overrides(phase1_truncation=0.0),
        )
        rows.append([
            n,
            truncated.details["iterations"],
            truncated.metrics.rounds,
            truncated.details["residual_max_degree"],
            full.details["iterations"],
            full.metrics.rounds,
            full.details["residual_max_degree"],
        ])
    body = format_table(
        ["n", "trunc iters", "trunc rounds", "trunc residual Δ",
         "full iters", "full rounds", "full residual Δ"],
        rows,
    )
    body += (
        "\n\nTruncating at log Δ − 2 log log n stops Phase I exactly where"
        "\nextra iterations stop paying: the later iterations cost rounds"
        "\nwhile Phase II handles the polylog residue more cheaply."
    )
    return section("A3 — Truncation", body), {}


@experiment("C1", "Channel models: awake complexity across congest/local/radio")
def experiment_c1(quick: bool = False):
    """Compare MIS cost across the pluggable channel layer.

    Luby on CONGEST vs LOCAL isolates the bit-accounting question (the
    rounds/energy are identical; LOCAL just refuses to price them); the
    decay radio MIS on the broadcast channel shows what one shared medium
    costs: collisions billed as wasted listening slots, yet per-epoch
    schedules keep the spectator energy small.
    """
    sizes = [64, 128] if quick else [64, 128, 256, 512]
    seeds = _seeds(quick)
    cells = [
        ("luby", "congest"),
        ("luby", "local"),
        ("radio_decay", "broadcast"),
        ("radio_decay", "congest"),
    ]
    tasks = [
        (algorithm, "gnp_log_degree", n, seed, channel)
        for algorithm, channel in cells
        for n in sizes
        for seed in range(seeds)
    ]
    outcomes = iter(measure_many(tasks))
    table: Dict[Tuple[str, str], Dict[int, Dict[str, float]]] = {}
    for algorithm, channel in cells:
        by_n = {}
        for n in sizes:
            trials = [next(outcomes) for _ in range(seeds)]
            by_n[n] = {
                key: sum(t[key] for t in trials) / seeds for key in trials[0]
            }
        table[(algorithm, channel)] = by_n
    rows = []
    for n in sizes:
        rows.append([
            n,
            table[("luby", "congest")][n]["max_energy"],
            table[("luby", "local")][n]["max_energy"],
            table[("radio_decay", "broadcast")][n]["max_energy"],
            table[("radio_decay", "congest")][n]["max_energy"],
            table[("radio_decay", "broadcast")][n]["collisions"],
        ])
    body = format_table(
        ["n", "luby@congest", "luby@local", "radio@broadcast",
         "radio@congest", "radio collisions"],
        rows,
    )
    ok = all(
        table[cell][n]["independent"] == 1.0
        for cell in cells
        for n in sizes
    )
    body += (
        f"\n\nAll runs independent: {ok}."
        "\nluby@local must match luby@congest exactly (the LOCAL channel"
        "\nchanges accounting, not delivery); the radio rows price the"
        "\nshared-medium reality: collision-billed energy, no addressing."
        "\nradio@congest is the ablation — the same decay program on"
        "\nreliable point-to-point delivery, where collisions cost nothing."
    )
    return section("C1 — Channel models", body), {"table": table}


@experiment("D1", "Dynamic MIS: energy vs churn rate (repro.dynamic)")
def experiment_d1(quick: bool = False):
    """Energy-vs-churn-rate curve for MIS maintenance under churn.

    Sweeps the churn-rate multiplier of the ``sensor_battery_decay``
    workload for both repair strategies; the claim under test is that
    incremental repair's energy grows with the churn rate while staying
    under the full-recompute baseline.
    """
    # n stays >= 200 even in quick mode so the rate multiplier actually
    # changes the integer events-per-epoch (at n=200 the base death count
    # is 2: rates 0.5/1/2/4 give 1/2/4/8 deaths per epoch).
    n = 200
    epochs = 4 if quick else 8
    seeds = 2 if quick else 3
    rates = [0.5, 1.0, 2.0] if quick else [0.5, 1.0, 2.0, 4.0]
    strategies = ["incremental", "full_recompute"]
    tasks = [
        ("sensor_battery_decay", "algorithm1", strategy, n, epochs, seed,
         rate)
        for strategy in strategies
        for rate in rates
        for seed in range(seeds)
    ]
    outcomes = iter(measure_dynamic_many(tasks))
    curves: Dict[str, Dict[float, Dict[str, float]]] = {}
    for strategy in strategies:
        by_rate = {}
        for rate in rates:
            trials = [next(outcomes) for _ in range(seeds)]
            by_rate[rate] = {
                key: sum(t[key] for t in trials) / seeds for key in trials[0]
            }
        curves[strategy] = by_rate
    rows = []
    for rate in rates:
        inc = curves["incremental"][rate]
        full = curves["full_recompute"][rate]
        rows.append([
            rate,
            inc["cumulative_energy"],
            full["cumulative_energy"],
            inc["total_repair_region"],
            inc["total_mis_churn"],
            f"{100 * inc['all_valid']:.0f}%",
        ])
    body = format_table(
        ["churn rate", "incr energy", "full energy", "repair region Σ",
         "MIS churn Σ", "valid"],
        rows,
    )
    body += "\n\n" + ascii_chart(
        {
            "incr": {
                rate: curves["incremental"][rate]["cumulative_energy"]
                for rate in rates
            },
            "full": {
                rate: curves["full_recompute"][rate]["cumulative_energy"]
                for rate in rates
            },
        },
        title="lifetime energy vs churn-rate multiplier",
        height=10,
    )
    body += (
        "\n\nBoth curves rise with churn; the gap is the payoff of"
        "\nrepairing only the invalidated region (repro.dynamic's"
        "\nincremental maintainer) instead of re-electing from scratch."
    )
    return section("D1 — Energy vs churn rate", body), {"curves": curves}


@experiment("F1", "Fault injection: MIS quality/energy vs drop and jam rate")
def experiment_f1(quick: bool = False):
    """Degradation curves under seeded channel faults (``repro.faults``).

    Two algorithm×channel pairings, each swept over its natural fault
    knob: Luby on a lossy CONGEST channel (iid per-message drops) and the
    decay radio MIS on a jammed broadcast medium (whole rounds blanketed
    for every listener, billed as collisions). Rate 0 doubles as the
    transparency check — an inactive wrapper must reproduce the bare
    channel's numbers exactly — and rising rates show faults buying
    rounds/energy and eroding maximality (dropped join/retire
    announcements leave conflicts and uncovered nodes; see
    ``repro.faults.healing`` for the repair path).
    """
    n = 128 if quick else 256
    seeds = _seeds(quick)
    drop_rates = [0.0, 0.05, 0.1, 0.2]
    jam_rates = [0.0, 0.1, 0.2, 0.4]
    cells = [
        ("luby", f"lossy(drop={drop},seed=1):congest", drop)
        for drop in drop_rates
    ] + [
        ("radio_decay", f"jam(rate={rate},seed=1):broadcast", rate)
        for rate in jam_rates
    ]
    tasks = [
        (algorithm, "gnp_log_degree", n, seed, channel)
        for algorithm, channel, _ in cells
        for seed in range(seeds)
    ]
    outcomes = iter(measure_many(tasks))
    table: Dict[Tuple[str, float], Dict[str, float]] = {}
    for algorithm, _, rate in cells:
        trials = [next(outcomes) for _ in range(seeds)]
        table[(algorithm, rate)] = {
            key: sum(t[key] for t in trials) / seeds for key in trials[0]
        }
    rows = []
    for drop, jam in zip(drop_rates, jam_rates):
        lossy = table[("luby", drop)]
        jammed = table[("radio_decay", jam)]
        rows.append([
            f"{drop:.2f}/{jam:.2f}",
            lossy["rounds"],
            lossy["max_energy"],
            f"{100 * lossy['maximal']:.0f}%",
            jammed["rounds"],
            jammed["max_energy"],
            f"{100 * jammed['maximal']:.0f}%",
            jammed["collisions"],
        ])
    body = format_table(
        ["drop/jam", "luby rounds", "luby energy", "luby maximal",
         "radio rounds", "radio energy", "radio maximal", "radio collisions"],
        rows,
    )
    body += "\n\n" + ascii_chart(
        {
            "luby": {
                drop: table[("luby", drop)]["maximal"]
                for drop in drop_rates
            },
            "radio": {
                rate: table[("radio_decay", rate)]["maximal"]
                for rate in jam_rates
            },
        },
        title="maximality rate vs fault rate (1.0 = every run a valid MIS)",
        height=10,
        log_x=False,
    )
    body += (
        "\n\nRate 0 rows run through the fault wrappers in their inactive"
        "\nstate and must match an unwrapped run bit-for-bit (the zero-cost"
        "\ntransparency contract, gated in benchmarks/test_bench_faults.py)."
        "\nRising rates trade rounds and energy for lost announcements;"
        "\nonce drops eat a join/retire message, maximality (and for Luby"
        "\neven independence) can fail — the self-healing path in"
        "\nrepro.faults.healing exists to repair exactly those runs."
    )
    return section("F1 — Fault degradation curves", body), {"table": table}


def run_experiment(
    name: str, quick: bool = False, n_jobs: int = None
) -> Tuple[str, dict]:
    """Run one experiment; ``n_jobs`` parallelizes its internal sweeps."""
    if name not in REGISTRY:
        raise KeyError(f"unknown experiment {name!r}; have {sorted(REGISTRY)}")
    _log.info("experiment %s: %s", name, DESCRIPTIONS[name])
    started = perf_counter()
    with use_jobs(n_jobs):
        outcome = REGISTRY[name](quick)
    _log.info("experiment %s finished in %.1fs", name, perf_counter() - started)
    return outcome


def run_all(quick: bool = False, n_jobs: int = None) -> str:
    """Run the whole battery (EXPERIMENTS.md regeneration).

    With ``n_jobs`` every sweep/measure batch inside every experiment runs
    on a process pool via :func:`repro.harness.parallel.parallel_map`.
    """
    reports = []
    with use_jobs(n_jobs):
        for name in sorted(REGISTRY):
            report, _ = run_experiment(name, quick=quick)
            reports.append(report)
    return "\n".join(reports)
