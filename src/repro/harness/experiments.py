"""Experiment registry: every theorem-derived experiment from DESIGN.md.

Each experiment returns ``(report, data)``: a human-readable text block and
the raw numbers. ``python -m repro.harness --experiment E1`` prints the
report; ``--all`` runs the full battery (EXPERIMENTS.md records one such
run). ``quick=True`` shrinks sizes/seeds for smoke runs.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Tuple

import networkx as nx
import numpy as np

from .. import graphs
from ..analysis import (
    ascii_chart,
    best_model,
    fit_model,
    log2_safe,
    log_star,
    loglog,
    verify_mis,
)
from ..baselines import luby_mis
from ..cluster import Choreography, merge_component_clusters, singleton_clusters
from ..congest import EnergyLedger
from ..core import (
    DEFAULT_CONFIG,
    run_lemma31_iteration,
    run_phase1_alg1,
    run_phase2,
)
from ..schedule import schedule_for_round, schedule_size_bound, verify_overlap_property
from .runner import measure_many
from .sweep import series, sweep
from .tables import format_table, section

ExperimentFn = Callable[[bool], Tuple[str, dict]]

REGISTRY: Dict[str, ExperimentFn] = {}
DESCRIPTIONS: Dict[str, str] = {}


def experiment(name: str, description: str):
    def wrap(fn: ExperimentFn) -> ExperimentFn:
        REGISTRY[name] = fn
        DESCRIPTIONS[name] = description
        return fn

    return wrap


def _sizes(quick: bool) -> List[int]:
    return [128, 256, 512] if quick else [256, 512, 1024, 2048, 4096]


def _seeds(quick: bool) -> int:
    return 2 if quick else 3


def _scaling_report(
    name: str,
    claim_time: str,
    claim_energy: str,
    algorithm: str,
    quick: bool,
) -> Tuple[str, dict]:
    sizes = _sizes(quick)
    seeds = _seeds(quick)
    points = sweep([algorithm, "luby"], sizes, seeds=seeds)
    rows = []
    for n in sizes:
        alg_rounds = series(points, algorithm, "rounds")[n]
        alg_energy = series(points, algorithm, "max_energy")[n]
        luby_rounds = series(points, "luby", "rounds")[n]
        luby_energy = series(points, "luby", "max_energy")[n]
        rows.append(
            [n, alg_rounds, alg_energy, luby_rounds, luby_energy]
        )
    xs = sizes
    alg_energy = [series(points, algorithm, "max_energy")[n] for n in xs]
    luby_energy = [series(points, "luby", "max_energy")[n] for n in xs]
    alg_rounds = [series(points, algorithm, "rounds")[n] for n in xs]
    energy_fit = fit_model(xs, alg_energy, "loglog")
    luby_energy_fit = fit_model(xs, luby_energy, "log")
    time_fit = best_model(
        xs,
        alg_rounds,
        candidates=("const", "loglog", "log", "log_times_loglog", "log_sq"),
    )
    span = xs[-1] / xs[0]
    body = format_table(
        ["n", f"{algorithm} rounds", f"{algorithm} energy",
         "luby rounds", "luby energy"],
        rows,
    )
    body += (
        f"\n\nPaper claim: time {claim_time}, energy {claim_energy}."
        f"\nEnergy growth over a {span:.0f}x size span:"
        f" {algorithm} x{alg_energy[-1] / max(1, alg_energy[0]):.2f},"
        f" luby x{luby_energy[-1] / max(1, luby_energy[0]):.2f}"
        f"\n{algorithm} energy ~ a·loglog n + b: a={energy_fit.scale:.1f},"
        f" b={energy_fit.offset:.1f} (R²={energy_fit.r_squared:.2f})"
        f"\nluby energy ~ a·log n + b:        a={luby_energy_fit.scale:.1f},"
        f" b={luby_energy_fit.offset:.1f} (R²={luby_energy_fit.r_squared:.2f})"
        f"\nBest-fit growth of {algorithm} rounds: {time_fit.model}"
        "\nNote: small-n points include the Phase II/III turn-on transient"
        "\n(residual components growing from trivial to typical); see E8 for"
        "\nthe per-phase plateau evidence."
    )
    data = {
        "points": points,
        "energy_fit": energy_fit,
        "luby_energy_fit": luby_energy_fit,
        "time_fit": time_fit,
    }
    return section(name, body), data


@experiment("E1", "Theorem 1.1: Algorithm 1 time/energy scaling")
def experiment_e1(quick: bool = False):
    return _scaling_report(
        "E1 — Theorem 1.1 (Algorithm 1)",
        "O(log² n)",
        "O(log log n)",
        "algorithm1",
        quick,
    )


@experiment("E2", "Theorem 1.2: Algorithm 2 time/energy scaling")
def experiment_e2(quick: bool = False):
    return _scaling_report(
        "E2 — Theorem 1.2 (Algorithm 2)",
        "O(log n · log log n · log* n)",
        "O(log² log n)",
        "algorithm2",
        quick,
    )


@experiment("E3", "Luby baseline and the headline comparison")
def experiment_e3(quick: bool = False):
    sizes = _sizes(quick)
    seeds = _seeds(quick)
    points = sweep(["luby", "algorithm1", "algorithm2"], sizes, seeds=seeds)
    rows = []
    for n in sizes:
        rows.append([
            n,
            series(points, "luby", "rounds")[n],
            series(points, "luby", "max_energy")[n],
            series(points, "algorithm1", "max_energy")[n],
            series(points, "algorithm2", "max_energy")[n],
        ])
    luby_fit = fit_model(
        sizes, [series(points, "luby", "max_energy")[n] for n in sizes], "log"
    )
    # Fit Algorithm 1 on the tail sizes only: the small-n points reflect the
    # Phase II/III machinery "turning on" (components grow from trivial to
    # typical), not the asymptotic loglog growth.
    tail = sizes[-3:] if len(sizes) >= 3 else sizes
    alg1_fit = fit_model(
        tail,
        [series(points, "algorithm1", "max_energy")[n] for n in tail],
        "loglog",
    )
    # Search for the crossover only beyond the measured range (backward
    # extrapolation of the tail fit is meaningless).
    start_exponent = math.ceil(math.log2(max(sizes))) + 1
    crossover = None
    for exponent in range(start_exponent, 2000):
        n = 2.0**exponent
        if alg1_fit.predict(n) < luby_fit.predict(n):
            crossover = exponent
            break
    body = format_table(
        ["n", "luby rounds", "luby energy", "alg1 energy", "alg2 energy"],
        rows,
    )
    body += "\n\n" + ascii_chart(
        {
            "luby": series(points, "luby", "max_energy"),
            "alg1": series(points, "algorithm1", "max_energy"),
            "alg2": series(points, "algorithm2", "max_energy"),
        },
        title="max awake rounds vs n",
        height=12,
    )
    body += (
        "\n\nLuby energy fit (a·log n + b):   "
        f"a={luby_fit.scale:.2f}, b={luby_fit.offset:.2f}, R²={luby_fit.r_squared:.3f}"
        "\nAlg1 tail energy fit (a·loglog n + b): "
        f"a={alg1_fit.scale:.2f}, b={alg1_fit.offset:.2f}"
        "\n(small-n algorithm-1 energy reflects phase machinery turning on,"
        "\n so the loglog fit uses the largest sizes only)"
    )
    if crossover is not None:
        body += (
            f"\nExtrapolated energy crossover (alg1 beats luby): n ≈ 2^{crossover}"
            "\n(with our simulation-scale constants; the paper's claim is the"
            "\n growth-rate separation, which the fits above measure)"
        )
    else:
        body += (
            "\nNo crossover within the extrapolation horizon: at simulation"
            "\nscales the measured algorithm-1 energy still includes the"
            "\ncomponent-size turn-on transient (see E8 for the per-phase"
            "\nplateau evidence), so the tail slope overestimates the"
            "\nasymptotic constant."
        )
    return section("E3 — Baseline comparison", body), {
        "points": points,
        "luby_fit": luby_fit,
        "alg1_fit": alg1_fit,
        "crossover_exponent": crossover,
    }


@experiment("E4", "Section 4: constant node-averaged energy")
def experiment_e4(quick: bool = False):
    sizes = _sizes(quick)
    seeds = _seeds(quick)
    algorithms = ["luby", "algorithm1", "algorithm1_avg", "algorithm2_avg"]
    points = sweep(algorithms, sizes, seeds=seeds)
    rows = []
    for n in sizes:
        rows.append([
            n,
            series(points, "luby", "average_energy")[n],
            series(points, "algorithm1", "average_energy")[n],
            series(points, "algorithm1_avg", "average_energy")[n],
            series(points, "algorithm2_avg", "average_energy")[n],
        ])
    fits = {}
    for algorithm in algorithms:
        ys = [series(points, algorithm, "average_energy")[n] for n in sizes]
        fits[algorithm] = best_model(sizes, ys, candidates=("const", "loglog", "log"))
    body = format_table(
        ["n", "luby avg", "alg1 (plain) avg", "alg1_avg avg", "alg2_avg avg"],
        rows,
    )
    body += "\n\nBest-fit growth of node-averaged energy:"
    for algorithm in algorithms:
        body += f"\n  {algorithm}: {fits[algorithm].model}"
    body += (
        "\n\nSection 4's claim, measured: the augmented variants keep the"
        "\nnode-averaged energy flat and below the plain Algorithm 1, whose"
        "\naverage rises with the Phase II/III participation; Luby's average"
        "\nstays low on random graphs because most nodes decide quickly —"
        "\nthe paper's contrast is about guarantees (O(1) average alongside"
        "\npolyloglog worst case), which the augmented rows exhibit."
    )
    return section("E4 — Constant average energy", body), {
        "points": points,
        "fits": fits,
    }


@experiment("E5", "Lemma 2.1: Phase I residual degree O(log² n)")
def experiment_e5(quick: bool = False):
    sizes = [200, 400] if quick else [200, 400, 800, 1600]
    rows = []
    data = []
    for n in sizes:
        degree = min(n / 2.5, 4.0 * log2_safe(n) ** 2)
        graph = graphs.gnp_expected_degree(n, degree, seed=n)
        result = run_phase1_alg1(graph, seed=0, size_bound=n)
        bound = 4 * log2_safe(n) ** 2
        rows.append([
            n,
            int(degree),
            result.details["iterations"],
            result.details["residual_max_degree"],
            f"{bound:.0f}",
            result.metrics.max_energy,
        ])
        data.append(result.details)
    body = format_table(
        ["n", "input Δ", "iterations", "residual Δ", "4·log² n", "energy"],
        rows,
    )
    body += "\n\nPaper claim: residual degree O(log² n), energy O(log log n)."
    return section("E5 — Phase I degree reduction", body), {"rows": data}


@experiment("E6", "Lemma 2.5: overlap schedule size and property")
def experiment_e6(quick: bool = False):
    totals = [2**k for k in (4, 6, 8, 10)] if quick else [2**k for k in range(4, 15, 2)]
    rows = []
    for total in totals:
        max_size = max(
            len(schedule_for_round(total, k))
            for k in range(0, total, max(1, total // 64))
        )
        rows.append([total, max_size, schedule_size_bound(total)])
    verified = all(verify_overlap_property(t) for t in (16, 64, 256))
    body = format_table(["T", "max |S_k| (sampled)", "⌈log T⌉+1 bound"], rows)
    body += f"\n\nExhaustive overlap property verified for T in {{16, 64, 256}}: {verified}"
    return section("E6 — Awake-overlap schedules", body), {"verified": verified}


@experiment("E7", "Lemma 2.6: shattering leaves small components")
def experiment_e7(quick: bool = False):
    sizes = [256, 512] if quick else [256, 512, 1024, 2048, 4096]
    rows = []
    data = []
    for n in sizes:
        graph = graphs.gnp_expected_degree(n, max(8.0, n**0.5), seed=n)
        result = run_phase2(graph, seed=0, size_bound=n)
        bound = 4 * log2_safe(n) ** 2
        rows.append([
            n,
            result.details["delta2"],
            len(result.remaining),
            result.details["largest_component"],
            f"{bound:.0f}",
            result.details["components"],
        ])
        data.append(result.details)
    body = format_table(
        ["n", "Δ₂", "undecided", "largest comp", "4·log² n", "#components"],
        rows,
    )
    body += "\n\nPaper claim: every component has poly(log n) nodes."
    return section("E7 — Shattering", body), {"rows": data}


@experiment("E8", "Lemma 2.8: cluster merging builds an O(log n)-diameter tree")
def experiment_e8(quick: bool = False):
    sizes = [64, 128] if quick else [64, 128, 256, 512]
    rows = []
    data = []
    for n in sizes:
        graph = graphs.gnp(n, min(0.9, 4.0 / n * log2_safe(n)), seed=n)
        component = max(nx.connected_components(graph), key=len)
        sub = graph.subgraph(component).copy()
        state = singleton_clusters(sub)
        ledger = EnergyLedger(sub.nodes)
        choreography = Choreography(ledger)
        tree, report = merge_component_clusters(state, choreography)
        rows.append([
            len(component),
            report.iterations,
            f"{2 * math.ceil(log2_safe(len(component))):.0f}",
            tree.height,
            ledger.max_energy(),
        ])
        data.append(report)
    body = format_table(
        ["component size", "iterations", "2·⌈log s⌉ bound", "tree height",
         "max energy"],
        rows,
    )
    body += (
        "\n\nPaper claim: O(log #clusters) iterations, tree diameter O(log n),"
        "\nO(1) awake rounds per node per iteration."
    )
    return section("E8 — Cluster merging", body), {"reports": data}


@experiment("E9", "Lemma 3.1: one iteration contracts Δ toward Δ^0.7")
def experiment_e9(quick: bool = False):
    deltas = [60, 120] if quick else [60, 120, 200, 300]
    seeds = 2 if quick else 3
    rows = []
    data = []
    for delta in deltas:
        n = max(400, 4 * delta)
        residuals = []
        energy = 0
        for seed in range(seeds):
            graph = graphs.planted_max_degree(n, delta, seed=delta + seed)
            result = run_lemma31_iteration(
                graph, delta, seed=seed, size_bound=n
            )
            residuals.append(result.details["residual_max_degree"])
            energy = max(energy, result.metrics.max_energy)
        residuals.sort()
        rows.append([
            n,
            delta,
            residuals[len(residuals) // 2],
            f"{min(residuals)}..{max(residuals)}",
            f"{delta ** 0.7:.0f}",
            f"{8 * delta ** 0.6:.0f}",
            energy,
        ])
        data.append({"delta": delta, "residuals": residuals})
    body = format_table(
        ["n", "Δ", "median residual Δ", "range", "Δ^0.7", "8·Δ^0.6",
         "energy"],
        rows,
    )
    body += (
        "\n\nPaper claim: residual degree ≤ 8·Δ^0.6 ≪ Δ^0.7 w.h.p. (the"
        "\nw.h.p. part needs Δ ≥ log²⁰ n; at our Δ the contraction holds in"
        "\nthe median with occasional above-target seeds, which the"
        "\nCorollary 3.2 driver absorbs by falling back to the true degree)."
    )
    return section("E9 — Lemma 3.1 contraction", body), {"rows": data}


@experiment("E10", "Lemma 3.4: degree-estimate concentration")
def experiment_e10(quick: bool = False):
    rng = np.random.default_rng(0)
    # The estimate's relative concentration is controlled by
    # E[tags] = Δ^0.1, so the paper's Δ >= log^20 n regime is what makes it
    # sharp. We span Δ up to that regime directly (the estimator is a plain
    # binomial, so no graph is needed at astronomic Δ).
    deltas = [10**4, 10**8] if quick else [10**4, 10**6, 10**8, 10**10, 10**12]
    trials = 1000 if quick else 4000
    rows = []
    data = {}
    for delta in deltas:
        tag_probability = delta**-0.5
        true_degree = max(1, int(delta**0.6))
        estimates = (
            rng.binomial(true_degree, tag_probability, size=trials)
            * delta**0.5
        )
        within = np.mean(
            (estimates >= true_degree / 2) & (estimates <= 2 * true_degree)
        )
        rows.append([
            f"1e{int(math.log10(delta))}",
            true_degree,
            f"{delta**0.1:.1f}",
            f"{100 * within:.0f}%",
        ])
        data[delta] = float(within)
    body = format_table(
        ["Δ", "true degree Δ^0.6", "E[tags] = Δ^0.1", "within [d/2, 2d]"],
        rows,
    )
    body += (
        "\n\nPaper claim (Lemma 3.4): within a factor 2 w.h.p. once"
        "\nΔ ≥ log²⁰ n. The concentration is governed by E[tags] = Δ^0.1,"
        "\nclearly sharpening along the ladder."
    )
    return section("E10 — Degree-estimate concentration", body), data


@experiment("E11", "Correctness: independence always, maximality w.h.p.")
def experiment_e11(quick: bool = False):
    families = ["gnp_log_degree", "geometric", "barabasi_albert", "grid"]
    algorithms = ["luby", "algorithm1", "algorithm2",
                  "algorithm1_avg", "algorithm2_avg"]
    n = 200 if quick else 400
    seeds = 2 if quick else 3
    rows = []
    total = {"runs": 0, "independent": 0, "maximal": 0}
    tasks = [
        (algorithm, family, n, seed)
        for algorithm in algorithms
        for family in families
        for seed in range(seeds)
    ]
    outcomes = iter(measure_many(tasks))
    for algorithm in algorithms:
        runs = independent = maximal = 0
        for family in families:
            for seed in range(seeds):
                outcome = next(outcomes)
                runs += 1
                independent += int(outcome["independent"])
                maximal += int(outcome["maximal"])
        rows.append([
            algorithm, runs, independent, maximal,
            f"{100 * maximal / runs:.0f}%",
        ])
        total["runs"] += runs
        total["independent"] += independent
        total["maximal"] += maximal
    body = format_table(
        ["algorithm", "runs", "independent", "maximal", "maximal rate"], rows
    )
    body += (
        "\n\nIndependence must be 100% (it holds unconditionally);"
        "\nmaximality is the w.h.p. part."
    )
    return section("E11 — Correctness", body), total


@experiment("A1", "Ablation: one-shot marking vs always-awake re-marking")
def experiment_a1(quick: bool = False):
    from ..baselines import regularized_luby_mis

    sizes = [256, 512] if quick else [256, 512, 1024]
    rows = []
    for n in sizes:
        degree = 4.0 * log2_safe(n) ** 2
        graph = graphs.gnp_expected_degree(n, min(degree, n / 2), seed=n)
        one_shot = run_phase1_alg1(graph, seed=0, size_bound=n)
        regularized = regularized_luby_mis(graph, seed=0, size_bound=n)
        luby = luby_mis(graph, seed=0)
        rows.append([
            n,
            one_shot.metrics.max_energy,
            regularized.max_energy,
            luby.max_energy,
            one_shot.details["residual_max_degree"],
        ])
    body = format_table(
        ["n", "phase-I energy (one-shot)",
         "regularized-luby energy (re-marking)", "luby energy",
         "phase-I residual Δ"],
        rows,
    )
    body += (
        "\n\nThe ladder the paper climbs: regularized Luby (the unmodified"
        "\nbase, re-marking every round) is even costlier than plain Luby;"
        "\nthe one-shot modification makes the marking schedule precomputable"
        "\nand collapses the energy to O(log log n)."
    )
    return section("A1 — One-shot marking", body), {}


@experiment("A2", "Ablation: overlap schedules vs staying awake")
def experiment_a2(quick: bool = False):
    sizes = [256, 512] if quick else [256, 512, 1024, 2048]
    rows = []
    for n in sizes:
        degree = 4.0 * log2_safe(n) ** 2
        graph = graphs.gnp_expected_degree(n, min(degree, n / 2), seed=n)
        result = run_phase1_alg1(graph, seed=0, size_bound=n)
        total_rounds = result.metrics.rounds
        rows.append([
            n,
            result.metrics.max_energy,
            total_rounds,
            (
                f"{total_rounds / max(1, result.metrics.max_energy):.1f}x"
            ),
        ])
    body = format_table(
        ["n", "energy with schedules", "always-awake counterfactual",
         "savings"],
        rows,
    )
    body += (
        "\n\nWithout Lemma 2.5 schedules every Phase-I participant would be"
        "\nawake for all rounds (energy = rounds)."
    )
    return section("A2 — Overlap schedules", body), {}


@experiment("A3", "Ablation: iteration truncation (−2 log log n term)")
def experiment_a3(quick: bool = False):
    sizes = [256, 512] if quick else [256, 512, 1024]
    rows = []
    for n in sizes:
        degree = 4.0 * log2_safe(n) ** 2
        graph = graphs.gnp_expected_degree(n, min(degree, n / 2), seed=n)
        truncated = run_phase1_alg1(graph, seed=0, size_bound=n)
        full = run_phase1_alg1(
            graph,
            seed=0,
            size_bound=n,
            config=DEFAULT_CONFIG.with_overrides(phase1_truncation=0.0),
        )
        rows.append([
            n,
            truncated.details["iterations"],
            truncated.metrics.rounds,
            truncated.details["residual_max_degree"],
            full.details["iterations"],
            full.metrics.rounds,
            full.details["residual_max_degree"],
        ])
    body = format_table(
        ["n", "trunc iters", "trunc rounds", "trunc residual Δ",
         "full iters", "full rounds", "full residual Δ"],
        rows,
    )
    body += (
        "\n\nTruncating at log Δ − 2 log log n stops Phase I exactly where"
        "\nextra iterations stop paying: the later iterations cost rounds"
        "\nwhile Phase II handles the polylog residue more cheaply."
    )
    return section("A3 — Truncation", body), {}


def run_experiment(name: str, quick: bool = False) -> Tuple[str, dict]:
    if name not in REGISTRY:
        raise KeyError(f"unknown experiment {name!r}; have {sorted(REGISTRY)}")
    return REGISTRY[name](quick)


def run_all(quick: bool = False) -> str:
    reports = []
    for name in sorted(REGISTRY):
        report, _ = run_experiment(name, quick=quick)
        reports.append(report)
    return "\n".join(reports)
