"""Process-parallel execution of independent simulation tasks.

Multi-seed sweeps and experiment batteries are embarrassingly parallel:
every (algorithm, graph, seed) cell is an independent, deterministic
simulation. This module provides the one primitive the harness needs —
:func:`parallel_map` — built on :class:`concurrent.futures.ProcessPoolExecutor`
with three guarantees:

* **determinism** — workers receive fully self-describing task tuples
  (family name, size, seed, channel, ...) and regenerate their graphs
  locally; every cell derives all randomness from its own seed (no
  process-shared ``random.Random``/global generator state anywhere in the
  task path), so a parallel run is bit-identical to the serial one —
  locked by ``tests/test_parallel_determinism.py``;
* **ordered collection** — results come back in task order regardless of
  which worker finished first;
* **graceful degradation** — ``n_jobs=1`` (the default) never touches a
  process pool, so nested calls and test runs stay single-process.

The module-level default (:func:`set_default_jobs`) lets CLI ``--jobs``
flags turn on parallelism for every sweep an experiment performs without
threading a parameter through the whole registry.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

Task = TypeVar("Task")
Result = TypeVar("Result")

_DEFAULT_JOBS = 1


def _observability_worker_init(
    telemetry_path: Optional[str],
    inner: Optional[Callable[..., None]],
    innerargs: tuple,
) -> None:
    """Worker bootstrap: re-install ambient observability state.

    Spawn-started workers inherit no module globals, so the parent's
    telemetry sink path must be re-installed before the caller's own
    initializer (engine-mode propagation etc.) runs — this is what makes
    streaming JSONL emission work transparently under process pools.
    """
    from ..obs.telemetry import set_telemetry_path

    set_telemetry_path(telemetry_path)
    if inner is not None:
        inner(*innerargs)


def set_default_jobs(n_jobs: Optional[int]) -> None:
    """Set the job count used when callers pass ``n_jobs=None``.

    ``None`` resets to serial execution; ``-1`` means one worker per CPU.
    """
    global _DEFAULT_JOBS
    _DEFAULT_JOBS = 1 if n_jobs is None else resolve_jobs(n_jobs)


def default_jobs() -> int:
    """The process count used when ``n_jobs`` is not given explicitly."""
    return _DEFAULT_JOBS


@contextmanager
def use_jobs(n_jobs: Optional[int]):
    """Temporarily install ``n_jobs`` as the module default.

    ``None`` is a no-op (keep whatever default is active), so callers can
    pass their own ``n_jobs=None`` through unconditionally. This is how
    ``run_all(n_jobs=...)`` parallelizes every sweep inside every
    experiment without changing a single experiment signature.
    """
    global _DEFAULT_JOBS
    if n_jobs is None:
        yield
        return
    previous = _DEFAULT_JOBS
    _DEFAULT_JOBS = resolve_jobs(n_jobs)
    try:
        yield
    finally:
        _DEFAULT_JOBS = previous


def resolve_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` knob to a concrete worker count.

    ``None`` → the module default; ``-1`` → ``os.cpu_count()``; positive
    values pass through. Zero and other negatives are rejected.
    """
    if n_jobs is None:
        return _DEFAULT_JOBS
    if n_jobs == -1:
        return os.cpu_count() or 1
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be positive or -1, got {n_jobs}")
    return n_jobs


def parallel_map(
    fn: Callable[[Task], Result],
    tasks: Iterable[Task],
    *,
    n_jobs: Optional[int] = None,
    chunksize: int = 1,
    initializer: Optional[Callable[..., None]] = None,
    initargs: tuple = (),
) -> List[Result]:
    """Apply ``fn`` to every task, in order, optionally across processes.

    ``fn`` and the tasks must be picklable (``fn`` should be a module-level
    function). With one job — or one task — no pool is created (and any
    ``initializer`` runs once in-process, matching worker semantics).
    ``initializer`` exists for ambient per-process switches that are not
    part of the task tuples — e.g. propagating a forced engine mode to
    spawn-started workers, which inherit nothing from the parent.
    """
    task_list: Sequence[Task] = list(tasks)
    jobs = min(resolve_jobs(n_jobs), max(1, len(task_list)))
    if jobs == 1:
        if initializer is not None:
            initializer(*initargs)
        return [fn(task) for task in task_list]
    from ..obs.telemetry import telemetry_path

    sink = telemetry_path()
    if sink is not None:
        initializer, initargs = (
            _observability_worker_init, (sink, initializer, initargs)
        )
    with ProcessPoolExecutor(
        max_workers=jobs, initializer=initializer, initargs=initargs
    ) as pool:
        return list(pool.map(fn, task_list, chunksize=chunksize))
