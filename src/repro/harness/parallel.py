"""Process-parallel execution of independent simulation tasks.

Multi-seed sweeps and experiment batteries are embarrassingly parallel:
every (algorithm, graph, seed) cell is an independent, deterministic
simulation. This module provides the one primitive the harness needs —
:func:`parallel_map` — built on :class:`concurrent.futures.ProcessPoolExecutor`
with four guarantees:

* **determinism** — workers receive fully self-describing task tuples
  (family name, size, seed, channel, ...) and regenerate their graphs
  locally; every cell derives all randomness from its own seed (no
  process-shared ``random.Random``/global generator state anywhere in the
  task path), so a parallel run is bit-identical to the serial one —
  locked by ``tests/test_parallel_determinism.py``;
* **ordered collection** — results come back in task order regardless of
  which worker finished first;
* **graceful degradation** — ``n_jobs=1`` (the default) never touches a
  process pool, so nested calls and test runs stay single-process;
* **resilience** — per-task wall-clock timeouts (:class:`TaskTimeoutError`),
  bounded retries with exponential backoff, and worker-crash recovery: a
  worker dying mid-task (segfault, OOM-kill, ``os._exit``) breaks only its
  own chunk (:class:`WorkerCrashError`), which is resubmitted to a rebuilt
  pool instead of hanging the sweep. A ``KeyboardInterrupt`` terminates
  every worker and returns promptly — no orphan processes.

The module-level defaults (:func:`set_default_jobs`,
:func:`set_default_resilience`) let CLI ``--jobs`` / ``--retries`` /
``--task-timeout`` flags configure every sweep an experiment performs
without threading parameters through the whole registry.

Retries are the unit of *chunks* (``chunksize`` tasks, default 1): a
failed or timed-out chunk is recomputed whole, which is sound because
every task is a deterministic pure function of its tuple.
"""

from __future__ import annotations

import heapq
import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import (
    Any,
    Callable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

Task = TypeVar("Task")
Result = TypeVar("Result")

_DEFAULT_JOBS = 1

#: Sentinel distinguishing "not given" from an explicit ``None``.
_UNSET = object()


class TaskTimeoutError(RuntimeError):
    """A task exceeded its per-task wall-clock budget (``task_timeout``)."""


class WorkerCrashError(RuntimeError):
    """A worker process died mid-task (segfault, OOM-kill, ``os._exit``)."""


_DEFAULT_RETRIES = 0
_DEFAULT_TASK_TIMEOUT: Optional[float] = None
_DEFAULT_BACKOFF = 0.5


def set_default_resilience(
    *,
    retries: Any = _UNSET,
    task_timeout: Any = _UNSET,
    backoff: Any = _UNSET,
) -> None:
    """Set the retry/timeout defaults used when callers pass ``None``.

    ``retries`` is the number of *additional* attempts after the first
    (0 = fail fast); ``task_timeout`` is the per-task wall-clock budget in
    seconds (``None`` = unlimited); ``backoff`` is the base retry delay —
    attempt ``k`` waits ``backoff * 2**(k-1)`` seconds. Only the keywords
    actually passed are changed.
    """
    global _DEFAULT_RETRIES, _DEFAULT_TASK_TIMEOUT, _DEFAULT_BACKOFF
    if retries is not _UNSET:
        _DEFAULT_RETRIES = _validate_retries(retries)
    if task_timeout is not _UNSET:
        _DEFAULT_TASK_TIMEOUT = _validate_timeout(task_timeout)
    if backoff is not _UNSET:
        _DEFAULT_BACKOFF = _validate_backoff(backoff)


def default_resilience() -> Tuple[int, Optional[float], float]:
    """The ``(retries, task_timeout, backoff)`` defaults currently active."""
    return _DEFAULT_RETRIES, _DEFAULT_TASK_TIMEOUT, _DEFAULT_BACKOFF


@contextmanager
def use_resilience(
    *,
    retries: Any = _UNSET,
    task_timeout: Any = _UNSET,
    backoff: Any = _UNSET,
):
    """Temporarily install resilience defaults (see
    :func:`set_default_resilience`); restores the previous values on exit."""
    previous = default_resilience()
    set_default_resilience(
        retries=retries, task_timeout=task_timeout, backoff=backoff
    )
    try:
        yield
    finally:
        set_default_resilience(
            retries=previous[0], task_timeout=previous[1], backoff=previous[2]
        )


def _validate_retries(retries: int) -> int:
    if not isinstance(retries, int) or retries < 0:
        raise ValueError(f"retries must be a non-negative int, got {retries!r}")
    return retries


def _validate_timeout(timeout: Optional[float]) -> Optional[float]:
    if timeout is None:
        return None
    timeout = float(timeout)
    if timeout <= 0:
        raise ValueError(f"task_timeout must be positive or None, got {timeout}")
    return timeout


def _validate_backoff(backoff: float) -> float:
    backoff = float(backoff)
    if backoff < 0:
        raise ValueError(f"backoff must be non-negative, got {backoff}")
    return backoff


def _observability_worker_init(
    telemetry_path: Optional[str],
    inner: Optional[Callable[..., None]],
    innerargs: tuple,
) -> None:
    """Worker bootstrap: re-install ambient observability state.

    Spawn-started workers inherit no module globals, so the parent's
    telemetry sink path must be re-installed before the caller's own
    initializer (engine-mode propagation etc.) runs — this is what makes
    streaming JSONL emission work transparently under process pools.
    """
    from ..obs.telemetry import set_telemetry_path

    set_telemetry_path(telemetry_path)
    if inner is not None:
        inner(*innerargs)


def set_default_jobs(n_jobs: Optional[int]) -> None:
    """Set the job count used when callers pass ``n_jobs=None``.

    ``None`` resets to serial execution; ``-1`` means one worker per CPU.
    """
    global _DEFAULT_JOBS
    _DEFAULT_JOBS = 1 if n_jobs is None else resolve_jobs(n_jobs)


def default_jobs() -> int:
    """The process count used when ``n_jobs`` is not given explicitly."""
    return _DEFAULT_JOBS


@contextmanager
def use_jobs(n_jobs: Optional[int]):
    """Temporarily install ``n_jobs`` as the module default.

    ``None`` is a no-op (keep whatever default is active), so callers can
    pass their own ``n_jobs=None`` through unconditionally. This is how
    ``run_all(n_jobs=...)`` parallelizes every sweep inside every
    experiment without changing a single experiment signature.
    """
    global _DEFAULT_JOBS
    if n_jobs is None:
        yield
        return
    previous = _DEFAULT_JOBS
    _DEFAULT_JOBS = resolve_jobs(n_jobs)
    try:
        yield
    finally:
        _DEFAULT_JOBS = previous


def resolve_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` knob to a concrete worker count.

    ``None`` → the module default; ``-1`` → ``os.cpu_count()``; positive
    values pass through. Zero and other negatives are rejected.
    """
    if n_jobs is None:
        return _DEFAULT_JOBS
    if n_jobs == -1:
        return os.cpu_count() or 1
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be positive or -1, got {n_jobs}")
    return n_jobs


def _call_with_timeout(
    fn: Callable[[Task], Result], task: Task, timeout: Optional[float]
) -> Result:
    """Run one task under a ``SIGALRM``-based wall-clock budget.

    Falls back to an unbounded call when the platform has no ``SIGALRM``
    or we are not on the main thread (signal handlers can only be
    installed there) — pool workers run tasks on their main thread, so
    the budget is enforced wherever it can be.
    """
    if (
        not timeout
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        return fn(task)

    def _on_alarm(signum, frame):
        raise TaskTimeoutError(
            f"task exceeded its {timeout}s wall-clock budget"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return fn(task)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _run_chunk(
    fn: Callable[[Task], Result],
    tasks: Sequence[Task],
    timeout: Optional[float],
) -> List[Result]:
    """Worker entry point: run one chunk of tasks, each under the budget.

    The chunk is the retry unit: any failure (including a timeout) aborts
    the whole chunk, which the parent recomputes — sound because tasks
    are deterministic pure functions of their tuples.
    """
    return [_call_with_timeout(fn, task, timeout) for task in tasks]


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Hard-stop a pool: terminate workers, then release its resources.

    Used on the error path (``KeyboardInterrupt``, exhausted retries with
    no failure handler): a graceful ``shutdown(wait=True)`` would block on
    whatever simulation the workers are mid-way through, and leaving them
    running would orphan processes past interpreter exit.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        if process.is_alive():
            process.terminate()
    pool.shutdown(wait=False, cancel_futures=True)


def parallel_map(
    fn: Callable[[Task], Result],
    tasks: Iterable[Task],
    *,
    n_jobs: Optional[int] = None,
    chunksize: int = 1,
    initializer: Optional[Callable[..., None]] = None,
    initargs: tuple = (),
    retries: Optional[int] = None,
    task_timeout: Optional[float] = None,
    backoff: Optional[float] = None,
    on_result: Optional[Callable[[int, Task, Result], None]] = None,
    on_failure: Optional[Callable[[Task, BaseException], None]] = None,
) -> List[Optional[Result]]:
    """Apply ``fn`` to every task, in order, optionally across processes.

    ``fn`` and the tasks must be picklable (``fn`` should be a module-level
    function). With one job — or one task — no pool is created (and any
    ``initializer`` runs once in-process, matching worker semantics).
    ``initializer`` exists for ambient per-process switches that are not
    part of the task tuples — e.g. propagating a forced engine mode to
    spawn-started workers, which inherit nothing from the parent.

    Resilience knobs (``None`` = the module defaults, see
    :func:`set_default_resilience`):

    * ``task_timeout`` — per-task wall-clock budget in seconds, enforced
      in the worker via ``SIGALRM``; an overrun raises
      :class:`TaskTimeoutError` for that chunk.
    * ``retries`` — additional attempts per chunk after the first; attempt
      ``k`` is delayed by ``backoff * 2**(k-1)`` seconds. A worker dying
      mid-chunk (:class:`WorkerCrashError`) rebuilds the pool; the crash
      consumes an attempt only for the chunk that provably caused it
      (crash suspects rerun solo), so one poison task never exhausts the
      retries of tasks that merely shared the pool with it.
    * ``on_failure(task, exc)`` — invoked once per task when its chunk
      exhausts all attempts; the task's slot in the returned list is then
      ``None``. Without it the first exhausted failure propagates.
    * ``on_result(index, task, result)`` — invoked in the parent as each
      chunk completes (completion order, not task order) — the checkpoint
      hook for :mod:`repro.harness.checkpoint`.

    ``KeyboardInterrupt`` (and any other unexpected error) terminates all
    workers and cancels queued work before propagating — no orphans.
    """
    task_list: Sequence[Task] = list(tasks)
    retries = (
        _DEFAULT_RETRIES if retries is None else _validate_retries(retries)
    )
    task_timeout = _validate_timeout(
        _DEFAULT_TASK_TIMEOUT if task_timeout is None else task_timeout
    )
    backoff = (
        _DEFAULT_BACKOFF if backoff is None else _validate_backoff(backoff)
    )
    if chunksize < 1:
        raise ValueError(f"chunksize must be positive, got {chunksize}")
    jobs = min(resolve_jobs(n_jobs), max(1, len(task_list)))
    if jobs == 1:
        if initializer is not None:
            initializer(*initargs)
        return _serial_map(
            fn, task_list, task_timeout, retries, backoff, on_result,
            on_failure,
        )
    from ..obs.telemetry import telemetry_path

    sink = telemetry_path()
    if sink is not None:
        initializer, initargs = (
            _observability_worker_init, (sink, initializer, initargs)
        )
    return _pool_map(
        fn, task_list, jobs, chunksize, initializer, initargs,
        task_timeout, retries, backoff, on_result, on_failure,
    )


def _serial_map(
    fn, task_list, task_timeout, retries, backoff, on_result, on_failure
) -> List[Optional[Result]]:
    """The ``n_jobs=1`` path, with identical timeout/retry semantics."""
    results: List[Optional[Result]] = []
    for index, task in enumerate(task_list):
        attempt = 0
        while True:
            try:
                value = _call_with_timeout(fn, task, task_timeout)
            except Exception as exc:
                attempt += 1
                if attempt <= retries:
                    time.sleep(backoff * 2 ** (attempt - 1))
                    continue
                if on_failure is None:
                    raise
                on_failure(task, exc)
                value = None
            else:
                if on_result is not None:
                    on_result(index, task, value)
            break
        results.append(value)
    return results


def _pool_map(
    fn, task_list, jobs, chunksize, initializer, initargs,
    task_timeout, retries, backoff, on_result, on_failure,
) -> List[Optional[Result]]:
    """The process-pool path: chunked submission with retry bookkeeping.

    The parent keeps four queues — ``ready`` (chunks to submit now),
    ``probation`` (crash suspects, run one at a time), ``delayed`` (a heap
    of backoff deadlines), and ``running`` (futures in flight) — and
    drains completions with ``FIRST_COMPLETED`` waits. A
    ``BrokenProcessPool`` is not fatal: completed futures still hold
    their results and the pool is rebuilt before resubmission.

    Crash attribution: a dead worker breaks the whole pool, so with
    several chunks in flight the culprit is ambiguous — those chunks are
    requeued *uncharged* into the probation lane, which runs one chunk at
    a time. A crash with exactly one chunk in flight identifies the
    culprit definitively; only then is a retry attempt charged
    (:class:`WorkerCrashError`). Innocent bystanders therefore never
    exhaust their retries on someone else's segfault, while a
    deterministic crasher still fails after ``retries + 1`` solo runs.
    """
    chunks: List[List[Tuple[int, Task]]] = [
        [(i, task_list[i]) for i in range(start, min(start + chunksize,
                                                     len(task_list)))]
        for start in range(0, len(task_list), chunksize)
    ]
    results: List[Optional[Result]] = [None] * len(task_list)
    attempts = [0] * len(chunks)
    ready: deque = deque(range(len(chunks)))
    probation: deque = deque()
    suspects: set = set()
    delayed: List[Tuple[float, int]] = []

    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=jobs, initializer=initializer, initargs=initargs
        )

    def record_failure(chunk_index: int, exc: BaseException) -> None:
        attempts[chunk_index] += 1
        if attempts[chunk_index] <= retries:
            delay = backoff * 2 ** (attempts[chunk_index] - 1)
            heapq.heappush(delayed, (time.monotonic() + delay, chunk_index))
            return
        if on_failure is None:
            raise exc
        for _, task in chunks[chunk_index]:
            on_failure(task, exc)

    def record_success(chunk_index: int, values: Sequence[Result]) -> None:
        for (index, task), value in zip(chunks[chunk_index], values):
            results[index] = value
            if on_result is not None:
                on_result(index, task, value)

    pool = make_pool()
    running: dict = {}

    def submit(chunk_index: int):
        """Submit one chunk, transparently rebuilding a broken idle pool."""
        nonlocal pool
        while True:
            try:
                future = pool.submit(
                    _run_chunk, fn,
                    [task for _, task in chunks[chunk_index]],
                    task_timeout,
                )
            except BrokenProcessPool:
                # Broke while idle (no attempt to charge): old futures
                # are already settled and stay readable after shutdown.
                pool.shutdown(wait=False, cancel_futures=True)
                pool = make_pool()
                continue
            running[future] = chunk_index
            return

    try:
        while ready or probation or delayed or running:
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                chunk_index = heapq.heappop(delayed)[1]
                # Known crashers rerun solo so their next crash is charged
                # to them, not to whoever happens to share the pool.
                if chunk_index in suspects:
                    probation.append(chunk_index)
                else:
                    ready.append(chunk_index)
            if probation:
                # Probation lane: run crash suspects one at a time with
                # nothing else in flight, so a crash has an unambiguous
                # culprit. Ready chunks wait until probation drains.
                if not running:
                    submit(probation.popleft())
            else:
                while ready:
                    submit(ready.popleft())
            if not running:
                # Everything left is backing off: sleep to the deadline.
                time.sleep(max(0.0, delayed[0][0] - time.monotonic()))
                continue
            wait_timeout = (
                max(0.0, delayed[0][0] - time.monotonic())
                if delayed else None
            )
            done, _ = wait(
                running, timeout=wait_timeout, return_when=FIRST_COMPLETED
            )
            pool_broken = False
            crashed: List[int] = []
            if done:
                # Drain every settled future: once the pool breaks, all
                # in-flight futures settle too, but completed ones still
                # hold real results — keep them.
                for future in list(running):
                    if not future.done():
                        continue
                    chunk_index = running.pop(future)
                    try:
                        values = future.result()
                    except BrokenProcessPool:
                        pool_broken = True
                        crashed.append(chunk_index)
                    except Exception as exc:
                        record_failure(chunk_index, exc)
                    else:
                        record_success(chunk_index, values)
            if pool_broken:
                if len(crashed) == 1 and not running:
                    # Exactly one chunk was in flight when the worker died:
                    # the culprit is unambiguous, so charge its attempt.
                    suspects.add(crashed[0])
                    record_failure(
                        crashed[0],
                        WorkerCrashError(
                            "worker process died mid-chunk "
                            "(segfault, OOM-kill, or hard exit)"
                        ),
                    )
                else:
                    # Several chunks were in flight — any of them could
                    # have killed the worker. Requeue them all *uncharged*
                    # into the probation lane; each reruns solo, where the
                    # real crasher is identified and charged while the
                    # bystanders complete normally.
                    probation.extend(crashed)
                for future, chunk_index in list(running.items()):
                    # Unsettled futures on a broken pool never complete;
                    # resubmit them to the fresh pool at no attempt cost.
                    future.cancel()
                    ready.append(chunk_index)
                running.clear()
                pool.shutdown(wait=False, cancel_futures=True)
                pool = make_pool()
    except BaseException:
        _terminate_pool(pool)
        raise
    pool.shutdown(wait=True)
    return results
