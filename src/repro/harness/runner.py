"""Uniform runner over every MIS algorithm in the package."""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import networkx as nx

from ..analysis import verify_mis
from ..baselines import (
    ghaffari_mis,
    luby_mis,
    radio_decay_mis,
    regularized_luby_mis,
)
from ..core import (
    algorithm1,
    algorithm1_constant_average_energy,
    algorithm2,
    algorithm2_constant_average_energy,
)
from ..graphs import make_family
from ..result import MISResult
from .parallel import parallel_map

ALGORITHMS: Dict[str, Callable[..., MISResult]] = {
    "luby": luby_mis,
    "regularized_luby": regularized_luby_mis,
    "ghaffari2016": ghaffari_mis,
    "algorithm1": algorithm1,
    "algorithm2": algorithm2,
    "algorithm1_avg": algorithm1_constant_average_energy,
    "algorithm2_avg": algorithm2_constant_average_energy,
    "radio_decay": radio_decay_mis,
}

#: Algorithms whose protocol is sound on the shared radio medium (half-
#: duplex, collisions): point-to-point algorithms silently lose messages
#: there, so the CLI refuses the combination for anything else.
RADIO_SAFE_ALGORITHMS = frozenset({"radio_decay"})

#: Algorithms whose node programs declare the vectorized dense-round
#: capability (``NodeProgram.vector_round``). For these the engine's
#: ``"vectorized"``/default ``"auto"`` mode executes always-on rounds as
#: whole-network numpy steps; ``tests/test_engine_equivalence.py`` both
#: proves the path bit-identical to fast/legacy for *every* registered
#: algorithm and fails if it silently never engages for an algorithm
#: listed here.
VECTOR_CAPABLE_ALGORITHMS = frozenset({"luby", "regularized_luby"})


def run_algorithm(
    name: str, graph: nx.Graph, seed: int = 0, *, channel=None, **kwargs
) -> MISResult:
    """Run one registered algorithm by name.

    ``channel`` selects the delivery model (see
    :data:`repro.congest.CHANNELS`): ``None`` keeps each algorithm's own
    default (CONGEST for the paper's algorithms and baselines, the radio
    broadcast channel for ``radio_decay``). Extra keyword arguments
    (``config=``, ``ledger=``, ``size_bound=``, ...) are forwarded to the
    underlying algorithm untouched.
    """
    if name not in ALGORITHMS:
        raise KeyError(f"unknown algorithm {name!r}; have {sorted(ALGORITHMS)}")
    if channel is not None:
        _check_radio_safety(name, channel)
        kwargs["channel"] = channel
    return ALGORITHMS[name](graph, seed, **kwargs)


def _check_radio_safety(name: str, channel) -> None:
    """Refuse point-to-point algorithms on the shared radio medium.

    On a broadcast channel a transmitter never hears its neighbors'
    simultaneous transmissions (half-duplex), so algorithms like Luby
    silently lose exactly the messages their correctness depends on — or
    crash on the COLLISION sentinel. Failing loudly here protects every
    caller (CLI, sweeps, process pools), not just one entry point.
    """
    from ..congest import BroadcastChannel, make_channel

    if name in RADIO_SAFE_ALGORITHMS:
        return
    if isinstance(make_channel(channel), BroadcastChannel):
        raise ValueError(
            f"algorithm {name!r} is point-to-point and unsound on the "
            f"shared radio medium; use one of "
            f"{sorted(RADIO_SAFE_ALGORITHMS)} with the broadcast channel"
        )


def measure(name: str, graph: nx.Graph, seed: int = 0, **kwargs) -> Dict[str, float]:
    """Run an algorithm and flatten the interesting numbers into one dict.

    Keys: ``rounds``, ``max_energy``, ``average_energy``, ``mis_size``,
    ``collisions``, ``independent``, ``maximal`` (booleans as 0/1 so trials
    aggregate). Keyword arguments (including ``channel=``) are forwarded to
    the algorithm as in :func:`run_algorithm`.
    """
    result = run_algorithm(name, graph, seed=seed, **kwargs)
    report = verify_mis(graph, result.mis)
    return {
        "rounds": float(result.rounds),
        "max_energy": float(result.max_energy),
        "average_energy": float(result.average_energy),
        "mis_size": float(len(result.mis)),
        "collisions": float(result.metrics.collisions),
        "independent": 1.0 if report.independent else 0.0,
        "maximal": 1.0 if report.maximal else 0.0,
    }


def _measure_task(task: Tuple) -> Dict[str, float]:
    """Worker for :func:`measure_many`: regenerate the graph, then measure."""
    algorithm, family, n, seed, *rest = task
    channel = rest[0] if rest else None
    graph = make_family(family, n, seed=seed)
    return measure(algorithm, graph, seed=seed, channel=channel)


def measure_many(
    tasks: Iterable[Tuple],
    *,
    n_jobs: Optional[int] = None,
    initializer=None,
    initargs: tuple = (),
) -> List[Dict[str, float]]:
    """Measure many (algorithm, family, n, seed[, channel]) cells,
    optionally in parallel.

    Each task tuple fully describes one deterministic simulation, so the
    results are identical (and identically ordered) for any ``n_jobs``.
    The optional fifth element is a channel name from
    :data:`repro.congest.CHANNELS` (``None`` = the algorithm's default).
    ``initializer``/``initargs`` run once per worker (and once in-process
    when serial) for ambient switches like a forced engine mode.
    """
    return parallel_map(
        _measure_task, tasks, n_jobs=n_jobs,
        initializer=initializer, initargs=initargs,
    )


def run_dynamic_workload(
    workload: str,
    algorithm: str = "algorithm1",
    *,
    strategy: str = "incremental",
    n: int = 200,
    epochs: int = 10,
    seed: int = 0,
    rate: float = 1.0,
    **kwargs,
):
    """Run a named churn workload end-to-end; returns a ``DynamicRunResult``.

    The dynamic analogue of :func:`run_algorithm`: resolves the workload
    from :data:`repro.dynamic.WORKLOADS` and the algorithm from
    :data:`ALGORITHMS`, then maintains the MIS across the whole timeline
    (verifying the invariant after every epoch).
    """
    from ..dynamic import make_workload, run_dynamic  # deferred: import cycle

    graph, timeline = make_workload(
        workload, n=n, epochs=epochs, seed=seed, rate=rate
    )
    return run_dynamic(
        graph, timeline, algorithm, strategy=strategy, seed=seed, **kwargs
    )


def measure_dynamic(
    workload: str,
    algorithm: str = "algorithm1",
    *,
    strategy: str = "incremental",
    n: int = 200,
    epochs: int = 10,
    seed: int = 0,
    rate: float = 1.0,
    **kwargs,
) -> Dict[str, float]:
    """Flatten a dynamic run into one dict (see ``DynamicRunResult.summary``)."""
    result = run_dynamic_workload(
        workload,
        algorithm,
        strategy=strategy,
        n=n,
        epochs=epochs,
        seed=seed,
        rate=rate,
        **kwargs,
    )
    return result.summary()


def _measure_dynamic_task(task: Tuple[Any, ...]) -> Dict[str, float]:
    """Worker for :func:`measure_dynamic_many`.

    Invariant violations are recorded in the summary's ``all_valid`` flag
    rather than raised, so one bad seed cannot kill a whole batch.
    """
    workload, algorithm, strategy, n, epochs, seed, *rest = task
    rate = rest[0] if rest else 1.0
    return measure_dynamic(
        workload, algorithm, strategy=strategy, n=n, epochs=epochs,
        seed=seed, rate=rate, check_invariant=False,
    )


def measure_dynamic_many(
    tasks: Iterable[Tuple],
    *,
    n_jobs: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Measure many (workload, algorithm, strategy, n, epochs, seed[, rate])
    runs.

    The dynamic analogue of :func:`measure_many`: seeds fully determine
    each churn timeline and every repair, so parallel results are
    bit-identical to serial ones, in task order.
    """
    return parallel_map(_measure_dynamic_task, tasks, n_jobs=n_jobs)
