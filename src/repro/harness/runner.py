"""Uniform runner over every MIS algorithm in the package."""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import networkx as nx

from ..analysis import verify_mis
from ..baselines import ghaffari_mis, luby_mis, regularized_luby_mis
from ..core import (
    algorithm1,
    algorithm1_constant_average_energy,
    algorithm2,
    algorithm2_constant_average_energy,
)
from ..graphs import make_family
from ..result import MISResult
from .parallel import parallel_map

ALGORITHMS: Dict[str, Callable[..., MISResult]] = {
    "luby": luby_mis,
    "regularized_luby": regularized_luby_mis,
    "ghaffari2016": ghaffari_mis,
    "algorithm1": algorithm1,
    "algorithm2": algorithm2,
    "algorithm1_avg": algorithm1_constant_average_energy,
    "algorithm2_avg": algorithm2_constant_average_energy,
}


def run_algorithm(
    name: str, graph: nx.Graph, seed: int = 0, **kwargs
) -> MISResult:
    """Run one registered algorithm by name.

    Extra keyword arguments (``config=``, ``ledger=``, ``size_bound=``, ...)
    are forwarded to the underlying algorithm untouched.
    """
    if name not in ALGORITHMS:
        raise KeyError(f"unknown algorithm {name!r}; have {sorted(ALGORITHMS)}")
    return ALGORITHMS[name](graph, seed, **kwargs)


def measure(name: str, graph: nx.Graph, seed: int = 0, **kwargs) -> Dict[str, float]:
    """Run an algorithm and flatten the interesting numbers into one dict.

    Keys: ``rounds``, ``max_energy``, ``average_energy``, ``mis_size``,
    ``independent``, ``maximal`` (booleans as 0/1 so trials aggregate).
    Keyword arguments are forwarded to the algorithm as in
    :func:`run_algorithm`.
    """
    result = run_algorithm(name, graph, seed=seed, **kwargs)
    report = verify_mis(graph, result.mis)
    return {
        "rounds": float(result.rounds),
        "max_energy": float(result.max_energy),
        "average_energy": float(result.average_energy),
        "mis_size": float(len(result.mis)),
        "independent": 1.0 if report.independent else 0.0,
        "maximal": 1.0 if report.maximal else 0.0,
    }


def _measure_task(task: Tuple[str, str, int, int]) -> Dict[str, float]:
    """Worker for :func:`measure_many`: regenerate the graph, then measure."""
    algorithm, family, n, seed = task
    graph = make_family(family, n, seed=seed)
    return measure(algorithm, graph, seed=seed)


def measure_many(
    tasks: Iterable[Tuple[str, str, int, int]],
    *,
    n_jobs: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Measure many (algorithm, family, n, seed) cells, optionally in parallel.

    Each task tuple fully describes one deterministic simulation, so the
    results are identical (and identically ordered) for any ``n_jobs``.
    """
    return parallel_map(_measure_task, tasks, n_jobs=n_jobs)


def run_dynamic_workload(
    workload: str,
    algorithm: str = "algorithm1",
    *,
    strategy: str = "incremental",
    n: int = 200,
    epochs: int = 10,
    seed: int = 0,
    **kwargs,
):
    """Run a named churn workload end-to-end; returns a ``DynamicRunResult``.

    The dynamic analogue of :func:`run_algorithm`: resolves the workload
    from :data:`repro.dynamic.WORKLOADS` and the algorithm from
    :data:`ALGORITHMS`, then maintains the MIS across the whole timeline
    (verifying the invariant after every epoch).
    """
    from ..dynamic import make_workload, run_dynamic  # deferred: import cycle

    graph, timeline = make_workload(workload, n=n, epochs=epochs, seed=seed)
    return run_dynamic(
        graph, timeline, algorithm, strategy=strategy, seed=seed, **kwargs
    )


def measure_dynamic(
    workload: str,
    algorithm: str = "algorithm1",
    *,
    strategy: str = "incremental",
    n: int = 200,
    epochs: int = 10,
    seed: int = 0,
    **kwargs,
) -> Dict[str, float]:
    """Flatten a dynamic run into one dict (see ``DynamicRunResult.summary``)."""
    result = run_dynamic_workload(
        workload,
        algorithm,
        strategy=strategy,
        n=n,
        epochs=epochs,
        seed=seed,
        **kwargs,
    )
    return result.summary()


def _measure_dynamic_task(task: Tuple[Any, ...]) -> Dict[str, float]:
    """Worker for :func:`measure_dynamic_many`.

    Invariant violations are recorded in the summary's ``all_valid`` flag
    rather than raised, so one bad seed cannot kill a whole batch.
    """
    workload, algorithm, strategy, n, epochs, seed = task
    return measure_dynamic(
        workload, algorithm, strategy=strategy, n=n, epochs=epochs,
        seed=seed, check_invariant=False,
    )


def measure_dynamic_many(
    tasks: Iterable[Tuple[str, str, str, int, int, int]],
    *,
    n_jobs: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Measure many (workload, algorithm, strategy, n, epochs, seed) runs.

    The dynamic analogue of :func:`measure_many`: seeds fully determine
    each churn timeline and every repair, so parallel results are
    bit-identical to serial ones, in task order.
    """
    return parallel_map(_measure_dynamic_task, tasks, n_jobs=n_jobs)
