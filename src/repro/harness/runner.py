"""Uniform runner over every MIS algorithm in the package."""

from __future__ import annotations

from contextlib import ExitStack
from time import perf_counter
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import networkx as nx

from ..analysis import verify_mis
from ..baselines import (
    ghaffari_mis,
    luby_mis,
    radio_decay_mis,
    regularized_luby_mis,
)
from ..core import (
    algorithm1,
    algorithm1_constant_average_energy,
    algorithm2,
    algorithm2_constant_average_energy,
)
from ..graphs import make_family
from ..obs import (
    CompositeInstrument,
    Profiler,
    channel_label,
    emit,
    instrument_scope,
    make_record,
    telemetry_path,
)
from ..result import MISResult
from .parallel import parallel_map

ALGORITHMS: Dict[str, Callable[..., MISResult]] = {
    "luby": luby_mis,
    "regularized_luby": regularized_luby_mis,
    "ghaffari2016": ghaffari_mis,
    "algorithm1": algorithm1,
    "algorithm2": algorithm2,
    "algorithm1_avg": algorithm1_constant_average_energy,
    "algorithm2_avg": algorithm2_constant_average_energy,
    "radio_decay": radio_decay_mis,
}

#: Algorithms whose protocol is sound on the shared radio medium (half-
#: duplex, collisions): point-to-point algorithms silently lose messages
#: there, so the CLI refuses the combination for anything else.
RADIO_SAFE_ALGORITHMS = frozenset({"radio_decay"})

def _program_classes() -> Dict[str, Tuple[type, ...]]:
    """Program classes each registered algorithm's networks may run.

    Derived lazily (imports stay at the call site to avoid import cycles)
    and used to *compute* the vector capability set instead of hand-listing
    it — adding ``vector_round`` to a program class is then sufficient for
    the harness, the CLI, and the never-silently-falls-back CI gate to pick
    the algorithm up.
    """
    from ..baselines.ghaffari import GhaffariProgram
    from ..baselines.luby import LubyProgram
    from ..baselines.radio_decay import RadioDecayProgram
    from ..baselines.regularized_luby import RegularizedLubyProgram
    from ..core.average_energy import Lemma42Program
    from ..core.phase1_alg1 import Phase1Alg1Program
    from ..core.phase1_alg2 import Phase1Alg2Program

    return {
        "luby": (LubyProgram,),
        "regularized_luby": (RegularizedLubyProgram,),
        "ghaffari2016": (GhaffariProgram,),
        # The paper's pipelines: Phase I runs the named program, Phases
        # II/III both run GhaffariProgram networks.
        "algorithm1": (Phase1Alg1Program, GhaffariProgram),
        "algorithm2": (Phase1Alg2Program, GhaffariProgram),
        # The constant-average-energy wrappers add Lemma 4.2's simulation
        # harness, whose program has no dense-round kernel (yet).
        "algorithm1_avg": (Phase1Alg1Program, GhaffariProgram, Lemma42Program),
        "algorithm2_avg": (Phase1Alg2Program, GhaffariProgram, Lemma42Program),
        "radio_decay": (RadioDecayProgram,),
    }


def _vector_capable() -> frozenset:
    return frozenset(
        name
        for name, classes in _program_classes().items()
        if all(callable(cls.vector_round) for cls in classes)
    )


#: Algorithms every one of whose node programs declares the vectorized
#: dense-round capability (``NodeProgram.vector_round``) — derived from the
#: registry at import time, not hand-maintained. For these the engine's
#: ``"vectorized"``/default ``"auto"`` mode executes dense rounds as
#: whole-network numpy steps; ``tests/test_engine_equivalence.py`` both
#: proves the path bit-identical to fast/legacy for *every* registered
#: algorithm and fails if it silently never engages for an algorithm
#: listed here.
VECTOR_CAPABLE_ALGORITHMS = _vector_capable()


def run_algorithm(
    name: str,
    graph: nx.Graph,
    seed: int = 0,
    *,
    channel=None,
    instrument=None,
    profile: bool = False,
    faults=None,
    **kwargs,
) -> MISResult:
    """Run one registered algorithm by name.

    ``channel`` selects the delivery model (see
    :data:`repro.congest.CHANNELS`, plus the fault-wrapper spec grammar of
    :mod:`repro.faults.spec`, e.g. ``"lossy(drop=0.1):congest"``): ``None``
    keeps each algorithm's own default (CONGEST for the paper's algorithms
    and baselines, the radio broadcast channel for ``radio_decay``).
    ``faults`` injects a node-fault timeline (a
    :class:`repro.faults.FaultPlan` of crash/straggler events) into every
    network the run builds, via the ambient
    :func:`~repro.congest.network.fault_scope`. ``instrument`` observes
    every network the run builds (see :mod:`repro.obs`); ``profile=True``
    attaches a wall-clock :class:`~repro.obs.Profiler` (composed with any
    ``instrument``) and stores its section tree in
    ``result.details["profile"]``. Extra keyword arguments (``config=``,
    ``ledger=``, ``size_bound=``, ...) are forwarded to the underlying
    algorithm untouched.
    """
    if name not in ALGORITHMS:
        raise KeyError(f"unknown algorithm {name!r}; have {sorted(ALGORITHMS)}")
    if channel is not None:
        _check_radio_safety(name, channel)
        kwargs["channel"] = channel
    profiler = Profiler() if profile else None
    if profiler is not None:
        instrument = (
            CompositeInstrument([instrument, profiler])
            if instrument is not None
            else profiler
        )
    scopes = ExitStack()
    with scopes:
        if faults is not None and getattr(faults, "empty", True) is False:
            from ..congest.network import fault_scope

            # Validate here against the full input graph: sub-networks the
            # algorithm builds over node subsets legitimately see only
            # part of the plan (the injector skips absent nodes), so the
            # loud unknown-node error lives at this boundary.
            unknown = faults.nodes() - set(graph.nodes)
            if unknown:
                raise KeyError(
                    f"fault plan names nodes not in the graph: "
                    f"{sorted(unknown, key=repr)[:5]!r}"
                )
            scopes.enter_context(fault_scope(faults))
        if instrument is None:
            return ALGORITHMS[name](graph, seed, **kwargs)
        scopes.enter_context(instrument_scope(instrument))
        result = ALGORITHMS[name](graph, seed, **kwargs)
    if profiler is not None:
        result.details["profile"] = profiler.as_dict()
    return result


def _check_radio_safety(name: str, channel) -> None:
    """Refuse point-to-point algorithms on the shared radio medium.

    On a broadcast channel a transmitter never hears its neighbors'
    simultaneous transmissions (half-duplex), so algorithms like Luby
    silently lose exactly the messages their correctness depends on — or
    crash on the COLLISION sentinel. Failing loudly here protects every
    caller (CLI, sweeps, process pools), not just one entry point.
    """
    from ..congest import BroadcastChannel, make_channel

    if name in RADIO_SAFE_ALGORITHMS:
        return
    # ``unwrapped()`` sees through fault wrappers: ``lossy(...):broadcast``
    # is still a radio medium and still unsound for point-to-point code.
    if isinstance(make_channel(channel).unwrapped(), BroadcastChannel):
        raise ValueError(
            f"algorithm {name!r} is point-to-point and unsound on the "
            f"shared radio medium; use one of "
            f"{sorted(RADIO_SAFE_ALGORITHMS)} with the broadcast channel"
        )


def emit_static_record(
    name: str,
    graph: nx.Graph,
    seed: int,
    channel,
    result: MISResult,
    report,
    elapsed_s: float,
    *,
    extra: Optional[Dict[str, Any]] = None,
) -> bool:
    """Append one ``kind="static"`` telemetry record for a finished run.

    No-op (returns False) without an ambient sink, so callers emit
    unconditionally. ``extra`` adds caller context (e.g. the graph
    family). Shared by :func:`measure` and the CLI single-run path so the
    record schema cannot drift between them.
    """
    if telemetry_path() is None:
        return False
    from ..congest.network import get_engine_mode

    record = make_record(
        "static",
        algorithm=name,
        n=graph.number_of_nodes(),
        seed=seed,
        channel=channel_label(channel),
        engine=get_engine_mode(),
        **(extra or {}),
    )
    record.update(
        elapsed_s=elapsed_s,
        mis_size=len(result.mis),
        independent=report.independent,
        maximal=report.maximal,
        metrics=result.metrics.to_dict(),
    )
    return emit(record)


def emit_dynamic_record(
    workload: str,
    algorithm: str,
    strategy: str,
    n: int,
    epochs: int,
    seed: int,
    rate: float,
    summary: Dict[str, float],
    elapsed_s: float,
) -> bool:
    """Append one ``kind="dynamic"`` telemetry record (see
    :func:`emit_static_record` for the contract)."""
    if telemetry_path() is None:
        return False
    record = make_record(
        "dynamic",
        algorithm=algorithm,
        workload=workload,
        strategy=strategy,
        n=n,
        epochs=epochs,
        seed=seed,
        rate=rate,
    )
    record.update(elapsed_s=elapsed_s, summary=summary)
    return emit(record)


def measure(name: str, graph: nx.Graph, seed: int = 0, **kwargs) -> Dict[str, float]:
    """Run an algorithm and flatten the interesting numbers into one dict.

    Keys: ``rounds``, ``max_energy``, ``average_energy``, ``mis_size``,
    ``collisions``, ``independent``, ``maximal`` (booleans as 0/1 so trials
    aggregate). Keyword arguments (including ``channel=``) are forwarded to
    the algorithm as in :func:`run_algorithm`.

    With an ambient telemetry sink (:func:`repro.obs.set_telemetry_path` /
    CLI ``--telemetry``), each call also appends one JSONL record — the
    full :meth:`~repro.congest.metrics.RunMetrics.to_dict` plus the
    verification verdict and wall time — as the run completes.
    ``telemetry_extra`` (a dict, e.g. ``{"family": ...}``) adds caller
    context to that record only; the returned key set never changes.
    """
    extra = kwargs.pop("telemetry_extra", None)
    started = perf_counter()
    result = run_algorithm(name, graph, seed=seed, **kwargs)
    elapsed = perf_counter() - started
    report = verify_mis(graph, result.mis)
    emit_static_record(
        name, graph, seed, kwargs.get("channel"), result, report, elapsed,
        extra=extra,
    )
    return {
        "rounds": float(result.rounds),
        "max_energy": float(result.max_energy),
        "average_energy": float(result.average_energy),
        "mis_size": float(len(result.mis)),
        "collisions": float(result.metrics.collisions),
        "independent": 1.0 if report.independent else 0.0,
        "maximal": 1.0 if report.maximal else 0.0,
    }


def _measure_task(task: Tuple) -> Dict[str, float]:
    """Worker for :func:`measure_many`: regenerate the graph, then measure.

    The optional sixth element is a node-fault spec: either a
    :class:`repro.faults.FaultPlan` or a picklable dict of
    :meth:`FaultPlan.random` keyword arguments, instantiated here against
    the regenerated graph's node set so the task tuple stays a plain
    value.
    """
    algorithm, family, n, seed, *rest = task
    channel = rest[0] if rest else None
    faults = rest[1] if len(rest) > 1 else None
    graph = make_family(family, n, seed=seed)
    if isinstance(faults, dict):
        from ..faults import FaultPlan

        faults = FaultPlan.random(graph.nodes, **faults)
    return measure(
        algorithm, graph, seed=seed, channel=channel, faults=faults,
        telemetry_extra={"family": family},
    )


def measure_many(
    tasks: Iterable[Tuple],
    *,
    n_jobs: Optional[int] = None,
    initializer=None,
    initargs: tuple = (),
    checkpoint=None,
    retries: Optional[int] = None,
    task_timeout: Optional[float] = None,
) -> List[Dict[str, float]]:
    """Measure many (algorithm, family, n, seed[, channel[, faults]])
    cells, optionally in parallel.

    Each task tuple fully describes one deterministic simulation, so the
    results are identical (and identically ordered) for any ``n_jobs``.
    The optional fifth element is a channel name from
    :data:`repro.congest.CHANNELS` or a fault-wrapper spec string
    (``"lossy(drop=0.1):congest"``); the optional sixth is a dict of
    :meth:`repro.faults.FaultPlan.random` keyword arguments (``None`` =
    no node faults). ``initializer``/``initargs`` run once per worker
    (and once in-process when serial) for ambient switches like a forced
    engine mode. ``checkpoint`` (a
    :class:`repro.harness.checkpoint.SweepCheckpoint`) records each
    finished task and skips already-recorded ones on resume; failed tasks
    then become ``None`` slots instead of raising.
    ``retries``/``task_timeout`` configure per-task resilience (see
    :func:`repro.harness.parallel.parallel_map`).
    """
    from .checkpoint import run_checkpointed

    return run_checkpointed(
        _measure_task, tasks, checkpoint, n_jobs=n_jobs,
        initializer=initializer, initargs=initargs,
        retries=retries, task_timeout=task_timeout,
    )


def run_dynamic_workload(
    workload: str,
    algorithm: str = "algorithm1",
    *,
    strategy: str = "incremental",
    n: int = 200,
    epochs: int = 10,
    seed: int = 0,
    rate: float = 1.0,
    **kwargs,
):
    """Run a named churn workload end-to-end; returns a ``DynamicRunResult``.

    The dynamic analogue of :func:`run_algorithm`: resolves the workload
    from :data:`repro.dynamic.WORKLOADS` and the algorithm from
    :data:`ALGORITHMS`, then maintains the MIS across the whole timeline
    (verifying the invariant after every epoch).
    """
    from ..dynamic import make_workload, run_dynamic  # deferred: import cycle

    graph, timeline = make_workload(
        workload, n=n, epochs=epochs, seed=seed, rate=rate
    )
    return run_dynamic(
        graph, timeline, algorithm, strategy=strategy, seed=seed, **kwargs
    )


def measure_dynamic(
    workload: str,
    algorithm: str = "algorithm1",
    *,
    strategy: str = "incremental",
    n: int = 200,
    epochs: int = 10,
    seed: int = 0,
    rate: float = 1.0,
    **kwargs,
) -> Dict[str, float]:
    """Flatten a dynamic run into one dict (see ``DynamicRunResult.summary``).

    With an ambient telemetry sink, also appends one ``kind="dynamic"``
    JSONL record embedding that summary as the run completes.
    """
    started = perf_counter()
    result = run_dynamic_workload(
        workload,
        algorithm,
        strategy=strategy,
        n=n,
        epochs=epochs,
        seed=seed,
        rate=rate,
        **kwargs,
    )
    elapsed = perf_counter() - started
    summary = result.summary()
    emit_dynamic_record(
        workload, algorithm, strategy, n, epochs, seed, rate, summary,
        elapsed,
    )
    return summary


def _measure_dynamic_task(task: Tuple[Any, ...]) -> Dict[str, float]:
    """Worker for :func:`measure_dynamic_many`.

    Invariant violations are recorded in the summary's ``all_valid`` flag
    rather than raised, so one bad seed cannot kill a whole batch.
    """
    workload, algorithm, strategy, n, epochs, seed, *rest = task
    rate = rest[0] if rest else 1.0
    return measure_dynamic(
        workload, algorithm, strategy=strategy, n=n, epochs=epochs,
        seed=seed, rate=rate, check_invariant=False,
    )


def measure_dynamic_many(
    tasks: Iterable[Tuple],
    *,
    n_jobs: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Measure many (workload, algorithm, strategy, n, epochs, seed[, rate])
    runs.

    The dynamic analogue of :func:`measure_many`: seeds fully determine
    each churn timeline and every repair, so parallel results are
    bit-identical to serial ones, in task order.
    """
    return parallel_map(_measure_dynamic_task, tasks, n_jobs=n_jobs)
