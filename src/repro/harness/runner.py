"""Uniform runner over every MIS algorithm in the package."""

from __future__ import annotations

from typing import Callable, Dict

import networkx as nx

from ..analysis import verify_mis
from ..baselines import ghaffari_mis, luby_mis, regularized_luby_mis
from ..core import (
    algorithm1,
    algorithm1_constant_average_energy,
    algorithm2,
    algorithm2_constant_average_energy,
)
from ..result import MISResult

ALGORITHMS: Dict[str, Callable[..., MISResult]] = {
    "luby": luby_mis,
    "regularized_luby": regularized_luby_mis,
    "ghaffari2016": ghaffari_mis,
    "algorithm1": algorithm1,
    "algorithm2": algorithm2,
    "algorithm1_avg": algorithm1_constant_average_energy,
    "algorithm2_avg": algorithm2_constant_average_energy,
}


def run_algorithm(name: str, graph: nx.Graph, seed: int = 0) -> MISResult:
    """Run one registered algorithm by name."""
    if name not in ALGORITHMS:
        raise KeyError(f"unknown algorithm {name!r}; have {sorted(ALGORITHMS)}")
    return ALGORITHMS[name](graph, seed)


def measure(name: str, graph: nx.Graph, seed: int = 0) -> Dict[str, float]:
    """Run an algorithm and flatten the interesting numbers into one dict.

    Keys: ``rounds``, ``max_energy``, ``average_energy``, ``mis_size``,
    ``independent``, ``maximal`` (booleans as 0/1 so trials aggregate).
    """
    result = run_algorithm(name, graph, seed=seed)
    report = verify_mis(graph, result.mis)
    return {
        "rounds": float(result.rounds),
        "max_energy": float(result.max_energy),
        "average_energy": float(result.average_energy),
        "mis_size": float(len(result.mis)),
        "independent": 1.0 if report.independent else 0.0,
        "maximal": 1.0 if report.maximal else 0.0,
    }
