"""Parameter sweeps over n, graph family, and seeds."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..analysis import Summary, aggregate_trials
from ..graphs import make_family
from .runner import measure


@dataclass
class SweepPoint:
    """Aggregated measurements for one (algorithm, family, n) cell."""

    algorithm: str
    family: str
    n: int
    seeds: int
    summaries: Dict[str, Summary] = field(default_factory=dict)

    def mean(self, key: str) -> float:
        return self.summaries[key].mean


def sweep(
    algorithms: Sequence[str],
    sizes: Sequence[int],
    *,
    family: str = "gnp_log_degree",
    seeds: int = 3,
    seed_base: int = 0,
) -> List[SweepPoint]:
    """Run every algorithm on every size with several seeds.

    Graphs are regenerated per seed (both the topology seed and the
    algorithm seed vary), so the summaries capture full run-to-run
    variance.
    """
    if not algorithms or not sizes or seeds < 1:
        raise ValueError("need at least one algorithm, size, and seed")
    points: List[SweepPoint] = []
    for algorithm in algorithms:
        for n in sizes:
            trials = []
            for trial in range(seeds):
                seed = seed_base + trial
                graph = make_family(family, n, seed=seed)
                trials.append(measure(algorithm, graph, seed=seed))
            points.append(
                SweepPoint(
                    algorithm=algorithm,
                    family=family,
                    n=n,
                    seeds=seeds,
                    summaries=aggregate_trials(trials),
                )
            )
    return points


def series(
    points: Iterable[SweepPoint], algorithm: str, key: str
) -> Dict[int, float]:
    """Extract the mean series of one metric for one algorithm, by n."""
    return {
        point.n: point.mean(key)
        for point in points
        if point.algorithm == algorithm
    }
