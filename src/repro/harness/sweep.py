"""Parameter sweeps over n, graph family, and seeds."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis import Summary, aggregate_trials
from ..graphs import make_family
from ..obs import get_logger
from .parallel import parallel_map
from .runner import measure

_log = get_logger("harness.sweep")


@dataclass
class SweepPoint:
    """Aggregated measurements for one (algorithm, family, n[, channel]) cell."""

    algorithm: str
    family: str
    n: int
    seeds: int
    summaries: Dict[str, Summary] = field(default_factory=dict)
    channel: Optional[str] = None

    def mean(self, key: str) -> float:
        return self.summaries[key].mean


def _sweep_task(task: Tuple) -> Dict[str, float]:
    """One sweep cell trial; module-level so process pools can pickle it.

    The graph is regenerated from (family, n, seed[, channel]) inside the
    worker, so parallel execution is bit-identical to the serial loop.
    """
    algorithm, family, n, seed, *rest = task
    channel = rest[0] if rest else None
    graph = make_family(family, n, seed=seed)
    return measure(
        algorithm, graph, seed=seed, channel=channel,
        telemetry_extra={"family": family},
    )


def sweep(
    algorithms: Sequence[str],
    sizes: Sequence[int],
    *,
    family: str = "gnp_log_degree",
    seeds: int = 3,
    seed_base: int = 0,
    n_jobs: Optional[int] = None,
    channel: Optional[str] = None,
) -> List[SweepPoint]:
    """Run every algorithm on every size with several seeds.

    Graphs are regenerated per seed (both the topology seed and the
    algorithm seed vary), so the summaries capture full run-to-run
    variance. With ``n_jobs`` (or a CLI ``--jobs`` default installed via
    :func:`repro.harness.parallel.set_default_jobs`) the trials run on a
    process pool; results are collected in task order and are identical to
    a serial run.
    """
    if not algorithms or not sizes or seeds < 1:
        raise ValueError("need at least one algorithm, size, and seed")
    tasks = [
        (algorithm, family, n, seed_base + trial, channel)
        for algorithm in algorithms
        for n in sizes
        for trial in range(seeds)
    ]
    _log.debug(
        "sweep: %d cells (%s × %s × %d seeds, family=%s)",
        len(tasks), list(algorithms), list(sizes), seeds, family,
    )
    outcomes = parallel_map(_sweep_task, tasks, n_jobs=n_jobs)
    points: List[SweepPoint] = []
    cursor = 0
    for algorithm in algorithms:
        for n in sizes:
            trials = outcomes[cursor:cursor + seeds]
            cursor += seeds
            points.append(
                SweepPoint(
                    algorithm=algorithm,
                    family=family,
                    n=n,
                    seeds=seeds,
                    summaries=aggregate_trials(trials),
                    channel=channel,
                )
            )
    return points


def series(
    points: Iterable[SweepPoint], algorithm: str, key: str
) -> Dict[int, float]:
    """Extract the mean series of one metric for one algorithm, by n."""
    return {
        point.n: point.mean(key)
        for point in points
        if point.algorithm == algorithm
    }
