"""Parameter sweeps over n, graph family, and seeds."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis import Summary, aggregate_trials
from ..graphs import make_family
from ..obs import get_logger
from .checkpoint import SweepCheckpoint, run_checkpointed, task_key
from .runner import measure

_log = get_logger("harness.sweep")


@dataclass
class SweepPoint:
    """Aggregated measurements for one (algorithm, family, n[, channel]) cell."""

    algorithm: str
    family: str
    n: int
    seeds: int
    summaries: Dict[str, Summary] = field(default_factory=dict)
    channel: Optional[str] = None
    #: Trials that actually completed (== ``seeds`` unless a checkpointed
    #: sweep recorded permanent failures for some of this cell's tasks).
    completed: int = 0

    def __post_init__(self):
        if not self.completed:
            self.completed = self.seeds

    def mean(self, key: str) -> float:
        return self.summaries[key].mean


def _sweep_task(task: Tuple) -> Dict[str, float]:
    """One sweep cell trial; module-level so process pools can pickle it.

    The graph is regenerated from (family, n, seed[, channel[, faults]])
    inside the worker, so parallel execution is bit-identical to the
    serial loop. ``channel`` may be a fault-wrapper spec string
    (``"lossy(drop=0.1):congest"``); ``faults`` is a picklable dict of
    :meth:`repro.faults.FaultPlan.random` keyword arguments.
    """
    algorithm, family, n, seed, *rest = task
    channel = rest[0] if rest else None
    faults = rest[1] if len(rest) > 1 else None
    graph = make_family(family, n, seed=seed)
    if isinstance(faults, dict):
        from ..faults import FaultPlan

        faults = FaultPlan.random(graph.nodes, **faults)
    return measure(
        algorithm, graph, seed=seed, channel=channel, faults=faults,
        telemetry_extra={"family": family},
    )


def sweep(
    algorithms: Sequence[str],
    sizes: Sequence[int],
    *,
    family: str = "gnp_log_degree",
    seeds: int = 3,
    seed_base: int = 0,
    n_jobs: Optional[int] = None,
    channel: Optional[str] = None,
    faults: Optional[Dict] = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    retries: Optional[int] = None,
    task_timeout: Optional[float] = None,
) -> List[SweepPoint]:
    """Run every algorithm on every size with several seeds.

    Graphs are regenerated per seed (both the topology seed and the
    algorithm seed vary), so the summaries capture full run-to-run
    variance. With ``n_jobs`` (or a CLI ``--jobs`` default installed via
    :func:`repro.harness.parallel.set_default_jobs`) the trials run on a
    process pool; results are collected in task order and are identical to
    a serial run.

    ``channel`` accepts fault-wrapper spec strings alongside plain channel
    names; ``faults`` is an optional dict of
    :meth:`repro.faults.FaultPlan.random` keyword arguments applied to
    every trial (the plan is instantiated per-graph inside the worker).

    ``checkpoint`` names a JSONL file recording each finished task;
    ``resume=True`` skips tasks already recorded there, so an interrupted
    sweep picks up exactly where it stopped and produces the identical
    final aggregate. ``retries``/``task_timeout`` configure per-task
    resilience (see :func:`repro.harness.parallel.parallel_map`); a task
    that exhausts its retries under a checkpoint is recorded in the
    partial-results manifest and its cell aggregates the surviving
    trials — unless a whole cell died, which raises.
    """
    if not algorithms or not sizes or seeds < 1:
        raise ValueError("need at least one algorithm, size, and seed")
    tasks = [
        (algorithm, family, n, seed_base + trial, channel, faults)
        if faults is not None
        else (algorithm, family, n, seed_base + trial, channel)
        for algorithm in algorithms
        for n in sizes
        for trial in range(seeds)
    ]
    _log.debug(
        "sweep: %d cells (%s × %s × %d seeds, family=%s)",
        len(tasks), list(algorithms), list(sizes), seeds, family,
    )
    ledger = (
        SweepCheckpoint(checkpoint, resume=resume)
        if checkpoint is not None else None
    )
    outcomes = run_checkpointed(
        _sweep_task, tasks, ledger,
        n_jobs=n_jobs, retries=retries, task_timeout=task_timeout,
    )
    points: List[SweepPoint] = []
    cursor = 0
    for algorithm in algorithms:
        for n in sizes:
            cell_tasks = tasks[cursor:cursor + seeds]
            trials = [
                outcome for outcome in outcomes[cursor:cursor + seeds]
                if outcome is not None
            ]
            cursor += seeds
            if not trials:
                manifest = ledger.manifest() if ledger is not None else {}
                errors = [
                    manifest.get(task_key(task), "no outcome recorded")
                    for task in cell_tasks
                ]
                raise RuntimeError(
                    f"sweep cell ({algorithm}, {family}, n={n}) has zero "
                    f"completed trials; failures: {errors}"
                )
            points.append(
                SweepPoint(
                    algorithm=algorithm,
                    family=family,
                    n=n,
                    seeds=seeds,
                    summaries=aggregate_trials(trials),
                    channel=channel,
                    completed=len(trials),
                )
            )
    if ledger is not None and ledger.manifest():
        _log.warning(
            "sweep finished with %d permanently failed tasks; see "
            "manifest in %s", len(ledger.manifest()), ledger.path,
        )
    return points


def series(
    points: Iterable[SweepPoint], algorithm: str, key: str
) -> Dict[int, float]:
    """Extract the mean series of one metric for one algorithm, by n."""
    return {
        point.n: point.mean(key)
        for point in points
        if point.algorithm == algorithm
    }
