"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        cells.append([_fmt(value) for value in row])
    widths = [
        max(len(cells[r][c]) for r in range(len(cells)))
        for c in range(len(headers))
    ]
    lines = []
    for index, row in enumerate(cells):
        line = "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        lines.append(line)
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e6:
            return str(int(value))
        return f"{value:.2f}"
    return str(value)


def bullet_list(items: Sequence[str]) -> str:
    return "\n".join(f"  * {item}" for item in items)


def section(title: str, body: str) -> str:
    underline = "=" * len(title)
    return f"{title}\n{underline}\n{body}\n"
