"""Checkpoint/resume for long sweeps, built on the telemetry JSONL layer.

A sweep is a list of self-describing task tuples, each a deterministic
pure function of its tuple — which makes exact resume trivial: record
every finished (or permanently failed) task as one ``kind="sweep-task"``
JSONL record keyed by the tuple itself, and on resume skip every task
whose key is already present. The record embeds the task's outcome dict,
so resumed runs re-read results instead of recomputing them and the final
aggregate is bit-identical to an uninterrupted run.

Records are appended through :func:`repro.obs.telemetry.emit` (atomic
``O_APPEND`` line writes), so a sweep killed mid-flight leaves at worst
one truncated trailing line, which the reader skips. The checkpoint file
is an ordinary telemetry stream — ``repro.obs.report`` tooling can read
it — but lives at its own path so interleaved telemetry cannot corrupt
resume state.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from ..obs.telemetry import emit, make_record, read_records

CHECKPOINT_KIND = "sweep-task"


def task_key(task: Tuple) -> str:
    """Canonical string key for one task tuple.

    JSON over the tuple-as-list: stable across processes and runs (dict
    parameters keep their insertion order, which the harness constructs
    deterministically), and human-greppable in the checkpoint file.
    """
    return json.dumps(list(task), default=str, separators=(",", ":"))


class SweepCheckpoint:
    """Record-and-skip ledger for one sweep's tasks.

    ``resume=False`` (a fresh run) truncates ``path`` so stale state from
    an earlier sweep cannot leak in; ``resume=True`` loads every completed
    and permanently-failed task first. Typical wiring::

        cp = SweepCheckpoint(path, resume=args.resume)
        todo = [t for t in tasks if not cp.completed(t)]
        parallel_map(fn, todo, on_result=cp.record_result,
                     on_failure=cp.record_failure)
        outcomes = [cp.outcome(t) for t in tasks]
    """

    def __init__(self, path: str, *, resume: bool = False):
        self.path = os.fspath(path)
        self.resume = bool(resume)
        #: task key -> embedded outcome dict for completed tasks.
        self._done: Dict[str, Any] = {}
        #: task key -> error string for tasks that exhausted retries.
        self._failed: Dict[str, str] = {}
        if self.resume:
            self._load()
        else:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            open(self.path, "w", encoding="utf-8").close()

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        for record in read_records(self.path):
            if record.get("kind") != CHECKPOINT_KIND:
                continue
            key = record.get("key")
            if not isinstance(key, str):
                continue
            if record.get("status") == "ok":
                self._done[key] = record.get("outcome")
                self._failed.pop(key, None)
            elif record.get("status") == "failed":
                # A later success supersedes; a later failure re-records.
                if key not in self._done:
                    self._failed[key] = str(record.get("error"))

    # -- queries ----------------------------------------------------------

    def completed(self, task: Tuple) -> bool:
        """Whether this task already has a recorded outcome."""
        return task_key(task) in self._done

    def outcome(self, task: Tuple) -> Optional[Any]:
        """The recorded outcome dict, or None (failed / never recorded)."""
        return self._done.get(task_key(task))

    def __len__(self) -> int:
        return len(self._done)

    def manifest(self) -> Dict[str, str]:
        """Task key -> error for every task that exhausted its retries.

        The partial-results manifest: what an interrupted-or-degraded
        sweep could *not* produce, for the operator to inspect or re-run.
        """
        return {
            key: error for key, error in self._failed.items()
            if key not in self._done
        }

    # -- recording (parallel_map callback signatures) ---------------------

    def record_result(self, index: int, task: Tuple, outcome: Any) -> None:
        """``on_result`` hook: append one ``status="ok"`` record."""
        key = task_key(task)
        emit(
            make_record(
                CHECKPOINT_KIND, key=key, status="ok", outcome=outcome
            ),
            path=self.path,
        )
        self._done[key] = outcome
        self._failed.pop(key, None)

    def record_failure(self, task: Tuple, exc: BaseException) -> None:
        """``on_failure`` hook: append one ``status="failed"`` record."""
        key = task_key(task)
        error = f"{type(exc).__name__}: {exc}"
        emit(
            make_record(
                CHECKPOINT_KIND, key=key, status="failed", error=error
            ),
            path=self.path,
        )
        self._failed[key] = error


def run_checkpointed(
    fn,
    tasks,
    checkpoint: Optional[SweepCheckpoint],
    **parallel_kwargs,
) -> List[Optional[Any]]:
    """:func:`repro.harness.parallel.parallel_map` with skip/replay wiring.

    Without a checkpoint this is a plain ``parallel_map`` call (failures
    still soften to ``None`` slots when ``on_failure`` is supplied by the
    caller). With one, already-completed tasks are skipped, fresh results
    and permanent failures are recorded as they happen (parent-side, so a
    kill can lose at most in-flight work), and the returned list merges
    replayed and fresh outcomes in task order — ``None`` marks tasks that
    exhausted retries, whose errors are in ``checkpoint.manifest()``.
    """
    from .parallel import parallel_map

    task_list = list(tasks)
    if checkpoint is None:
        return parallel_map(fn, task_list, **parallel_kwargs)
    todo = [task for task in task_list if not checkpoint.completed(task)]
    if len(todo) < len(task_list):
        from ..obs import get_logger

        get_logger("harness.checkpoint").info(
            "resume: %d/%d tasks already recorded in %s",
            len(task_list) - len(todo), len(task_list), checkpoint.path,
        )
    # The checkpoint's record hooks run first; any caller-supplied hooks
    # are chained after them (recording must not depend on caller code).
    caller_on_result = parallel_kwargs.pop("on_result", None)
    caller_on_failure = parallel_kwargs.pop("on_failure", None)

    def on_result(index, task, outcome):
        checkpoint.record_result(index, task, outcome)
        if caller_on_result is not None:
            caller_on_result(index, task, outcome)

    def on_failure(task, exc):
        checkpoint.record_failure(task, exc)
        if caller_on_failure is not None:
            caller_on_failure(task, exc)

    parallel_map(
        fn, todo, on_result=on_result, on_failure=on_failure,
        **parallel_kwargs,
    )
    return [checkpoint.outcome(task) for task in task_list]
