"""Experiment harness: runner, sweeps, tables, and the experiment registry
(E1–E11 theorem experiments, A1–A3 ablations, C1 channel models, D1 dynamic
churn)."""

from .experiments import DESCRIPTIONS, REGISTRY, run_all, run_experiment
from .parallel import (
    default_jobs,
    parallel_map,
    resolve_jobs,
    set_default_jobs,
    use_jobs,
)
from .runner import (
    ALGORITHMS,
    RADIO_SAFE_ALGORITHMS,
    VECTOR_CAPABLE_ALGORITHMS,
    emit_dynamic_record,
    emit_static_record,
    measure,
    measure_dynamic,
    measure_dynamic_many,
    measure_many,
    run_algorithm,
    run_dynamic_workload,
)
from .sweep import SweepPoint, series, sweep
from .tables import format_table, section

__all__ = [
    "ALGORITHMS",
    "DESCRIPTIONS",
    "RADIO_SAFE_ALGORITHMS",
    "VECTOR_CAPABLE_ALGORITHMS",
    "REGISTRY",
    "SweepPoint",
    "default_jobs",
    "emit_dynamic_record",
    "emit_static_record",
    "format_table",
    "measure",
    "measure_dynamic",
    "measure_dynamic_many",
    "measure_many",
    "parallel_map",
    "resolve_jobs",
    "run_algorithm",
    "run_dynamic_workload",
    "run_all",
    "run_experiment",
    "section",
    "series",
    "set_default_jobs",
    "sweep",
    "use_jobs",
]
