"""Experiment harness: runner, sweeps, tables, and the experiment registry
(E1–E11 theorem experiments, A1–A3 ablations, C1 channel models, D1 dynamic
churn)."""

from .checkpoint import SweepCheckpoint, run_checkpointed, task_key
from .experiments import DESCRIPTIONS, REGISTRY, run_all, run_experiment
from .parallel import (
    TaskTimeoutError,
    WorkerCrashError,
    default_jobs,
    default_resilience,
    parallel_map,
    resolve_jobs,
    set_default_jobs,
    set_default_resilience,
    use_jobs,
    use_resilience,
)
from .runner import (
    ALGORITHMS,
    RADIO_SAFE_ALGORITHMS,
    VECTOR_CAPABLE_ALGORITHMS,
    emit_dynamic_record,
    emit_static_record,
    measure,
    measure_dynamic,
    measure_dynamic_many,
    measure_many,
    run_algorithm,
    run_dynamic_workload,
)
from .sweep import SweepPoint, series, sweep
from .tables import format_table, section

__all__ = [
    "ALGORITHMS",
    "DESCRIPTIONS",
    "RADIO_SAFE_ALGORITHMS",
    "VECTOR_CAPABLE_ALGORITHMS",
    "REGISTRY",
    "SweepCheckpoint",
    "SweepPoint",
    "TaskTimeoutError",
    "WorkerCrashError",
    "default_jobs",
    "default_resilience",
    "emit_dynamic_record",
    "emit_static_record",
    "format_table",
    "measure",
    "measure_dynamic",
    "measure_dynamic_many",
    "measure_many",
    "parallel_map",
    "resolve_jobs",
    "run_algorithm",
    "run_dynamic_workload",
    "run_all",
    "run_checkpointed",
    "run_experiment",
    "section",
    "series",
    "set_default_jobs",
    "set_default_resilience",
    "sweep",
    "task_key",
    "use_jobs",
    "use_resilience",
]
