"""CLI: ``python -m repro.harness --experiment E1`` or ``--all``."""

from __future__ import annotations

import argparse
import sys

from ..obs import configure_logging, set_telemetry_path
from .experiments import DESCRIPTIONS, REGISTRY, run_all, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.harness",
        description="Reproduce the paper's theorem-derived experiments.",
    )
    parser.add_argument(
        "--experiment", "-e",
        help="experiment id (E1..E11, A1..A3, C1, D1, F1); see --list",
    )
    parser.add_argument("--all", action="store_true", help="run everything")
    parser.add_argument(
        "--quick", action="store_true", help="smaller sizes and fewer seeds"
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=None, metavar="N",
        help="worker processes for sweeps (-1 = all cores; default serial)",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="K",
        help="retry each failed/timed-out sweep task up to K more times",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SEC",
        help="per-task wall-clock budget in seconds (default: unlimited)",
    )
    parser.add_argument(
        "--verbose", "-v", action="count", default=0,
        help="diagnostics on stderr: -v per-experiment progress, "
             "-vv per-sweep detail",
    )
    parser.add_argument(
        "--quiet", "-q", action="store_true",
        help="suppress all diagnostics below ERROR",
    )
    parser.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="stream one JSONL record per measured run to PATH "
             "(aggregate with 'python -m repro report')",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    args = parser.parse_args(argv)
    configure_logging(verbose=args.verbose, quiet=args.quiet)
    set_telemetry_path(args.telemetry)
    if args.retries is not None or args.task_timeout is not None:
        from .parallel import set_default_resilience

        overrides = {}
        if args.retries is not None:
            overrides["retries"] = args.retries
        if args.task_timeout is not None:
            overrides["task_timeout"] = args.task_timeout
        try:
            set_default_resilience(**overrides)
        except ValueError as error:
            parser.error(str(error))

    if args.list:
        for name in sorted(REGISTRY):
            print(f"{name}: {DESCRIPTIONS[name]}")
        return 0
    if args.all:
        print(run_all(quick=args.quick, n_jobs=args.jobs))
        return 0
    if args.experiment:
        report, _ = run_experiment(
            args.experiment, quick=args.quick, n_jobs=args.jobs
        )
        print(report)
        return 0
    parser.print_help()
    return 1


if __name__ == "__main__":
    sys.exit(main())
