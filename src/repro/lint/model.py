"""AST module model shared by every ``repro.lint`` check.

The engine parses each file once and distils the parts the checks care
about into a :class:`ModuleModel`:

* which classes are :class:`~repro.congest.program.NodeProgram` subclasses
  (*program classes*: their methods run per node, per round) and which are
  :class:`~repro.congest.vectorized.VectorRound` subclasses (*kernel
  classes*: whole-network dense rounds) — resolved by base-class name,
  transitively within the module, so fixtures and real modules alike need
  no imports to be classified;
* each program class's declared state surface: ``state_schema()`` fields
  (parsed from the literal ``StateField(...)`` tuple), attributes staged
  in ``__init__``, class-level attributes, methods and properties;
* each kernel class's capability flags (``supports_schedules`` /
  ``supports_edge_faults``) and implemented methods.

Everything is a plain syntactic summary — no imports are executed, so the
linter runs on broken or heavyweight modules equally well.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

#: Base-class names that make a class a program / kernel class.
PROGRAM_BASES = {"NodeProgram"}
KERNEL_BASES = {"VectorRound"}

#: Attributes every program inherits from ``NodeProgram`` itself.
PROGRAM_INHERITED = {
    "on_start",
    "on_round",
    "on_receive",
    "state_schema",
    "vector_round",
}


@dataclass
class SchemaField:
    """One ``StateField(...)`` entry of a literal ``state_schema``."""

    name: str
    lineno: int
    col: int
    #: Last attribute segment of the dtype expression (``"int8"`` for
    #: ``np.int8``), or None when the dtype is not a plain name/attribute.
    dtype_name: Optional[str]
    #: The default value when it is a numeric/bool constant, else None.
    default: Optional[Union[int, float, bool]]
    #: True when an explicit ``default=`` keyword was present.
    has_default: bool
    #: ``None`` (scalar), an int, or the attribute-name string.
    width: Optional[Union[int, str]]


@dataclass
class ProgramClass:
    """Syntactic summary of one NodeProgram subclass."""

    node: ast.ClassDef
    name: str
    #: Parsed literal schema fields; None when ``state_schema`` exists but
    #: is not a literal tuple of ``StateField(...)`` calls (opaque — the
    #: schema-contract checks then skip the class rather than guess).
    schema: Optional[List[SchemaField]]
    has_schema_method: bool
    init_attrs: Set[str]
    class_attrs: Set[str]
    methods: Dict[str, ast.FunctionDef]
    properties: Set[str]
    #: Names of in-module program-class ancestors (for inherited state).
    ancestors: List[str] = field(default_factory=list)

    def declared_attrs(self) -> Set[str]:
        declared = set(PROGRAM_INHERITED)
        declared |= self.init_attrs
        declared |= self.class_attrs
        declared |= set(self.methods)
        declared |= self.properties
        if self.schema:
            declared |= {f.name for f in self.schema}
        return declared


@dataclass
class KernelClass:
    """Syntactic summary of one VectorRound subclass."""

    node: ast.ClassDef
    name: str
    #: Explicit class-body boolean assignments, e.g.
    #: ``{"supports_schedules": True}``; absent keys were not declared.
    flags: Dict[str, bool]
    methods: Dict[str, ast.FunctionDef]
    ancestors: List[str] = field(default_factory=list)

    def flag(self, name: str) -> Optional[bool]:
        return self.flags.get(name)


@dataclass
class ModuleModel:
    """Everything the checks need to know about one parsed module."""

    path: str
    tree: ast.Module
    source: str
    program_classes: List[ProgramClass]
    kernel_classes: List[KernelClass]
    #: Top-level names bound by import statements (used to avoid flagging
    #: factories that return kernels imported from another module).
    imported_names: Set[str]
    #: All top-level class definitions by name.
    classes: Dict[str, ast.ClassDef]

    def program_class(self, name: str) -> Optional[ProgramClass]:
        for cls in self.program_classes:
            if cls.name == name:
                return cls
        return None

    def kernel_class(self, name: str) -> Optional[KernelClass]:
        for cls in self.kernel_classes:
            if cls.name == name:
                return cls
        return None


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------
def build_module_model(source: str, path: str) -> ModuleModel:
    """Parse ``source`` and summarize it; raises ``SyntaxError`` as-is."""
    tree = ast.parse(source, filename=path)
    classes = {
        node.name: node
        for node in tree.body
        if isinstance(node, ast.ClassDef)
    }
    program_names = _subclass_closure(classes, PROGRAM_BASES)
    kernel_names = _subclass_closure(classes, KERNEL_BASES)

    program_classes = []
    for name in program_names:
        program_classes.append(
            _build_program_class(
                classes[name],
                ancestors=_local_ancestors(classes[name], program_names),
            )
        )
    # Ancestor state is inherited: fold each ancestor's declarations in.
    by_name = {cls.name: cls for cls in program_classes}
    for cls in program_classes:
        for ancestor in cls.ancestors:
            parent = by_name.get(ancestor)
            if parent is None:
                continue
            cls.init_attrs |= parent.init_attrs
            cls.class_attrs |= parent.class_attrs
            cls.properties |= parent.properties
            for method_name, fn in parent.methods.items():
                cls.methods.setdefault(method_name, fn)
            if parent.schema:
                existing = {f.name for f in cls.schema or []}
                cls.schema = (cls.schema or []) + [
                    f for f in parent.schema if f.name not in existing
                ]

    kernel_classes = []
    for name in kernel_names:
        kernel_classes.append(
            _build_kernel_class(
                classes[name],
                ancestors=_local_ancestors(classes[name], kernel_names),
            )
        )
    kernels_by_name = {cls.name: cls for cls in kernel_classes}
    for cls in kernel_classes:
        for ancestor in cls.ancestors:
            parent = kernels_by_name.get(ancestor)
            if parent is None:
                continue
            for method_name, fn in parent.methods.items():
                cls.methods.setdefault(method_name, fn)
            for flag, value in parent.flags.items():
                cls.flags.setdefault(flag, value)

    return ModuleModel(
        path=path,
        tree=tree,
        source=source,
        program_classes=program_classes,
        kernel_classes=kernel_classes,
        imported_names=_imported_names(tree),
        classes=classes,
    )


def _base_name(base: ast.expr) -> Optional[str]:
    """Last name segment of a base-class expression."""
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return None


def _subclass_closure(
    classes: Dict[str, ast.ClassDef], roots: Set[str]
) -> List[str]:
    """Names of classes deriving (transitively, in-module) from ``roots``.

    Returned in definition order so model summaries are stable.
    """
    matched: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, node in classes.items():
            if name in matched:
                continue
            for base in node.bases:
                base_name = _base_name(base)
                if base_name in roots or base_name in matched:
                    matched.add(name)
                    changed = True
                    break
    return [name for name in classes if name in matched]


def _local_ancestors(node: ast.ClassDef, pool: List[str]) -> List[str]:
    return [
        name
        for name in (_base_name(base) for base in node.bases)
        if name in pool and name != node.name
    ]


def _imported_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
    return names


def _self_attr_targets(target: ast.expr) -> List[str]:
    """Attribute names assigned through ``self`` in one target expression."""
    names: List[str] = []
    if isinstance(target, ast.Attribute):
        if isinstance(target.value, ast.Name) and target.value.id == "self":
            names.append(target.attr)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            names.extend(_self_attr_targets(element))
    return names


def _build_program_class(
    node: ast.ClassDef, ancestors: List[str]
) -> ProgramClass:
    init_attrs: Set[str] = set()
    class_attrs: Set[str] = set()
    methods: Dict[str, ast.FunctionDef] = {}
    properties: Set[str] = set()
    schema: Optional[List[SchemaField]] = None
    has_schema_method = False

    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods[item.name] = item  # type: ignore[assignment]
            if _is_property(item):
                properties.add(item.name)
            if item.name == "__init__":
                init_attrs |= _collect_init_attrs(item)
            elif item.name == "state_schema":
                has_schema_method = True
                schema = _parse_schema(item)
        elif isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    class_attrs.add(target.id)
        elif isinstance(item, ast.AnnAssign):
            if isinstance(item.target, ast.Name):
                class_attrs.add(item.target.id)

    return ProgramClass(
        node=node,
        name=node.name,
        schema=schema,
        has_schema_method=has_schema_method,
        init_attrs=init_attrs,
        class_attrs=class_attrs,
        methods=methods,
        properties=properties,
        ancestors=ancestors,
    )


def _build_kernel_class(
    node: ast.ClassDef, ancestors: List[str]
) -> KernelClass:
    flags: Dict[str, bool] = {}
    methods: Dict[str, ast.FunctionDef] = {}
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods[item.name] = item  # type: ignore[assignment]
        elif isinstance(item, ast.Assign):
            for target in item.targets:
                if (
                    isinstance(target, ast.Name)
                    and isinstance(item.value, ast.Constant)
                    and isinstance(item.value.value, bool)
                ):
                    flags[target.id] = item.value.value
    return KernelClass(
        node=node,
        name=node.name,
        flags=flags,
        methods=methods,
        ancestors=ancestors,
    )


def _is_property(fn: ast.FunctionDef) -> bool:
    for decorator in fn.decorator_list:
        if isinstance(decorator, ast.Name) and decorator.id == "property":
            return True
        if isinstance(decorator, ast.Attribute) and decorator.attr in (
            "setter",
            "getter",
            "deleter",
        ):
            return True
    return False


def _collect_init_attrs(fn: ast.FunctionDef) -> Set[str]:
    attrs: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attrs.update(_self_attr_targets(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            attrs.update(_self_attr_targets(node.target))
    return attrs


def _parse_schema(fn: ast.FunctionDef) -> Optional[List[SchemaField]]:
    """Parse a literal ``return (StateField(...), ...)``; None if opaque."""
    returns = [
        node for node in ast.walk(fn) if isinstance(node, ast.Return)
    ]
    fields: List[SchemaField] = []
    for ret in returns:
        value = ret.value
        if value is None:
            continue
        if isinstance(value, (ast.Tuple, ast.List)):
            elements = value.elts
        elif isinstance(value, ast.Call):
            elements = [value]
        else:
            return None
        for element in elements:
            parsed = _parse_state_field(element)
            if parsed is None:
                return None
            fields.append(parsed)
    return fields


def _parse_state_field(node: ast.expr) -> Optional[SchemaField]:
    if not isinstance(node, ast.Call):
        return None
    callee = node.func
    callee_name = (
        callee.id
        if isinstance(callee, ast.Name)
        else callee.attr
        if isinstance(callee, ast.Attribute)
        else None
    )
    if callee_name != "StateField":
        return None
    args = list(node.args)
    if not args or not isinstance(args[0], ast.Constant) \
            or not isinstance(args[0].value, str):
        return None
    name = args[0].value
    dtype_expr = args[1] if len(args) > 1 else None
    default_expr: Optional[ast.expr] = args[2] if len(args) > 2 else None
    width_expr: Optional[ast.expr] = args[3] if len(args) > 3 else None
    has_default = len(args) > 2
    for keyword in node.keywords:
        if keyword.arg == "dtype":
            dtype_expr = keyword.value
        elif keyword.arg == "default":
            default_expr = keyword.value
            has_default = True
        elif keyword.arg == "width":
            width_expr = keyword.value
    return SchemaField(
        name=name,
        lineno=node.lineno,
        col=node.col_offset,
        dtype_name=_dtype_name(dtype_expr),
        default=_constant_value(default_expr),
        has_default=has_default,
        width=_width_value(width_expr),
    )


def _dtype_name(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _constant_value(
    node: Optional[ast.expr],
) -> Optional[Union[int, float, bool]]:
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float, bool)
    ):
        return node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, (int, float))
    ):
        return -node.operand.value
    return None


def _width_value(node: Optional[ast.expr]) -> Optional[Union[int, str]]:
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(
        node.value, (int, str)
    ):
        return node.value
    return None


# ---------------------------------------------------------------------------
# Shared AST helpers for checks
# ---------------------------------------------------------------------------
def attribute_chain(node: ast.expr) -> Optional[Tuple[str, ...]]:
    """``np.random.default_rng`` -> ("np", "random", "default_rng")."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def iter_methods(cls: Union[ProgramClass, KernelClass]):
    """(name, FunctionDef) pairs of a summarized class, own body only."""
    for item in cls.node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield item.name, item
