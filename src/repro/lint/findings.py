"""Findings and suppression comments for the ``repro.lint`` analyzer.

A finding is one diagnostic anchored to a source location; suppressions
are ``# repro-lint: disable=RL101`` comments that silence specific check
IDs on their own line, or ``# repro-lint: disable-file=RL101`` comments
that silence them for the whole file.  ``disable=all`` silences every
check.  Suppression comments are extracted with :mod:`tokenize` so a
string literal that merely *contains* the marker never disables anything.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Set

#: Marker accepted in suppression comments, e.g.
#: ``# repro-lint: disable=RL101,RL203`` or
#: ``# repro-lint: disable-file=RL301  -- stores payloads, not views``.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<ids>all|RL\d{3}(?:\s*,\s*RL\d{3})*)",
    re.IGNORECASE,
)

#: Sentinel meaning "every check ID" in a suppression set.
ALL_CHECKS = "all"


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: a check ID anchored to a file/line/column."""

    path: str
    line: int
    col: int
    check_id: str
    message: str

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.check_id} {self.message}"
        )


class SuppressionIndex:
    """Per-file map of suppressed check IDs, by line and file-wide."""

    def __init__(self) -> None:
        self.by_line: Dict[int, Set[str]] = {}
        self.file_wide: Set[str] = set()

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        """Extract suppression comments from python source.

        Tolerates source that fails to tokenize completely (the parse
        error is reported elsewhere); whatever comments were seen before
        the failure still count.
        """
        index = cls()
        reader = io.StringIO(source).readline
        try:
            for token in tokenize.generate_tokens(reader):
                if token.type != tokenize.COMMENT:
                    continue
                match = _SUPPRESS_RE.search(token.string)
                if match is None:
                    continue
                ids = _parse_ids(match.group("ids"))
                if match.group("kind").lower() == "disable-file":
                    index.file_wide |= ids
                else:
                    line = token.start[0]
                    index.by_line.setdefault(line, set()).update(ids)
        except (tokenize.TokenError, IndentationError):
            pass
        return index

    def suppresses(self, finding: Finding) -> bool:
        for pool in (self.file_wide, self.by_line.get(finding.line, ())):
            if ALL_CHECKS in pool or finding.check_id in pool:
                return True
        return False

    def filter(self, findings: Iterable[Finding]) -> List[Finding]:
        return [f for f in findings if not self.suppresses(f)]


def _parse_ids(spec: str) -> Set[str]:
    if spec.lower() == ALL_CHECKS:
        return {ALL_CHECKS}
    return {part.strip().upper() for part in spec.split(",") if part.strip()}


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Stable report order: path, then line/col, then check ID."""
    return sorted(
        findings,
        key=lambda f: (f.path, f.line, f.col, f.check_id, f.message),
    )
