"""Command-line front end: ``python -m repro lint``.

Exit codes: 0 — clean; 1 — at least one unsuppressed finding;
2 — usage error (unknown check ID, missing path).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .checks import ALL_CHECKS, get_check
from .engine import lint_paths

#: Default lint target when no paths are given.
DEFAULT_PATHS = ["src/repro"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Repo-specific static analysis: schema contracts (RL1xx), "
            "determinism (RL2xx), escape analysis (RL3xx) and "
            "capability drift (RL4xx) for NodeProgram / VectorRound "
            "code."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=f"files or directories to lint (default: {DEFAULT_PATHS[0]})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--explain",
        metavar="RLxxx",
        help="print the rationale card for one check ID and exit",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list every registered check and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _run(argv)
    except BrokenPipeError:
        # Downstream consumer (e.g. ``| head``) closed the pipe; detach
        # stdout so the interpreter's shutdown flush doesn't re-raise.
        sys.stdout = open(os.devnull, "w")  # noqa: SIM115
        return 0


def _run(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.explain:
        check = get_check(args.explain)
        if check is None:
            known = ", ".join(c.id for c in ALL_CHECKS)
            print(
                f"unknown check {args.explain!r}; known checks: {known}",
                file=sys.stderr,
            )
            return 2
        print(check.explain())
        return 0

    if args.list:
        for check in ALL_CHECKS:
            print(f"{check.id}  {check.name:<22} {check.summary}")
        return 0

    paths = args.paths or DEFAULT_PATHS
    try:
        findings = lint_paths(paths)
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        report = {
            "tool": "repro-lint",
            "paths": list(paths),
            "finding_count": len(findings),
            "findings": [f.to_dict() for f in findings],
        }
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.render())
        summary = (
            "repro lint: clean"
            if not findings
            else f"repro lint: {len(findings)} finding"
            + ("s" if len(findings) != 1 else "")
        )
        print(summary)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
