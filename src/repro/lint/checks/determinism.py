"""RL2xx — determinism checks for per-node hooks and vector kernels.

The repo's correctness story is bit-identical outputs across the
{legacy, fast, vectorized} engine paths and across ``n_jobs`` worker
splits.  That only holds while every random draw comes from the engine's
per-node generators (``ctx.rng`` in hooks, ``self.draws`` in kernels) in
a deterministic order: ambient RNG, wall-clock reads, and hash-ordered
iteration each break it in ways the equivalence matrices catch late (or
only on another machine).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple, Union

from ..findings import Finding
from ..model import ModuleModel, attribute_chain
from .base import Check

#: Module roots whose call surface is ambient RNG.
_RNG_ROOTS = ("random",)
#: Attribute chains that mean "numpy's random namespace".
_NP_ALIASES = {"np", "numpy"}

#: (chain-suffix, why) pairs for wall-clock / entropy sources.
_ENTROPY_CALLS: Tuple[Tuple[Tuple[str, ...], str], ...] = (
    (("time", "time"), "wall-clock time"),
    (("time", "time_ns"), "wall-clock time"),
    (("time", "monotonic"), "wall-clock time"),
    (("time", "perf_counter"), "wall-clock time"),
    (("os", "urandom"), "OS entropy"),
    (("uuid", "uuid1"), "host/clock-derived UUIDs"),
    (("uuid", "uuid4"), "OS entropy"),
    (("secrets",), "OS entropy"),
    (("datetime", "now"), "wall-clock time"),
    (("datetime", "utcnow"), "wall-clock time"),
)


def _scoped_functions(module: ModuleModel):
    """(class-name, method-name, FunctionDef, kind) for hook/kernel scope."""
    for cls in module.program_classes:
        for item in cls.node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield cls.name, item.name, item, "program hook"
    for cls in module.kernel_classes:
        for item in cls.node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield cls.name, item.name, item, "vector kernel"


class AmbientRngCheck(Check):
    """RL201: no module-level RNG inside hooks or kernels."""

    id = "RL201"
    name = "ambient-rng"
    summary = (
        "hooks and kernels must draw from ctx.rng / self.draws, never "
        "random.* or np.random.*"
    )
    rationale = """
Every node owns a seeded per-node generator (ctx.rng; kernels read the
same streams block-wise through DrawStreams). A draw from the random
module or np.random.* consumes ambient, process-global state instead:
the draw order then depends on scheduling and worker count, sweeps stop
being reproducible across n_jobs, and the three engine paths diverge —
precisely what the equivalence matrix pins. Even a *seeded*
np.random.default_rng(...) inside a hook is wrong: it forks a stream
the engine does not account for, so scalar and vectorized rounds replay
different draw orders.
"""
    bad_example = """
class P(NodeProgram):
    def on_round(self, ctx):
        if np.random.random() < 0.5:   # ambient global stream
            ctx.broadcast(True)
"""
    good_example = """
class P(NodeProgram):
    def on_round(self, ctx):
        if ctx.rng.random() < 0.5:     # engine-owned per-node stream
            ctx.broadcast(True)
"""

    def run(self, module: ModuleModel) -> Iterator[Finding]:
        ambient_imports = _ambient_random_imports(module.tree)
        for cls_name, method, fn, kind in _scoped_functions(module):
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                reason = self._classify(node.func, ambient_imports)
                if reason is None:
                    continue
                source = "ctx.rng" if kind == "program hook" \
                    else "self.draws (DrawStreams)"
                yield self.finding(
                    module,
                    node,
                    f"{reason} in {cls_name}.{method} breaks the "
                    f"deterministic draw order; use the engine-owned "
                    f"{source} instead",
                )

    @staticmethod
    def _classify(
        func: ast.expr, ambient_imports: Set[str]
    ) -> Optional[str]:
        chain = attribute_chain(func)
        if chain is None:
            return None
        if chain[0] in _RNG_ROOTS and len(chain) > 1:
            return f"call into the global random module ({'.'.join(chain)})"
        if (
            len(chain) >= 2
            and chain[0] in _NP_ALIASES
            and chain[1] == "random"
        ):
            return f"call into np.random ({'.'.join(chain)})"
        if len(chain) == 1 and chain[0] in ambient_imports:
            return f"call to random.{chain[0]} imported at module level"
        return None


def _ambient_random_imports(tree: ast.Module) -> Set[str]:
    """Names bound by ``from random import ...`` at module level."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


class WallClockCheck(Check):
    """RL202: no wall-clock or OS-entropy reads inside hooks or kernels."""

    id = "RL202"
    name = "wallclock-entropy"
    summary = (
        "hooks and kernels must not read time.*, os.urandom, uuid, or "
        "secrets"
    )
    rationale = """
Simulated rounds are logical time; any read of physical time or OS
entropy inside per-node code makes outputs depend on the host, the
load, and the run — the cross-worker sweep determinism audit
(tests/test_parallel_determinism.py) exists because exactly this class
of leak is invisible on a single-process run. Wall-clock measurement
belongs in the observability layer (repro.obs.Profiler), which wraps
rounds from outside the simulation.
"""
    bad_example = """
class P(NodeProgram):
    def on_round(self, ctx):
        ctx.output["stamp"] = time.time()   # host-dependent output
"""
    good_example = """
class P(NodeProgram):
    def on_round(self, ctx):
        ctx.output["stamp"] = ctx.round     # logical time
"""

    def run(self, module: ModuleModel) -> Iterator[Finding]:
        for cls_name, method, fn, kind in _scoped_functions(module):
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                chain = attribute_chain(node.func)
                if chain is None:
                    continue
                for suffix, why in _ENTROPY_CALLS:
                    if _chain_matches(chain, suffix):
                        yield self.finding(
                            module,
                            node,
                            f"{'.'.join(chain)} in {cls_name}.{method} "
                            f"injects {why} into a {kind}; simulated "
                            f"rounds must depend only on seeds and "
                            f"logical time (ctx.round)",
                        )
                        break


def _chain_matches(chain: Tuple[str, ...], suffix: Tuple[str, ...]) -> bool:
    if len(suffix) == 1:
        return chain[0] == suffix[0]
    return len(chain) >= len(suffix) and (
        chain[-len(suffix):] == suffix or chain[: len(suffix)] == suffix
    )


class UnorderedIterationCheck(Check):
    """RL203: no iteration over provably-set expressions in hook scope."""

    id = "RL203"
    name = "unordered-iteration"
    summary = (
        "hooks and kernels must not iterate sets directly; wrap them in "
        "sorted(...)"
    )
    rationale = """
Set iteration order is hash order: stable for small ints, but
PYTHONHASHSEED-dependent for strings and tuples — node labels are
arbitrary hashables (grid graphs use tuples). A hook that draws RNG,
sends messages, or fills outputs while walking a set can reorder those
effects between processes, which is exactly how cross-worker sweeps
lose bit-identity. Dict iteration is insertion-ordered and therefore
exempt. The repo idiom is sorted(...) at every such boundary (wake
schedules, neighbor walks); order-insensitive consumption (len, any,
membership, difference_update) is fine and not flagged.
"""
    bad_example = """
class P(NodeProgram):
    def on_receive(self, ctx, messages):
        joiners = {m.sender for m in messages}
        for u in joiners:                  # hash order
            ctx.send(u, True)
"""
    good_example = """
class P(NodeProgram):
    def on_receive(self, ctx, messages):
        joiners = {m.sender for m in messages}
        for u in sorted(joiners):          # deterministic order
            ctx.send(u, True)
"""

    def run(self, module: ModuleModel) -> Iterator[Finding]:
        for cls_name, method, fn, kind in _scoped_functions(module):
            set_names = _set_typed_locals(fn)
            for node in ast.walk(fn):
                iters = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iters.append(node.iter)
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.DictComp,
                           ast.GeneratorExp)
                ):
                    iters.extend(gen.iter for gen in node.generators)
                for target in iters:
                    if _is_set_expr(target, set_names):
                        yield self.finding(
                            module,
                            target,
                            f"iteration over a set in "
                            f"{cls_name}.{method} follows hash order, "
                            f"which is not deterministic across "
                            f"processes; iterate sorted(...) instead",
                        )


def _set_typed_locals(
    fn: Union[ast.FunctionDef, ast.AsyncFunctionDef]
) -> Set[str]:
    """Local names provably bound to a set somewhere in this function."""
    names: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            if _is_set_expr(node.value, names):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if _is_set_expr(node.value, names) and isinstance(
                node.target, ast.Name
            ):
                names.add(node.target.id)
    return names


def _is_set_expr(node: ast.expr, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # Set algebra (a | b, a - b, ...) on a provable set stays a set.
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    return False
