"""RL3xx — escape analysis for per-round engine objects.

``Context`` objects and inbox views are *loans*: the engines (legacy,
fast, vectorized) rebuild or recycle them between rounds, and the fast
path backs ``messages`` with an ``_InboxView`` over a buffer that is
overwritten next round.  Any of them stored on ``self`` outlives the
loan and turns into a stale read on the next round — or pickles the
whole engine into checkpoint blobs.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Union

from ..findings import Finding
from ..model import ModuleModel
from .base import Check

#: Parameter names that bind the per-round context / inbox loans.
_CTX_PARAMS = {"ctx"}
_INBOX_PARAMS = {"messages", "msgs"}

_FnDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _param_names(fn: _FnDef) -> Set[str]:
    args = fn.args
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _tainted_loop_vars(fn: _FnDef, sources: Set[str]) -> Set[str]:
    """Loop targets that range over a tainted name (``for m in messages``)."""
    tainted: Set[str] = set()
    for node in ast.walk(fn):
        iters: List[ast.expr] = []
        targets: List[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
            targets.append(node.target)
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)
        ):
            for gen in node.generators:
                iters.append(gen.iter)
                targets.append(gen.target)
        for it, tgt in zip(iters, targets):
            if isinstance(it, ast.Name) and it.id in sources:
                tainted.update(_flat_names(tgt))
    return tainted


def _flat_names(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(_flat_names(element))
        return names
    return []


def _names_in_value(value: ast.expr) -> List[ast.Name]:
    """Bare names stored *as-is* by an assignment value.

    Only the identity-preserving shapes count: the name itself, or the
    name nested in a tuple/list literal.  ``list(messages)`` or
    ``[m.payload for m in messages]`` copies the data out of the loan
    and is fine.
    """
    if isinstance(value, ast.Name):
        return [value]
    if isinstance(value, (ast.Tuple, ast.List)):
        names: List[ast.Name] = []
        for element in value.elts:
            names.extend(_names_in_value(element))
        return names
    return []


def _escape_sites(fn: _FnDef, tainted: Set[str]):
    """(node, name, how) triples where a tainted name is stored on self."""
    for node in ast.walk(fn):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            stores_on_self = any(
                isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name)
                and t.value.id == "self"
                for t in targets
            )
            if not stores_on_self or node.value is None:
                continue
            for name in _names_in_value(node.value):
                if name.id in tainted:
                    yield node, name.id, "assigned to"
        elif isinstance(node, ast.Call):
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in ("append", "add", "insert", "extend")
                and isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id == "self"
            ):
                continue
            for arg in node.args:
                if isinstance(arg, ast.Name) and arg.id in tainted:
                    yield node, arg.id, f"{func.attr}ed into"


class CtxEscapeCheck(Check):
    """RL301: never store the per-round ``ctx`` on ``self``."""

    id = "RL301"
    name = "ctx-escape"
    summary = "hooks must not store the round Context on self"

    rationale = """
The Context handed to on_start/on_round/on_receive is a per-node view
the engine rebuilds (legacy path) or recycles in place (fast and
vectorized paths) every round. A Context kept on self therefore points
at whatever node/round the engine reused it for next — reads through it
are stale or cross-node — and, because Context holds the outbox and
network references, a checkpoint of the program pickles half the engine
with it. Read what you need from ctx during the hook and store plain
values.
"""
    bad_example = """
class P(NodeProgram):
    def __init__(self):
        self.last_ctx = None

    def on_round(self, ctx):
        self.last_ctx = ctx          # escapes the per-round loan
"""
    good_example = """
class P(NodeProgram):
    def __init__(self):
        self.last_degree = 0

    def on_round(self, ctx):
        self.last_degree = ctx.degree   # copy the value, not the view
"""

    def run(self, module: ModuleModel) -> Iterator[Finding]:
        for cls in module.program_classes:
            for method_name, fn in _hook_like_methods(cls):
                ctx_names = _param_names(fn) & _CTX_PARAMS
                if not ctx_names:
                    continue
                for node, name, how in _escape_sites(fn, ctx_names):
                    yield self.finding(
                        module,
                        node,
                        f"the round Context ({name}) is {how} a self "
                        f"attribute in {cls.name}.{method_name}; the "
                        f"engine recycles Context objects between rounds, "
                        f"so the stored reference goes stale — copy the "
                        f"needed values instead",
                    )


class InboxEscapeCheck(Check):
    """RL302: never store the inbox view or its Message objects."""

    id = "RL302"
    name = "inbox-escape"
    summary = (
        "hooks must not store the messages view or Message objects on "
        "self"
    )
    rationale = """
on_receive's messages argument is an _InboxView over a delivery buffer
the fast engine overwrites next round (the legacy engine hands out a
fresh list, which is how this class of bug hides in small tests and
explodes at n=10^6). Storing the view — or individual Message objects
pulled from it — on self means next round's reads see this round's
buffer reused for other traffic. Extract payloads/senders into plain
values inside the hook; list(messages) copies references, not the
underlying buffer, so it is not a fix.
"""
    bad_example = """
class P(NodeProgram):
    def __init__(self):
        self.pending = []

    def on_receive(self, ctx, messages):
        self.pending = messages      # view over a reused buffer
"""
    good_example = """
class P(NodeProgram):
    def __init__(self):
        self.pending = []

    def on_receive(self, ctx, messages):
        self.pending = [m.payload for m in messages]   # copied values
"""

    def run(self, module: ModuleModel) -> Iterator[Finding]:
        for cls in module.program_classes:
            for method_name, fn in _hook_like_methods(cls):
                inbox_names = _param_names(fn) & _INBOX_PARAMS
                if not inbox_names:
                    continue
                tainted = set(inbox_names)
                tainted |= _tainted_loop_vars(fn, inbox_names)
                for node, name, how in _escape_sites(fn, tainted):
                    what = (
                        "the inbox view"
                        if name in inbox_names
                        else f"a Message object ({name})"
                    )
                    yield self.finding(
                        module,
                        node,
                        f"{what} is {how} a self attribute in "
                        f"{cls.name}.{method_name}; the fast engine "
                        f"reuses the delivery buffer next round, so the "
                        f"stored reference reads stale traffic — extract "
                        f"payload/sender values instead",
                    )


def _hook_like_methods(cls):
    for item in cls.node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if item.name == "__init__":
                continue
            yield item.name, item
