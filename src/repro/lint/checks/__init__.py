"""Check registry for the ``repro.lint`` analyzer.

``ALL_CHECKS`` is the full, ordered battery; ``get_check`` resolves an
ID or kebab-name (``RL101`` / ``undeclared-state``) to its class.
"""

from __future__ import annotations

from typing import List, Optional, Type

from .base import Check
from .capability import (
    EdgeFaultDriftCheck,
    KernelProtocolCheck,
    RegistryDriftCheck,
    ScheduleDriftCheck,
    VectorFactoryCheck,
)
from .determinism import (
    AmbientRngCheck,
    UnorderedIterationCheck,
    WallClockCheck,
)
from .escape import CtxEscapeCheck, InboxEscapeCheck
from .schema import (
    SentinelDtypeCheck,
    UndeclaredStateCheck,
    WidthReferenceCheck,
)

#: Every registered check, in report order. IDs are stable: retired IDs
#: are never reused, new checks take the next free number in their band.
ALL_CHECKS: List[Type[Check]] = [
    UndeclaredStateCheck,  # RL101
    WidthReferenceCheck,  # RL102
    SentinelDtypeCheck,  # RL103
    AmbientRngCheck,  # RL201
    WallClockCheck,  # RL202
    UnorderedIterationCheck,  # RL203
    CtxEscapeCheck,  # RL301
    InboxEscapeCheck,  # RL302
    KernelProtocolCheck,  # RL401
    EdgeFaultDriftCheck,  # RL402
    ScheduleDriftCheck,  # RL403
    RegistryDriftCheck,  # RL404
    VectorFactoryCheck,  # RL405
]


def get_check(identifier: str) -> Optional[Type[Check]]:
    """Resolve ``"RL101"`` or ``"undeclared-state"`` to a check class."""
    wanted = identifier.strip()
    for check in ALL_CHECKS:
        if wanted.upper() == check.id or wanted.lower() == check.name:
            return check
    return None


__all__ = [
    "ALL_CHECKS",
    "Check",
    "get_check",
]
