"""RL1xx — schema-contract checks for ``NodeProgram`` state.

The array-native core (PR 9) moved per-node state into network-owned
typed columns declared by ``state_schema()``; attributes staged in
``__init__`` keep living in the instance ``__dict__``.  Any *other*
``self.<attr>`` a hook touches silently bypasses both layouts: it is
invisible to vector kernels, lost on ``bind_state``/``unbind_state``
migration, and splits behavior between the column and dict layouts.
These checks pin the contract at the AST level.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Union

from ..findings import Finding
from ..model import ModuleModel, ProgramClass, SchemaField
from .base import Check

#: ``__init__`` stages state; ``state_schema``/``vector_round`` are
#: classmethod declarations, not per-node code.
_NON_HOOK_METHODS = {"__init__", "state_schema", "vector_round"}

#: Integer column bounds for the sentinel-vs-dtype check.
_INT_BOUNDS = {
    "int8": (-(2**7), 2**7 - 1),
    "int16": (-(2**15), 2**15 - 1),
    "int32": (-(2**31), 2**31 - 1),
    "int64": (-(2**63), 2**63 - 1),
    "uint8": (0, 2**8 - 1),
    "uint16": (0, 2**16 - 1),
    "uint32": (0, 2**32 - 1),
    "uint64": (0, 2**64 - 1),
}
_BOOL_DTYPES = {"bool_", "bool"}


class UndeclaredStateCheck(Check):
    """RL101: every ``self.<attr>`` in hooks must be declared state."""

    id = "RL101"
    name = "undeclared-state"
    summary = (
        "program hooks may only touch state declared in state_schema() "
        "or staged in __init__"
    )
    rationale = """
An attribute first assigned inside on_start/on_round/on_receive (or a
helper they call) lives only in that instance's __dict__: the network's
column allocator never sees it, vector kernels cannot load or flush it,
and bind_state/unbind_state migration drops it. The two state layouts
({column, dict}) then diverge exactly where the equivalence suite cannot
look. Declare the field in state_schema(), stage it in __init__, or —
for genuinely derived scratch values — keep it a local variable.
"""
    bad_example = """
class P(NodeProgram):
    def __init__(self):
        self.count = 0

    def on_round(self, ctx):
        self.scratch = ctx.degree   # undeclared: bypasses column state
"""
    good_example = """
class P(NodeProgram):
    def __init__(self):
        self.count = 0
        self.scratch = 0

    def on_round(self, ctx):
        self.scratch = ctx.degree
"""

    def run(self, module: ModuleModel) -> Iterator[Finding]:
        for cls in module.program_classes:
            declared = cls.declared_attrs()
            for method_name, fn in _own_methods(cls):
                if method_name in _NON_HOOK_METHODS:
                    continue
                if not _takes_self(fn):
                    continue
                seen: Set[int] = set()
                for node in ast.walk(fn):
                    if not (
                        isinstance(node, ast.Attribute)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == "self"
                    ):
                        continue
                    attr = node.attr
                    if attr in declared or attr.startswith("__"):
                        continue
                    key = hash((attr, node.lineno))
                    if key in seen:
                        continue
                    seen.add(key)
                    action = (
                        "written"
                        if isinstance(node.ctx, (ast.Store, ast.Del))
                        else "read"
                    )
                    yield self.finding(
                        module,
                        node,
                        f"self.{attr} is {action} in "
                        f"{cls.name}.{method_name} but declared neither in "
                        f"state_schema() nor in __init__",
                    )


class WidthReferenceCheck(Check):
    """RL102: string ``width=`` must name a real program attribute."""

    id = "RL102"
    name = "width-reference"
    summary = (
        "StateField(width=\"attr\") must name an attribute the program "
        "instance actually has at bind time"
    )
    rationale = """
A string width is resolved at column-allocation time with
getattr(template_program, width): if no __init__ assignment (or class
attribute) backs that name, every schema-bound network dies with an
AttributeError at bind — but only in column mode, so the dict-layout
test matrix stays green while production breaks.
"""
    bad_example = """
class P(NodeProgram):
    def __init__(self, executions):
        self.execs = executions

    @classmethod
    def state_schema(cls):
        return (StateField("status", np.int8, width="executions"),)
"""
    good_example = """
class P(NodeProgram):
    def __init__(self, executions):
        self.executions = executions

    @classmethod
    def state_schema(cls):
        return (StateField("status", np.int8, width="executions"),)
"""

    def run(self, module: ModuleModel) -> Iterator[Finding]:
        for cls in module.program_classes:
            for field in cls.schema or []:
                if not isinstance(field.width, str):
                    continue
                if field.width in cls.init_attrs or \
                        field.width in cls.class_attrs:
                    continue
                yield self.finding(
                    module,
                    _anchor(cls, field),
                    f'width="{field.width}" of field '
                    f'"{field.name}" names no attribute assigned in '
                    f"{cls.name}.__init__ (column allocation would raise "
                    f"AttributeError at bind time)",
                )


class SentinelDtypeCheck(Check):
    """RL103: a schema default must be representable in its dtype."""

    id = "RL103"
    name = "sentinel-dtype"
    summary = (
        "schema defaults (e.g. -1 sentinels) must fit the declared "
        "column dtype"
    )
    rationale = """
Sentinel defaults are the idiom for "never happened" rounds (-1 in
join_round columns). np.full casts the default into the column dtype:
-1 in an unsigned column wraps to the dtype maximum, a 300 in an int8
column raises or wraps depending on the numpy version — either way the
sentinel comparisons in hooks and kernels silently stop matching.
"""
    bad_example = """
class P(NodeProgram):
    @classmethod
    def state_schema(cls):
        return (StateField("join_round", np.uint32, default=-1),)
"""
    good_example = """
class P(NodeProgram):
    @classmethod
    def state_schema(cls):
        return (StateField("join_round", np.int64, default=-1),)
"""

    def run(self, module: ModuleModel) -> Iterator[Finding]:
        for cls in module.program_classes:
            for field in cls.schema or []:
                problem = _dtype_problem(field)
                if problem:
                    yield self.finding(
                        module, _anchor(cls, field), problem
                    )


def _dtype_problem(field: SchemaField) -> Optional[str]:
    dtype = field.dtype_name
    default = field.default
    if dtype is None or default is None or not field.has_default:
        return None
    if dtype in _BOOL_DTYPES:
        if default in (0, 1, True, False):
            return None
        return (
            f'default {default!r} of field "{field.name}" is not a '
            f"boolean; a {dtype} column truncates it to "
            f"{bool(default)}"
        )
    bounds = _INT_BOUNDS.get(dtype)
    if bounds is None:
        return None  # floats and exotic dtypes admit any numeric default
    if isinstance(default, float) and not default.is_integer():
        return (
            f'default {default!r} of field "{field.name}" is fractional; '
            f"a {dtype} column truncates it to {int(default)}"
        )
    low, high = bounds
    value = int(default)
    if low <= value <= high:
        return None
    wrapped = value % (high - low + 1) + low
    return (
        f'sentinel default {value} of field "{field.name}" does not fit '
        f"dtype {dtype} (range [{low}, {high}]); the column holds "
        f"{wrapped} instead, so comparisons like == {value} never match"
    )


def _own_methods(cls: ProgramClass):
    for item in cls.node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield item.name, item


def _takes_self(fn: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> bool:
    args = fn.args.posonlyargs + fn.args.args
    return bool(args) and args[0].arg == "self"


class _FieldAnchor:
    """Location shim: anchor a finding at the StateField call site."""

    def __init__(self, lineno: int, col_offset: int):
        self.lineno = lineno
        self.col_offset = col_offset


def _anchor(cls: ProgramClass, field: SchemaField) -> _FieldAnchor:
    return _FieldAnchor(field.lineno, field.col)
