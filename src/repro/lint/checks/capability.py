"""RL4xx — capability-drift checks for vector kernels and registries.

Capability declarations are load-bearing in this repo: the engine trusts
``supports_schedules`` / ``supports_edge_faults`` to decide whether a
dense round may engage under wake schedules or channel faults, and the
harness derives ``VECTOR_CAPABLE_ALGORITHMS`` from ``vector_round``
hooks.  A declaration that drifts from the implementation does not
crash — the engine silently falls back to the scalar path (perf cliff)
or, worse, runs a dense round that ignores the schedule/fault state it
claimed to honor (wrong results that still look plausible).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from ..findings import Finding
from ..model import KernelClass, ModuleModel, attribute_chain
from .base import Check

#: The dense-round protocol every concrete kernel must implement.
_KERNEL_PROTOCOL = ("load", "step_round", "flush_state")

#: Syntactic evidence that a kernel actually consumes fault state.
_FAULT_MARKERS = {"fault_keep", "faults"}
#: Syntactic evidence that a kernel actually consumes the wake schedule.
_SCHEDULE_MARKERS = {"pop_scheduled_awake"}


def _kernel_attr_uses(kernel: KernelClass) -> Set[str]:
    """All ``self.<attr>`` / helper names referenced in the kernel body."""
    used: Set[str] = set()
    for fn in kernel.methods.values():
        for node in ast.walk(fn):
            if isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Name
            ) and node.value.id == "self":
                used.add(node.attr)
    return used


class KernelProtocolCheck(Check):
    """RL401: a VectorRound subclass must implement the full protocol."""

    id = "RL401"
    name = "kernel-incomplete"
    summary = (
        "VectorRound subclasses must implement load, step_round and "
        "flush_state"
    )
    rationale = """
The vectorized engine drives kernels through a fixed protocol: load()
pulls program state into dense arrays once per engagement, step_round()
advances one synchronous round, flush_state() writes results back so
the scalar path (and the user) see them. A kernel missing one of the
three raises NotImplementedError mid-run — but only when the vectorized
engine actually engages, which "auto" mode decides per run, so the gap
ships if tests only exercise the fast path.
"""
    bad_example = """
class _MyKernel(VectorRound):
    def load(self):
        ...

    def step_round(self):
        ...
    # flush_state missing: results never leave the dense arrays
"""
    good_example = """
class _MyKernel(VectorRound):
    def load(self):
        ...

    def step_round(self):
        ...

    def flush_state(self):
        ...
"""

    def run(self, module: ModuleModel) -> Iterator[Finding]:
        for kernel in module.kernel_classes:
            missing = [
                name
                for name in _KERNEL_PROTOCOL
                if name not in kernel.methods
            ]
            if missing:
                yield self.finding(
                    module,
                    kernel.node,
                    f"kernel {kernel.name} does not implement "
                    f"{', '.join(missing)}; the vectorized engine "
                    f"raises NotImplementedError the first time it "
                    f"engages this kernel",
                )


class EdgeFaultDriftCheck(Check):
    """RL402: ``supports_edge_faults`` must match the implementation."""

    id = "RL402"
    name = "edge-fault-drift"
    summary = (
        "supports_edge_faults must agree with whether the kernel reads "
        "self.faults / fault_keep()"
    )
    rationale = """
supports_edge_faults=True tells the engine a dense round may run while
a channel-fault stack is active. A kernel that declares True but never
consults self.faults / self.fault_keep() computes fault-free rounds
under injected faults — results diverge from the scalar engines exactly
when the fault matrix runs. The converse (fault handling implemented
but the flag left False/undeclared) silently forfeits the dense path
for every faulted sweep: a perf cliff no test fails on.
"""
    bad_example = """
class _MyKernel(VectorRound):
    supports_edge_faults = True    # declared...

    def step_round(self):
        exchange = self.adjacency @ self.flags   # ...but faults ignored
"""
    good_example = """
class _MyKernel(VectorRound):
    supports_edge_faults = True

    def load(self): ...

    def step_round(self):
        keep = self.fault_keep() if self.faults is not None else None
        exchange = self.masked_exchange(keep)

    def flush_state(self): ...
"""

    def run(self, module: ModuleModel) -> Iterator[Finding]:
        for kernel in module.kernel_classes:
            declared = kernel.flag("supports_edge_faults")
            uses_faults = bool(
                _kernel_attr_uses(kernel) & _FAULT_MARKERS
            )
            if declared is True and not uses_faults:
                yield self.finding(
                    module,
                    kernel.node,
                    f"kernel {kernel.name} declares "
                    f"supports_edge_faults=True but never reads "
                    f"self.faults or self.fault_keep(); dense rounds "
                    f"would ignore injected channel faults",
                )
            elif not declared and uses_faults:
                yield self.finding(
                    module,
                    kernel.node,
                    f"kernel {kernel.name} consumes fault state "
                    f"(self.faults / fault_keep) but does not declare "
                    f"supports_edge_faults=True; the engine will never "
                    f"use the dense path under faults",
                )


class ScheduleDriftCheck(Check):
    """RL403: ``supports_schedules`` must match the implementation."""

    id = "RL403"
    name = "schedule-drift"
    summary = (
        "supports_schedules must agree with whether the kernel calls "
        "pop_scheduled_awake()"
    )
    rationale = """
Wake schedules are the paper's energy mechanism: a node not scheduled
awake this round must neither act nor be charged. The engine consults
supports_schedules before engaging a kernel on a scheduling program. A
kernel declaring True without calling self.pop_scheduled_awake() runs
every node every round — it both corrupts the awake-round energy
accounting and diverges from the scalar path. Declaring False while
consuming the schedule means the calendar queue is popped by a kernel
the engine thinks is schedule-blind.
"""
    bad_example = """
class _MyKernel(VectorRound):
    supports_schedules = True      # declared...

    def step_round(self):
        draws = self.draws.next_block()   # ...but every node acts
"""
    good_example = """
class _MyKernel(VectorRound):
    supports_schedules = True

    def load(self): ...

    def step_round(self):
        awake = self.pop_scheduled_awake()
        draws = self.draws.next_block()

    def flush_state(self): ...
"""

    def run(self, module: ModuleModel) -> Iterator[Finding]:
        for kernel in module.kernel_classes:
            declared = kernel.flag("supports_schedules")
            uses_schedule = bool(
                _kernel_attr_uses(kernel) & _SCHEDULE_MARKERS
            )
            if declared is True and not uses_schedule:
                yield self.finding(
                    module,
                    kernel.node,
                    f"kernel {kernel.name} declares "
                    f"supports_schedules=True but never calls "
                    f"self.pop_scheduled_awake(); scheduled-asleep "
                    f"nodes would act (and be charged) every round",
                )
            elif not declared and uses_schedule:
                yield self.finding(
                    module,
                    kernel.node,
                    f"kernel {kernel.name} calls pop_scheduled_awake() "
                    f"but does not declare supports_schedules=True; "
                    f"the engine treats it as schedule-blind and the "
                    f"calendar pops fall out of sync",
                )


class RegistryDriftCheck(Check):
    """RL404: ``ALGORITHMS`` and ``_program_classes`` keys must match."""

    id = "RL404"
    name = "registry-drift"
    summary = (
        "ALGORITHMS and _program_classes() must register the same "
        "algorithm names"
    )
    rationale = """
The harness keeps two registries in harness/runner.py: ALGORITHMS maps
names to runner callables, _program_classes() maps the same names to
the NodeProgram classes those runners execute — and
VECTOR_CAPABLE_ALGORITHMS is *derived* from the second. A name present
in one and missing from the other either crashes sweep dispatch with a
KeyError or, quieter, keeps a new algorithm permanently out of the
vector-capability set so "auto" mode never vectorizes it and the CI
never-silently-falls-back gate cannot see it.
"""
    bad_example = """
ALGORITHMS = {"luby": luby_mis, "newalg": newalg_mis}

def _program_classes():
    return {"luby": (LubyProgram,)}    # "newalg" forgotten
"""
    good_example = """
ALGORITHMS = {"luby": luby_mis, "newalg": newalg_mis}

def _program_classes():
    return {"luby": (LubyProgram,), "newalg": (NewAlgProgram,)}
"""

    def run(self, module: ModuleModel) -> Iterator[Finding]:
        algorithms = _toplevel_dict_keys(module.tree, "ALGORITHMS")
        programs = _function_return_dict_keys(
            module.tree, "_program_classes"
        )
        if algorithms is None or programs is None:
            return
        algo_keys, algo_node = algorithms
        prog_keys, prog_node = programs
        for missing in sorted(algo_keys - prog_keys):
            yield self.finding(
                module,
                prog_node,
                f'algorithm "{missing}" is registered in ALGORITHMS '
                f"but missing from _program_classes(); it can never "
                f"enter VECTOR_CAPABLE_ALGORITHMS",
            )
        for missing in sorted(prog_keys - algo_keys):
            yield self.finding(
                module,
                algo_node,
                f'algorithm "{missing}" appears in _program_classes() '
                f"but is not registered in ALGORITHMS; sweep dispatch "
                f"raises KeyError for it",
            )


def _toplevel_dict_keys(tree: ast.Module, name: str):
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(
            isinstance(t, ast.Name) and t.id == name for t in targets
        ):
            continue
        keys = _dict_literal_keys(value)
        if keys is not None:
            return keys, node
    return None


def _function_return_dict_keys(tree: ast.Module, name: str):
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            for inner in ast.walk(node):
                if isinstance(inner, ast.Return):
                    keys = _dict_literal_keys(inner.value)
                    if keys is not None:
                        return keys, node
    return None


def _dict_literal_keys(value: Optional[ast.expr]) -> Optional[Set[str]]:
    if not isinstance(value, ast.Dict):
        return None
    keys: Set[str] = set()
    for key in value.keys:
        if not (
            isinstance(key, ast.Constant) and isinstance(key.value, str)
        ):
            return None
        keys.add(key.value)
    return keys


class VectorFactoryCheck(Check):
    """RL405: ``vector_round`` must return a real kernel (or stay None)."""

    id = "RL405"
    name = "vector-factory"
    summary = (
        "vector_round must construct a VectorRound subclass or be left "
        "as None"
    )
    rationale = """
NodeProgram.vector_round is the capability hook: the engine calls it
with the network and expects a VectorRound instance (or the class-level
None meaning "no dense path"). A factory that instantiates a class
which is not a VectorRound — or a name that does not exist — passes the
callable(cls.vector_round) capability probe in the harness, so the
algorithm is advertised as vector-capable and then blows up (or worse,
returns an object without the kernel protocol) the first time "auto"
mode engages it.
"""
    bad_example = """
class Helper:          # not a VectorRound
    pass

class P(NodeProgram):
    @classmethod
    def vector_round(cls, network):
        return Helper(network)
"""
    good_example = """
class _PKernel(VectorRound):
    def load(self): ...
    def step_round(self): ...
    def flush_state(self): ...

class P(NodeProgram):
    @classmethod
    def vector_round(cls, network):
        return _PKernel(network)
"""

    def run(self, module: ModuleModel) -> Iterator[Finding]:
        kernel_names = {k.name for k in module.kernel_classes}
        opaque_names = _toplevel_non_class_names(module.tree)
        for cls in module.program_classes:
            fn = cls.methods.get("vector_round")
            if fn is None:
                continue
            for node in ast.walk(fn):
                if not isinstance(node, ast.Return) or node.value is None:
                    continue
                problem = self._classify_return(
                    node.value, kernel_names, opaque_names, module
                )
                if problem:
                    yield self.finding(
                        module,
                        node,
                        f"{cls.name}.vector_round {problem}; the "
                        f"engine expects a VectorRound instance or "
                        f"None",
                    )

    @staticmethod
    def _classify_return(
        value: ast.expr,
        kernel_names: Set[str],
        opaque_names: Set[str],
        module: ModuleModel,
    ) -> Optional[str]:
        if isinstance(value, ast.Constant):
            if value.value is None:
                return None
            return f"returns the constant {value.value!r}"
        if isinstance(value, ast.Call):
            chain = attribute_chain(value.func)
            if chain is None or len(chain) != 1:
                return None  # opaque factory (cls attr, imported module)
            name = chain[0]
            if (
                name in kernel_names
                or name in module.imported_names
                or name in opaque_names
            ):
                return None
            if name in module.classes:
                return (
                    f"instantiates {name}, which is not a VectorRound "
                    f"subclass"
                )
            return f"references undefined name {name}"
        return None  # non-literal returns are opaque


def _toplevel_non_class_names(tree: ast.Module) -> Set[str]:
    """Module-level functions and variables (opaque as factories)."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            names.add(node.target.id)
    return names
