"""Check framework: one class per diagnostic, with a stable ``RLxxx`` ID.

A check receives the parsed :class:`~repro.lint.model.ModuleModel` and
yields :class:`~repro.lint.findings.Finding`\\ s.  Every check carries its
own documentation — ``rationale`` plus a minimal ``bad_example`` /
``good_example`` pair — which backs ``repro lint --explain RLxxx`` and is
itself verified by the fixture tests (the bad example must trigger exactly
this check; the good example must lint clean), so the explain output can
never drift from what the analyzer actually enforces.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from ..findings import Finding
from ..model import ModuleModel


class Check:
    """Base class for one lint diagnostic."""

    #: Stable identifier, e.g. ``"RL101"``. Never reuse a retired ID.
    id: str = ""
    #: Short kebab-case slug shown next to the ID in reports.
    name: str = ""
    #: One-line summary (the report message is per-finding and specific).
    summary: str = ""
    #: Why this is a bug class in this repo — shown by ``--explain``.
    rationale: str = ""
    #: Minimal violating module (must trigger exactly this check).
    bad_example: str = ""
    #: Minimal compliant variant of the same module (must lint clean).
    good_example: str = ""

    def run(self, module: ModuleModel) -> Iterator[Finding]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def finding(
        self, module: ModuleModel, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            check_id=self.id,
            message=f"[{self.name}] {message}",
        )

    @classmethod
    def explain(cls) -> str:
        """Human-oriented rationale card for ``--explain``."""
        lines: List[str] = [
            f"{cls.id} [{cls.name}] — {cls.summary}",
            "",
            cls.rationale.strip(),
            "",
            "Violating example:",
            _indent(cls.bad_example),
            "Compliant example:",
            _indent(cls.good_example),
            f"Suppress a vetted exception with: "
            f"# repro-lint: disable={cls.id}",
        ]
        return "\n".join(lines)


def _indent(block: str) -> str:
    body = block.strip("\n")
    return "\n".join(f"    {line}" for line in body.splitlines()) + "\n"
