"""``repro.lint`` — repo-specific static analysis for the simulator.

An ``ast``-based analyzer whose checks encode this repo's real bug
classes: schema-contract violations (RL1xx), determinism hazards
(RL2xx), per-round object escapes (RL3xx), and capability drift between
declarations and implementations (RL4xx).

Run it as ``python -m repro lint [paths...]``; see
``python -m repro lint --list`` for the check battery and
``python -m repro lint --explain RL101`` for per-check rationale.
Suppress a vetted exception with ``# repro-lint: disable=RL101`` on the
flagged line, or ``# repro-lint: disable-file=RL101`` anywhere in the
file.
"""

from .checks import ALL_CHECKS, Check, get_check
from .engine import (
    SYNTAX_ERROR_ID,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from .findings import Finding, SuppressionIndex, sort_findings
from .model import ModuleModel, build_module_model

__all__ = [
    "ALL_CHECKS",
    "Check",
    "Finding",
    "ModuleModel",
    "SYNTAX_ERROR_ID",
    "SuppressionIndex",
    "build_module_model",
    "get_check",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "sort_findings",
]
