"""Lint engine: parse once per file, run every check, apply suppressions.

The engine is intentionally boring: it walks ``.py`` files, builds one
:class:`~repro.lint.model.ModuleModel` per file, feeds it to every check
in :data:`~repro.lint.checks.ALL_CHECKS`, and filters the findings
through the file's suppression comments.  Unparseable files produce a
single ``RL000`` syntax finding instead of crashing the run, so the
linter stays usable on a broken tree.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Sequence, Type

from .checks import ALL_CHECKS
from .checks.base import Check
from .findings import Finding, SuppressionIndex, sort_findings
from .model import build_module_model

#: Pseudo check ID for files that fail to parse (not suppressible by a
#: real check ID, but ``disable-file=all`` still silences it).
SYNTAX_ERROR_ID = "RL000"

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


def lint_source(
    source: str,
    path: str,
    checks: Optional[Sequence[Type[Check]]] = None,
) -> List[Finding]:
    """Lint one source string; returns suppression-filtered findings."""
    suppressions = SuppressionIndex.from_source(source)
    try:
        module = build_module_model(source, path)
    except SyntaxError as exc:
        finding = Finding(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 1),
            check_id=SYNTAX_ERROR_ID,
            message=f"[syntax-error] file does not parse: {exc.msg}",
        )
        return suppressions.filter([finding])
    findings: List[Finding] = []
    for check_cls in checks if checks is not None else ALL_CHECKS:
        findings.extend(check_cls().run(module))
    return sort_findings(suppressions.filter(findings))


def lint_file(
    path: str, checks: Optional[Sequence[Type[Check]]] = None
) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path, checks)


def lint_paths(
    paths: Iterable[str],
    checks: Optional[Sequence[Type[Check]]] = None,
) -> List[Finding]:
    """Lint files and directories (recursively); stable report order."""
    findings: List[Finding] = []
    for path in paths:
        for file_path in iter_python_files(path):
            findings.extend(lint_file(file_path, checks))
    return sort_findings(findings)


def iter_python_files(path: str) -> List[str]:
    """``.py`` files under ``path`` (or ``path`` itself), sorted."""
    if os.path.isfile(path):
        return [path]
    collected: List[str] = []
    for root, dirs, files in os.walk(path):
        dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS)
        for name in sorted(files):
            if name.endswith(".py"):
                collected.append(os.path.join(root, name))
    return collected
