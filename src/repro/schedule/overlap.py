"""Awake-overlap schedules (Lemma 2.5 of the paper).

Problem: ``T`` rounds are numbered ``0 .. T-1`` (the paper uses ``1 .. T``).
For each round ``k`` we need a set of rounds ``S_k`` with ``|S_k| = O(log T)``
such that for any two rounds ``i <= j`` there is a round ``l`` with
``i <= l <= j`` and ``l in S_i ∩ S_j``.

A node ``v`` that acts in round ``r_v`` is awake exactly at the rounds of
``S_{r_v}``; the overlap property guarantees that for any neighbor ``u`` with
``r_u <= r_v`` there is a common awake round between their action rounds, in
which ``u``'s outcome can reach ``v``. This is the engine that lets Phase I
of both algorithms run with ``O(log log n)`` energy.

Construction (the paper's divide-and-conquer): recursively take the midpoint
``M`` of the current interval, add ``M`` to every schedule in the interval,
then recurse on the two halves. Equivalently, ``S_k`` is the set of midpoints
along the binary-search path from the whole interval to ``k`` — which gives
an ``O(log T)``-time per-round construction without materializing anything.
"""

from __future__ import annotations

from typing import List, Sequence


def schedule_size_bound(total_rounds: int) -> int:
    """Upper bound on ``|S_k|``: the depth of the binary-search recursion."""
    if total_rounds < 1:
        raise ValueError(f"total_rounds must be positive, got {total_rounds}")
    # The recursion splits an interval of size s into halves of size at most
    # floor(s / 2); one midpoint is added per level.
    bound = 1
    span = total_rounds
    while span > 1:
        bound += 1
        span //= 2
    return bound


def schedule_for_round(total_rounds: int, k: int) -> List[int]:
    """Return ``S_k`` (sorted ascending) for round ``k`` in ``0 .. T-1``.

    This is the binary-search-path formulation of the paper's recursion:
    ``S_k`` consists of the midpoints of every recursion interval containing
    ``k``. Runs in ``O(log T)`` time, so each node computes its own schedule
    locally before the algorithm starts (free of energy charge).
    """
    if total_rounds < 1:
        raise ValueError(f"total_rounds must be positive, got {total_rounds}")
    if not 0 <= k < total_rounds:
        raise ValueError(f"round {k} outside 0..{total_rounds - 1}")
    low, high = 0, total_rounds - 1
    rounds: List[int] = []
    while True:
        mid = (low + high) // 2
        rounds.append(mid)
        if k < mid:
            high = mid - 1
        elif k > mid:
            low = mid + 1
        else:
            return sorted(rounds)


def all_schedules(total_rounds: int) -> List[List[int]]:
    """Materialize ``S_0 .. S_{T-1}`` (testing/experiment convenience)."""
    return [schedule_for_round(total_rounds, k) for k in range(total_rounds)]


def common_round(schedule_i: Sequence[int], schedule_j: Sequence[int],
                 i: int, j: int) -> int:
    """Return some ``l`` with ``i <= l <= j`` in both schedules.

    Raises ``ValueError`` when no such round exists (which, for schedules
    produced by :func:`schedule_for_round`, would falsify Lemma 2.5).
    """
    if i > j:
        raise ValueError(f"need i <= j, got i={i}, j={j}")
    candidates = set(schedule_i) & set(schedule_j)
    valid = [l for l in candidates if i <= l <= j]
    if not valid:
        raise ValueError(
            f"schedules share no round in [{i}, {j}] — Lemma 2.5 violated"
        )
    return min(valid)


def verify_overlap_property(total_rounds: int) -> bool:
    """Exhaustively check Lemma 2.5 for all pairs (testing helper)."""
    schedules = all_schedules(total_rounds)
    for i in range(total_rounds):
        set_i = set(schedules[i])
        for j in range(i, total_rounds):
            if not any(i <= l <= j for l in set_i & set(schedules[j])):
                return False
    return True
