"""Awake-overlap schedules (Lemma 2.5)."""

from .overlap import (
    all_schedules,
    common_round,
    schedule_for_round,
    schedule_size_bound,
    verify_overlap_property,
)

__all__ = [
    "all_schedules",
    "common_round",
    "schedule_for_round",
    "schedule_size_bound",
    "verify_overlap_property",
]
