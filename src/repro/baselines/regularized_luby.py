"""Regularized Luby — the paper's Phase-I starting point, unmodified.

Section 2.1 derives Phase I from a "slowed-down variant of Luby's
algorithm, sometimes also called regularized Luby": in iteration ``i``
every remaining node marks itself with probability ``2^i / (10 Δ)`` in each
of ``c·log n`` rounds; marked nodes with no marked neighbor join the MIS
and retire their neighborhoods. After ``log Δ`` iterations the marking
probability has risen to the constant ``1/10``, at which point the sparse
remnants (isolated nodes included) decide within a few more rounds.

Unlike Phase I, this base version *re-marks* nodes every round, so marking
rounds cannot be precomputed and every undecided node must stay awake: its
energy equals its decision time, ``O(log Δ · log n)`` worst case — strictly
worse than plain Luby. That is exactly the gap the paper's one-shot
modification closes, which makes this the right middle rung for ablation
A1 (Luby → regularized Luby → Phase I).

Engine mapping: two sub-rounds per round (mark / join).
"""

from __future__ import annotations

import math
from typing import Optional

import networkx as nx

from ..congest import EnergyLedger, Network, NodeProgram
from ..graphs.properties import max_degree
from ..result import MISResult

_MARK = 0
_JOIN = 1


class RegularizedLubyProgram(NodeProgram):
    """Node program for the unmodified regularized Luby algorithm."""

    def __init__(self, iterations: int, rounds_per_iteration: int, delta: int,
                 mark_divisor: float = 10.0):
        self.iterations = max(1, iterations)
        self.rounds_per_iteration = max(1, rounds_per_iteration)
        self.delta = max(1, delta)
        self.mark_divisor = mark_divisor
        self.joined = False
        self.marked = False
        self.saw_marked_neighbor = False

    def on_start(self, ctx):
        ctx.output["in_mis"] = False

    def _probability(self, algo_round: int) -> float:
        # The iteration index clamps at the top: after the scheduled
        # cascade the constant-probability regime persists until everyone
        # has decided (the paper's "finally, isolated nodes join").
        iteration = min(
            self.iterations - 1, algo_round // self.rounds_per_iteration
        )
        return min(1.0, (2.0**iteration) / (self.mark_divisor * self.delta))

    def on_round(self, ctx):
        algo_round, sub = divmod(ctx.round, 2)
        if sub == _MARK:
            # Fresh coin every round: this is the re-marking that the
            # paper's one-shot modification removes.
            self.marked = bool(
                ctx.rng.random() < self._probability(algo_round)
            )
            if self.marked:
                ctx.broadcast(True)
        else:
            if self.marked and not self.saw_marked_neighbor:
                self.joined = True
                ctx.output["in_mis"] = True
                ctx.broadcast(True)

    def on_receive(self, ctx, messages):
        _, sub = divmod(ctx.round, 2)
        if sub == _MARK:
            self.saw_marked_neighbor = bool(messages)
        else:
            if self.joined:
                ctx.halt()
            elif messages:  # a neighbor joined: dominated
                ctx.halt()


def regularized_luby_mis(
    graph: nx.Graph,
    seed: int = 0,
    *,
    round_factor: float = 1.0,
    max_rounds: int = 500_000,
    ledger: Optional[EnergyLedger] = None,
    size_bound: Optional[int] = None,
    channel=None,
) -> MISResult:
    """Run the unmodified regularized Luby algorithm to completion."""
    n = size_bound if size_bound is not None else graph.number_of_nodes()
    delta = max_degree(graph)
    iterations = max(1, math.ceil(math.log2(max(2, delta))))
    rounds_per_iteration = max(1, round(round_factor * math.log2(max(2, n))))
    programs = {
        node: RegularizedLubyProgram(iterations, rounds_per_iteration, delta)
        for node in graph.nodes
    }
    network = Network(
        graph, programs, seed=seed, ledger=ledger, size_bound=n,
        channel=channel,
    )
    network.run(max_rounds=max_rounds)
    mis = {node for node, flag in network.outputs("in_mis").items() if flag}
    return MISResult(
        mis=mis,
        metrics=network.metrics(),
        algorithm="regularized_luby",
        details={
            "iterations": iterations,
            "rounds_per_iteration": rounds_per_iteration,
        },
    )
