"""Regularized Luby — the paper's Phase-I starting point, unmodified.

Section 2.1 derives Phase I from a "slowed-down variant of Luby's
algorithm, sometimes also called regularized Luby": in iteration ``i``
every remaining node marks itself with probability ``2^i / (10 Δ)`` in each
of ``c·log n`` rounds; marked nodes with no marked neighbor join the MIS
and retire their neighborhoods. After ``log Δ`` iterations the marking
probability has risen to the constant ``1/10``, at which point the sparse
remnants (isolated nodes included) decide within a few more rounds.

Unlike Phase I, this base version *re-marks* nodes every round, so marking
rounds cannot be precomputed and every undecided node must stay awake: its
energy equals its decision time, ``O(log Δ · log n)`` worst case — strictly
worse than plain Luby. That is exactly the gap the paper's one-shot
modification closes, which makes this the right middle rung for ablation
A1 (Luby → regularized Luby → Phase I).

Engine mapping: two sub-rounds per round (mark / join).
"""

from __future__ import annotations

import math
from typing import Optional

import networkx as nx
import numpy as np

from ..congest import EnergyLedger, Network, NodeProgram, StateField
from ..congest.vectorized import VectorRound
from ..graphs.properties import max_degree
from ..result import MISResult

_MARK = 0
_JOIN = 1


class RegularizedLubyProgram(NodeProgram):
    """Node program for the unmodified regularized Luby algorithm."""

    def __init__(self, iterations: int, rounds_per_iteration: int, delta: int,
                 mark_divisor: float = 10.0):
        self.iterations = max(1, iterations)
        self.rounds_per_iteration = max(1, rounds_per_iteration)
        self.delta = max(1, delta)
        self.mark_divisor = mark_divisor
        self.joined = False
        self.marked = False
        self.saw_marked_neighbor = False

    @classmethod
    def state_schema(cls):
        return (
            StateField("joined", np.bool_),
            StateField("marked", np.bool_),
            StateField("saw_marked_neighbor", np.bool_),
        )

    def on_start(self, ctx):
        ctx.output["in_mis"] = False

    def _probability(self, algo_round: int) -> float:
        # The iteration index clamps at the top: after the scheduled
        # cascade the constant-probability regime persists until everyone
        # has decided (the paper's "finally, isolated nodes join").
        iteration = min(
            self.iterations - 1, algo_round // self.rounds_per_iteration
        )
        return min(1.0, (2.0**iteration) / (self.mark_divisor * self.delta))

    def on_round(self, ctx):
        algo_round, sub = divmod(ctx.round, 2)
        if sub == _MARK:
            # Fresh coin every round: this is the re-marking that the
            # paper's one-shot modification removes.
            self.marked = bool(
                ctx.rng.random() < self._probability(algo_round)
            )
            if self.marked:
                ctx.broadcast(True)
        else:
            if self.marked and not self.saw_marked_neighbor:
                self.joined = True
                ctx.output["in_mis"] = True
                ctx.broadcast(True)

    def on_receive(self, ctx, messages):
        _, sub = divmod(ctx.round, 2)
        if sub == _MARK:
            self.saw_marked_neighbor = bool(messages)
        else:
            if self.joined:
                ctx.halt()
            elif messages:  # a neighbor joined: dominated
                ctx.halt()

    @classmethod
    def vector_round(cls, network):
        """Engine capability hook: whole-network mark/join sub-rounds.

        Declines (returns None, keeping the scalar path) when programs
        were built with differing schedule parameters — the vectorized
        round applies one global marking probability, which is only
        faithful when every node shares the schedule (as the
        ``regularized_luby_mis`` driver guarantees).
        """
        programs = iter(network.programs.values())
        template = next(programs)
        schedule = (template.iterations, template.rounds_per_iteration,
                    template.delta, template.mark_divisor)
        for program in programs:
            if (program.iterations, program.rounds_per_iteration,
                    program.delta, program.mark_divisor) != schedule:
                return None
        return _RegularizedLubyVectorRound(network)


class _RegularizedLubyVectorRound(VectorRound):
    """Vectorized regularized-Luby rounds.

    The marking probability is a *global* function of the algorithm round
    (no per-node degree), so one scalar probability gates a whole draw
    column; every live node draws each MARK sub-round in sorted node
    order, exactly like the scalar loop.  All schedule parameters are
    identical across nodes by construction (one factory builds every
    program), so they are read from an arbitrary instance.

    Channel faults are simpler here than in classic Luby: the marking
    probability carries no degree belief, so a fault only filters which
    mark/join announcements are *heard* — ``saw_marked`` and domination
    are computed through the round's keep mask, and accounting moves the
    destroyed copies to the dropped counter.  The clean path is untouched.
    """

    supports_edge_faults = True

    def load(self) -> None:
        arrays = self.arrays
        network = self.network
        n = arrays.n
        self.alive = self.rank_mask(network._always_on)
        columns = self.state_columns
        if columns is not None:
            self.marked = columns["marked"].copy()
            self.saw_marked = columns["saw_marked_neighbor"].copy()
            self.joined = columns["joined"].copy()
        else:
            self.marked = np.zeros(n, dtype=bool)
            self.saw_marked = np.zeros(n, dtype=bool)
            self.joined = np.zeros(n, dtype=bool)
            for i, node in enumerate(arrays.nodes):
                program = network.programs[node]
                self.marked[i] = program.marked
                self.saw_marked[i] = program.saw_marked_neighbor
                self.joined[i] = program.joined
        self._template = next(iter(network.programs.values()))
        # Valid at any engagement boundary: nobody halts between a MARK
        # and its JOIN, so live-neighbor counts are cycle-stable.  From
        # here the count is maintained *incrementally* — JOIN subtracts
        # each halting node's contribution — so no round re-scans the
        # dense alive mask.
        self._alive_neighbors = arrays.neighbor_count(self.alive)

    def flush_state(self) -> None:
        columns = self.state_columns
        if columns is not None:
            columns["marked"][:] = self.marked
            columns["saw_marked_neighbor"][:] = self.saw_marked
            columns["joined"][:] = self.joined
            return
        programs = self.network.programs
        for i, node in enumerate(self.arrays.nodes):
            program = programs[node]
            program.marked = bool(self.marked[i])
            program.saw_marked_neighbor = bool(self.saw_marked[i])
            program.joined = bool(self.joined[i])

    def step_round(self) -> None:
        algo_round, sub = divmod(self.network.round_index, 2)
        self.charge_awake(self.alive)
        if sub == _MARK:
            self._mark(algo_round)
        else:
            self._join()

    def _mark(self, algo_round: int) -> None:
        arrays = self.arrays
        alive = self.alive
        probability = self._template._probability(algo_round)
        marked = np.zeros(arrays.n, dtype=bool)
        drawers = np.nonzero(alive)[0]
        if drawers.size:
            marked[drawers] = self.draws.take(drawers) < probability
        self.marked = marked
        # Nobody halts between a MARK and its JOIN (deaths happen in the
        # JOIN receive phase), so the incrementally-maintained
        # ``_alive_neighbors`` prices both sub-rounds' deliveries.
        one_bit = np.ones(arrays.n, dtype=np.int64) if self.priced else None
        keep = self.fault_keep() if self.faults is not None else None
        if keep is not None:
            self.count_broadcasts(marked, alive, one_bit, keep=keep)
            heard_marks = arrays.masked_neighbor_count(marked, keep)
        else:
            self.count_broadcasts(
                marked, alive, one_bit, alive_neighbors=self._alive_neighbors
            )
            heard_marks = arrays.neighbor_count(marked)
        self.saw_marked = np.zeros(arrays.n, dtype=bool)
        self.saw_marked[alive] = (heard_marks > 0)[alive]

    def _join(self) -> None:
        arrays = self.arrays
        alive = self.alive
        winners = alive & self.marked & ~self.saw_marked
        self.joined |= winners
        for i in np.nonzero(winners)[0]:
            self.output_of(i)["in_mis"] = True
        one_bit = np.ones(arrays.n, dtype=np.int64) if self.priced else None
        keep = self.fault_keep() if self.faults is not None else None
        if keep is not None:
            self.count_broadcasts(winners, alive, one_bit, keep=keep)
            heard_joins = arrays.masked_neighbor_count(winners, keep)
        else:
            self.count_broadcasts(
                winners, alive, one_bit, alive_neighbors=self._alive_neighbors
            )
            heard_joins = arrays.neighbor_count(winners)
        dominated = alive & ~winners & (heard_joins > 0)
        departing = winners | dominated
        # Retire the departing nodes' contributions so the maintained
        # live-neighbor count stays exact for the next cycle.
        self._alive_neighbors = (
            self._alive_neighbors - arrays.neighbor_count(departing)
        )
        halting = np.nonzero(departing)[0]
        alive[halting] = False
        self.halt_ranks(halting)


def regularized_luby_mis(
    graph: nx.Graph,
    seed: int = 0,
    *,
    round_factor: float = 1.0,
    max_rounds: int = 500_000,
    ledger: Optional[EnergyLedger] = None,
    size_bound: Optional[int] = None,
    channel=None,
) -> MISResult:
    """Run the unmodified regularized Luby algorithm to completion."""
    n = size_bound if size_bound is not None else graph.number_of_nodes()
    delta = max_degree(graph)
    iterations = max(1, math.ceil(math.log2(max(2, delta))))
    rounds_per_iteration = max(1, round(round_factor * math.log2(max(2, n))))
    programs = {
        node: RegularizedLubyProgram(iterations, rounds_per_iteration, delta)
        for node in graph.nodes
    }
    network = Network(
        graph, programs, seed=seed, ledger=ledger, size_bound=n,
        channel=channel,
    )
    network.run(max_rounds=max_rounds)
    mis = {node for node, flag in network.outputs("in_mis").items() if flag}
    return MISResult(
        mis=mis,
        metrics=network.metrics(),
        algorithm="regularized_luby",
        details={
            "iterations": iterations,
            "rounds_per_iteration": rounds_per_iteration,
        },
    )
