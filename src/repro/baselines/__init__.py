"""Baseline MIS algorithms: sequential ground truth, Luby, Ghaffari-2016,
and the decay radio MIS for broadcast channels."""

from .ghaffari import (
    ACTIVE,
    JOINED,
    REMOVED,
    GhaffariProgram,
    ghaffari_mis,
    ghaffari_shatter,
)
from .luby import LubyProgram, luby_mis
from .radio_decay import RadioDecayProgram, radio_decay_mis
from .regularized_luby import RegularizedLubyProgram, regularized_luby_mis
from .sequential import greedy_mis, min_degree_greedy_mis, random_greedy_mis

__all__ = [
    "ACTIVE",
    "GhaffariProgram",
    "JOINED",
    "LubyProgram",
    "REMOVED",
    "RadioDecayProgram",
    "RegularizedLubyProgram",
    "ghaffari_mis",
    "ghaffari_shatter",
    "greedy_mis",
    "luby_mis",
    "min_degree_greedy_mis",
    "radio_decay_mis",
    "random_greedy_mis",
    "regularized_luby_mis",
]
