"""Luby's randomized MIS algorithm [Lub86, ABI86] on the CONGEST engine.

This is the classic ``O(log n)``-time baseline the paper compares against:
every undecided node stays awake every round, so its *energy* complexity is
also ``Θ(log n)`` — exactly the cost the paper's algorithms attack.

We implement the degree-based variant described in Section 3 of the paper:
each round, an undecided node marks itself with probability ``1/(2 deg(v))``
(current degree); for an edge with both endpoints marked, the endpoint with
the lower (degree, id) pair loses its mark; surviving marked nodes join the
MIS and are removed together with their neighbors.

Each algorithm iteration is three CONGEST sub-rounds (mark / resolve+join /
retire), all with 1-bit or (flag, degree) messages within the ``O(log n)``
budget.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

import networkx as nx
import numpy as np

from ..congest import EnergyLedger, Network, NodeProgram, StateField
from ..congest.vectorized import VectorRound, int_bit_length
from ..result import MISResult

_MARK = 0  # sub-round: marked nodes announce (mark, degree)
_RESOLVE = 1  # sub-round: mark winners join and announce
_RETIRE = 2  # sub-round: dominated nodes announce their removal

_ACTIVE = 0
_JOINED = 1
_REMOVED = 2


class LubyProgram(NodeProgram):
    """Node program for Luby's MIS.

    The three per-round scalars live in network-owned columns (see
    :meth:`state_schema`); ``active_neighbors`` stays instance-local
    because it is a shrinking *set* — it uses ``None`` as a lazy "all my
    neighbors" sentinel so an untouched node never materializes its
    neighborhood (the n=10^6 vectorized path leaves every node untouched).
    """

    def __init__(self):
        self.state = _ACTIVE
        self.active_neighbors: Optional[Set[int]] = None
        self.marked = False
        self.marked_neighbors: list = []
        self.pending_retirement = False

    @classmethod
    def state_schema(cls):
        return (
            StateField("state", np.int8),
            StateField("marked", np.bool_),
            StateField("pending_retirement", np.bool_),
        )

    def on_start(self, ctx):
        ctx.output["in_mis"] = False

    # ------------------------------------------------------------------
    def _priority(self, degree: int, node: int) -> Tuple[int, int]:
        """Tie-break key: a marked node beats marked neighbors of lower key."""
        return (degree, node)

    def _active_degree(self, ctx) -> int:
        active = self.active_neighbors
        if active is None:
            return ctx.degree
        return len(active)

    def _active_set(self, ctx) -> Set[int]:
        active = self.active_neighbors
        if active is None:
            active = set(ctx.neighbors)
            self.active_neighbors = active
        return active

    def on_round(self, ctx):
        phase = ctx.round % 3
        if phase == _MARK:
            self._do_mark(ctx)
        elif phase == _RESOLVE:
            self._do_resolve(ctx)
        else:
            self._do_retire(ctx)

    def _do_mark(self, ctx):
        if self.state != _ACTIVE:
            return
        degree = self._active_degree(ctx)
        if degree == 0:
            self.marked = True  # isolated: joins unopposed
        else:
            self.marked = bool(ctx.rng.random() < 1.0 / (2.0 * degree))
        self.marked_neighbors = []
        if self.marked:
            ctx.broadcast((True, degree))

    def _do_resolve(self, ctx):
        if self.state != _ACTIVE or not self.marked:
            return
        mine = self._priority(self._active_degree(ctx), ctx.node)
        wins = all(
            self._priority(deg, u) < mine for u, deg in self.marked_neighbors
        )
        if wins:
            self.state = _JOINED
            ctx.output["in_mis"] = True
            ctx.output["decided_round"] = ctx.round
            ctx.broadcast(True)

    def _do_retire(self, ctx):
        if self.pending_retirement:
            ctx.broadcast(True)

    # ------------------------------------------------------------------
    def on_receive(self, ctx, messages):
        phase = ctx.round % 3
        if phase == _MARK:
            self.marked_neighbors = [
                (m.sender, m.payload[1]) for m in messages if m.payload[0]
            ]
        elif phase == _RESOLVE:
            if self.state == _JOINED:
                ctx.halt()  # announced; done forever
                return
            joiners = {m.sender for m in messages}
            if joiners:
                self._active_set(ctx).difference_update(joiners)
                if self.state == _ACTIVE:
                    self.state = _REMOVED
                    self.pending_retirement = True
                    ctx.output["decided_round"] = ctx.round
        else:  # _RETIRE
            retirees = {m.sender for m in messages}
            if retirees:
                self._active_set(ctx).difference_update(retirees)
            if self.pending_retirement:
                ctx.halt()

    @classmethod
    def vector_round(cls, network):
        """Engine capability hook: Luby rounds vectorize whole-network."""
        return _LubyVectorRound(network)


class _LubyVectorRound(VectorRound):
    """Whole-network Luby rounds over flat numpy columns.

    Exploits two invariants of the scalar program to stay bit-identical:

    * every node that dies (halts) has announced first — a joiner at its
      RESOLVE round, a retiree at its RETIRE round — and every live node
      hears every announcement (all undecided nodes are always awake), so
      at any round boundary ``active_neighbors(v) == {u in N(v): alive(u)}``
      and the active degree is one CSR segment-sum over the alive mask;
    * the active degree cannot change between a MARK round and its RESOLVE
      (deaths happen only in RESOLVE/RETIRE receive phases), so the degree
      column cached at MARK prices that cycle's payloads *and* builds the
      RESOLVE priority keys ``(degree, id)`` — encoded as
      ``degree * n + rank`` (rank order is label order, so the encoding is
      order-isomorphic to the scalar tuple compare).

    RNG draw order matches the scalar loop exactly: only ACTIVE nodes with
    a live neighbor draw, in sorted node order, one uniform per MARK.

    Under an active channel-fault stack (``self.faults``), the first
    invariant breaks — a dropped join/retire announcement leaves the
    receiver *believing* its neighbor is still active — so the fault path
    replicates the scalar program's belief state explicitly: ``edge_live``
    is the per-slot belief "this row still counts that neighbor", the mark
    probability and priority keys use the believed degree derived from it,
    and beliefs shrink only on announcements that actually survived the
    round's keep mask (the MARK mask is also replayed at RESOLVE, where
    the scalar path reads its stored inbox).  The clean path is untouched.
    """

    supports_edge_faults = True

    def load(self) -> None:
        arrays = self.arrays
        network = self.network
        n = arrays.n
        # Vector rounds only run while the whole population is always-on
        # (the engine gates on an empty wake calendar), so membership
        # there — not just "not halted" — is what "awake every round"
        # means.
        self.alive = self.rank_mask(network._always_on)
        columns = self.state_columns
        if columns is not None:
            # Network-owned columns share the kernel's rank order; a copy
            # decouples the round loop from descriptor reads until flush.
            self.state = columns["state"].copy()
            self.marked = columns["marked"].copy()
            self.pending = columns["pending_retirement"].copy()
        else:
            self.state = np.zeros(n, dtype=np.int8)
            self.marked = np.zeros(n, dtype=bool)
            self.pending = np.zeros(n, dtype=bool)
            for i, node in enumerate(arrays.nodes):
                program = network.programs[node]
                self.state[i] = program.state
                self.marked[i] = program.marked
                self.pending[i] = program.pending_retirement
        if self.faults is None:
            # Live-neighbor count, maintained *incrementally* from here on:
            # RESOLVE subtracts the winners' contributions and RETIRE the
            # retirees', so no later round pays a dense CSR re-count.  This
            # snapshot is correct at any engagement boundary — between MARK
            # and RESOLVE nobody has died since MARK, and between RESOLVE
            # and RETIRE the winners are already out of ``alive``.
            self.active_deg = arrays.neighbor_count(self.alive)
        else:
            self._load_beliefs()

    def _load_beliefs(self) -> None:
        """Fault path: lift each program's belief state into slot columns."""
        arrays = self.arrays
        network = self.network
        indptr, indices, nodes = arrays.indptr, arrays.indices, arrays.nodes
        edge_live = np.zeros(indices.shape[0], dtype=bool)
        next_phase = (network.round_index + 1) % 3
        mark_keep = (
            np.zeros(indices.shape[0], dtype=bool)
            if next_phase == _RESOLVE
            else None
        )
        for i, node in enumerate(nodes):
            if not self.alive[i]:
                continue
            program = network.programs[node]
            start, end = int(indptr[i]), int(indptr[i + 1])
            believed = program.active_neighbors
            if believed is None:
                # Lazy sentinel: the node still believes its whole
                # neighborhood is active.
                edge_live[start:end] = True
            else:
                for e in range(start, end):
                    edge_live[e] = nodes[indices[e]] in believed
            if mark_keep is not None:
                # Mid-cycle engagement between MARK and RESOLVE: the mark
                # announcements were delivered (and filtered) by the scalar
                # wrapper; replay the survivors as this cycle's MARK mask.
                received = {sender for sender, _ in program.marked_neighbors}
                for e in range(start, end):
                    mark_keep[e] = nodes[indices[e]] in received
        self.edge_live = edge_live
        self._mark_keep = mark_keep
        self.active_deg = np.bincount(
            arrays.edge_source[edge_live], minlength=arrays.n
        ).astype(np.int64, copy=False)

    def flush_state(self) -> None:
        arrays = self.arrays
        network = self.network
        alive = self.alive
        indptr, indices = arrays.indptr, arrays.indices
        nodes = arrays.nodes
        faulty = self.faults is not None
        if faulty:
            edge_live = self.edge_live
            mark_keep = self._mark_keep
        columns = self.state_columns
        if columns is not None:
            columns["state"][:] = self.state
            columns["marked"][:] = self.marked
            columns["pending_retirement"][:] = self.pending
        else:
            for i, node in enumerate(nodes):
                program = network.programs[node]
                program.state = int(self.state[i])
                program.marked = bool(self.marked[i])
                program.pending_retirement = bool(self.pending[i])
        # Reconstruct MARK-receive inboxes only when the next round is a
        # RESOLVE (the one point where the scalar path reads them), and
        # belief sets only for still-live rows — a finished run flushes in
        # O(#survivors), not O(m).
        rebuild_inbox = (network.round_index + 1) % 3 == _RESOLVE
        for i in np.nonzero(alive)[0]:
            program = network.programs[nodes[i]]
            start, end = int(indptr[i]), int(indptr[i + 1])
            row = indices[start:end]
            if faulty:
                program.active_neighbors = {
                    nodes[row[k]]
                    for k in range(end - start)
                    if edge_live[start + k]
                }
                if rebuild_inbox:
                    program.marked_neighbors = [
                        (nodes[u], int(self.active_deg[u]))
                        for k, u in enumerate(row)
                        if self.marked[u] and self.state[u] == 0
                        and (mark_keep is None or mark_keep[start + k])
                    ]
            else:
                program.active_neighbors = {
                    nodes[u] for u in row if alive[u]
                }
                if rebuild_inbox:
                    program.marked_neighbors = [
                        (nodes[u], int(self.active_deg[u]))
                        for u in row
                        if self.marked[u] and self.state[u] == 0
                    ]

    # ------------------------------------------------------------------
    def step_round(self) -> None:
        phase = self.network.round_index % 3
        self.charge_awake(self.alive)
        if phase == _MARK:
            self._mark()
        elif phase == _RESOLVE:
            self._resolve()
        else:
            self._retire()

    def _mark(self) -> None:
        arrays = self.arrays
        alive = self.alive
        faulty = self.faults is not None
        if faulty:
            # Believed degree, not live-neighbor count: dropped join/retire
            # announcements leave stale entries, exactly as in the scalar
            # program's ``active_neighbors``.
            degree = np.bincount(
                arrays.edge_source[self.edge_live], minlength=arrays.n
            ).astype(np.int64, copy=False)
            self.active_deg = degree
        else:
            # Incrementally maintained since load: equals
            # ``neighbor_count(alive)`` because RESOLVE/RETIRE subtracted
            # every death's contribution as it happened.
            degree = self.active_deg
        active = alive & (self.state == 0)
        marked = np.zeros(arrays.n, dtype=bool)
        marked[active & (degree == 0)] = True  # isolated: joins unopposed
        contenders = np.nonzero(active & (degree > 0))[0]
        if contenders.size:
            draws = self.draws.take(contenders)
            marked[contenders] = draws < 0.5 / degree[contenders]
        self.marked = marked
        bits = 6 + np.maximum(1, int_bit_length(degree)) if self.priced \
            else None
        if faulty:
            self._mark_keep = self.fault_keep()
            self.count_broadcasts(marked, alive, bits, keep=self._mark_keep)
        else:
            self.count_broadcasts(marked, alive, bits, alive_neighbors=degree)

    def _resolve(self) -> None:
        arrays = self.arrays
        alive = self.alive
        n = arrays.n
        degree = self.active_deg
        faulty = self.faults is not None
        key = degree * np.int64(n) + np.arange(n, dtype=np.int64)
        contender_key = np.where(self.marked & (self.state == 0), key, -1)
        if faulty and self._mark_keep is not None:
            # A mark that was dropped on a slot was never heard by that
            # receiver: it cannot beat the receiver there.
            rival = arrays.masked_neighbor_max(
                contender_key, np.int64(-1), self._mark_keep
            )
        else:
            rival = arrays.neighbor_max(contender_key, empty=np.int64(-1))
        winners = self.marked & (self.state == 0) & (rival < key)
        winner_idx = np.nonzero(winners)[0]
        round_index = self.network.round_index
        for i in winner_idx:
            self.state[i] = 1
            output = self.output_of(i)
            output["in_mis"] = True
            output["decided_round"] = round_index
        one_bit = np.ones(n, dtype=np.int64) if self.priced else None
        if faulty:
            resolve_keep = self.fault_keep()
            self.count_broadcasts(winners, alive, one_bit, keep=resolve_keep)
            if resolve_keep is None:
                joined_nearby = arrays.neighbor_count(winners)
                heard_slots = winners[arrays.indices]
            else:
                joined_nearby = arrays.masked_neighbor_count(
                    winners, resolve_keep
                )
                heard_slots = winners[arrays.indices] & resolve_keep
            # Belief update: only joins that were actually heard retire the
            # receiver's link to the joiner.
            self.edge_live[heard_slots] = False
        else:
            # No deaths since MARK, so the cached degree *is* this round's
            # live-neighbor count.
            self.count_broadcasts(
                winners, alive, one_bit, alive_neighbors=degree
            )
            joined_nearby = arrays.neighbor_count(winners)
            # The winners halt at the end of this round: retire their
            # contribution now so the count stays live.
            self.active_deg = degree - joined_nearby
        # Receive phase: non-winners that heard a join retire their link
        # and (if still competing) schedule their retirement announcement.
        heard = alive & ~winners & (joined_nearby > 0)
        removed = heard & (self.state == 0)
        self.pending[removed] = True
        self.state[removed] = 2
        for i in np.nonzero(removed)[0]:
            self.output_of(i)["decided_round"] = round_index
        alive[winner_idx] = False
        self.halt_ranks(winner_idx)

    def _retire(self) -> None:
        arrays = self.arrays
        alive = self.alive
        retirees = self.pending & alive
        one_bit = np.ones(arrays.n, dtype=np.int64) if self.priced else None
        if self.faults is not None:
            retire_keep = self.fault_keep()
            self.count_broadcasts(retirees, alive, one_bit, keep=retire_keep)
            heard_slots = retirees[arrays.indices]
            if retire_keep is not None:
                heard_slots = heard_slots & retire_keep
            self.edge_live[heard_slots] = False
        else:
            # ``active_deg`` was decremented by the winners at RESOLVE, so
            # it equals this round's live-neighbor count — saving
            # ``count_broadcasts`` its dense alive re-count; then the
            # retirees' own contributions come off for the next MARK.
            self.count_broadcasts(
                retirees, alive, one_bit, alive_neighbors=self.active_deg
            )
            self.active_deg = self.active_deg - arrays.neighbor_count(retirees)
        retiree_idx = np.nonzero(retirees)[0]
        alive[retiree_idx] = False
        self.halt_ranks(retiree_idx)


def luby_mis(
    graph: nx.Graph,
    seed: int = 0,
    *,
    max_rounds: int = 100_000,
    ledger: Optional[EnergyLedger] = None,
    size_bound: Optional[int] = None,
    channel=None,
) -> MISResult:
    """Run Luby's algorithm to completion and return the MIS with metrics.

    ``channel="local"`` skips the CONGEST bit accounting (the baseline's
    rounds/energy are unchanged); the radio ``"broadcast"`` channel is
    unsound for Luby (adjacent marked nodes never hear each other).
    """
    programs = {node: LubyProgram() for node in graph.nodes}
    network = Network(
        graph, programs, seed=seed, ledger=ledger, size_bound=size_bound,
        channel=channel,
    )
    metrics = network.run(max_rounds=max_rounds)
    mis = {node for node, flag in network.outputs("in_mis").items() if flag}
    return MISResult(mis=mis, metrics=metrics, algorithm="luby")
