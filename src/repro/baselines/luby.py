"""Luby's randomized MIS algorithm [Lub86, ABI86] on the CONGEST engine.

This is the classic ``O(log n)``-time baseline the paper compares against:
every undecided node stays awake every round, so its *energy* complexity is
also ``Θ(log n)`` — exactly the cost the paper's algorithms attack.

We implement the degree-based variant described in Section 3 of the paper:
each round, an undecided node marks itself with probability ``1/(2 deg(v))``
(current degree); for an edge with both endpoints marked, the endpoint with
the lower (degree, id) pair loses its mark; surviving marked nodes join the
MIS and are removed together with their neighbors.

Each algorithm iteration is three CONGEST sub-rounds (mark / resolve+join /
retire), all with 1-bit or (flag, degree) messages within the ``O(log n)``
budget.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

import networkx as nx

from ..congest import EnergyLedger, Network, NodeProgram
from ..result import MISResult

_MARK = 0  # sub-round: marked nodes announce (mark, degree)
_RESOLVE = 1  # sub-round: mark winners join and announce
_RETIRE = 2  # sub-round: dominated nodes announce their removal

_ACTIVE = "active"
_JOINED = "joined"
_REMOVED = "removed"


class LubyProgram(NodeProgram):
    """Node program for Luby's MIS."""

    def __init__(self):
        self.state = _ACTIVE
        self.active_neighbors: Set[int] = set()
        self.marked = False
        self.marked_neighbors: list = []
        self.pending_retirement = False

    def on_start(self, ctx):
        self.active_neighbors = set(ctx.neighbors)
        ctx.output["in_mis"] = False

    # ------------------------------------------------------------------
    def _priority(self, degree: int, node: int) -> Tuple[int, int]:
        """Tie-break key: a marked node beats marked neighbors of lower key."""
        return (degree, node)

    def on_round(self, ctx):
        phase = ctx.round % 3
        if phase == _MARK:
            self._do_mark(ctx)
        elif phase == _RESOLVE:
            self._do_resolve(ctx)
        else:
            self._do_retire(ctx)

    def _do_mark(self, ctx):
        if self.state != _ACTIVE:
            return
        degree = len(self.active_neighbors)
        if degree == 0:
            self.marked = True  # isolated: joins unopposed
        else:
            self.marked = bool(ctx.rng.random() < 1.0 / (2.0 * degree))
        self.marked_neighbors = []
        if self.marked:
            ctx.broadcast((True, degree))

    def _do_resolve(self, ctx):
        if self.state != _ACTIVE or not self.marked:
            return
        mine = self._priority(len(self.active_neighbors), ctx.node)
        wins = all(
            self._priority(deg, u) < mine for u, deg in self.marked_neighbors
        )
        if wins:
            self.state = _JOINED
            ctx.output["in_mis"] = True
            ctx.output["decided_round"] = ctx.round
            ctx.broadcast(True)

    def _do_retire(self, ctx):
        if self.pending_retirement:
            ctx.broadcast(True)

    # ------------------------------------------------------------------
    def on_receive(self, ctx, messages):
        phase = ctx.round % 3
        if phase == _MARK:
            self.marked_neighbors = [
                (m.sender, m.payload[1]) for m in messages if m.payload[0]
            ]
        elif phase == _RESOLVE:
            if self.state == _JOINED:
                ctx.halt()  # announced; done forever
                return
            joiners = {m.sender for m in messages}
            if joiners:
                self.active_neighbors -= joiners
                if self.state == _ACTIVE:
                    self.state = _REMOVED
                    self.pending_retirement = True
                    ctx.output["decided_round"] = ctx.round
        else:  # _RETIRE
            retirees = {m.sender for m in messages}
            self.active_neighbors -= retirees
            if self.pending_retirement:
                ctx.halt()


def luby_mis(
    graph: nx.Graph,
    seed: int = 0,
    *,
    max_rounds: int = 100_000,
    ledger: Optional[EnergyLedger] = None,
    size_bound: Optional[int] = None,
    channel=None,
) -> MISResult:
    """Run Luby's algorithm to completion and return the MIS with metrics.

    ``channel="local"`` skips the CONGEST bit accounting (the baseline's
    rounds/energy are unchanged); the radio ``"broadcast"`` channel is
    unsound for Luby (adjacent marked nodes never hear each other).
    """
    programs = {node: LubyProgram() for node in graph.nodes}
    network = Network(
        graph, programs, seed=seed, ledger=ledger, size_bound=size_bound,
        channel=channel,
    )
    metrics = network.run(max_rounds=max_rounds)
    mis = {node for node, flag in network.outputs("in_mis").items() if flag}
    return MISResult(mis=mis, metrics=metrics, algorithm="luby")
