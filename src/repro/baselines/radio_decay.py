"""Decay-based MIS for radio (broadcast) networks with collision detection.

The sleeping-model literature the paper belongs to is largely about *radio*
networks ([BBDK, "Energy-Efficient Maximal Independent Sets in Radio
Networks"], [DMP, "Distributed MIS in O(log log n) Awake Complexity"]):
one shared medium per neighborhood, a transmission is heard only if it is
the sole transmission there, and a listener with collision detection can
tell noise from silence. Point-to-point algorithms like Luby are *unsound*
on such a channel — two adjacent marked nodes transmit simultaneously,
never hear each other (half-duplex), and both join. This module implements
an MIS algorithm that is correct *because of* collisions, in the style of
Bar-Yehuda-style decay protocols.

Time is cut into epochs of ``T + 1`` slots, where ``T = 2⌈log₂ n⌉ + 4``:

* **slot 0 (candidacy + first duel)** — every still-active node wakes;
  with probability ``2^-(epoch mod L)`` (the decay ladder, ``L = ⌈log₂ n⌉``)
  it becomes a *candidate* for this epoch. Candidates stay awake for the
  whole epoch; spectators go back to sleep until the announce slot.
* **slots 0..T-1 (duel)** — each candidate independently transmits a beacon
  with probability ½ or listens. A listening candidate that hears
  *anything* — a clean beacon or a collision — withdraws: some nearby
  candidate is competing, so joining would risk independence. Two adjacent
  candidates both survive only if they never once split transmit/listen,
  probability ``2^-T`` — w.h.p. never.
* **slot T (announce)** — surviving candidates join the MIS and transmit a
  join beacon with probability 1. Every active node is awake and listening:
  hearing *anything* (one joiner, or several colliding) proves a neighbor
  joined, so the listener retires as dominated. Joiners halt after
  announcing; they sleep in the MIS forever.

Per epoch a spectator is awake 2 slots and a candidate ``T + 1``, so the
awake complexity per epoch is ``O(log n)`` worst-case and ``O(1)`` for
non-candidates — the radio analogue of the paper's sleeping schedules.
Collisions suffered while listening are billed to the energy ledger by the
:class:`~repro.congest.channels.BroadcastChannel`.

The program only ever inspects *whether* it heard something, never payload
contents, so it runs unchanged (and degenerates gracefully: no collisions,
strictly more information) on the CONGEST and LOCAL channels.
"""

from __future__ import annotations

import math
from typing import Optional

import networkx as nx
import numpy as np

from ..congest import EnergyLedger, Network, NodeProgram, StateField
from ..congest.channels import ChannelSpec
from ..result import MISResult

_ACTIVE = 0
_JOINED = 1
_DOMINATED = 2


class RadioDecayProgram(NodeProgram):
    """Node program for the decay radio MIS (see module docstring)."""

    def __init__(self):
        self.state = _ACTIVE
        self.candidate = False
        self.levels = 1
        self.duel_slots = 1
        self.epoch_len = 2

    @classmethod
    def state_schema(cls):
        # Epoch geometry (levels/duel_slots/epoch_len) is derived from
        # ``ctx.n`` and identical across nodes; only the per-node decision
        # scalars go in columns.
        return (
            StateField("state", np.int8),
            StateField("candidate", np.bool_),
        )

    def on_start(self, ctx):
        self.levels = max(1, math.ceil(math.log2(max(2, ctx.n))))
        self.duel_slots = 2 * self.levels + 4
        self.epoch_len = self.duel_slots + 1
        ctx.output["in_mis"] = False
        ctx.use_wake_schedule([0])

    # ------------------------------------------------------------------
    def on_round(self, ctx):
        slot = ctx.round % self.epoch_len
        if slot == 0:
            self._start_epoch(ctx)
            if self.candidate and ctx.rng.random() < 0.5:
                ctx.broadcast(True)
        elif slot < self.duel_slots:
            if self.candidate and ctx.rng.random() < 0.5:
                ctx.broadcast(True)
        else:  # announce slot
            if self.candidate and self.state == _ACTIVE:
                self.state = _JOINED
                ctx.output["in_mis"] = True
                ctx.output["decided_round"] = ctx.round
                ctx.broadcast(True)

    def _start_epoch(self, ctx):
        epoch = ctx.round // self.epoch_len
        probability = 2.0 ** -(epoch % self.levels)
        self.candidate = bool(ctx.rng.random() < probability)
        base = ctx.round
        if self.candidate:
            # Awake for the rest of the duel, the announce slot, and the
            # start of the next epoch (in case the duel is lost).
            wakes = [base + k for k in range(1, self.duel_slots + 1)]
            wakes.append(base + self.epoch_len)
        else:
            # Spectators sleep through the duels: wake only to listen for
            # join announcements, then for the next epoch's candidacy.
            wakes = [base + self.duel_slots, base + self.epoch_len]
        ctx.use_wake_schedule(wakes)

    # ------------------------------------------------------------------
    def on_receive(self, ctx, messages):
        slot = ctx.round % self.epoch_len
        if self.state == _JOINED:
            if slot >= self.duel_slots:
                ctx.halt()  # announced; in the MIS, asleep forever
            return
        if slot < self.duel_slots:
            # A listening candidate that hears any energy (clean beacon or
            # collision) has a competing candidate nearby: withdraw.
            if self.candidate and messages:
                self.candidate = False
        elif messages:
            # Announce slot: only joiners transmit, so any signal — even a
            # collision of several joiners — proves a neighbor is in the MIS.
            self.state = _DOMINATED
            ctx.output["decided_round"] = ctx.round
            ctx.halt()


def radio_decay_mis(
    graph: nx.Graph,
    seed: int = 0,
    *,
    max_rounds: int = 500_000,
    ledger: Optional[EnergyLedger] = None,
    size_bound: Optional[int] = None,
    channel: ChannelSpec = "broadcast",
) -> MISResult:
    """Run the decay radio MIS to completion (w.h.p. independent + maximal).

    Defaults to the collision-detecting :class:`BroadcastChannel`; pass
    ``channel="congest"``/``"local"`` to run the same program on reliable
    point-to-point delivery (useful as an ablation of collision cost).
    """
    programs = {node: RadioDecayProgram() for node in graph.nodes}
    network = Network(
        graph,
        programs,
        seed=seed,
        ledger=ledger,
        size_bound=size_bound,
        channel=channel,
    )
    metrics = network.run(max_rounds=max_rounds)
    mis = {node for node, flag in network.outputs("in_mis").items() if flag}
    return MISResult(
        mis=mis,
        metrics=metrics,
        algorithm="radio_decay",
        details={
            "channel": network.channel.name,
            "collisions": network.collisions,
            "epoch_slots": (
                next(iter(programs.values())).epoch_len if programs else 0
            ),
        },
    )
