"""Sequential (centralized) MIS algorithms.

These are not distributed algorithms; they serve as ground truth for
correctness tests and as the reference the distributed outputs are compared
against in experiments.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

import networkx as nx
import numpy as np


def greedy_mis(
    graph: nx.Graph, order: Optional[Iterable[int]] = None
) -> Set[int]:
    """Greedy MIS following ``order`` (default: ascending node id).

    Every prefix-greedy pass yields a maximal independent set; different
    orders yield different (all valid) MISs.
    """
    if order is None:
        order = sorted(graph.nodes)
    else:
        order = list(order)
        if set(order) != set(graph.nodes):
            raise ValueError("order must be a permutation of the graph's nodes")
    mis: Set[int] = set()
    blocked: Set[int] = set()
    for node in order:
        if node not in blocked:
            mis.add(node)
            blocked.add(node)
            blocked.update(graph.neighbors(node))
    return mis


def random_greedy_mis(graph: nx.Graph, seed: int = 0) -> Set[int]:
    """Greedy MIS over a uniformly random permutation (seeded)."""
    rng = np.random.default_rng(seed)
    nodes = sorted(graph.nodes)
    order = [nodes[i] for i in rng.permutation(len(nodes))]
    return greedy_mis(graph, order)


def min_degree_greedy_mis(graph: nx.Graph) -> Set[int]:
    """Greedy MIS repeatedly taking a minimum-degree node.

    Produces large independent sets; used to sanity-check MIS sizes in
    experiments (an MIS can be small — e.g., a star's hub — this heuristic
    gives a strong size reference).
    """
    working = graph.copy()
    mis: Set[int] = set()
    while working.number_of_nodes():
        node = min(working.nodes, key=lambda v: (working.degree(v), v))
        mis.add(node)
        removed = {node, *working.neighbors(node)}
        working.remove_nodes_from(removed)
    return mis
