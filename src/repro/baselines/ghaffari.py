"""Ghaffari's MIS algorithm [Gha16] with the 1-bit-message rule of [Gha19].

The paper uses this algorithm twice:

* **Phase II (Lemma 2.6):** run for ``O(log Δ)`` rounds on the residual
  ``poly(log n)``-degree graph with all nodes awake, which *shatters* the
  graph — every undecided node survives only with probability
  ``1/poly(Δ)``, so the undecided residue forms small components.
* **Phase III (Lemma 2.7):** run ``Θ(log n)`` independent executions in
  parallel on each small component; since one execution needs only 1-bit
  messages, ``Θ(log n)`` parallel executions fit in one CONGEST message.

Algorithm (per execution): every undecided node holds a desire level
``p_t(v)``, initially 1/2. Each round it marks itself with probability
``p_t(v)``; marked nodes with no marked neighbor join the MIS and retire
their neighborhood. Desire levels then update from the 1-bit signal "did I
see a marked neighbor": halve if yes, else double (capped at 1/2). This is
the small-message variant of the classic effective-degree rule
(``d_t(v) = Σ p_t(u)``) — the marked-neighbor indicator is a Bernoulli
sample of that sum.

Each algorithm iteration is two CONGEST sub-rounds (marks / joins); payloads
are bit-vectors with one bit per execution.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import networkx as nx
import numpy as np

from ..congest import EnergyLedger, Network, NodeProgram, StateField
from ..congest.vectorized import VectorRound
from ..result import MISResult

_MARK = 0
_JOIN = 1

ACTIVE = 0
JOINED = 1
REMOVED = 2

_MIN_DESIRE = 2.0**-60  # numeric floor; reached only after 60 halvings


class GhaffariProgram(NodeProgram):
    """Node program running ``executions`` parallel Ghaffari-MIS instances.

    Parameters
    ----------
    iterations:
        Number of algorithm iterations (each = 2 CONGEST sub-rounds). When
        ``None`` the node runs until all its executions are decided (used
        for the standalone baseline); otherwise it halts after exactly
        ``iterations`` iterations even if undecided (used for shattering).
    executions:
        Number of independent parallel executions (Phase III uses Θ(log n)).
    """

    def __init__(self, iterations: Optional[int] = None, executions: int = 1):
        if executions < 1:
            raise ValueError(f"executions must be >= 1, got {executions}")
        if iterations is not None and iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {iterations}")
        self.iterations = iterations
        self.executions = executions
        # Per-execution state; ``join_round`` uses -1 for "never joined"
        # so the whole row set fits typed columns (see state_schema).
        self.status: List[int] = [ACTIVE] * executions
        self.desire: List[float] = [0.5] * executions
        self.marked: List[bool] = [False] * executions
        self.join_round: List[int] = [-1] * executions
        self.saw_marked: List[bool] = [False] * executions

    @classmethod
    def state_schema(cls):
        return (
            StateField("status", np.int8, default=ACTIVE, width="executions"),
            StateField("desire", np.float64, default=0.5, width="executions"),
            StateField("marked", np.bool_, width="executions"),
            StateField("join_round", np.int64, default=-1,
                       width="executions"),
            StateField("saw_marked", np.bool_, width="executions"),
        )

    # ------------------------------------------------------------------
    def undecided(self) -> bool:
        return any(s == ACTIVE for s in self.status)

    def _iteration_of(self, round_index: int) -> int:
        return round_index // 2

    def on_start(self, ctx):
        ctx.output["in_mis"] = False
        if self.iterations == 0:
            ctx.output["status"] = tuple(int(s) for s in self.status)
            ctx.halt()

    def on_round(self, ctx):
        if ctx.round % 2 == _MARK:
            self._do_mark(ctx)
        else:
            self._do_join(ctx)

    def _do_mark(self, ctx):
        # ``bool(...)`` casts keep payloads and state python-native whether
        # the row lives in a list (dict mode) or a typed column row view.
        for e in range(self.executions):
            if self.status[e] == ACTIVE:
                self.marked[e] = bool(ctx.rng.random() < self.desire[e])
            else:
                self.marked[e] = False
        if any(self.marked):
            ctx.broadcast(tuple(bool(m) for m in self.marked))

    def _do_join(self, ctx):
        joined_now = [False] * self.executions
        for e in range(self.executions):
            if self.status[e] != ACTIVE:
                continue
            saw_marked_neighbor = bool(self.saw_marked[e])
            # Desire update: the 1-bit effective-degree signal.
            if saw_marked_neighbor:
                self.desire[e] = max(_MIN_DESIRE, self.desire[e] / 2.0)
            else:
                self.desire[e] = min(0.5, self.desire[e] * 2.0)
            if self.marked[e] and not saw_marked_neighbor:
                self.status[e] = JOINED
                self.join_round[e] = self._iteration_of(ctx.round)
                joined_now[e] = True
        if any(joined_now):
            ctx.broadcast(tuple(joined_now))

    # ------------------------------------------------------------------
    def on_receive(self, ctx, messages):
        if ctx.round % 2 == _MARK:
            saw = [False] * self.executions
            for message in messages:
                for e, bit in enumerate(message.payload):
                    if bit:
                        saw[e] = True
            # Wholesale replacement, exactly like the old per-round set.
            self.saw_marked = saw
        else:
            for message in messages:
                for e, bit in enumerate(message.payload):
                    if bit and self.status[e] == ACTIVE:
                        self.status[e] = REMOVED
            self._maybe_finish(ctx)

    def _maybe_finish(self, ctx):
        iteration = self._iteration_of(ctx.round)
        out_of_time = (
            self.iterations is not None and iteration + 1 >= self.iterations
        )
        if out_of_time or not self.undecided():
            ctx.output["in_mis"] = bool(self.status[0] == JOINED)
            ctx.output["status"] = tuple(int(s) for s in self.status)
            ctx.halt()

    @classmethod
    def vector_round(cls, network):
        """Engine capability hook: the mark/join iteration vectorizes
        whole-network when every node runs the same ``(iterations,
        executions)`` configuration (the kernel stores per-execution state
        as ``(n, executions)`` columns, so the shape must be uniform)."""
        programs = [network.programs[node] for node in network.graph.nodes]
        first = programs[0]
        signature = (first.iterations, first.executions)
        for program in programs[1:]:
            if (program.iterations, program.executions) != signature:
                return None
        return _GhaffariVectorRound(network)


class _GhaffariVectorRound(VectorRound):
    """Whole-network mark/join rounds over ``(n, executions)`` columns.

    All ``executions`` parallel instances advance in one pass; the per-node
    RNG draw order is preserved because the scalar program draws once per
    ACTIVE execution in ascending execution order, which is exactly the
    order of the kernel's per-execution ``draws.take`` calls.

    Bit-identity notes mirroring the scalar receive rules:

    * a node broadcasts its mark (join) bit-vector only when *some* bit is
      set, and every payload is a tuple of ``executions`` bools — a
      constant 3·E bits on priced channels;
    * the program's ``saw_marked`` row is replaced wholesale at every MARK
      receive (even when empty), so the ``saw_marked`` columns of live rows
      are overwritten each MARK round rather than OR-ed;
    * removal at JOIN checks the receiver's status *after* its own joins
      this round, so the column updates run joins-then-removals;
    * the finish check runs for every live node each JOIN round (the scalar
      ``on_receive`` fires even with an empty inbox).
    """

    supports_schedules = False  # always-on: the program never schedules
    supports_edge_faults = True

    def load(self) -> None:
        arrays = self.arrays
        network = self.network
        n = arrays.n
        first = network.programs[arrays.nodes[0]]
        executions = first.executions
        self.executions = executions
        self.iterations = first.iterations
        self.alive = self.rank_mask(network._always_on)
        columns = self.state_columns
        if columns is not None:
            self.status = columns["status"].copy()
            self.desire = columns["desire"].copy()
            self.marked = columns["marked"].copy()
            self.join_round = columns["join_round"].copy()
            self.saw_marked = columns["saw_marked"].copy()
        else:
            self.status = np.zeros((n, executions), dtype=np.int8)
            self.desire = np.zeros((n, executions), dtype=np.float64)
            self.marked = np.zeros((n, executions), dtype=bool)
            self.join_round = np.full((n, executions), -1, dtype=np.int64)
            self.saw_marked = np.zeros((n, executions), dtype=bool)
            for i, node in enumerate(arrays.nodes):
                program = network.programs[node]
                self.status[i] = program.status
                self.desire[i] = program.desire
                self.marked[i] = program.marked
                self.join_round[i] = program.join_round
                self.saw_marked[i] = program.saw_marked
        self._payload_bits = (
            np.full(n, 3 * executions, dtype=np.int64) if self.priced else None
        )
        # Live-neighbor counts, maintained incrementally: live rows only
        # ever leave (finish at a JOIN round), so one sparse CSR pass over
        # each round's departures replaces the per-round dense recount.
        self._alive_neighbors = arrays.neighbor_count(self.alive)

    def flush_state(self) -> None:
        network = self.network
        columns = self.state_columns
        if columns is not None:
            columns["status"][:] = self.status
            columns["desire"][:] = self.desire
            columns["marked"][:] = self.marked
            columns["join_round"][:] = self.join_round
            columns["saw_marked"][:] = self.saw_marked
            return
        # ``saw_marked`` only matters when the next scalar round is a JOIN
        # (it is replaced wholesale at the next MARK receive); halted nodes
        # keep their stale rows, exactly like the scalar path.
        rebuild_inbox = (network.round_index + 1) % 2 == _JOIN
        for i, node in enumerate(self.arrays.nodes):
            program = network.programs[node]
            program.status = [int(s) for s in self.status[i]]
            program.desire = [float(d) for d in self.desire[i]]
            program.marked = [bool(m) for m in self.marked[i]]
            program.join_round = [int(r) for r in self.join_round[i]]
            if rebuild_inbox and self.alive[i]:
                program.saw_marked = [
                    bool(b) for b in self.saw_marked[i]
                ]

    # ------------------------------------------------------------------
    def step_round(self) -> None:
        alive = self.alive
        self.charge_awake(alive)
        keep = self.fault_keep() if self.faults is not None else None
        if self.network.round_index % 2 == _MARK:
            self._mark_round(alive, keep)
        else:
            self._join_round(alive, keep)

    def _mark_round(self, alive: np.ndarray, keep) -> None:
        arrays = self.arrays
        executions = self.executions
        marked = self.marked
        # The scalar program reassigns every execution's mark each MARK
        # round (inactive executions to False); halted rows keep theirs.
        marked[alive] = False
        active = alive[:, None] & (self.status == ACTIVE)
        for e in range(executions):
            idx = np.nonzero(active[:, e])[0]
            if idx.size:
                marked[idx, e] = self.draws.take(idx) < self.desire[idx, e]
        senders = alive & marked.any(axis=1)
        if keep is None:
            self.count_broadcasts(
                senders, alive, self._payload_bits,
                alive_neighbors=self._alive_neighbors,
            )
        else:
            self.count_broadcasts(
                senders, alive, self._payload_bits, keep=keep
            )
        # A mark bit for execution e arrives from any *live* neighbor with
        # that bit set (marked implies broadcast, but halted rows keep
        # stale mark bits and never send); live receivers replace their
        # indicator wholesale.  A faulted slot destroys the whole payload
        # (the scalar wrapper drops entire messages, never single bits).
        saw = self.saw_marked
        for e in range(executions):
            sent = marked[:, e] & alive
            if keep is None:
                heard = arrays.neighbor_count(sent) > 0
            else:
                heard = arrays.masked_neighbor_count(sent, keep) > 0
            saw[alive, e] = heard[alive]

    def _join_round(self, alive: np.ndarray, keep) -> None:
        arrays = self.arrays
        executions = self.executions
        active = alive[:, None] & (self.status == ACTIVE)
        saw = self.saw_marked
        halve = active & saw
        double = active & ~saw
        self.desire[halve] = np.maximum(
            _MIN_DESIRE, self.desire[halve] / 2.0
        )
        self.desire[double] = np.minimum(0.5, self.desire[double] * 2.0)
        joined_now = active & self.marked & ~saw
        iteration = self.network.round_index // 2
        self.status[joined_now] = JOINED
        self.join_round[joined_now] = iteration
        senders = alive & joined_now.any(axis=1)
        if keep is None:
            self.count_broadcasts(
                senders, alive, self._payload_bits,
                alive_neighbors=self._alive_neighbors,
            )
        else:
            self.count_broadcasts(
                senders, alive, self._payload_bits, keep=keep
            )
        for e in range(executions):
            if keep is None:
                heard = arrays.neighbor_count(joined_now[:, e]) > 0
            else:
                heard = (
                    arrays.masked_neighbor_count(joined_now[:, e], keep) > 0
                )
            removed = alive & heard & (self.status[:, e] == ACTIVE)
            self.status[removed, e] = REMOVED
        out_of_time = (
            self.iterations is not None and iteration + 1 >= self.iterations
        )
        if out_of_time:
            finish = alive.copy()
        else:
            finish = alive & ~(self.status == ACTIVE).any(axis=1)
        finish_idx = np.nonzero(finish)[0]
        if finish_idx.size:
            status = self.status
            for i in finish_idx:
                output = self.output_of(i)
                output["in_mis"] = bool(status[i, 0] == JOINED)
                output["status"] = tuple(int(s) for s in status[i])
            alive[finish_idx] = False
            self._alive_neighbors = (
                self._alive_neighbors - arrays.neighbor_count(finish)
            )
            self.halt_ranks(finish_idx)


def ghaffari_mis(
    graph: nx.Graph,
    seed: int = 0,
    *,
    max_rounds: int = 200_000,
    ledger: Optional[EnergyLedger] = None,
    size_bound: Optional[int] = None,
    channel=None,
) -> MISResult:
    """Run Ghaffari's algorithm to completion (single execution) as a baseline."""
    programs = {node: GhaffariProgram() for node in graph.nodes}
    network = Network(
        graph, programs, seed=seed, ledger=ledger, size_bound=size_bound,
        channel=channel,
    )
    metrics = network.run(max_rounds=max_rounds)
    mis = {node for node, flag in network.outputs("in_mis").items() if flag}
    return MISResult(mis=mis, metrics=metrics, algorithm="ghaffari2016")


def ghaffari_shatter(
    graph: nx.Graph,
    iterations: int,
    seed: int = 0,
    *,
    ledger: Optional[EnergyLedger] = None,
    size_bound: Optional[int] = None,
) -> Tuple[Set[int], Set[int], "Network"]:
    """Run a fixed number of iterations with all nodes awake (Phase II core).

    Returns ``(joined, undecided, network)``: the nodes that joined the MIS,
    the nodes still undecided after the budget (the "shattered" residue),
    and the network (for metrics inspection).
    """
    programs = {
        node: GhaffariProgram(iterations=iterations) for node in graph.nodes
    }
    network = Network(
        graph, programs, seed=seed, ledger=ledger, size_bound=size_bound
    )
    network.run(max_rounds=10 * iterations + 16)
    joined = set()
    undecided = set()
    for node in graph.nodes:
        program = programs[node]
        if program.status[0] == JOINED:
            joined.add(node)
        elif program.status[0] == ACTIVE:
            undecided.add(node)
    return joined, undecided, network
