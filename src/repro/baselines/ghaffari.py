"""Ghaffari's MIS algorithm [Gha16] with the 1-bit-message rule of [Gha19].

The paper uses this algorithm twice:

* **Phase II (Lemma 2.6):** run for ``O(log Δ)`` rounds on the residual
  ``poly(log n)``-degree graph with all nodes awake, which *shatters* the
  graph — every undecided node survives only with probability
  ``1/poly(Δ)``, so the undecided residue forms small components.
* **Phase III (Lemma 2.7):** run ``Θ(log n)`` independent executions in
  parallel on each small component; since one execution needs only 1-bit
  messages, ``Θ(log n)`` parallel executions fit in one CONGEST message.

Algorithm (per execution): every undecided node holds a desire level
``p_t(v)``, initially 1/2. Each round it marks itself with probability
``p_t(v)``; marked nodes with no marked neighbor join the MIS and retire
their neighborhood. Desire levels then update from the 1-bit signal "did I
see a marked neighbor": halve if yes, else double (capped at 1/2). This is
the small-message variant of the classic effective-degree rule
(``d_t(v) = Σ p_t(u)``) — the marked-neighbor indicator is a Bernoulli
sample of that sum.

Each algorithm iteration is two CONGEST sub-rounds (marks / joins); payloads
are bit-vectors with one bit per execution.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import networkx as nx

from ..congest import EnergyLedger, Network, NodeProgram
from ..result import MISResult

_MARK = 0
_JOIN = 1

ACTIVE = 0
JOINED = 1
REMOVED = 2

_MIN_DESIRE = 2.0**-60  # numeric floor; reached only after 60 halvings


class GhaffariProgram(NodeProgram):
    """Node program running ``executions`` parallel Ghaffari-MIS instances.

    Parameters
    ----------
    iterations:
        Number of algorithm iterations (each = 2 CONGEST sub-rounds). When
        ``None`` the node runs until all its executions are decided (used
        for the standalone baseline); otherwise it halts after exactly
        ``iterations`` iterations even if undecided (used for shattering).
    executions:
        Number of independent parallel executions (Phase III uses Θ(log n)).
    """

    def __init__(self, iterations: Optional[int] = None, executions: int = 1):
        if executions < 1:
            raise ValueError(f"executions must be >= 1, got {executions}")
        if iterations is not None and iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {iterations}")
        self.iterations = iterations
        self.executions = executions
        self.status: List[int] = [ACTIVE] * executions
        self.desire: List[float] = [0.5] * executions
        self.marked: List[bool] = [False] * executions
        self.join_round: List[Optional[int]] = [None] * executions
        self._marked_neighbor_execs: Set[int] = set()

    # ------------------------------------------------------------------
    def undecided(self) -> bool:
        return any(s == ACTIVE for s in self.status)

    def _iteration_of(self, round_index: int) -> int:
        return round_index // 2

    def on_start(self, ctx):
        ctx.output["in_mis"] = False
        if self.iterations == 0:
            ctx.output["status"] = tuple(self.status)
            ctx.halt()

    def on_round(self, ctx):
        if ctx.round % 2 == _MARK:
            self._do_mark(ctx)
        else:
            self._do_join(ctx)

    def _do_mark(self, ctx):
        for e in range(self.executions):
            if self.status[e] == ACTIVE:
                self.marked[e] = bool(ctx.rng.random() < self.desire[e])
            else:
                self.marked[e] = False
        if any(self.marked):
            ctx.broadcast(tuple(self.marked))

    def _do_join(self, ctx):
        joined_now = [False] * self.executions
        for e in range(self.executions):
            if self.status[e] != ACTIVE:
                continue
            saw_marked_neighbor = e in self._marked_neighbor_execs
            # Desire update: the 1-bit effective-degree signal.
            if saw_marked_neighbor:
                self.desire[e] = max(_MIN_DESIRE, self.desire[e] / 2.0)
            else:
                self.desire[e] = min(0.5, self.desire[e] * 2.0)
            if self.marked[e] and not saw_marked_neighbor:
                self.status[e] = JOINED
                self.join_round[e] = self._iteration_of(ctx.round)
                joined_now[e] = True
        if any(joined_now):
            ctx.broadcast(tuple(joined_now))
        self._joined_now = joined_now

    # ------------------------------------------------------------------
    def on_receive(self, ctx, messages):
        if ctx.round % 2 == _MARK:
            marked_execs: Set[int] = set()
            for message in messages:
                for e, bit in enumerate(message.payload):
                    if bit:
                        marked_execs.add(e)
            self._marked_neighbor_execs = marked_execs
        else:
            for message in messages:
                for e, bit in enumerate(message.payload):
                    if bit and self.status[e] == ACTIVE:
                        self.status[e] = REMOVED
            self._maybe_finish(ctx)

    def _maybe_finish(self, ctx):
        iteration = self._iteration_of(ctx.round)
        out_of_time = (
            self.iterations is not None and iteration + 1 >= self.iterations
        )
        if out_of_time or not self.undecided():
            ctx.output["in_mis"] = self.status[0] == JOINED
            ctx.output["status"] = tuple(self.status)
            ctx.halt()


def ghaffari_mis(
    graph: nx.Graph,
    seed: int = 0,
    *,
    max_rounds: int = 200_000,
    ledger: Optional[EnergyLedger] = None,
    size_bound: Optional[int] = None,
    channel=None,
) -> MISResult:
    """Run Ghaffari's algorithm to completion (single execution) as a baseline."""
    programs = {node: GhaffariProgram() for node in graph.nodes}
    network = Network(
        graph, programs, seed=seed, ledger=ledger, size_bound=size_bound,
        channel=channel,
    )
    metrics = network.run(max_rounds=max_rounds)
    mis = {node for node, flag in network.outputs("in_mis").items() if flag}
    return MISResult(mis=mis, metrics=metrics, algorithm="ghaffari2016")


def ghaffari_shatter(
    graph: nx.Graph,
    iterations: int,
    seed: int = 0,
    *,
    ledger: Optional[EnergyLedger] = None,
    size_bound: Optional[int] = None,
) -> Tuple[Set[int], Set[int], "Network"]:
    """Run a fixed number of iterations with all nodes awake (Phase II core).

    Returns ``(joined, undecided, network)``: the nodes that joined the MIS,
    the nodes still undecided after the budget (the "shattered" residue),
    and the network (for metrics inspection).
    """
    programs = {
        node: GhaffariProgram(iterations=iterations) for node in graph.nodes
    }
    network = Network(
        graph, programs, seed=seed, ledger=ledger, size_bound=size_bound
    )
    network.run(max_rounds=10 * iterations + 16)
    joined = set()
    undecided = set()
    for node in graph.nodes:
        program = programs[node]
        if program.status[0] == JOINED:
            joined.add(node)
        elif program.status[0] == ACTIVE:
            undecided.add(node)
    return joined, undecided, network
