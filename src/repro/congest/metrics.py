"""Energy and round accounting shared by every simulation style.

The paper's two complexity measures (Section 1.1):

* **time complexity** — total number of synchronous rounds;
* **energy complexity** — the maximum over nodes of the number of rounds the
  node is awake. The node-averaged variant (Section 4) is the mean.

All execution styles in this repository (the message-passing engine and the
metered Phase III choreography) charge awake rounds through an
:class:`EnergyLedger`, so results are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional


class EnergyLedger:
    """Per-node awake-round counter.

    The ledger does not know *why* a node was awake; it only counts rounds.
    Phases stack: running several phases against the same ledger accumulates,
    which matches the paper's additive accounting in Theorems 1.1/1.2.
    """

    def __init__(self, nodes: Iterable[int]):
        self._awake: Dict[int, int] = {node: 0 for node in nodes}
        if not self._awake:
            raise ValueError("EnergyLedger needs at least one node")

    def charge(self, node: int, rounds: int = 1) -> None:
        """Record that ``node`` was awake for ``rounds`` additional rounds."""
        if rounds < 0:
            raise ValueError(f"cannot charge negative rounds ({rounds})")
        self._awake[node] += rounds

    def charge_many(self, nodes: Iterable[int], rounds: int = 1) -> None:
        """Charge every node in ``nodes``; the engine's per-round hot call."""
        if rounds < 0:
            raise ValueError(f"cannot charge negative rounds ({rounds})")
        awake = self._awake
        for node in nodes:
            awake[node] += rounds

    def ensure_nodes(self, nodes: Iterable[int]) -> None:
        """Start tracking ``nodes`` (at zero awake rounds) if not yet known.

        Dynamic networks add nodes mid-timeline; already-known nodes keep
        their accumulated energy untouched.
        """
        for node in nodes:
            self._awake.setdefault(node, 0)

    def awake_rounds(self, node: int) -> int:
        return self._awake[node]

    @property
    def nodes(self):
        return self._awake.keys()

    def max_energy(self) -> int:
        """Worst-case energy complexity: max awake rounds over all nodes."""
        return max(self._awake.values())

    def total_energy(self) -> int:
        return sum(self._awake.values())

    def average_energy(self) -> float:
        """Node-averaged energy complexity (Section 4 of the paper)."""
        return self.total_energy() / len(self._awake)

    def snapshot(self) -> Dict[int, int]:
        return dict(self._awake)


@dataclass
class RunMetrics:
    """Summary of one simulated execution."""

    rounds: int
    max_energy: int
    average_energy: float
    total_energy: int
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    total_message_bits: int = 0
    max_message_bits: int = 0
    collisions: int = 0
    phases: Dict[str, "RunMetrics"] = field(default_factory=dict)

    @classmethod
    def from_snapshots(
        cls,
        rounds: int,
        before: Dict[int, int],
        after: Dict[int, int],
        nodes: Optional[Iterable[int]] = None,
        *,
        messages_sent: int = 0,
        messages_delivered: int = 0,
        messages_dropped: int = 0,
        total_message_bits: int = 0,
        max_message_bits: int = 0,
        collisions: int = 0,
    ) -> "RunMetrics":
        """Metrics of one phase run against a shared ledger.

        ``before``/``after`` are ledger snapshots; the difference is the
        energy this phase charged. ``nodes`` restricts max/average to the
        phase's participants (default: every node in ``after``).
        """
        scope = list(nodes) if nodes is not None else list(after)
        if not scope:
            return cls(rounds=rounds, max_energy=0, average_energy=0.0,
                       total_energy=0,
                       messages_sent=messages_sent,
                       messages_delivered=messages_delivered,
                       messages_dropped=messages_dropped,
                       total_message_bits=total_message_bits,
                       max_message_bits=max_message_bits,
                       collisions=collisions)
        spent = [after[v] - before.get(v, 0) for v in scope]
        total = sum(spent)
        return cls(
            rounds=rounds,
            max_energy=max(spent),
            average_energy=total / len(scope),
            total_energy=total,
            messages_sent=messages_sent,
            messages_delivered=messages_delivered,
            messages_dropped=messages_dropped,
            total_message_bits=total_message_bits,
            max_message_bits=max_message_bits,
            collisions=collisions,
        )

    @classmethod
    def from_ledger(
        cls,
        rounds: int,
        ledger: EnergyLedger,
        *,
        messages_sent: int = 0,
        messages_delivered: int = 0,
        messages_dropped: int = 0,
        total_message_bits: int = 0,
        max_message_bits: int = 0,
        collisions: int = 0,
    ) -> "RunMetrics":
        return cls(
            rounds=rounds,
            max_energy=ledger.max_energy(),
            average_energy=ledger.average_energy(),
            total_energy=ledger.total_energy(),
            messages_sent=messages_sent,
            messages_delivered=messages_delivered,
            messages_dropped=messages_dropped,
            total_message_bits=total_message_bits,
            max_message_bits=max_message_bits,
            collisions=collisions,
        )

    def to_dict(self) -> Dict[str, Any]:
        """Complete, JSON-friendly export; inverse of :meth:`from_dict`.

        Every field round-trips — rounds, max/avg/total energy, the five
        message counters, collisions, and the per-phase breakdown
        (recursively) — so telemetry records and ``repro report`` never
        have to re-derive a number the run already computed.
        """
        data: Dict[str, Any] = {
            "rounds": self.rounds,
            "max_energy": self.max_energy,
            "average_energy": self.average_energy,
            "total_energy": self.total_energy,
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "total_message_bits": self.total_message_bits,
            "max_message_bits": self.max_message_bits,
            "collisions": self.collisions,
        }
        if self.phases:
            data["phases"] = {
                name: phase.to_dict() for name, phase in self.phases.items()
            }
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunMetrics":
        """Rebuild a :class:`RunMetrics` (with phases) from
        :meth:`to_dict` output; ``RunMetrics.from_dict(m.to_dict()) == m``."""
        return cls(
            rounds=int(data["rounds"]),
            max_energy=int(data["max_energy"]),
            average_energy=float(data["average_energy"]),
            total_energy=int(data["total_energy"]),
            messages_sent=int(data.get("messages_sent", 0)),
            messages_delivered=int(data.get("messages_delivered", 0)),
            messages_dropped=int(data.get("messages_dropped", 0)),
            total_message_bits=int(data.get("total_message_bits", 0)),
            max_message_bits=int(data.get("max_message_bits", 0)),
            collisions=int(data.get("collisions", 0)),
            phases={
                name: cls.from_dict(phase)
                for name, phase in data.get("phases", {}).items()
            },
        )

    def add_phase(self, name: str, metrics: "RunMetrics") -> None:
        if name in self.phases:
            raise ValueError(f"duplicate phase name {name!r}")
        self.phases[name] = metrics

    @classmethod
    def combine_sequential(
        cls, phases: Dict[str, "RunMetrics"], ledger: Optional[EnergyLedger] = None
    ) -> "RunMetrics":
        """Combine phase metrics run back-to-back on the same node set.

        Rounds add up; per-node energy adds up, so the true combined maximum
        must be read off a shared ledger when one is provided. Without a
        ledger we fall back to summing the per-phase maxima, which is an
        upper bound (and is exactly the bound the paper's proofs use).
        """
        total_rounds = sum(metrics.rounds for metrics in phases.values())
        if ledger is not None:
            combined = cls.from_ledger(total_rounds, ledger)
        else:
            combined = cls(
                rounds=total_rounds,
                max_energy=sum(m.max_energy for m in phases.values()),
                average_energy=sum(m.average_energy for m in phases.values()),
                total_energy=sum(m.total_energy for m in phases.values()),
            )
        for name, metrics in phases.items():
            combined.add_phase(name, metrics)
            combined.messages_sent += metrics.messages_sent
            combined.messages_delivered += metrics.messages_delivered
            combined.messages_dropped += metrics.messages_dropped
            combined.total_message_bits += metrics.total_message_bits
            combined.max_message_bits = max(
                combined.max_message_bits, metrics.max_message_bits
            )
            combined.collisions += metrics.collisions
        return combined
