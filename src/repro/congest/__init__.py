"""CONGEST-with-sleeping simulator: the model substrate of the paper.

Public surface:

* :class:`Network` — synchronous message-passing engine with sleeping.
* :class:`NodeProgram` / :class:`Context` — the node-program API.
* :class:`EnergyLedger` / :class:`RunMetrics` — time/energy accounting.
* :class:`Message`, :func:`payload_bits`, :func:`default_bit_budget` —
  message-size accounting for the ``B = O(log n)``-bit budget.
"""

from .errors import (
    CongestError,
    DuplicateMessageError,
    MessageTooLargeError,
    NotANeighborError,
    SchedulingError,
    SimulationLimitError,
)
from .message import Message, default_bit_budget, payload_bits, payload_bits_cached
from .metrics import EnergyLedger, RunMetrics
from .network import Network, legacy_engine, run_uniform_program, set_legacy_mode
from .program import Context, NodeProgram
from .trace import NetworkTrace, RoundRecord

__all__ = [
    "CongestError",
    "Context",
    "DuplicateMessageError",
    "EnergyLedger",
    "Message",
    "MessageTooLargeError",
    "Network",
    "NetworkTrace",
    "NodeProgram",
    "NotANeighborError",
    "RoundRecord",
    "RunMetrics",
    "SchedulingError",
    "SimulationLimitError",
    "default_bit_budget",
    "legacy_engine",
    "payload_bits",
    "payload_bits_cached",
    "run_uniform_program",
    "set_legacy_mode",
]
