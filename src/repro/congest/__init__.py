"""CONGEST-with-sleeping simulator: the model substrate of the paper.

Public surface:

* :class:`Network` — synchronous message-passing engine with sleeping.
* :class:`Channel` and friends — the pluggable delivery layer
  (:class:`CongestChannel`, :class:`LocalChannel`, :class:`BroadcastChannel`,
  the :data:`CHANNELS` registry, :func:`channel_scope`).
* :class:`NodeProgram` / :class:`Context` — the node-program API.
* :class:`EnergyLedger` / :class:`RunMetrics` — time/energy accounting.
* :class:`Message`, :func:`payload_bits`, :func:`default_bit_budget` —
  message-size accounting for the ``B = O(log n)``-bit budget.
"""

from .channels import (
    CHANNELS,
    COLLISION,
    COLLISION_MESSAGE,
    BroadcastChannel,
    Channel,
    CongestChannel,
    LocalChannel,
    channel_scope,
    make_channel,
)
from .errors import (
    ChannelError,
    CongestError,
    DuplicateMessageError,
    MessageTooLargeError,
    NotANeighborError,
    SchedulingError,
    SimulationLimitError,
    VectorizationError,
)
from .message import Message, default_bit_budget, payload_bits, payload_bits_cached
from .metrics import EnergyLedger, RunMetrics
from .network import (
    ENGINE_MODES,
    Network,
    engine_mode,
    fault_scope,
    get_engine_mode,
    legacy_engine,
    run_uniform_program,
    scoped_fault_plan,
    set_engine_mode,
    set_legacy_mode,
)
from .program import Context, NodeProgram
from .state import (
    StateField,
    column_state,
    get_column_state,
    set_column_state,
)
from .trace import NetworkTrace, RoundRecord
from .vectorized import (
    DrawStreams,
    GraphArrays,
    VectorRound,
    graph_arrays,
    invalidate_graph_arrays,
    reset_vector_stats,
    vector_stats,
)

__all__ = [
    "BroadcastChannel",
    "CHANNELS",
    "DrawStreams",
    "ENGINE_MODES",
    "GraphArrays",
    "VectorRound",
    "VectorizationError",
    "StateField",
    "column_state",
    "engine_mode",
    "get_column_state",
    "get_engine_mode",
    "graph_arrays",
    "invalidate_graph_arrays",
    "reset_vector_stats",
    "set_column_state",
    "set_engine_mode",
    "vector_stats",
    "COLLISION",
    "COLLISION_MESSAGE",
    "Channel",
    "ChannelError",
    "CongestChannel",
    "CongestError",
    "Context",
    "DuplicateMessageError",
    "EnergyLedger",
    "LocalChannel",
    "Message",
    "MessageTooLargeError",
    "Network",
    "NetworkTrace",
    "NodeProgram",
    "NotANeighborError",
    "RoundRecord",
    "RunMetrics",
    "SchedulingError",
    "SimulationLimitError",
    "channel_scope",
    "default_bit_budget",
    "fault_scope",
    "legacy_engine",
    "make_channel",
    "scoped_fault_plan",
    "payload_bits",
    "payload_bits_cached",
    "run_uniform_program",
    "set_legacy_mode",
]
