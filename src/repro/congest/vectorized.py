"""Vectorized dense-round engine path: numpy over flat node arrays.

The engine's fast path (idle fast-forward + cached round loop) wins on
*sparse* schedules, where almost nobody is awake.  Dense always-on phases —
Luby-style duel rounds, regularized-Luby marking cascades, radio announce
slots — are the opposite regime: every undecided node is awake every round
and runs the *same* program step.  There, the per-node python dispatch
(``on_round``/``on_receive`` calls, inbox dict lookups, per-message
accounting) dominates wall-clock.

This module provides the third engine path: node state is flattened into
contiguous numpy columns (degree/mark/priority/state), the graph into a CSR
adjacency (:class:`GraphArrays`), and one :class:`VectorRound` subclass per
capable algorithm advances the *whole network* one synchronous round with
array ops — bit-identically to the scalar paths, including the RNG draw
order (each node still consumes its own per-node generator stream in sorted
node order; block prefetching via :class:`DrawStreams` is exact because
``Generator.random(k)`` produces the same stream as ``k`` scalar draws).

A program class opts in by overriding the :attr:`NodeProgram.vector_round`
hook with a factory ``(network) -> VectorRound``.  The network engages the
vectorized path only when every node runs the same capable program class on
a compatible point-to-point channel (CONGEST or LOCAL); radio rounds are
vectorized inside :class:`~repro.congest.channels.BroadcastChannel` itself
(the per-round bincount listener scan), which needs no program capability.

State lives on the program instances between engagements: a runner
:meth:`VectorRound.load`\\ s instance state into arrays lazily at its first
round and :meth:`VectorRound.flush`\\ es arrays (and lazily-accumulated
ledger charges) back whenever the engine leaves the vectorized regime — a
scheduled wake appears, ``run_rounds`` truncates, or the run ends — so
scalar and vectorized rounds interleave bit-identically.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

#: Module-wide engagement statistics, for tests and the CI gate that the
#: vectorized path never *silently* falls back to the cached loop for an
#: algorithm that declares the capability.
_VECTOR_STATS = {"rounds": 0, "networks": 0}


def vector_stats() -> Dict[str, int]:
    """Counters of vectorized engagement since the last reset."""
    return dict(_VECTOR_STATS)


def reset_vector_stats() -> None:
    _VECTOR_STATS["rounds"] = 0
    _VECTOR_STATS["networks"] = 0


class _IdentityRank:
    """Rank map for 0..n-1 integer labels: every label is its own rank.

    Stands in for the ``{label: rank}`` dict so million-node graphs never
    pay for a million-entry dictionary just to satisfy ``rank[node]``
    call sites shared with arbitrary-label graphs.
    """

    __slots__ = ()

    def __getitem__(self, node):
        return node

    def get(self, node, default=None):
        return node


class GraphArrays:
    """CSR adjacency over rank-indexed nodes.

    Node labels stay arbitrary hashable objects (grid graphs use tuples);
    all array math runs on each node's *rank* in sorted-label order, which
    is order-isomorphic to label comparison — so lexicographic tie-break
    keys like Luby's ``(degree, id)`` vectorize as ``degree * n + rank``.

    Instances are also graph-like enough to hand straight to
    :class:`~repro.congest.network.Network`: they answer
    ``number_of_nodes``/``number_of_edges``, ``nodes``, ``neighbors`` and
    membership tests, so the array-native construction path (generators'
    ``as_arrays=True`` → :meth:`from_edges`) never materializes a
    ``networkx.Graph`` of per-node adjacency dicts at all.
    """

    __slots__ = ("nodes", "_rank", "indptr", "indices", "degrees", "n",
                 "identity_ranks", "_edge_source")

    def __init__(self, graph):
        nodes = sorted(graph.nodes)
        rank = {node: i for i, node in enumerate(nodes)}
        n = len(nodes)
        m = graph.number_of_edges()
        #: Labels 0..n-1 are their own ranks (every generated family);
        #: hot paths then turn label sets into rank arrays without the
        #: per-label dict lookup.
        identity = bool(
            n
            and isinstance(nodes[0], int)
            and isinstance(nodes[-1], int)
            and nodes[0] == 0
            and nodes[-1] == n - 1
        )
        # Vectorized CSR build: one pass over the edge list into rank
        # arrays, then a single lexsort groups by source with sorted
        # targets inside each row.  Graphs labelled 0..n-1 (every generated
        # family) are their own rank map, so the edge list streams straight
        # into numpy with no per-edge dict lookups — the build is then fast
        # enough that a single short vectorized engagement already pays for
        # it.
        if m and identity:
            import itertools

            flat = np.fromiter(
                itertools.chain.from_iterable(graph.edges),
                dtype=np.int64,
                count=2 * m,
            )
            head = flat[0::2]
            tail = flat[1::2]
        else:
            head = np.empty(m, dtype=np.int64)
            tail = np.empty(m, dtype=np.int64)
            for k, (u, v) in enumerate(graph.edges):
                head[k] = rank[u]
                tail[k] = rank[v]
        self._init_csr(nodes, head, tail, n, identity)
        if not identity:
            self._rank = rank

    def _init_csr(self, nodes, head, tail, n, identity) -> None:
        """Shared CSR build from rank-indexed endpoint arrays."""
        source = np.concatenate((head, tail))
        target = np.concatenate((tail, head))
        order = np.lexsort((target, source))
        self.nodes = nodes
        self._rank = None
        self.indices = target[order]
        counts = np.bincount(source, minlength=n)
        self.indptr = np.concatenate((
            np.zeros(1, dtype=np.int64), np.cumsum(counts)
        ))
        self.degrees = counts.astype(np.int64)
        self.n = n
        self.identity_ranks = identity
        self._edge_source = None  # built lazily (one np.repeat over m)

    @classmethod
    def from_edges(cls, n: int, head, tail) -> "GraphArrays":
        """Build directly from an undirected edge list on labels 0..n-1.

        ``head``/``tail`` are parallel integer arrays, one entry per
        undirected edge, without duplicates or self-loops (generators
        guarantee this). This is the array-native construction path: no
        ``networkx.Graph`` ever exists.
        """
        self = cls.__new__(cls)
        head = np.ascontiguousarray(head, dtype=np.int64)
        tail = np.ascontiguousarray(tail, dtype=np.int64)
        # ``range`` supports everything callers ask of ``nodes`` (len,
        # iteration, indexing) without a million-entry python list.
        self._init_csr(range(n), head, tail, n, True)
        return self

    @classmethod
    def from_graph(cls, graph) -> "GraphArrays":
        return cls(graph)

    @property
    def rank(self):
        """Label → rank mapping (identity-label graphs build no dict)."""
        rank = self._rank
        if rank is None:
            if self.identity_ranks:
                rank = _IdentityRank()
            else:
                rank = {node: i for i, node in enumerate(self.nodes)}
            self._rank = rank
        return rank

    # -- graph-like protocol (what Network and the channels consume) -----
    def number_of_nodes(self) -> int:
        return self.n

    def number_of_edges(self) -> int:
        return int(self.indices.size) // 2

    def neighbors(self, node):
        """Ascending neighbor labels of one node (a fresh list)."""
        rank = node if self.identity_ranks else self.rank[node]
        row = self.indices[self.indptr[rank]:self.indptr[rank + 1]]
        if self.identity_ranks:
            return row.tolist()
        nodes = self.nodes
        return [nodes[i] for i in row.tolist()]

    def __contains__(self, node) -> bool:
        if self.identity_ranks:
            return isinstance(node, (int, np.integer)) and 0 <= node < self.n
        return node in self.rank

    def __len__(self) -> int:
        return self.n

    @property
    def edge_source(self) -> np.ndarray:
        """Per-edge source rank (the CSR row of each ``indices`` entry)."""
        if self._edge_source is None:
            self._edge_source = np.repeat(
                np.arange(self.n, dtype=np.int64), self.degrees
            )
        return self._edge_source

    # -- segment reductions over the CSR rows ---------------------------
    def neighbor_count(self, mask: np.ndarray) -> np.ndarray:
        """Per-node count of flagged neighbors: one bincount over the
        edges *leaving flagged rows*.

        Sparse masks (the common case: this round's markers, winners,
        retirees) gather only the flagged rows' adjacency slices, so a
        round with k flagged nodes costs O(sum of their degrees) instead
        of O(m); dense masks take one boolean edge gather + bincount.
        """
        flagged = np.nonzero(mask)[0]
        if not flagged.size:
            return np.zeros(self.n, dtype=np.int64)
        if flagged.size * 8 < self.n:
            indptr, indices = self.indptr, self.indices
            targets = np.concatenate(
                [indices[indptr[i]:indptr[i + 1]] for i in flagged]
            )
        else:
            targets = self.indices[mask[self.edge_source]]
        return np.bincount(targets, minlength=self.n).astype(
            np.int64, copy=False
        )

    def neighbor_max(self, values: np.ndarray, empty) -> np.ndarray:
        """Per-node max of ``values`` over its neighbors (empty row ->
        ``empty``).

        ``np.maximum.reduceat`` is fed only the starts of non-empty rows:
        because empty rows contribute no edge values, consecutive non-empty
        starts delimit exactly one row each.
        """
        out = np.full(self.n, empty, dtype=values.dtype)
        indptr = self.indptr
        nonempty = indptr[:-1] < indptr[1:]
        if nonempty.any():
            out[nonempty] = np.maximum.reduceat(
                values[self.indices], indptr[:-1][nonempty]
            )
        return out

    # -- fault-masked variants -------------------------------------------
    # Slot convention shared with ``Channel.vector_faults``: CSR slot ``e``
    # sits in the row of receiver ``edge_source[e]`` and carries the
    # delivery from sender ``indices[e]``; ``keep[e]`` is False when a
    # fault destroyed that delivery this round.  With an all-True mask both
    # variants coincide with their clean counterparts (for the count, by
    # symmetry of the undirected slot set).

    def masked_neighbor_count(
        self, mask: np.ndarray, keep: np.ndarray
    ) -> np.ndarray:
        """Per-receiver count of flagged senders whose delivery survived."""
        selected = mask[self.indices] & keep
        if not selected.any():
            return np.zeros(self.n, dtype=np.int64)
        return np.bincount(
            self.edge_source[selected], minlength=self.n
        ).astype(np.int64, copy=False)

    def masked_neighbor_max(
        self, values: np.ndarray, empty, keep: np.ndarray
    ) -> np.ndarray:
        """Per-receiver max of surviving senders' ``values`` (else ``empty``)."""
        out = np.full(self.n, empty, dtype=values.dtype)
        indptr = self.indptr
        nonempty = indptr[:-1] < indptr[1:]
        if nonempty.any():
            edge_values = np.where(keep, values[self.indices], empty)
            out[nonempty] = np.maximum.reduceat(
                edge_values, indptr[:-1][nonempty]
            )
        return out

    def delivery_counts(
        self, senders: np.ndarray, alive: np.ndarray, keep: np.ndarray
    ) -> np.ndarray:
        """Per-sender count of copies actually received under ``keep``.

        A copy from sender ``indices[e]`` lands iff the receiving row is
        alive (awake, in the dense regime) and no fault dropped the slot.
        """
        selected = senders[self.indices] & alive[self.edge_source] & keep
        return np.bincount(
            self.indices[selected], minlength=self.n
        ).astype(np.int64, copy=False)


def graph_arrays(network) -> GraphArrays:
    """The network's cached :class:`GraphArrays` (built on first use).

    Shared between the vectorized round runners and the radio channel's
    bincount listener scan, so one network builds the CSR at most once.
    The CSR is also parked in the graph's ``__networkx_cache__`` when one
    exists: networkx clears that dict on every mutation, so repeated runs
    over the same (static) graph — sweeps, benchmarks, engine comparisons
    — reuse one build, while dynamic workloads that rewire edges between
    epochs are invalidated for free.
    """
    arrays = getattr(network, "_graph_arrays", None)
    if arrays is None:
        graph = network.graph
        if isinstance(graph, GraphArrays):
            # Array-native network: the graph *is* the CSR already.
            arrays = graph
        else:
            cache = getattr(graph, "__networkx_cache__", None)
            if isinstance(cache, dict):
                arrays = cache.get("repro_graph_arrays")
                if arrays is None:
                    arrays = GraphArrays(graph)
                    cache["repro_graph_arrays"] = arrays
            else:
                arrays = GraphArrays(graph)
        network._graph_arrays = arrays
    return arrays


def invalidate_graph_arrays(graph) -> None:
    """Drop a graph's cached :class:`GraphArrays`, if any.

    networkx clears ``__networkx_cache__`` on its own mutators, but code
    that rewires a graph through out-of-band paths (or merely wants a
    belt-and-braces guarantee around a batch of mutations — the dynamic
    subsystem's event application does) can call this to make sure no
    stale CSR survives. A no-op for graphs without a cache dict.
    """
    cache = getattr(graph, "__networkx_cache__", None)
    if isinstance(cache, dict):
        cache.pop("repro_graph_arrays", None)


class DrawStreams:
    """Block-prefetched per-node uniform draws, bit-identical to scalar.

    ``Generator.random(k)`` consumes the underlying bit stream exactly like
    ``k`` successive ``Generator.random()`` calls, so prefetching a block
    per node and serving draws from it preserves each node's draw sequence
    while replacing the per-draw python call with one fancy-indexed numpy
    gather per round.

    Prefetching advances the real generators *ahead* of what the node has
    logically consumed, so :meth:`release` must run before any scalar code
    touches ``ctx.rng`` again: it rewinds each generator by the number of
    unconsumed prefetched draws (each float64 consumes exactly one PCG64
    step, so ``bit_generator.advance(-remaining)`` lands the stream where
    a purely scalar execution would have left it; bit generators without
    ``advance`` fall back to a state snapshot taken at refill time).
    """

    __slots__ = ("_rngs", "_buffer", "_cursor", "_block", "_snapshots",
                 "profiler")

    #: Past this many nodes the prefetch block shrinks: a (n, 32) float64
    #: buffer is 256MB at n=10^6, and wide blocks only amortize python
    #: refill overhead, which is already negligible per draw at that n.
    #: The block size never affects the draw values (prefetch + rewind is
    #: transparent), so this is purely a memory/speed knob.
    WIDE_BLOCK_MAX_NODES = 1 << 17

    def __init__(self, rngs: List[np.random.Generator],
                 block: Optional[int] = None):
        n = len(rngs)
        if block is None:
            block = 32 if n <= self.WIDE_BLOCK_MAX_NODES else 8
        self._rngs = rngs
        self._block = block
        n = len(rngs)
        self._buffer = np.zeros((n, block), dtype=np.float64)
        self._cursor = np.full(n, block, dtype=np.int64)
        self._snapshots: List[Optional[dict]] = [None] * n
        #: Optional :class:`repro.obs.Profiler`; refills then appear as
        #: ``rng_prefetch`` sections nested in the enclosing vector round.
        self.profiler = None

    def take(self, idx: np.ndarray) -> np.ndarray:
        """One uniform draw for each node rank in ``idx``, in given order."""
        cursor = self._cursor
        buffer = self._buffer
        exhausted = idx[cursor[idx] >= self._block]
        if exhausted.size:
            prof = self.profiler
            if prof is not None:
                prof.begin("rng_prefetch")
            rngs = self._rngs
            snapshots = self._snapshots
            for i in exhausted:
                rng = rngs[i]
                if not hasattr(rng.bit_generator, "advance"):
                    snapshots[i] = rng.bit_generator.state
                buffer[i] = rng.random(self._block)
            cursor[exhausted] = 0
            if prof is not None:
                prof.end()
        draws = buffer[idx, cursor[idx]]
        cursor[idx] += 1
        return draws

    def release(self) -> None:
        """Rewind every generator to its logically-consumed position."""
        block = self._block
        cursor = self._cursor
        rngs = self._rngs
        snapshots = self._snapshots
        for i in np.nonzero(cursor < block)[0]:
            rng = rngs[i]
            bit_generator = rng.bit_generator
            if snapshots[i] is None:
                bit_generator.advance(-(block - int(cursor[i])))
            else:
                bit_generator.state = snapshots[i]
                consumed = int(cursor[i])
                if consumed:
                    rng.random(consumed)
                snapshots[i] = None
        self._cursor[:] = block


class VectorRound:
    """Base class for one algorithm's vectorized whole-network round.

    Subclasses implement :meth:`load` (program instances -> arrays),
    :meth:`step_round` (one synchronous round over arrays, updating the
    network's message counters identically to the scalar delivery), and
    :meth:`flush_state` (arrays -> program instances, so scalar rounds can
    resume bit-identically).

    The base class owns the shared plumbing: lazily-accumulated energy
    charges (flushed to the :class:`EnergyLedger` in node order), halt
    propagation through the real :class:`Context` (so the engine's
    wake bookkeeping stays consistent), trace records, and engagement
    statistics.
    """

    def __init__(self, network):
        from .channels import LocalChannel  # local import: cycle

        self.network = network
        self.arrays = graph_arrays(network)
        #: LOCAL channels price payloads at 0 bits and skip bit accounting.
        #: The check sees through fault wrappers to the base medium.
        self.priced = not isinstance(network.channel.unwrapped(), LocalChannel)
        #: Channel-fault state (per-round keep masks over CSR edge slots),
        #: or None for a clean channel. Subclasses that consume the masks
        #: declare ``supports_edge_faults = True``; the engine refuses to
        #: engage a runner whose faults it would silently ignore.
        self.faults = network.channel.vector_faults(self.arrays)
        #: The network's schema-declared state columns (see
        #: ``repro.congest.state``), or None in the dict-backed layout.
        #: Column-aware kernels load/flush these with whole-array copies
        #: instead of per-node python loops.
        self.state_columns = network.state_columns
        self.loaded = False
        self._pending_energy = np.zeros(self.arrays.n, dtype=np.int64)
        self.draws = DrawStreams(
            [network.contexts[node].rng for node in self.arrays.nodes]
        )
        # Observation plumbing, resolved once (mirrors Network.__init__):
        # None when the network is unobserved, so every per-round check in
        # the dense loop is a single ``is not None``.
        self._instrument = network.instrument if network._observed else None
        self._profiler = network._profiler
        self.draws.profiler = network._profiler
        self._last_alive = 0
        #: Lazily-built (always_on, always_awake, halted) rank masks for
        #: the batched awake-set assembly; valid for one engagement only
        #: (scalar rounds in between may change any of the three), so
        #: :meth:`flush` drops them.
        self._sched_masks = None
        _VECTOR_STATS["networks"] += 1

    #: Whether :meth:`step_round` consults :meth:`fault_keep` masks.
    supports_edge_faults = False

    #: Whether :meth:`step_round` assembles its active set from the wake
    #: calendar (via :meth:`pop_scheduled_awake`) instead of assuming the
    #: pure always-on population.  Runners that leave this False are only
    #: engaged while the calendar is empty; schedule-aware runners also
    #: execute rounds with scheduled wakes (the engine still fast-forwards
    #: the idle gaps between them).
    supports_schedules = False

    # -- subclass API ---------------------------------------------------
    def load(self) -> None:
        raise NotImplementedError

    def step_round(self) -> None:
        raise NotImplementedError

    def flush_state(self) -> None:
        raise NotImplementedError

    # -- engine protocol ------------------------------------------------
    def step(self) -> None:
        """Advance the network exactly one synchronous round."""
        if not self.loaded:
            self.load()
            self.loaded = True
        network = self.network
        network.round_index += 1
        network.vector_rounds += 1
        _VECTOR_STATS["rounds"] += 1
        prof = self._profiler
        if prof is not None:
            prof.begin("vector_round")
        self.step_round()
        if prof is not None:
            prof.end()
        if self._instrument is not None:
            self._instrument.on_round(
                network, network.round_index, self._last_alive
            )

    def flush(self) -> None:
        """Write accumulated state back; safe to call when not loaded."""
        if not self.loaded:
            return
        pending = self._pending_energy
        charged = np.nonzero(pending)[0]
        if charged.size:
            # Group by amount: an engagement produces only a handful of
            # distinct awake totals, so a few charge_many passes beat one
            # charge call per node.
            ledger = self.network.ledger
            nodes = self.arrays.nodes
            amounts = pending[charged]
            for value in np.unique(amounts):
                ledger.charge_many(
                    (nodes[int(i)] for i in charged[amounts == value]),
                    int(value),
                )
            pending[:] = 0
        self.draws.release()
        self.flush_state()
        self._sched_masks = None
        self.loaded = False

    # -- shared helpers -------------------------------------------------
    def pop_scheduled_awake(self) -> np.ndarray:
        """This round's awake set as a rank mask, consuming the calendar.

        Matches the scalar :meth:`Network.step` assembly: the current
        round's calendar entry is popped, halted and always-awake nodes
        are filtered out of the scheduled portion, and the always-on set
        is unioned in.  The filters run as numpy gathers over three rank
        masks built once per engagement (halts during the engagement only
        arrive through :meth:`halt_ranks`, which updates the halted mask
        in place).  Unlike the scalar step, the popped nodes' inverse
        ``_node_schedules`` entries are left stale — harmless, because
        :meth:`Network._prune_schedule` treats rounds whose calendar entry
        is already gone as no-ops, and a scalar resume discards its own
        rounds as it executes them.
        """
        network = self.network
        arrays = self.arrays
        masks = self._sched_masks
        if masks is None:
            masks = self._sched_masks = self._build_sched_masks()
        always_on, always_awake, halted = masks
        awake = np.zeros(arrays.n, dtype=bool)
        scheduled = network._wake_calendar.pop(network.round_index, None)
        if scheduled:
            if arrays.identity_ranks:
                ranks = np.fromiter(
                    scheduled, dtype=np.int64, count=len(scheduled)
                )
            else:
                rank = arrays.rank
                ranks = np.fromiter(
                    (rank[node] for node in scheduled),
                    dtype=np.int64,
                    count=len(scheduled),
                )
            awake[ranks[~(halted[ranks] | always_awake[ranks])]] = True
        awake |= always_on
        awake &= ~halted
        return awake

    def _build_sched_masks(self):
        """Snapshot (always_on, always_awake, halted) as rank masks."""
        network = self.network
        arrays = self.arrays
        n = arrays.n
        always_on = self.rank_mask(network._always_on)
        always_awake = np.zeros(n, dtype=bool)
        halted = np.zeros(n, dtype=bool)
        contexts = network.contexts
        for i, node in enumerate(arrays.nodes):
            ctx = contexts[node]
            if ctx._always_awake:
                always_awake[i] = True
            if ctx._halted:
                halted[i] = True
        return always_on, always_awake, halted

    def rank_mask(self, members) -> np.ndarray:
        """Boolean rank mask of a node-label collection (vectorized for
        identity-labelled graphs — the only kind that gets big)."""
        arrays = self.arrays
        mask = np.zeros(arrays.n, dtype=bool)
        count = len(members)
        if count:
            if arrays.identity_ranks:
                mask[np.fromiter(members, dtype=np.int64, count=count)] = True
            else:
                rank = arrays.rank
                for node in members:
                    mask[rank[node]] = True
        return mask

    def fault_keep(self) -> Optional[np.ndarray]:
        """This round's per-slot delivery mask, or None when nothing drops."""
        faults = self.faults
        if faults is None:
            return None
        return faults.round_keep(self.network.round_index)

    def charge_awake(self, alive: np.ndarray) -> None:
        """Bill one awake round per live node (flushed to the ledger later;
        the ledger is only read after :meth:`flush`, so totals agree)."""
        self._pending_energy += alive
        if self._instrument is not None:
            # The awake count :meth:`step` reports; matches the scalar
            # engines' ``len(awake)`` because alive == awake in the dense
            # always-on regime.
            self._last_alive = int(np.count_nonzero(alive))

    def halt_ranks(self, ranks: np.ndarray) -> None:
        """Halt nodes through the network's bulk-halt pass (event-sparse:
        each node halts at most once per run, so the loop is O(n) overall;
        the effect per node is exactly ``Context.halt``)."""
        nodes = self.arrays.nodes
        self.network._halt_many(nodes[int(i)] for i in ranks)
        masks = self._sched_masks
        if masks is not None:
            masks[2][ranks] = True

    def output_of(self, rank: int) -> Dict:
        return self.network.contexts[self.arrays.nodes[int(rank)]].output

    def record_trace(self, alive: np.ndarray, sent: int, delivered: int,
                     dropped: int) -> None:
        trace = self.network.trace
        if trace is not None:
            nodes = self.arrays.nodes
            awake = {nodes[i] for i in np.nonzero(alive)[0]}
            trace.record(
                self.network.round_index, awake, sent, delivered, dropped
            )

    def count_broadcasts(self, senders: np.ndarray, alive: np.ndarray,
                         bits_per_copy: Optional[np.ndarray],
                         alive_neighbors: Optional[np.ndarray] = None,
                         keep: Optional[np.ndarray] = None,
                         sender_counts: Optional[np.ndarray] = None) -> None:
        """Account a whole-neighborhood broadcast wave on the network.

        ``senders``/``alive`` are boolean rank masks; every sender ships one
        copy per *graph* neighbor, delivered iff the receiver is alive this
        round (always-on semantics: awake == alive, and no one halts before
        the delivery phase).  ``bits_per_copy`` is the per-sender payload
        price (None on unpriced channels); matches the batched CONGEST
        channel's accounting bit for bit.  ``alive_neighbors`` lets callers
        that already computed this round's live-neighbor counts skip the
        second CSR pass.  ``keep`` is this round's channel-fault slot mask:
        copies whose slot is masked out were sent (and priced) but never
        received, so they move from the delivered to the dropped counter.
        ``sender_counts`` is the receiver-side reduction
        ``neighbor_count(senders)`` — kernels that already computed it for
        their own "heard anything?" test can pass it in and the delivered
        total falls out of the undirected-edge symmetry
        ``sum_{s in senders} |N(s) ∩ alive| = sum_{v in alive} |N(v) ∩
        senders|`` with no CSR pass at all.
        """
        network = self.network
        arrays = self.arrays
        sender_idx = np.nonzero(senders & (arrays.degrees > 0))[0]
        if not sender_idx.size:
            self.record_trace(alive, 0, 0, 0)
            return
        sent = int(arrays.degrees[sender_idx].sum())
        if keep is not None:
            delivered = int(
                arrays.delivery_counts(senders, alive, keep)[sender_idx].sum()
            )
        elif sender_counts is not None:
            delivered = int(sender_counts[alive].sum())
        else:
            if alive_neighbors is None:
                alive_neighbors = arrays.neighbor_count(alive)
            delivered = int(alive_neighbors[sender_idx].sum())
        dropped = sent - delivered
        bits = None
        if self.priced and bits_per_copy is not None:
            bits = bits_per_copy[sender_idx]
            peak = int(bits.max())
            budget = network.bit_budget
            if peak > budget:
                # Raise *before* touching any counter, like the scalar
                # engines (which reject the payload at send time, before
                # the delivery phase counts anything).
                from .errors import MessageTooLargeError

                offender = int(sender_idx[bits > budget][0])
                node = arrays.nodes[offender]
                neighbor = arrays.nodes[
                    int(arrays.indices[arrays.indptr[offender]])
                ]
                raise MessageTooLargeError(node, neighbor, peak, budget)
        network.messages_sent += sent
        network.messages_delivered += delivered
        network.messages_dropped += dropped
        if bits is not None:
            network.total_message_bits += int(
                (bits * arrays.degrees[sender_idx]).sum()
            )
            peak = int(bits.max())
            if peak > network.max_message_bits:
                network.max_message_bits = peak
        self.record_trace(alive, sent, delivered, dropped)


def int_bit_length(values: np.ndarray) -> np.ndarray:
    """Vectorized ``int.bit_length`` for non-negative int64 values.

    ``frexp`` exponents equal the bit length exactly for every value
    representable in float64 without rounding (all degrees are far below
    2**53); 0 maps to 0, as ``(0).bit_length()`` does.
    """
    return np.frexp(values.astype(np.float64))[1].astype(np.int64)
