"""The synchronous CONGEST-with-sleeping engine.

One :class:`Network` simulates one execution of a distributed algorithm on a
fixed undirected graph. The engine owns the global round counter and the
:class:`~repro.congest.metrics.EnergyLedger`; node programs interact with the
world only through their :class:`~repro.congest.program.Context`.

Round structure (matching Section 1.1 of the paper):

1. every node awake this round runs ``on_round`` and queues messages;
2. messages are delivered *within the round*; messages to sleeping nodes are
   dropped (a sleeping node "does not send or receive any messages");
3. every awake node runs ``on_receive`` with what reached it.

Each awake round charges exactly one unit of energy per awake node.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx
import numpy as np

from .errors import SchedulingError, SimulationLimitError
from .message import Message, default_bit_budget, payload_bits
from .metrics import EnergyLedger, RunMetrics
from .program import Context, NodeProgram


class Network:
    """Simulate node programs on an undirected graph.

    Parameters
    ----------
    graph:
        The communication topology. Node labels must be hashable; they are
        used directly as identifiers (MIS algorithms assume unique IDs).
    programs:
        Mapping from node to its :class:`NodeProgram` instance.
    seed:
        Master seed; per-node generators are spawned deterministically, so a
        fixed seed reproduces the run bit-for-bit.
    bit_budget:
        CONGEST message budget ``B`` in bits; defaults to ``Θ(log n)``.
    ledger:
        Optional shared :class:`EnergyLedger` so that several phases can
        accumulate into one energy account.
    """

    def __init__(
        self,
        graph: nx.Graph,
        programs: Dict[int, NodeProgram],
        *,
        seed: int = 0,
        bit_budget: Optional[int] = None,
        ledger: Optional[EnergyLedger] = None,
        size_bound: Optional[int] = None,
        trace: bool = False,
    ):
        if graph.number_of_nodes() == 0:
            raise ValueError("cannot simulate an empty graph")
        missing = [v for v in graph.nodes if v not in programs]
        if missing:
            raise ValueError(f"no program for nodes {missing[:5]}...")

        self.graph = graph
        self.n = size_bound if size_bound is not None else graph.number_of_nodes()
        self.bit_budget = (
            bit_budget if bit_budget is not None else default_bit_budget(self.n)
        )
        self.programs = programs
        self.ledger = ledger if ledger is not None else EnergyLedger(graph.nodes)
        self.round_index = -1

        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.total_message_bits = 0
        self.max_message_bits = 0

        seed_seq = np.random.SeedSequence(seed)
        children = seed_seq.spawn(graph.number_of_nodes())
        self.contexts: Dict[int, Context] = {}
        for child, node in zip(children, sorted(graph.nodes)):
            rng = np.random.default_rng(child)
            neighbors = tuple(sorted(graph.neighbors(node)))
            self.contexts[node] = Context(self, node, neighbors, self.n, rng)

        # Wake bookkeeping: nodes in always-awake mode run every round;
        # scheduled nodes run only at rounds present in ``_wake_calendar``.
        # ``_always_on`` mirrors the contexts' mode flags so each round costs
        # O(#awake) rather than O(n).
        self._wake_calendar: Dict[int, Set[int]] = {}
        self._always_on: Set[int] = set(self.contexts)
        self._started = False
        if trace:
            from .trace import NetworkTrace

            self.trace: Optional["NetworkTrace"] = NetworkTrace()
        else:
            self.trace = None

    # ------------------------------------------------------------------
    # Scheduling plumbing (called from Context)
    # ------------------------------------------------------------------
    def _schedule_wake(self, node: int, wake_round: int) -> None:
        self._wake_calendar.setdefault(wake_round, set()).add(node)

    def _set_always_awake(self, node: int, always: bool) -> None:
        if always:
            self._always_on.add(node)
        else:
            self._always_on.discard(node)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Run every ``on_start`` callback (free local precomputation)."""
        if self._started:
            raise RuntimeError("network already started")
        self._started = True
        for node in sorted(self.graph.nodes):
            self.programs[node].on_start(self.contexts[node])
            if self.contexts[node]._outbox:
                raise SchedulingError(
                    f"node {node} tried to send during on_start"
                )

    def _awake_nodes(self) -> Set[int]:
        awake = set(self._always_on)
        scheduled = self._wake_calendar.pop(self.round_index, None)
        if scheduled:
            for node in scheduled:
                ctx = self.contexts[node]
                if not ctx._halted and not ctx._always_awake:
                    awake.add(node)
        return awake

    def step(self) -> Set[int]:
        """Run one synchronous round; return the set of awake nodes."""
        if not self._started:
            self.start()
        self.round_index += 1
        awake = self._awake_nodes()
        if not awake:
            if self.trace is not None:
                self.trace.record(self.round_index, awake, 0, 0, 0)
            return awake
        sent_before = self.messages_sent
        delivered_before = self.messages_delivered
        dropped_before = self.messages_dropped

        ordered = sorted(awake)
        for node in ordered:
            self.ledger.charge(node)

        # Phase 1: computation + sending.
        for node in ordered:
            ctx = self.contexts[node]
            self.programs[node].on_round(ctx)

        # Phase 2: delivery (drop messages to sleeping nodes).
        inboxes: Dict[int, List[Message]] = {node: [] for node in ordered}
        for node in ordered:
            ctx = self.contexts[node]
            for receiver, payload in ctx._drain_outbox():
                self.messages_sent += 1
                bits = payload_bits(payload)
                self.total_message_bits += bits
                self.max_message_bits = max(self.max_message_bits, bits)
                if receiver in awake and not self.contexts[receiver]._halted:
                    inboxes[receiver].append(Message(node, payload))
                    self.messages_delivered += 1
                else:
                    self.messages_dropped += 1

        # Phase 3: receiving.
        for node in ordered:
            ctx = self.contexts[node]
            if not ctx._halted:
                self.programs[node].on_receive(ctx, inboxes[node])
        if self.trace is not None:
            self.trace.record(
                self.round_index,
                awake,
                self.messages_sent - sent_before,
                self.messages_delivered - delivered_before,
                self.messages_dropped - dropped_before,
            )
        return awake

    def has_pending_work(self) -> bool:
        """True if some node may still wake up in a future round."""
        if self._always_on:
            return True
        for wake_round, nodes in self._wake_calendar.items():
            if wake_round > self.round_index and any(
                not self.contexts[v]._halted and not self.contexts[v]._always_awake
                for v in nodes
            ):
                return True
        return False

    def run(self, max_rounds: int = 1_000_000) -> RunMetrics:
        """Run until no node will ever wake again (or ``max_rounds``)."""
        if not self._started:
            self.start()
        while self.has_pending_work():
            if self.round_index + 1 >= max_rounds:
                raise SimulationLimitError(
                    f"simulation exceeded {max_rounds} rounds"
                )
            self.step()
        return self.metrics()

    def run_rounds(self, rounds: int) -> RunMetrics:
        """Run exactly ``rounds`` rounds (idle rounds still advance time)."""
        if not self._started:
            self.start()
        for _ in range(rounds):
            self.step()
        return self.metrics()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def metrics(self) -> RunMetrics:
        return RunMetrics.from_ledger(
            rounds=self.round_index + 1,
            ledger=self.ledger,
            messages_sent=self.messages_sent,
            messages_delivered=self.messages_delivered,
            messages_dropped=self.messages_dropped,
            total_message_bits=self.total_message_bits,
            max_message_bits=self.max_message_bits,
        )

    def outputs(self, key: str, default=None) -> Dict[int, object]:
        """Collect one output field across all nodes."""
        return {
            node: ctx.output.get(key, default)
            for node, ctx in self.contexts.items()
        }


def run_uniform_program(
    graph: nx.Graph,
    program_factory,
    *,
    seed: int = 0,
    max_rounds: int = 1_000_000,
    bit_budget: Optional[int] = None,
    ledger: Optional[EnergyLedger] = None,
    size_bound: Optional[int] = None,
) -> Tuple[Network, RunMetrics]:
    """Convenience: run one program class on every node of ``graph``."""
    programs = {node: program_factory() for node in graph.nodes}
    network = Network(
        graph,
        programs,
        seed=seed,
        bit_budget=bit_budget,
        ledger=ledger,
        size_bound=size_bound,
    )
    metrics = network.run(max_rounds=max_rounds)
    return network, metrics
