"""The synchronous CONGEST-with-sleeping engine.

One :class:`Network` simulates one execution of a distributed algorithm on a
fixed undirected graph. The engine owns the global round counter and the
:class:`~repro.congest.metrics.EnergyLedger`; node programs interact with the
world only through their :class:`~repro.congest.program.Context`.

Round structure (matching Section 1.1 of the paper):

1. every node awake this round runs ``on_round`` and queues messages;
2. messages are delivered *within the round* by the network's pluggable
   :class:`~repro.congest.channels.Channel` (CONGEST point-to-point by
   default; LOCAL and radio-broadcast models are available); messages to
   sleeping nodes are dropped (a sleeping node "does not send or receive
   any messages");
3. every awake node runs ``on_receive`` with what reached it.

Each awake round charges exactly one unit of energy per awake node;
channels may bill extra (e.g. radio collisions).

Performance model
-----------------

The engine's whole reason to exist is simulating algorithms whose nodes
sleep almost always, so the hot path is built around *awake events*, not
rounds:

* pending wake rounds live in a min-heap (``_wake_heap``), so finding the
  next event and :meth:`Network.has_pending_work` are O(1) amortized;
* when no node is in always-awake mode, :meth:`Network.run` fast-forwards
  ``round_index`` straight to the next scheduled wake — idle rounds still
  count for time complexity and appear in the trace (as compact idle
  spans), but a batch of them costs O(1);
* :meth:`Network.step` avoids per-round re-sorting of the awake set, builds
  inboxes lazily, and skips all trace bookkeeping when tracing is off;
* dense always-on stretches of programs that declare the vectorized-round
  capability (``NodeProgram.vector_round``) execute whole-network numpy
  rounds (see ``repro.congest.vectorized``) instead of per-node python.

``Network.run(legacy=True)`` (or the :func:`legacy_engine` switch) restores
the naive one-``step``-per-round loop; :func:`engine_mode` selects between
``auto``/``fast``/``legacy``/``vectorized`` globally. All paths are
bit-identical in outputs, metrics, and ledger state (see
``tests/test_engine_equivalence.py``).
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx
import numpy as np

from ..obs.instrument import NULL_INSTRUMENT, resolve_instrument
from .channels import ChannelSpec, CongestChannel, LocalChannel, make_channel
from .errors import SchedulingError, SimulationLimitError, VectorizationError
from .message import default_bit_budget
from .metrics import EnergyLedger, RunMetrics
from .program import NO_BROADCAST, Context, NodeProgram
from .state import allocate_columns, bind_state, get_column_state
from .vectorized import GraphArrays

#: Engine paths selectable per run or globally (see :func:`engine_mode`):
#:
#: * ``"auto"`` (default) — the vectorized dense-round path when the
#:   program declares the capability (and the channel supports it, and the
#:   graph is big enough to amortize numpy overhead), else the cached fast
#:   loop with idle fast-forward;
#: * ``"fast"`` — the cached round loop, never vectorized;
#: * ``"legacy"`` — the naive one-``step``-per-round seed loop;
#: * ``"vectorized"`` — like auto, but *raises*
#:   :class:`~repro.congest.errors.VectorizationError` instead of silently
#:   falling back when the vectorized path cannot engage at all.
ENGINE_MODES = ("auto", "fast", "legacy", "vectorized")

# Module-level switch so whole algorithm drivers (which call ``network.run()``
# internally) can be forced onto one engine path for equivalence testing
# without threading a flag through every call site.
_ENGINE_MODE = "auto"

#: Below this node count the auto mode skips vectorization: per-round numpy
#: dispatch overhead beats python loops only once arrays have some width.
#: Forced ``"vectorized"`` mode ignores the floor.
VECTOR_AUTO_MIN_NODES = 64


def _check_engine_mode(mode: str) -> str:
    if mode not in ENGINE_MODES:
        raise ValueError(
            f"unknown engine mode {mode!r}; have {list(ENGINE_MODES)}"
        )
    return mode


def set_engine_mode(mode: str) -> None:
    """Globally select the engine path used when ``run()`` gets no flags."""
    global _ENGINE_MODE
    _ENGINE_MODE = _check_engine_mode(mode)


def get_engine_mode() -> str:
    return _ENGINE_MODE


@contextmanager
def engine_mode(mode: str):
    """Context manager: run every ``Network.run`` inside on one engine path."""
    global _ENGINE_MODE
    previous = _ENGINE_MODE
    _ENGINE_MODE = _check_engine_mode(mode)
    try:
        yield
    finally:
        _ENGINE_MODE = previous


# What set_legacy_mode(False) should restore: the mode that was active
# before the boolean toggle forced "legacy" (the toggle predates the 4-way
# engine modes and must not stomp an enclosing "fast"/"vectorized" scope).
_PRE_LEGACY_MODE = "auto"


def set_legacy_mode(enabled: bool) -> None:
    """Globally force (or stop forcing) the naive per-round run loop."""
    global _PRE_LEGACY_MODE
    if enabled:
        if _ENGINE_MODE != "legacy":
            _PRE_LEGACY_MODE = _ENGINE_MODE
        set_engine_mode("legacy")
    elif _ENGINE_MODE == "legacy":
        set_engine_mode(_PRE_LEGACY_MODE)


@contextmanager
def legacy_engine():
    """Context manager: run every ``Network.run`` inside with ``legacy=True``."""
    with engine_mode("legacy"):
        yield


# Ambient node-fault plans, mirroring ``channel_scope``: multi-phase
# algorithm drivers build several sequential Networks internally, and a
# fault timeline must reach all of them without threading a parameter
# through every constructor call.  The plan object is duck-typed (anything
# with ``empty`` and ``bind(network)``) so the engine does not import
# ``repro.faults``, which builds on top of this module.
_FAULT_SCOPE_STACK: List = []


@contextmanager
def fault_scope(plan):
    """Make ``plan`` the default ``faults=`` for Networks built inside."""
    _FAULT_SCOPE_STACK.append(plan)
    try:
        yield plan
    finally:
        _FAULT_SCOPE_STACK.pop()


def scoped_fault_plan():
    """The innermost active :func:`fault_scope` plan, or ``None``."""
    return _FAULT_SCOPE_STACK[-1] if _FAULT_SCOPE_STACK else None


class Network:
    """Simulate node programs on an undirected graph.

    Parameters
    ----------
    graph:
        The communication topology: a ``networkx.Graph``, or a
        :class:`~repro.congest.vectorized.GraphArrays` CSR adjacency (the
        array-native path — generators produce one via ``as_arrays=True``
        without ever materializing per-node adjacency dicts). Node labels
        must be hashable; they are used directly as identifiers (MIS
        algorithms assume unique IDs).
    programs:
        Mapping from node to its :class:`NodeProgram` instance.
    seed:
        Master seed; per-node generators are spawned deterministically, so a
        fixed seed reproduces the run bit-for-bit.
    bit_budget:
        CONGEST message budget ``B`` in bits; defaults to ``Θ(log n)``.
    ledger:
        Optional shared :class:`EnergyLedger` so that several phases can
        accumulate into one energy account.
    channel:
        Delivery model: a name from :data:`repro.congest.channels.CHANNELS`
        (``"congest"``, ``"local"``, ``"broadcast"``, ...), a
        :class:`~repro.congest.channels.Channel` instance, or a factory.
        Defaults to the innermost :func:`~repro.congest.channels
        .channel_scope`, falling back to batched CONGEST.
    instrument:
        Observer for run/round/phase events (see :mod:`repro.obs`).
        Defaults to the innermost :func:`~repro.obs.instrument_scope`,
        falling back to the shared null instrument. Whether the network is
        observed is decided once here, so the disabled path costs the hot
        loop only a couple of ``is not None`` checks per round.
    faults:
        Optional node-fault timeline (a :class:`repro.faults.FaultPlan`)
        injected through the step loop: crashes halt their node at the
        scheduled round, stragglers are forced asleep for their duration.
        Defaults to the innermost :func:`fault_scope` plan. An empty plan
        costs the step loop nothing (no injector is installed at all).
    """

    def __init__(
        self,
        graph: nx.Graph,
        programs: Dict[int, NodeProgram],
        *,
        seed: int = 0,
        bit_budget: Optional[int] = None,
        ledger: Optional[EnergyLedger] = None,
        size_bound: Optional[int] = None,
        trace: bool = False,
        channel: ChannelSpec = None,
        instrument=None,
        faults=None,
        column_state: Optional[bool] = None,
    ):
        if graph.number_of_nodes() == 0:
            raise ValueError("cannot simulate an empty graph")
        missing = [v for v in graph.nodes if v not in programs]
        if missing:
            raise ValueError(f"no program for nodes {missing[:5]}...")

        self.graph = graph
        #: Node labels in ascending order — the canonical rank order shared
        #: by RNG spawning, state-column rows, and the CSR adjacency.
        self._node_order = (
            list(graph.nodes)
            if isinstance(graph, GraphArrays)
            else sorted(graph.nodes)
        )
        self.n = size_bound if size_bound is not None else graph.number_of_nodes()
        self.bit_budget = (
            bit_budget if bit_budget is not None else default_bit_budget(self.n)
        )
        self.programs = programs
        self.ledger = ledger if ledger is not None else EnergyLedger(graph.nodes)
        self.round_index = -1

        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.total_message_bits = 0
        self.max_message_bits = 0
        self.collisions = 0

        seed_seq = np.random.SeedSequence(seed)
        children = seed_seq.spawn(graph.number_of_nodes())
        self.contexts: Dict[int, Context] = {}
        for child, node in zip(children, self._node_order):
            rng = np.random.default_rng(child)
            self.contexts[node] = Context(self, node, self.n, rng)

        #: Flat per-field state columns when the programs declare a schema
        #: (see :mod:`repro.congest.state`), else None (dict-backed state).
        self.state_columns = None
        self._column_state = (
            get_column_state() if column_state is None else bool(column_state)
        )
        if self._column_state:
            self._allocate_state_columns()

        # Wake bookkeeping: nodes in always-awake mode run every round;
        # scheduled nodes run only at rounds present in ``_wake_calendar``.
        # ``_wake_heap`` holds every round that has (or once had) a calendar
        # entry, so the next wake event is a heap peek; ``_node_schedules``
        # inverts the calendar so a halting node can prune its dead entries.
        self._wake_calendar: Dict[int, Set[int]] = {}
        self._wake_heap: List[int] = []
        self._node_schedules: Dict[int, Set[int]] = {}
        self._always_on: Set[int] = set(self.contexts)
        # (sorted list, snapshot set) of the always-on nodes, rebuilt only
        # when membership changes; mid-round changes leave the round's local
        # references pointing at the old snapshot, which is exactly the
        # round-start semantics the naive loop had.
        self._always_view: Optional[Tuple[List[int], Set[int]]] = None
        self._started = False
        self.channel = make_channel(channel)
        self.channel.bind(self)
        if faults is None:
            faults = scoped_fault_plan()
        self._fault_injector = faults.bind(self) if faults is not None else None
        self.instrument = resolve_instrument(instrument)
        self._observed = self.instrument is not NULL_INSTRUMENT
        self._profiler = self.instrument.profiler if self._observed else None
        #: Rounds executed by the vectorized dense-round path (see
        #: ``repro.congest.vectorized``); 0 when it never engaged.
        self.vector_rounds = 0
        self._vector_runner_cache: Optional[Tuple] = None
        if trace:
            from .trace import NetworkTrace

            self.trace: Optional["NetworkTrace"] = NetworkTrace()
        else:
            self.trace = None

    # ------------------------------------------------------------------
    # State columns and adjacency views
    # ------------------------------------------------------------------
    def _allocate_state_columns(self) -> None:
        """Allocate + bind schema-declared state columns, when possible.

        Column state engages only for a homogeneous program population
        with a non-empty schema whose string widths agree across nodes;
        anything else silently keeps the dict-backed layout (both layouts
        are bit-identical, so this is a representation choice, not a
        semantic one).
        """
        programs = self.programs
        template = next(iter(programs.values()))
        cls = type(template)
        schema = cls.state_schema()
        if not schema:
            return
        if any(type(p) is not cls for p in programs.values()):
            return
        for field in schema:
            if isinstance(field.width, str):
                width = getattr(template, field.width)
                if any(
                    getattr(p, field.width) != width
                    for p in programs.values()
                ):
                    return
        columns = allocate_columns(schema, template, len(self._node_order))
        for rank, node in enumerate(self._node_order):
            bind_state(programs[node], columns, rank)
        self.state_columns = columns

    def _neighbors_of(self, node) -> Tuple[int, ...]:
        """Ascending neighbor tuple of one node (Context's lazy backing)."""
        graph = self.graph
        if isinstance(graph, GraphArrays):
            rank = node if graph.identity_ranks else graph.rank[node]
            return tuple(
                graph.indices[
                    graph.indptr[rank]:graph.indptr[rank + 1]
                ].tolist()
            )
        return tuple(sorted(graph.neighbors(node)))

    def _degree_of(self, node) -> int:
        graph = self.graph
        if isinstance(graph, GraphArrays):
            rank = node if graph.identity_ranks else graph.rank[node]
            return int(graph.degrees[rank])
        return graph.degree(node)

    # ------------------------------------------------------------------
    # Scheduling plumbing (called from Context)
    # ------------------------------------------------------------------
    def _schedule_wake(self, node: int, wake_round: int) -> None:
        entry = self._wake_calendar.get(wake_round)
        if entry is None:
            self._wake_calendar[wake_round] = {node}
            heapq.heappush(self._wake_heap, wake_round)
        else:
            entry.add(node)
        self._node_schedules.setdefault(node, set()).add(wake_round)

    def _set_always_awake(self, node: int, always: bool) -> None:
        if always:
            if node not in self._always_on:
                self._always_on.add(node)
                self._always_view = None
        elif node in self._always_on:
            self._always_on.discard(node)
            self._always_view = None

    def _prune_schedule(self, node: int) -> None:
        """Drop a halted node's future calendar entries.

        Without this, dead entries would keep the heap (and the old linear
        scan) reporting pending work for nodes that can never wake again.
        Emptied calendar entries are deleted here; their heap rounds go
        stale and are skipped lazily by :meth:`_next_wake_round`.
        """
        rounds = self._node_schedules.pop(node, None)
        if not rounds:
            return
        calendar = self._wake_calendar
        for wake_round in rounds:
            entry = calendar.get(wake_round)
            if entry is not None:
                entry.discard(node)
                if not entry:
                    del calendar[wake_round]

    def _halt_many(self, halting) -> None:
        """Halt every node in ``halting`` — exactly ``Context.halt`` per
        node, with the per-node method dispatch and schedule prune inlined
        into one pass (the vectorized engine's bulk-halt path; a dense
        JOIN round can retire thousands of nodes at once).
        """
        contexts = self.contexts
        always_on = self._always_on
        schedules = self._node_schedules
        calendar = self._wake_calendar
        for node in halting:
            contexts[node]._halted = True
            if node in always_on:
                always_on.discard(node)
                self._always_view = None
            rounds = schedules.pop(node, None)
            if rounds:
                for wake_round in rounds:
                    entry = calendar.get(wake_round)
                    if entry is not None:
                        entry.discard(node)
                        if not entry:
                            del calendar[wake_round]

    def _always_on_view(self) -> Tuple[List[int], Set[int]]:
        view = self._always_view
        if view is None:
            ordered = sorted(self._always_on)
            view = (ordered, set(ordered))
            self._always_view = view
        return view

    def _next_wake_round(self) -> Optional[int]:
        """Earliest future round with a live calendar entry (heap peek)."""
        heap = self._wake_heap
        calendar = self._wake_calendar
        current = self.round_index
        while heap:
            wake_round = heap[0]
            if wake_round > current and wake_round in calendar:
                return wake_round
            heapq.heappop(heap)
        return None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Run every ``on_start`` callback (free local precomputation)."""
        if self._started:
            raise RuntimeError("network already started")
        self._started = True
        if self._observed:
            self.instrument.on_run_start(self)
        for node in self._node_order:
            self.programs[node].on_start(self.contexts[node])
            ctx = self.contexts[node]
            if ctx._outbox or ctx._bcast is not NO_BROADCAST:
                raise SchedulingError(
                    f"node {node} tried to send during on_start"
                )

    def step(self) -> Set[int]:
        """Run one synchronous round; return the set of awake nodes."""
        if not self._started:
            self.start()
        self.round_index += 1

        # Node faults strike at the top of the round: a crash halts its
        # node before the awake set is assembled, a straggler is filtered
        # out of it below.
        injector = self._fault_injector
        if injector is not None:
            injector.begin_round(self, self.round_index)

        # Assemble the awake set; reuse the cached sorted view when no
        # scheduled node wakes this round (the common case for always-on
        # algorithms like Luby).
        scheduled = self._wake_calendar.pop(self.round_index, None)
        if scheduled:
            awake = set(self._always_on)
            for node in scheduled:
                node_rounds = self._node_schedules.get(node)
                if node_rounds is not None:
                    node_rounds.discard(self.round_index)
                ctx = self.contexts[node]
                if not ctx._halted and not ctx._always_awake:
                    awake.add(node)
            ordered = sorted(awake)
        else:
            ordered, awake = self._always_on_view()
        if injector is not None:
            # Never mutates the cached always-on view: stalled nodes are
            # dropped from fresh copies of (ordered, awake).
            ordered, awake = injector.filter_awake(
                self, self.round_index, ordered, awake
            )

        trace = self.trace
        if not awake:
            if trace is not None:
                trace.record(self.round_index, awake, 0, 0, 0)
            return awake
        if trace is not None:
            sent_before = self.messages_sent
            delivered_before = self.messages_delivered
            dropped_before = self.messages_dropped

        prof = self._profiler
        if prof is not None:
            prof.begin("round")
            prof.begin("compute")

        self.ledger.charge_many(ordered)

        # Phase 1: computation + sending.
        contexts = self.contexts
        programs = self.programs
        for node in ordered:
            programs[node].on_round(contexts[node])

        # Phase 2: delivery is the channel's business (drop messages to
        # sleeping nodes, price bits, detect radio collisions, ...). Only
        # actual receivers get an inbox entry.
        channel = self.channel
        if prof is not None:
            prof.end()
            prof.begin("deliver")
        inboxes = channel.deliver(ordered, awake)

        # Phase 3: receiving.
        if prof is not None:
            prof.end()
            prof.begin("receive")
        for node in ordered:
            ctx = contexts[node]
            if not ctx._halted:
                inbox = inboxes.get(node)
                programs[node].on_receive(
                    ctx, inbox if inbox is not None else []
                )
        channel.finish_round()
        if prof is not None:
            prof.end()
            prof.end()
        if trace is not None:
            trace.record(
                self.round_index,
                awake,
                self.messages_sent - sent_before,
                self.messages_delivered - delivered_before,
                self.messages_dropped - dropped_before,
            )
        if self._observed:
            self.instrument.on_round(self, self.round_index, len(ordered))
        return awake

    def _skip_idle_to(self, target_round: int) -> None:
        """Fast-forward over rounds in which no node is awake.

        The skipped rounds still advance simulated time (they are part of
        the time complexity) and still appear in the trace, but as one
        compact idle span instead of per-round records.
        """
        if target_round <= self.round_index:
            return
        prof = self._profiler
        if prof is not None:
            prof.begin("idle_ff")
        if self.trace is not None:
            self.trace.record_idle(self.round_index + 1, target_round)
        self.round_index = target_round
        if prof is not None:
            prof.end()

    def has_pending_work(self) -> bool:
        """True if some node may still wake up in a future round."""
        if self._always_on:
            return True
        return self._next_wake_round() is not None

    # ------------------------------------------------------------------
    # Vectorized dense-round path
    # ------------------------------------------------------------------
    def _vector_runner(self, *, force: bool = False):
        """The network's vectorized round runner, or None if ineligible.

        Eligibility, checked once per network: every node runs the *same*
        program class, that class declares the capability (overrides
        ``NodeProgram.vector_round`` with a factory), and the channel is a
        plain point-to-point model (CONGEST or LOCAL — radio delivery is
        vectorized inside :class:`BroadcastChannel` instead).  In auto mode
        small graphs additionally fall back to the cached loop
        (:data:`VECTOR_AUTO_MIN_NODES`); ``force`` bypasses that floor.
        """
        if not force and self.graph.number_of_nodes() < VECTOR_AUTO_MIN_NODES:
            # Below the auto floor the runner would never be used; skip
            # even building it (the CSR + draw buffers are the overhead
            # the floor exists to avoid).
            return None
        cache = self._vector_runner_cache
        if cache is None:
            runner = None
            reason = "no program declares the vectorized-round capability"
            programs = self.programs
            first = next(iter(programs.values()))
            cls = type(first)
            factory = getattr(cls, "vector_round", None)
            if callable(factory):
                base = self.channel.unwrapped()
                if type(base) not in (CongestChannel, LocalChannel):
                    reason = (
                        f"channel {self.channel.name!r} has no vectorized "
                        f"point-to-point delivery"
                    )
                elif self._fault_injector is not None:
                    reason = (
                        "node-fault injection (crash/straggler plans) "
                        "requires the scalar step loop"
                    )
                elif any(type(p) is not cls for p in programs.values()):
                    reason = "nodes run heterogeneous program classes"
                else:
                    # A factory may decline (return None) after inspecting
                    # the actual instances, e.g. heterogeneous schedule
                    # parameters that one flat column cannot represent.
                    runner = factory(self)
                    reason = (
                        ""
                        if runner is not None
                        else f"{cls.__name__}.vector_round declined this "
                             f"network (heterogeneous program parameters)"
                    )
                    if (
                        runner is not None
                        and getattr(runner, "faults", None) is not None
                        and not getattr(runner, "supports_edge_faults", False)
                    ):
                        runner = None
                        reason = (
                            f"{cls.__name__}'s vectorized round does not "
                            f"support channel fault masks"
                        )
            cache = (runner, reason)
            self._vector_runner_cache = cache
        runner, reason = cache
        if runner is None and force:
            raise VectorizationError(
                f"vectorized engine requested but unavailable: {reason}"
            )
        return runner

    def _resolve_engine(
        self, legacy: Optional[bool], engine: Optional[str]
    ) -> str:
        if engine is not None:
            return _check_engine_mode(engine)
        if legacy is not None:
            return "legacy" if legacy else "fast"
        return _ENGINE_MODE

    def _try_vector_step(self, runner) -> bool:
        """Take one vectorized round if the current regime allows it.

        Plain runners model a pure always-on population: any scheduled
        wake anywhere in the future falls back to scalar steps until the
        calendar drains.  Schedule-aware runners
        (``VectorRound.supports_schedules``) additionally execute rounds
        whose active set comes from the wake calendar — the gate only
        requires that *this* round has someone awake (an always-on node,
        or a live calendar entry at ``round_index + 1``); the idle gaps
        between scheduled wakes are fast-forwarded by the callers, which
        retry the vector step after the skip.  Shared by :meth:`run` and
        :meth:`run_rounds` so the engagement gate cannot diverge between
        the two loops; flushing back to scalar state is the callers'
        business (:meth:`_flush_runner`, immediately before a scalar
        ``step``), so a schedule-aware runner is not thrashed through
        load/flush cycles at every wake gap.
        """
        if runner is None:
            return False
        if self._always_on and not self._wake_calendar:
            runner.step()
            return True
        if runner.supports_schedules and self._wake_calendar and (
            self._always_on or (self.round_index + 1) in self._wake_calendar
        ):
            runner.step()
            return True
        return False

    @staticmethod
    def _flush_runner(runner) -> None:
        """Flush a loaded vector runner back to program instances.

        Must run immediately before any scalar :meth:`step` while a
        runner may hold live state — the scalar loop reads program
        attributes and per-node RNG streams, both of which the runner
        owns while loaded.
        """
        if runner is not None and runner.loaded:
            runner.flush()

    def run(
        self,
        max_rounds: int = 1_000_000,
        *,
        legacy: Optional[bool] = None,
        engine: Optional[str] = None,
    ) -> RunMetrics:
        """Run until no node will ever wake again (or ``max_rounds``).

        Three engine paths, all bit-identical in outputs, metrics, and
        ledger state (``tests/test_engine_equivalence.py``):

        * the default fast path jumps over idle stretches (rounds where no
          node is awake) in O(1) per stretch and runs a cached round loop;
        * ``legacy=True`` (or the module-level :func:`legacy_engine`
          switch) steps every round the naive way;
        * dense always-on stretches of capability-declaring programs run
          through the vectorized round path (``engine="vectorized"`` to
          require it, ``engine="fast"`` to forbid it; default ``"auto"``).
        """
        if not self._started:
            self.start()
        mode = self._resolve_engine(legacy, engine)
        use_legacy = mode == "legacy"
        runner = None
        if mode in ("auto", "vectorized"):
            runner = self._vector_runner(force=mode == "vectorized")
        try:
            while self.has_pending_work():
                if self.round_index + 1 >= max_rounds:
                    raise SimulationLimitError(
                        f"simulation exceeded {max_rounds} rounds"
                    )
                if self._try_vector_step(runner):
                    continue
                if use_legacy or self._always_on:
                    self._flush_runner(runner)
                    self.step()
                    continue
                next_wake = self._next_wake_round()
                if next_wake >= max_rounds:
                    # The naive loop would idle up to the limit and raise;
                    # advance time the same way before raising.
                    self._skip_idle_to(max_rounds - 1)
                    raise SimulationLimitError(
                        f"simulation exceeded {max_rounds} rounds"
                    )
                self._skip_idle_to(next_wake - 1)
                if self._try_vector_step(runner):
                    continue
                self._flush_runner(runner)
                self.step()
        finally:
            if runner is not None:
                runner.flush()
        metrics = self.metrics()
        if self._observed:
            self.instrument.on_run_end(self, metrics)
        return metrics

    def run_rounds(
        self,
        rounds: int,
        *,
        legacy: Optional[bool] = None,
        engine: Optional[str] = None,
    ) -> RunMetrics:
        """Run exactly ``rounds`` rounds (idle rounds still advance time)."""
        if not self._started:
            self.start()
        mode = self._resolve_engine(legacy, engine)
        use_legacy = mode == "legacy"
        runner = None
        if mode in ("auto", "vectorized"):
            runner = self._vector_runner(force=mode == "vectorized")
        end = self.round_index + rounds
        try:
            while self.round_index < end:
                if self._try_vector_step(runner):
                    continue
                if use_legacy or self._always_on:
                    self._flush_runner(runner)
                    self.step()
                    continue
                next_wake = self._next_wake_round()
                if next_wake is None or next_wake > end:
                    self._skip_idle_to(end)
                    break
                self._skip_idle_to(next_wake - 1)
                if self._try_vector_step(runner):
                    continue
                self._flush_runner(runner)
                self.step()
        finally:
            if runner is not None:
                runner.flush()
        metrics = self.metrics()
        if self._observed:
            self.instrument.on_run_end(self, metrics)
        return metrics

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def metrics(self) -> RunMetrics:
        return RunMetrics.from_ledger(
            rounds=self.round_index + 1,
            ledger=self.ledger,
            messages_sent=self.messages_sent,
            messages_delivered=self.messages_delivered,
            messages_dropped=self.messages_dropped,
            total_message_bits=self.total_message_bits,
            max_message_bits=self.max_message_bits,
            collisions=self.collisions,
        )

    def outputs(self, key: str, default=None) -> Dict[int, object]:
        """Collect one output field across all nodes."""
        return {
            node: ctx.output.get(key, default)
            for node, ctx in self.contexts.items()
        }


def run_uniform_program(
    graph: nx.Graph,
    program_factory,
    *,
    seed: int = 0,
    max_rounds: int = 1_000_000,
    bit_budget: Optional[int] = None,
    ledger: Optional[EnergyLedger] = None,
    size_bound: Optional[int] = None,
    channel: ChannelSpec = None,
) -> Tuple[Network, RunMetrics]:
    """Convenience: run one program class on every node of ``graph``."""
    programs = {node: program_factory() for node in graph.nodes}
    network = Network(
        graph,
        programs,
        seed=seed,
        bit_budget=bit_budget,
        ledger=ledger,
        size_bound=size_bound,
        channel=channel,
    )
    metrics = network.run(max_rounds=max_rounds)
    return network, metrics
