"""Pluggable channel layer: how queued payloads become delivered messages.

A :class:`Channel` owns the three communication concerns the engine used to
hard-wire into ``Network.step``:

* **validation** — what a node may send (``on_send`` / ``on_broadcast``);
* **pricing** — what a payload costs in bits (``price``), if anything;
* **delivery** — which queued payloads reach which awake nodes
  (``deliver``), and what that does to the message/energy accounting.

Three models ship with the engine:

``CongestChannel`` (the default)
    The paper's synchronous CONGEST semantics: one ``B = O(log n)``-bit
    message per edge per round, messages to sleeping nodes dropped. The
    default *batched* implementation routes an entire round through flat
    per-edge buffers — one preallocated slot per directed edge, payload
    written by slot index, inboxes materialized lazily as views over the
    slot block of each receiver — instead of allocating a
    :class:`~repro.congest.message.Message` object per delivery.
    ``CongestChannel(batched=False)`` is the per-``Message`` reference
    implementation, kept verbatim from the pre-channel engine; the
    equivalence suite proves the two bit-identical.

``LocalChannel``
    Unbounded bandwidth (the LOCAL model): no bit budget, no bit
    accounting. For baselines like Luby/Ghaffari that should not pay
    CONGEST pricing overhead when only their round/energy counts matter.

``BroadcastChannel``
    A single shared radio medium per neighborhood, half-duplex, with
    collision detection: a round's transmission (``ctx.broadcast``) reaches
    every awake listening neighbor *only if* it is the sole transmission in
    that neighborhood; two or more transmitting neighbors collide and the
    listener hears only noise (a :data:`COLLISION` message when collision
    detection is on, silence otherwise). Each collision a listener suffers
    is billed to the energy ledger (a wasted listening slot), which is the
    accounting radio-network MIS papers charge. A transmitter never pays a
    collision charge on top of its transmit slot — half-duplex means it
    cannot waste a listening slot. The default listener scan is one
    per-round numpy bincount over transmitter edges;
    ``BroadcastChannel(vectorized=False)`` (registry name
    ``"broadcast-scalar"``) keeps the per-listener O(deg) reference scan
    the regression tests pin it against.

Channels are selected per :class:`~repro.congest.network.Network` via
``Network(..., channel=...)`` — a name from :data:`CHANNELS`, an instance,
or a zero-argument factory — or ambiently via :func:`channel_scope`, which
is how ``run_algorithm(channel=...)`` threads one choice through every
network a multi-phase algorithm builds.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Set, Tuple, Union

from .errors import (
    ChannelError,
    DuplicateMessageError,
    MessageTooLargeError,
    NotANeighborError,
)
from .message import Message, payload_bits_cached
from .program import NO_BROADCAST, Context


class _CollisionSignal:
    """Singleton payload a collision-detecting radio hears instead of data."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "COLLISION"


COLLISION = _CollisionSignal()

#: The message a listener receives when ≥2 neighbors transmit at once and
#: collision detection is enabled. ``sender`` is -1: no single node is the
#: sender of noise.
COLLISION_MESSAGE = Message(sender=-1, payload=COLLISION)


class Channel:
    """Interface between node programs and the network's delivery fabric.

    A channel instance binds to one :class:`Network` at a time via
    :meth:`bind` (which must reset all per-network state, so the same
    instance may be reused across the sequential networks of a multi-phase
    algorithm). The engine calls :meth:`deliver` once per round between the
    send phase and the receive phase, and :meth:`finish_round` after the
    receive phase has consumed the inboxes.
    """

    #: Registry name; subclasses override.
    name = "abstract"

    def __init__(self) -> None:
        self._network = None

    # -- lifecycle ------------------------------------------------------
    def bind(self, network) -> None:
        """Attach to ``network``, resetting any per-network state."""
        self._network = network

    # -- send-side hooks (called from Context) --------------------------
    def price(self, payload: Any) -> int:
        """Bits this payload costs on this channel (0 = unaccounted)."""
        raise NotImplementedError

    def on_send(self, ctx: Context, neighbor: int, payload: Any) -> None:
        """Validate and queue one point-to-point send."""
        raise NotImplementedError

    def on_broadcast(self, ctx: Context, payload: Any) -> None:
        """Validate and queue one whole-neighborhood broadcast."""
        raise NotImplementedError

    # -- round delivery -------------------------------------------------
    def deliver(self, ordered: List[int], awake: Set[int]) -> Dict[int, Any]:
        """Drain every awake node's queue; return ``{receiver: inbox}``.

        The returned inboxes must be sequences of
        :class:`~repro.congest.message.Message`-compatible objects ordered
        by ascending sender id (the engine drains senders in sorted order
        and each sender can reach a given receiver at most once per round).
        Implementations update the bound network's message counters.
        """
        raise NotImplementedError

    def finish_round(self) -> None:
        """Reclaim round-scoped delivery state (after ``on_receive``)."""

    # -- wrapper introspection ------------------------------------------
    def unwrapped(self) -> "Channel":
        """The base medium beneath any fault/decorator wrappers.

        Plain channels are their own base; wrappers (see
        :mod:`repro.faults.channels`) delegate through their inner channel
        so radio-safety checks and engine-capability tests see the real
        delivery semantics regardless of fault layers.
        """
        return self

    def vector_faults(self, arrays):
        """Per-round edge-drop state for the vectorized engine, or ``None``.

        Fault wrappers answer with an object exposing
        ``round_keep(round_index) -> Optional[bool ndarray]`` over the CSR
        edge slots of ``arrays``; plain channels have no faults.
        """
        return None


class _InboxView:
    """One receiver's inbox, lazily materialized from flat slot buffers.

    Until a program actually reads the messages, the view is just three
    integers — so a program that only needs ``len(messages)`` or
    ``if messages:`` never allocates a single ``Message``. Iteration and
    indexing materialize (and cache) the list.

    Views are only valid within the round that produced them: the backing
    buffers are recycled by ``finish_round``. Programs that stash messages
    across rounds must copy (``list(messages)``) — which materializes, so
    the copy stays valid. A first read *after* the round raises instead of
    silently returning recycled buffer contents (each view carries the
    round serial it was minted in).
    """

    __slots__ = ("_channel", "_start", "_end", "_count", "_messages",
                 "_serial")

    def __init__(self, channel: "CongestChannel", start: int, end: int,
                 count: int):
        self._channel = channel
        self._start = start
        self._end = end
        self._count = count
        self._serial = channel._round_serial
        self._messages: Optional[List[Message]] = None

    def _materialize(self) -> List[Message]:
        messages = self._messages
        if messages is None:
            channel = self._channel
            if channel._round_serial != self._serial:
                raise ChannelError(
                    "inbox view read after its round ended; the backing "
                    "delivery buffers have been recycled — copy the "
                    "messages (list(messages)) within on_receive if you "
                    "need them later"
                )
            payloads = channel._payloads
            senders = channel._slot_senders
            start, end = self._start, self._end
            if self._count == end - start:
                # Dense inbox (every neighbor sent — the broadcast-storm
                # case): no occupancy checks needed.
                messages = [
                    Message(senders[slot], payloads[slot])
                    for slot in range(start, end)
                ]
            else:
                occupied = channel._occupied
                messages = [
                    Message(senders[slot], payloads[slot])
                    for slot in range(start, end)
                    if occupied[slot]
                ]
            self._messages = messages
        return messages

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __iter__(self):
        return iter(self._materialize())

    def __getitem__(self, index):
        return self._materialize()[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, _InboxView):
            other = other._materialize()
        return self._materialize() == other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InboxView({self._materialize()!r})"


class CongestChannel(Channel):
    """Point-to-point CONGEST delivery with the ``B``-bit budget.

    ``batched=True`` (default) routes the round through flat per-edge slot
    buffers; ``batched=False`` is the pre-refactor per-``Message`` loop,
    kept as the bit-exact reference semantics (and as the baseline the
    channel benchmarks measure the batched path against).
    """

    name = "congest"

    def __init__(self, batched: bool = True):
        super().__init__()
        self.batched = batched
        # Monotonic across the channel's whole lifetime, *never* reset by
        # bind(): an _InboxView minted against one network must not read
        # the recycled buffers of a later network the same channel
        # instance is re-bound to (multi-phase drivers reuse instances).
        self._round_serial = 0

    # -- lifecycle ------------------------------------------------------
    def bind(self, network) -> None:
        self._network = network
        self._round_serial += 1
        # The per-directed-edge slot structures are O(m) python objects —
        # built lazily at the first batched delivery instead of here, so
        # a run that stays on the vectorized dense-round path (which never
        # routes a scalar delivery) never pays for them at all. That is
        # the difference between "loads in seconds" and "loads in gigabytes"
        # at n = 10^6.
        self._slots_ready = False

    def _build_slots(self) -> None:
        # One slot per directed edge, grouped contiguously by receiver and
        # ordered by sender within each block — so a receiver's inbox is a
        # slice of the flat arrays, already in sorted-sender order. The
        # sender of each slot never changes, so it is stored once here and
        # never written on the hot path.
        network = self._network
        graph = network.graph
        block: Dict[int, Tuple[int, int]] = {}
        slot_senders: List[int] = []
        out_slots: Dict[int, Dict[int, int]] = {node: {} for node in
                                                graph.nodes}
        cursor = 0
        for receiver in network._node_order:
            start = cursor
            for sender in network._neighbors_of(receiver):
                out_slots[sender][receiver] = cursor
                slot_senders.append(sender)
                cursor += 1
            block[receiver] = (start, cursor)
        self._block = block
        self._slot_senders = slot_senders
        self._out_slots = out_slots
        # Per-sender broadcast plan: (receiver, slot) pairs in neighbor
        # order, so a whole-neighborhood broadcast is one tight loop with
        # no per-message dict lookups.
        self._out_pairs: Dict[int, List[Tuple[int, int]]] = {
            sender: sorted(
                ((receiver, slot) for receiver, slot in slots.items()),
            )
            for sender, slots in out_slots.items()
        }
        self._payloads: List[Any] = [None] * cursor
        self._occupied = bytearray(cursor)
        self._dirty: List[int] = []
        self._slots_ready = True

    # -- send side ------------------------------------------------------
    def price(self, payload: Any) -> int:
        return payload_bits_cached(payload)

    def on_send(self, ctx: Context, neighbor: int, payload: Any) -> None:
        if neighbor not in ctx._neighbor_set:
            raise NotANeighborError(ctx.node, neighbor)
        if ctx._bcast is not NO_BROADCAST or neighbor in ctx._sent_to:
            raise DuplicateMessageError(ctx.node, neighbor, ctx.round)
        bits = self.price(payload)
        if bits > self._network.bit_budget:
            raise MessageTooLargeError(
                ctx.node, neighbor, bits, self._network.bit_budget
            )
        ctx._sent_to.add(neighbor)
        ctx._outbox.append((neighbor, payload))

    def on_broadcast(self, ctx: Context, payload: Any) -> None:
        if not ctx.neighbors:
            return
        if ctx._outbox or ctx._bcast is not NO_BROADCAST:
            # Mixed with earlier sends: fall back to the per-neighbor path,
            # which raises the exact errors the seed semantics raised.
            for neighbor in ctx.neighbors:
                self.on_send(ctx, neighbor, payload)
            return
        bits = self.price(payload)
        if bits > self._network.bit_budget:
            raise MessageTooLargeError(
                ctx.node, ctx.neighbors[0], bits, self._network.bit_budget
            )
        ctx._bcast = payload

    # -- delivery -------------------------------------------------------
    def deliver(self, ordered: List[int], awake: Set[int]) -> Dict[int, Any]:
        if self.batched:
            return self._deliver_batched(ordered, awake)
        return self._deliver_per_message(ordered, awake)

    def _deliver_per_message(self, ordered, awake) -> Dict[int, List[Message]]:
        """The seed engine's delivery loop, verbatim (reference semantics)."""
        network = self._network
        contexts = network.contexts
        inboxes: Dict[int, List[Message]] = {}
        max_bits = network.max_message_bits
        for node in ordered:
            outbox, bcast = contexts[node]._drain()
            if bcast is not NO_BROADCAST:
                outbox = [(r, bcast) for r in contexts[node].neighbors]
            if not outbox:
                continue
            for receiver, payload in outbox:
                network.messages_sent += 1
                bits = payload_bits_cached(payload)
                network.total_message_bits += bits
                if bits > max_bits:
                    max_bits = bits
                if receiver in awake and not contexts[receiver]._halted:
                    inbox = inboxes.get(receiver)
                    if inbox is None:
                        inboxes[receiver] = [Message(node, payload)]
                    else:
                        inbox.append(Message(node, payload))
                    network.messages_delivered += 1
                else:
                    network.messages_dropped += 1
        network.max_message_bits = max_bits
        return inboxes

    def _deliver_batched(self, ordered, awake) -> Dict[int, Any]:
        if not self._slots_ready:
            self._build_slots()
        network = self._network
        contexts = network.contexts
        payloads_flat = self._payloads
        occupied = self._occupied
        dirty = self._dirty
        out_pairs = self._out_pairs
        out_slots = self._out_slots
        counts: Dict[int, int] = {}
        sent = delivered = dropped = 0
        bits_total = 0
        max_bits = network.max_message_bits
        missing = object()
        for node in ordered:
            ctx = contexts[node]
            outbox, bcast = ctx._drain()
            if bcast is not NO_BROADCAST:
                pairs = out_pairs[node]
                sent += len(pairs)
                bits = payload_bits_cached(bcast)
                bits_total += bits * len(pairs)
                if bits > max_bits:
                    max_bits = bits
                for receiver, slot in pairs:
                    if receiver in awake and not contexts[receiver]._halted:
                        payloads_flat[slot] = bcast
                        occupied[slot] = 1
                        dirty.append(slot)
                        counts[receiver] = counts.get(receiver, 0) + 1
                        delivered += 1
                    else:
                        dropped += 1
            elif outbox:
                slots = out_slots[node]
                last_payload = missing
                bits = 0
                for receiver, payload in outbox:
                    sent += 1
                    if payload is not last_payload:
                        bits = payload_bits_cached(payload)
                        last_payload = payload
                    bits_total += bits
                    if bits > max_bits:
                        max_bits = bits
                    if receiver in awake and not contexts[receiver]._halted:
                        slot = slots[receiver]
                        payloads_flat[slot] = payload
                        occupied[slot] = 1
                        dirty.append(slot)
                        counts[receiver] = counts.get(receiver, 0) + 1
                        delivered += 1
                    else:
                        dropped += 1
        network.messages_sent += sent
        network.messages_delivered += delivered
        network.messages_dropped += dropped
        network.total_message_bits += bits_total
        network.max_message_bits = max_bits
        block = self._block
        inboxes: Dict[int, Any] = {}
        for receiver, count in counts.items():
            start, end = block[receiver]
            inboxes[receiver] = _InboxView(self, start, end, count)
        return inboxes

    def finish_round(self) -> None:
        if not self.batched:
            return
        self._round_serial += 1
        if not self._slots_ready:
            return
        dirty = self._dirty
        if dirty:
            occupied = self._occupied
            payloads = self._payloads
            for slot in dirty:
                occupied[slot] = 0
                payloads[slot] = None
            dirty.clear()


class LocalChannel(CongestChannel):
    """Unbounded-bandwidth point-to-point delivery (the LOCAL model).

    Same topology and sleeping semantics as CONGEST, but payloads are free:
    no bit budget is enforced and no bit accounting is performed, so
    baselines that only care about rounds/energy skip the pricing overhead
    entirely (``total_message_bits`` stays 0).
    """

    name = "local"

    def price(self, payload: Any) -> int:
        return 0

    # on_send / on_broadcast are inherited: with price() == 0 the budget
    # check can never trip, and the one-message-per-edge rule still holds.

    def _deliver_per_message(self, ordered, awake) -> Dict[int, List[Message]]:
        network = self._network
        contexts = network.contexts
        inboxes: Dict[int, List[Message]] = {}
        for node in ordered:
            outbox, bcast = contexts[node]._drain()
            if bcast is not NO_BROADCAST:
                outbox = [(r, bcast) for r in contexts[node].neighbors]
            for receiver, payload in outbox:
                network.messages_sent += 1
                if receiver in awake and not contexts[receiver]._halted:
                    inboxes.setdefault(receiver, []).append(
                        Message(node, payload)
                    )
                    network.messages_delivered += 1
                else:
                    network.messages_dropped += 1
        return inboxes

    def _deliver_batched(self, ordered, awake) -> Dict[int, Any]:
        if not self._slots_ready:
            self._build_slots()
        network = self._network
        contexts = network.contexts
        payloads_flat = self._payloads
        occupied = self._occupied
        dirty = self._dirty
        out_pairs = self._out_pairs
        out_slots = self._out_slots
        counts: Dict[int, int] = {}
        sent = delivered = dropped = 0
        for node in ordered:
            ctx = contexts[node]
            outbox, bcast = ctx._drain()
            if bcast is not NO_BROADCAST:
                pairs = out_pairs[node]
                sent += len(pairs)
                for receiver, slot in pairs:
                    if receiver in awake and not contexts[receiver]._halted:
                        payloads_flat[slot] = bcast
                        occupied[slot] = 1
                        dirty.append(slot)
                        counts[receiver] = counts.get(receiver, 0) + 1
                        delivered += 1
                    else:
                        dropped += 1
            elif outbox:
                slots = out_slots[node]
                for receiver, payload in outbox:
                    sent += 1
                    if receiver in awake and not contexts[receiver]._halted:
                        slot = slots[receiver]
                        payloads_flat[slot] = payload
                        occupied[slot] = 1
                        dirty.append(slot)
                        counts[receiver] = counts.get(receiver, 0) + 1
                        delivered += 1
                    else:
                        dropped += 1
        network.messages_sent += sent
        network.messages_delivered += delivered
        network.messages_dropped += dropped
        block = self._block
        return {
            receiver: _InboxView(self, *block[receiver], count)
            for receiver, count in counts.items()
        }


class BroadcastChannel(Channel):
    """A shared radio medium per neighborhood, half-duplex, with collisions.

    Semantics per round:

    * a node transmits by calling ``ctx.broadcast(payload)``; point-to-point
      ``ctx.send`` raises :class:`ChannelError` (radio has no addressing),
      as does a second transmission in the same round;
    * a transmitting node hears nothing this round (half-duplex);
    * an awake listening node with exactly one transmitting neighbor
      receives that payload; with two or more, the transmissions *collide*:
      the listener receives :data:`COLLISION_MESSAGE` if
      ``collision_detection`` is on (it can tell noise from silence) and
      nothing otherwise, and is billed ``collision_cost`` extra energy
      units for the wasted listening slot;
    * sleeping and halted nodes hear nothing, as in every channel.

    ``messages_sent`` counts transmissions (one per transmitter per round,
    regardless of neighborhood size); ``messages_delivered`` counts clean
    receptions; ``messages_dropped`` counts receptions lost to collisions.
    The CONGEST bit budget still applies to transmitted payloads.
    """

    name = "broadcast"

    def __init__(self, collision_detection: bool = True,
                 collision_cost: int = 1, vectorized: bool = True):
        super().__init__()
        self.collision_detection = collision_detection
        self.collision_cost = collision_cost
        # The default listener scan replaces the per-listener O(deg)
        # membership loop with one per-round bincount over transmitter
        # edges; ``vectorized=False`` keeps the original scalar scan as
        # the bit-exact reference (regression-pinned in tests).
        self.vectorized = vectorized

    def price(self, payload: Any) -> int:
        return payload_bits_cached(payload)

    def on_send(self, ctx: Context, neighbor: int, payload: Any) -> None:
        raise ChannelError(
            f"node {ctx.node}: the broadcast channel is a shared medium "
            f"with no addressing; use ctx.broadcast(payload) to transmit"
        )

    def on_broadcast(self, ctx: Context, payload: Any) -> None:
        if ctx._bcast is not NO_BROADCAST:
            raise ChannelError(
                f"node {ctx.node} already transmitted in round {ctx.round}"
            )
        bits = self.price(payload)
        if bits > self._network.bit_budget:
            raise MessageTooLargeError(
                ctx.node, ctx.node, bits, self._network.bit_budget
            )
        ctx._bcast = payload

    def deliver(self, ordered: List[int], awake: Set[int]) -> Dict[int, Any]:
        network = self._network
        contexts = network.contexts
        transmitters: Dict[int, Any] = {}
        max_bits = network.max_message_bits
        for node in ordered:
            _, bcast = contexts[node]._drain()
            if bcast is not NO_BROADCAST:
                transmitters[node] = bcast
                network.messages_sent += 1
                bits = payload_bits_cached(bcast)
                network.total_message_bits += bits
                if bits > max_bits:
                    max_bits = bits
        network.max_message_bits = max_bits
        inboxes: Dict[int, List[Message]] = {}
        if not transmitters:
            return inboxes
        if self.vectorized:
            return self._scan_vectorized(transmitters, awake, inboxes)
        return self._scan_scalar(ordered, transmitters, inboxes)

    def _scan_scalar(self, ordered, transmitters, inboxes):
        """Reference listener scan: O(deg) membership test per listener."""
        network = self._network
        contexts = network.contexts
        ledger = network.ledger
        for node in ordered:
            if node in transmitters:
                continue  # half-duplex: transmitters cannot listen
            ctx = contexts[node]
            if ctx._halted:
                continue
            heard = [u for u in ctx.neighbors if u in transmitters]
            if not heard:
                continue
            if len(heard) == 1:
                sender = heard[0]
                inboxes[node] = [Message(sender, transmitters[sender])]
                network.messages_delivered += 1
            else:
                network.messages_dropped += len(heard)
                network.collisions += 1
                if self.collision_cost:
                    ledger.charge(node, self.collision_cost)
                if self.collision_detection:
                    inboxes[node] = [COLLISION_MESSAGE]
        return inboxes

    def _scan_vectorized(self, transmitters, awake, inboxes):
        """One bincount over transmitter edges replaces all listener scans.

        ``counts[i]`` is the number of transmitting neighbors of rank
        ``i``; listeners with count 1 receive, count >= 2 collide.  The
        weighted bincount recovers the unique sender of a clean reception
        without a second adjacency pass. Only ranks with signal are then
        visited, so a round costs O(sum of transmitter degrees) plus
        O(listeners who hear anything) — independent of listener degree.

        Accounting is identical to the scalar scan, including the
        half-duplex rule that a node transmitting into a >= 2-transmitter
        neighborhood pays its transmit slot only, never an additional
        collision charge (it cannot listen, so it cannot waste a
        listening slot).
        """
        import numpy as np

        from .vectorized import graph_arrays

        network = self._network
        contexts = network.contexts
        ledger = network.ledger
        arrays = graph_arrays(network)
        rank = arrays.rank
        indptr, indices = arrays.indptr, arrays.indices
        transmitter_ranks = np.fromiter(
            (rank[node] for node in transmitters),
            dtype=np.int64,
            count=len(transmitters),
        )
        targets = np.concatenate(
            [indices[indptr[i]:indptr[i + 1]] for i in transmitter_ranks]
        )
        if not targets.size:
            return inboxes
        counts = np.bincount(targets, minlength=arrays.n)
        sender_of = np.bincount(
            targets,
            weights=np.repeat(
                transmitter_ranks.astype(np.float64),
                arrays.degrees[transmitter_ranks],
            ),
            minlength=arrays.n,
        )
        delivered = dropped = collisions = 0
        nodes = arrays.nodes
        for i in np.nonzero(counts)[0]:
            node = nodes[i]
            if node in transmitters or node not in awake:
                continue  # half-duplex / asleep: hears nothing
            if contexts[node]._halted:
                continue
            heard = int(counts[i])
            if heard == 1:
                sender = nodes[int(sender_of[i])]
                inboxes[node] = [Message(sender, transmitters[sender])]
                delivered += 1
            else:
                dropped += heard
                collisions += 1
                if self.collision_cost:
                    ledger.charge(node, self.collision_cost)
                if self.collision_detection:
                    inboxes[node] = [COLLISION_MESSAGE]
        network.messages_delivered += delivered
        network.messages_dropped += dropped
        network.collisions += collisions
        return inboxes


#: Named channel factories for CLI flags and task tuples. Each call returns
#: a fresh instance, so one spec string can configure many networks.
CHANNELS: Dict[str, Callable[[], Channel]] = {
    "congest": CongestChannel,
    "congest-per-message": lambda: CongestChannel(batched=False),
    "local": LocalChannel,
    "broadcast": BroadcastChannel,
    "broadcast-no-cd": lambda: BroadcastChannel(collision_detection=False),
    "broadcast-scalar": lambda: BroadcastChannel(vectorized=False),
}

ChannelSpec = Union[str, Channel, Callable[[], Channel], None]

# Ambient default, settable by channel_scope. A plain module global (not a
# stack) would leak across nested algorithm calls; a list-as-stack keeps
# nesting correct and stays trivially picklable-free.
_SCOPE_STACK: List[ChannelSpec] = []


@contextmanager
def channel_scope(spec: ChannelSpec):
    """Make ``spec`` the default channel for Networks built inside.

    This is how ``run_algorithm(..., channel=...)`` reaches the several
    internal :class:`Network` instances a multi-phase algorithm constructs
    without threading a parameter through every phase helper: each
    ``Network`` built without an explicit ``channel=`` resolves the scoped
    spec instead of plain CONGEST.

    ``channel_scope(None)`` is a no-op (it inherits any enclosing scope),
    so wrappers can pass their own ``channel=None`` default through
    unconditionally.
    """
    if spec is None:
        yield
        return
    _SCOPE_STACK.append(spec)
    try:
        yield
    finally:
        _SCOPE_STACK.pop()


def scoped_channel_spec() -> ChannelSpec:
    """The innermost active :func:`channel_scope` spec, or ``None``."""
    return _SCOPE_STACK[-1] if _SCOPE_STACK else None


def make_channel(spec: ChannelSpec) -> Channel:
    """Resolve a channel spec (name, instance, factory, or None) to an
    instance ready to be bound to one network.

    ``None`` defers to the innermost :func:`channel_scope`, falling back to
    a fresh :class:`CongestChannel`.
    """
    if spec is None:
        spec = scoped_channel_spec()
        if spec is None:
            return CongestChannel()
    if isinstance(spec, Channel):
        return spec
    if isinstance(spec, str):
        try:
            factory = CHANNELS[spec]
        except KeyError:
            if "(" in spec or ":" in spec:
                # Compound fault-wrapper grammar, e.g.
                # ``lossy(drop=0.1):congest``. Imported lazily: the faults
                # package builds on this module.
                from ..faults.spec import parse_channel_spec

                return parse_channel_spec(spec)
            raise KeyError(
                f"unknown channel {spec!r}; have {sorted(CHANNELS)} "
                f"(or a fault spec such as 'lossy(drop=0.1):congest')"
            ) from None
        return factory()
    if callable(spec):
        channel = spec()
        if not isinstance(channel, Channel):
            raise TypeError(
                f"channel factory returned {type(channel).__name__}, "
                f"not a Channel"
            )
        return channel
    raise TypeError(f"cannot interpret {spec!r} as a channel")
