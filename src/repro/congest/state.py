"""Schema-declared node state: flat network-owned columns with row views.

Historically every :class:`~repro.congest.program.NodeProgram` instance
kept its state in its own ``__dict__`` and the vectorized engine re-packed
those dicts into ad-hoc numpy columns at every engagement.  This module
inverts the ownership: a program class *declares* its per-node state as a
typed schema (:meth:`NodeProgram.state_schema` returning
:class:`StateField` triples), the :class:`~repro.congest.network.Network`
allocates one flat column per field at bind time, and

* scalar program bodies keep reading/writing ``self.<field>`` unchanged —
  a data descriptor transparently proxies the attribute into
  ``columns[name][rank]`` (the node's *row view*);
* vector kernels skip the per-node python load/flush loops entirely and
  copy whole columns.

Width fields (``StateField(width=...)``) allocate 2-D ``(n, width)``
columns; a node's row view is then a mutable length-``width`` numpy row,
so list-shaped program state (Ghaffari's per-execution status vector)
keeps its indexing syntax.  A ``width`` given as a *string* names an
attribute of the program instances (e.g. ``width="executions"``) resolved
at allocation time, because such widths are run parameters, not class
constants.

Before a program is bound to a network (i.e. during ``__init__``), the
descriptors stage assignments in the instance ``__dict__`` exactly as
plain attributes would; :func:`bind_state` then pops the staged values
into the node's column rows.  Unbinding (when a program instance is moved
to another network) materializes the rows back into the ``__dict__`` so
no state is lost.

The dict-backed layout remains fully supported: :func:`set_column_state`
/ :func:`column_state` turn column allocation off globally or for a
scope, and a :class:`Network` built with ``column_state=False`` keeps
every program on plain instance attributes.  Both layouts are
bit-identical in outputs, metrics, ledgers, and RNG draw order
(``tests/test_engine_equivalence.py`` proves it for every registered
algorithm on all three engine paths).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Tuple, Union

import numpy as np

__all__ = [
    "StateField",
    "set_column_state",
    "get_column_state",
    "column_state",
    "allocate_columns",
    "bind_state",
    "unbind_state",
]


@dataclass(frozen=True)
class StateField:
    """One declared per-node state column.

    ``dtype`` is anything ``np.dtype`` accepts (``np.bool_``, ``np.int8``,
    ``np.int64``, ``np.float64``, ...).  ``default`` fills the column at
    allocation; a program's ``__init__`` assignment (staged in the
    instance ``__dict__`` until bind) overrides it per node.  ``width``
    makes the column 2-D ``(n, width)``; a string names the program
    attribute holding the width.
    """

    name: str
    dtype: Any
    default: Any = 0
    width: Optional[Union[int, str]] = None


# Module-level default, mirroring the engine-mode switch: column state is
# the production layout; the dict layout stays reachable for equivalence
# testing and for exotic per-node state no schema covers.
_COLUMN_STATE = True


def set_column_state(enabled: bool) -> None:
    """Globally enable/disable column-backed state for new Networks."""
    global _COLUMN_STATE
    _COLUMN_STATE = bool(enabled)


def get_column_state() -> bool:
    return _COLUMN_STATE


@contextmanager
def column_state(enabled: bool) -> Iterator[None]:
    """Scope the column-state default (dict layout under ``False``)."""
    global _COLUMN_STATE
    previous = _COLUMN_STATE
    _COLUMN_STATE = bool(enabled)
    try:
        yield
    finally:
        _COLUMN_STATE = previous


class _ScalarField:
    """Data descriptor proxying a scalar schema field into its column row.

    Unbound instances (no ``_state_columns`` in their ``__dict__``) behave
    exactly like plain attributes, staging values in the instance dict.
    Bound reads convert the numpy scalar back to the matching python
    scalar (``.item()``) so payload pricing, output dicts, and identity
    checks (``payload is False``) never see numpy scalar types.
    """

    __slots__ = ("name", "default")

    def __init__(self, name: str, default: Any):
        self.name = name
        self.default = default

    def __get__(self, obj: Any, objtype: Optional[type] = None) -> Any:
        if obj is None:
            return self
        d = obj.__dict__
        columns = d.get("_state_columns")
        if columns is not None:
            return columns[self.name][d["_state_rank"]].item()
        try:
            return d[self.name]
        except KeyError:
            return self.default

    def __set__(self, obj: Any, value: Any) -> None:
        d = obj.__dict__
        columns = d.get("_state_columns")
        if columns is not None:
            columns[self.name][d["_state_rank"]] = value
        else:
            d[self.name] = value


class _RowField:
    """Data descriptor proxying a width field into its 2-D column row.

    Bound reads return the node's row *view* (mutable in place — element
    assignment writes straight through to the column); wholesale
    assignment broadcasts a sequence into the row. Unbound instances
    stage plain lists/arrays in the instance dict.
    """

    __slots__ = ("name", "default")

    def __init__(self, name: str, default: Any):
        self.name = name
        self.default = default

    def __get__(self, obj: Any, objtype: Optional[type] = None) -> Any:
        if obj is None:
            return self
        d = obj.__dict__
        columns = d.get("_state_columns")
        if columns is not None:
            return columns[self.name][d["_state_rank"]]
        return d[self.name]

    def __set__(self, obj: Any, value: Any) -> None:
        d = obj.__dict__
        columns = d.get("_state_columns")
        if columns is not None:
            columns[self.name][d["_state_rank"]] = value
        else:
            d[self.name] = value


def install_descriptors(cls: type) -> None:
    """Install one proxy descriptor per declared schema field on ``cls``.

    Called from ``NodeProgram.__init_subclass__`` so declaring a schema is
    all a program author does — attribute syntax in the program body stays
    untouched in both layouts.
    """
    for field in cls.state_schema():
        if not isinstance(field, StateField):
            raise TypeError(
                f"{cls.__name__}.state_schema() must yield StateField "
                f"entries, got {type(field).__name__}"
            )
        descriptor = (
            _ScalarField(field.name, field.default)
            if field.width is None
            else _RowField(field.name, field.default)
        )
        setattr(cls, field.name, descriptor)


def resolve_width(field: StateField, template: Any) -> int:
    """Concrete column width for one field against a template instance."""
    width = field.width
    if isinstance(width, str):
        width = getattr(template, width)
    if width is None:
        raise ValueError(f"field {field.name!r} declares no width")
    return int(width)


def allocate_columns(
    schema: Tuple[StateField, ...], template: Any, n: int
) -> Dict[str, np.ndarray]:
    """Allocate default-filled columns for ``n`` nodes of one schema."""
    columns: Dict[str, np.ndarray] = {}
    for field in schema:
        dtype = np.dtype(field.dtype)
        if field.width is None:
            column = np.full(n, field.default, dtype=dtype)
        else:
            column = np.full(
                (n, resolve_width(field, template)), field.default,
                dtype=dtype,
            )
        columns[field.name] = column
    return columns


def bind_state(
    program: Any, columns: Dict[str, np.ndarray], rank: int
) -> None:
    """Attach ``program`` to row ``rank`` of the shared columns.

    Values staged in the instance ``__dict__`` (assigned before bind,
    typically in ``__init__``) are popped into the row; fields never
    assigned keep the schema default already in the column.  A program
    bound to an earlier network is transparently unbound first, so its
    state follows the instance.
    """
    d = program.__dict__
    if "_state_columns" in d:
        unbind_state(program)
    for name, column in columns.items():
        if name in d:
            column[rank] = d.pop(name)
    d["_state_columns"] = columns
    d["_state_rank"] = rank


def unbind_state(program: Any) -> None:
    """Materialize a bound program's rows back into its ``__dict__``."""
    d = program.__dict__
    columns = d.pop("_state_columns", None)
    if columns is None:
        return
    rank = d.pop("_state_rank")
    for name, column in columns.items():
        value = column[rank]
        d[name] = value.item() if column.ndim == 1 else value.copy()
