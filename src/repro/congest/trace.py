"""Execution tracing for the CONGEST-with-sleeping engine.

A :class:`NetworkTrace` records, per round, who was awake and how much was
said — the raw material for sleep diagrams and message-complexity studies.
Tracing is opt-in (``Network(..., trace=True)``) because recording every
round costs memory proportional to total awake-node rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple


@dataclass
class RoundRecord:
    """What happened in one engine round."""

    round_index: int
    awake: Set[int]
    messages_sent: int
    messages_delivered: int
    messages_dropped: int


@dataclass
class NetworkTrace:
    """Round-by-round record of one simulation.

    Idle stretches the engine fast-forwards over are stored as compact
    ``(first_round, last_round)`` spans rather than one empty record per
    round, so tracing a mostly-sleeping execution costs memory proportional
    to awake events, not simulated time. All derived views (``rounds``,
    ``awake_counts``, ``sleep_diagram``) account for the spans, so they
    match a trace taken with the naive per-round loop.
    """

    records: List[RoundRecord] = field(default_factory=list)
    idle_spans: List[Tuple[int, int]] = field(default_factory=list)

    def record(self, round_index: int, awake: Set[int], sent: int,
               delivered: int, dropped: int) -> None:
        self.records.append(
            RoundRecord(
                round_index=round_index,
                awake=set(awake),
                messages_sent=sent,
                messages_delivered=delivered,
                messages_dropped=dropped,
            )
        )

    def record_idle(self, first_round: int, last_round: int) -> None:
        """Record a fast-forwarded stretch of all-asleep rounds (O(1))."""
        if last_round < first_round:
            raise ValueError(
                f"bad idle span [{first_round}, {last_round}]"
            )
        self.idle_spans.append((first_round, last_round))

    # ------------------------------------------------------------------
    @property
    def rounds(self) -> int:
        return len(self.records) + sum(
            last - first + 1 for first, last in self.idle_spans
        )

    def awake_counts(self) -> List[int]:
        """Number of awake nodes per round (the 'power draw' curve)."""
        if not self.idle_spans:
            return [len(record.awake) for record in self.records]
        counts = [0] * self.rounds
        for record in self.records:
            counts[record.round_index] = len(record.awake)
        return counts

    def wake_rounds_of(self, node: int) -> List[int]:
        """The rounds in which ``node`` was awake."""
        return [
            record.round_index
            for record in self.records
            if node in record.awake
        ]

    def message_totals(self) -> Dict[str, int]:
        return {
            "sent": sum(r.messages_sent for r in self.records),
            "delivered": sum(r.messages_delivered for r in self.records),
            "dropped": sum(r.messages_dropped for r in self.records),
        }

    def sleep_diagram(self, nodes: Sequence[int], width: int = 72) -> str:
        """ASCII diagram: one row per node, '#' = awake, '.' = asleep.

        Long executions are downsampled to ``width`` columns; a column
        shows '#' if the node was awake in any round of its bucket.
        """
        total = self.rounds
        if total == 0:
            return "(no rounds recorded)"
        columns = min(width, total)
        rows = []
        for node in nodes:
            awake_rounds = set(self.wake_rounds_of(node))
            cells = []
            for column in range(columns):
                low = column * total // columns
                high = max(low + 1, (column + 1) * total // columns)
                cells.append(
                    "#" if any(r in awake_rounds for r in range(low, high))
                    else "."
                )
            rows.append(f"{node!s:>6} |{''.join(cells)}|")
        header = f"{'node':>6} |{'round 0 .. ' + str(total - 1):{columns}.{columns}}|"
        return "\n".join([header] + rows)
