"""Messages and message-size accounting for the CONGEST model.

The CONGEST model allows each node to send one message of ``B = O(log n)``
bits to each neighbor per round.  The paper's algorithms mostly exchange
single-bit flags ("I am marked", "I joined the MIS"); Phase III additionally
ships cluster identifiers and small counters, which fit in ``O(log n)`` bits.

To make these claims checkable rather than assumed, every payload is priced
in bits by :func:`payload_bits`, and the network enforces the budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any


def default_bit_budget(n: int) -> int:
    """Return the standard CONGEST bit budget ``B = Θ(log n)`` for ``n`` nodes.

    We allow a small constant number of node identifiers plus constant-size
    headers, matching the model description in Section 1.1 of the paper
    ("sufficient to describe constant many nodes or edges and values
    polynomially bounded in n").
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    ident_bits = max(1, math.ceil(math.log2(max(2, n))))
    return 8 * ident_bits + 32


def payload_bits(payload: Any) -> int:
    """Price a payload in bits.

    Pricing rules (conservative, favoring the *algorithm under test*):

    * ``None`` costs 0 bits (a beacon; its presence is the information).
    * ``bool`` costs 1 bit.
    * ``int`` costs ``max(1, bit_length) + 1`` bits (sign bit).
    * ``float`` costs 32 bits (algorithms only ship bounded-precision values).
    * ``str`` costs 8 bits per character.
    * tuples/lists/sets cost the sum of their elements plus 2 bits of framing
      per element.
    * dicts cost keys + values, framed likewise.
    """
    if payload is None:
        return 0
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, payload.bit_length()) + 1
    if isinstance(payload, float):
        return 32
    if isinstance(payload, str):
        return 8 * len(payload)
    if isinstance(payload, (tuple, list, frozenset, set)):
        return sum(payload_bits(item) + 2 for item in payload)
    if isinstance(payload, dict):
        return sum(
            payload_bits(key) + payload_bits(value) + 4
            for key, value in payload.items()
        )
    raise TypeError(f"cannot price payload of type {type(payload).__name__}")


# The engine prices every payload twice (once at ``send`` for the budget
# check, once at delivery for the bit counters), and algorithms send the
# same few payload shapes millions of times.  A bounded memo makes repeat
# pricing a dict hit.  The cache key must keep ``True`` and ``1`` (equal,
# hash-equal, but priced differently) apart *at every nesting level*: a
# plain ``(type, value)`` tag distinguishes the scalars but collides on
# containers — ``(True,)`` and ``(1,)`` are equal tuples of equal type, yet
# price 3 vs 4 bits — so container keys are built structurally, tagging
# each element.  Unhashable payloads (nested lists, dicts) fall through to
# the recursive pricer.
_BITS_CACHE: dict = {}
_BITS_CACHE_LIMIT = 4096


def _cache_key(payload: Any):
    """A hashable key that is equal iff two payloads price identically."""
    kind = type(payload)
    if kind is tuple:
        return (tuple, tuple(_cache_key(item) for item in payload))
    if kind is frozenset:
        return (frozenset, frozenset(_cache_key(item) for item in payload))
    return (kind, payload)


def payload_bits_cached(payload: Any) -> int:
    """Memoized :func:`payload_bits` for hashable payloads."""
    if payload is None:
        return 0
    key = _cache_key(payload)
    try:
        return _BITS_CACHE[key]
    except KeyError:
        bits = payload_bits(payload)
        if len(_BITS_CACHE) < _BITS_CACHE_LIMIT:
            _BITS_CACHE[key] = bits
        return bits
    except TypeError:
        return payload_bits(payload)


@dataclass(frozen=True)
class Message:
    """A single CONGEST message: who sent it and what it carries."""

    sender: int
    payload: Any

    @property
    def bits(self) -> int:
        return payload_bits(self.payload)
