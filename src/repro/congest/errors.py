"""Exceptions raised by the CONGEST-with-sleeping simulator."""


class CongestError(Exception):
    """Base class for all simulator errors."""


class MessageTooLargeError(CongestError):
    """A payload exceeded the per-message bit budget ``B`` of the model."""

    def __init__(self, sender, receiver, bits, limit):
        self.sender = sender
        self.receiver = receiver
        self.bits = bits
        self.limit = limit
        super().__init__(
            f"message {sender}->{receiver} needs {bits} bits, "
            f"but the CONGEST budget is B={limit} bits"
        )


class DuplicateMessageError(CongestError):
    """A node tried to send two messages over the same edge in one round.

    The CONGEST model allows one message per neighbor per round.
    """

    def __init__(self, sender, receiver, round_index):
        self.sender = sender
        self.receiver = receiver
        self.round_index = round_index
        super().__init__(
            f"node {sender} sent twice to {receiver} in round {round_index}"
        )


class NotANeighborError(CongestError):
    """A node tried to message a node it has no edge to."""

    def __init__(self, sender, receiver):
        self.sender = sender
        self.receiver = receiver
        super().__init__(f"node {sender} has no edge to {receiver}")


class ChannelError(CongestError):
    """A send violated the semantics of the network's channel model.

    Raised e.g. for point-to-point sends on a shared broadcast (radio)
    medium, or for a second transmission in the same round.
    """


class SchedulingError(CongestError):
    """Invalid wake-schedule manipulation (e.g., waking a node in the past)."""


class SimulationLimitError(CongestError):
    """The simulation exceeded its configured maximum number of rounds."""


class VectorizationError(CongestError):
    """The vectorized engine path was required but cannot engage.

    Raised by ``Network.run(engine="vectorized")`` when no program
    capability / compatible channel is available, so a forced vectorized
    run never *silently* degrades to the cached round loop.
    """
