"""Node-program API for the CONGEST-with-sleeping engine.

A distributed algorithm is written as a :class:`NodeProgram` subclass; the
engine instantiates one program per node. Programs see only local
information: their identifier, their neighbors' identifiers, a polynomial
bound ``n`` on the network size (standard in the model), a private random
generator, and the messages delivered to them while awake.

Sleeping semantics (Section 1.1 of the paper):

* A sleeping node performs no computation and neither sends nor receives.
  Messages addressed to it are *dropped*.
* A node cannot be woken by another node; it wakes only at rounds it
  scheduled for itself (or it is in the default always-awake mode).

Lifecycle per node::

    on_start(ctx)                 # before round 0; free local precomputation
    while not halted:
        if awake this round:
            on_round(ctx)         # send messages for this round
            on_receive(ctx, msgs) # messages delivered this round

``on_start`` is deliberately free of charge: the paper lets nodes do local
sampling and schedule computation "before the algorithm even starts"
(Section 2.1), which costs no awake rounds.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from .errors import SchedulingError
from .message import Message
from .state import StateField, install_descriptors

# Marker for "no whole-neighborhood broadcast pending this round".  Channels
# store a pending ``ctx.broadcast(payload)`` as a single marker assignment
# (``ctx._bcast = payload``) instead of one outbox tuple per neighbor, which
# is what makes batched broadcast delivery allocation-free on the send side.
NO_BROADCAST = object()


class Context:
    """Per-node view of the network, handed to every program callback."""

    __slots__ = (
        "_network",
        "node",
        "_neighbors",
        "_nbset",
        "n",
        "rng",
        "output",
        "_halted",
        "_always_awake",
        "_outbox",
        "_sent_to",
        "_bcast",
    )

    def __init__(self, network: Any, node: int, n: int,
                 rng: np.random.Generator):
        self._network = network
        self.node = node
        # Neighbor tuples are materialized lazily: a network of 10^6 nodes
        # running the vectorized engine never touches most of them, and
        # eagerly building one python tuple + frozenset per node is an
        # O(m) memory bill the CSR adjacency already paid once.
        self._neighbors: Optional[Tuple[int, ...]] = None
        self._nbset: Optional[frozenset] = None
        self.n = n
        self.rng = rng
        self.output: Dict[str, Any] = {}
        self._halted = False
        self._always_awake = True
        self._outbox: List[Tuple[int, Any]] = []
        self._sent_to: set = set()
        self._bcast: Any = NO_BROADCAST

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def neighbors(self) -> Tuple[int, ...]:
        """This node's neighbor ids, ascending (materialized on first use)."""
        neighbors = self._neighbors
        if neighbors is None:
            neighbors = self._network._neighbors_of(self.node)
            self._neighbors = neighbors
        return neighbors

    @property
    def _neighbor_set(self) -> frozenset:
        nbset = self._nbset
        if nbset is None:
            nbset = frozenset(self.neighbors)
            self._nbset = nbset
        return nbset

    @property
    def degree(self) -> int:
        neighbors = self._neighbors
        if neighbors is not None:
            return len(neighbors)
        return self._network._degree_of(self.node)

    @property
    def round(self) -> int:
        """Current round index (-1 during ``on_start``)."""
        return self._network.round_index

    @property
    def halted(self) -> bool:
        return self._halted

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------
    def send(self, neighbor: int, payload: Any = None) -> None:
        """Send one message to ``neighbor`` this round.

        Validation and pricing are the channel's business: the default
        :class:`~repro.congest.channels.CongestChannel` enforces the model's
        one-message-per-edge rule and the ``B``-bit budget; a
        :class:`~repro.congest.channels.LocalChannel` skips the bit
        accounting; a :class:`~repro.congest.channels.BroadcastChannel`
        rejects point-to-point sends outright (radio is a shared medium).
        """
        self._network.channel.on_send(self, neighbor, payload)

    def broadcast(self, payload: Any = None) -> None:
        """Send the same payload to every neighbor this round.

        On a radio channel this is the *transmit* primitive (one shared
        transmission, not per-neighbor messages).
        """
        self._network.channel.on_broadcast(self, payload)

    # ------------------------------------------------------------------
    # Sleep scheduling
    # ------------------------------------------------------------------
    def use_wake_schedule(self, rounds: Iterable[int]) -> None:
        """Switch to scheduled sleeping: awake only at the given rounds.

        May be called in ``on_start`` (typical: Lemma 2.5 schedules) or while
        awake, to extend the schedule with *future* rounds.
        """
        self._always_awake = False
        self._network._set_always_awake(self.node, False)
        current = self.round
        for wake_round in rounds:
            if wake_round <= current:
                raise SchedulingError(
                    f"node {self.node} tried to schedule round {wake_round} "
                    f"in the past (current round {current})"
                )
            self._network._schedule_wake(self.node, wake_round)

    def wake_at(self, wake_round: int) -> None:
        self.use_wake_schedule((wake_round,))

    def stay_awake(self) -> None:
        """Return to the default mode: awake every round until halting."""
        if not self._halted:
            self._always_awake = True
            self._network._set_always_awake(self.node, True)

    def halt(self) -> None:
        """Terminate this node: it sleeps forever and charges no more energy."""
        self._halted = True
        self._network._set_always_awake(self.node, False)
        # Prune any still-scheduled wake rounds so the engine's pending-work
        # accounting never re-checks entries that can no longer fire.
        self._network._prune_schedule(self.node)

    # ------------------------------------------------------------------
    # Engine plumbing
    # ------------------------------------------------------------------
    def _drain(self) -> Tuple[List[Tuple[int, Any]], Any]:
        """Take this round's pending traffic: ``(outbox, broadcast)``.

        The two are mutually exclusive by construction: a broadcast marker
        is only set when the outbox is empty, and any later ``send`` raises
        before queueing. A node only has sent-to bookkeeping if it queued
        messages, so an empty outbox needs no reset at all (the hot case
        for silent awake rounds).
        """
        outbox = self._outbox
        if outbox:
            self._outbox = []
            self._sent_to.clear()
        bcast = self._bcast
        if bcast is not NO_BROADCAST:
            self._bcast = NO_BROADCAST
        return outbox, bcast


class NodeProgram:
    """Base class for distributed node programs.

    Subclasses override any of the three callbacks. State should live on the
    program instance (``self``); the engine never shares instances between
    nodes.

    Per-node state a subclass declares via :meth:`state_schema` is owned by
    the network as flat typed columns (see :mod:`repro.congest.state`):
    attribute access in the program body transparently proxies into the
    node's column row, and vector kernels read/write the columns wholesale
    instead of looping over instances. Undeclared attributes keep living in
    the instance ``__dict__`` as before.
    """

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        # A schema-less class declares (), so this is a no-op for it.
        install_descriptors(cls)

    @classmethod
    def state_schema(cls) -> Tuple[StateField, ...]:
        """Typed per-node state columns this program wants the network to
        own (``()`` = keep everything in the instance ``__dict__``)."""
        return ()

    #: Vectorized-round capability hook. A program class whose dense
    #: rounds can be executed whole-network at a time overrides this with a
    #: factory ``(network) -> repro.congest.vectorized.VectorRound``
    #: (typically a classmethod); the factory may inspect the network and
    #: return ``None`` to decline (e.g. heterogeneous per-node parameters
    #: the kernel cannot flatten). ``None`` here means the engine always
    #: uses the scalar per-node loops. Runners come in two flavours:
    #: always-on kernels (engaged only while the wake calendar is empty)
    #: and schedule-aware kernels (``supports_schedules = True``), which
    #: assemble each round's active set from the calendar via
    #: :meth:`VectorRound.pop_scheduled_awake` and so also cover
    #: sleep-scheduled phases like the paper's Phase I. Declaring the
    #: capability is a promise of *bit-identical* semantics — outputs,
    #: metrics, ledger, traces, and per-node RNG draw order — which
    #: ``tests/test_engine_equivalence.py`` enforces for every registered
    #: algorithm.
    vector_round = None

    def on_start(self, ctx: Context) -> None:
        """Free local precomputation before round 0 (no sending allowed)."""

    def on_round(self, ctx: Context) -> None:
        """Called at every awake round; use ``ctx.send``/``ctx.broadcast``."""

    def on_receive(self, ctx: Context, messages: List[Message]) -> None:
        """Called after delivery at every awake round (possibly no messages)."""
