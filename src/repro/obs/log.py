"""The ``repro.*`` logging hierarchy behind ``--verbose``/``--quiet``.

All diagnostic output in the package goes through loggers named
``repro.<subsystem>`` (``repro.harness``, ``repro.dynamic``, ...), so one
:func:`configure_logging` call from a CLI entry point controls everything,
and library users keep the standard :mod:`logging` contract (silent by
default — the root ``repro`` logger gets a :class:`logging.NullHandler`,
never a stream handler, unless a CLI asks for one).

CLI result tables deliberately stay on stdout via ``print`` — they are the
program's *output*; logging carries *diagnostics* (progress, timings,
choices made) on stderr, so ``repro ... > results.txt`` keeps working.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

ROOT_NAME = "repro"

# Library default: never emit unless configured (standard practice).
logging.getLogger(ROOT_NAME).addHandler(logging.NullHandler())

_cli_handler: Optional[logging.Handler] = None


def get_logger(name: str = "") -> logging.Logger:
    """Logger ``repro.<name>`` (or the root ``repro`` logger for '')."""
    return logging.getLogger(
        f"{ROOT_NAME}.{name}" if name else ROOT_NAME
    )


def verbosity_level(verbose: int = 0, quiet: bool = False) -> int:
    """Map CLI flags to a :mod:`logging` level.

    ``--quiet`` wins over any ``-v``; default shows warnings only;
    ``-v`` shows progress (INFO); ``-vv`` shows per-cell detail (DEBUG).
    """
    if quiet:
        return logging.ERROR
    if verbose >= 2:
        return logging.DEBUG
    if verbose >= 1:
        return logging.INFO
    return logging.WARNING


def configure_logging(
    verbose: int = 0,
    quiet: bool = False,
    stream=None,
) -> logging.Logger:
    """Install (or retune) the CLI stderr handler on the ``repro`` logger.

    Idempotent: repeated calls replace the previous CLI handler instead of
    stacking duplicates, so tests and nested ``main()`` invocations stay
    clean. Returns the root ``repro`` logger.
    """
    global _cli_handler
    root = logging.getLogger(ROOT_NAME)
    if _cli_handler is not None:
        root.removeHandler(_cli_handler)
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    root.addHandler(handler)
    root.setLevel(verbosity_level(verbose, quiet))
    _cli_handler = handler
    return root
