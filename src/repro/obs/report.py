"""Aggregate and pretty-print a telemetry JSONL stream.

``python -m repro report runs.jsonl`` turns a (finished *or in-flight*)
stream written by the harness into per-configuration summary tables.

Loading is deliberately forgiving: a sweep that is still running may leave
a partially-written final line, and a killed run may leave a torn one
mid-file — both are counted and skipped, never fatal, so the report is
usable as a live progress view (``watch python -m repro report ...``).

Aggregation is streaming: records are folded one at a time into
:class:`~repro.analysis.stats.RunningStat` accumulators (grouped by the
record's identifying string coordinates, with every numeric field —
including nested ``metrics``/phase dicts, flattened to dotted keys —
summarized), so memory stays O(groups × keys) however long the stream is.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..analysis.stats import RunningStat

#: Fields that identify a run's configuration; equal values ⇒ same group.
GROUP_FIELDS = (
    "kind",
    "algorithm",
    "family",
    "workload",
    "strategy",
    "n",
    "channel",
    "engine",
    "rate",
    "epochs",
)

#: Envelope/identity fields never aggregated as measurements.
NON_METRIC_FIELDS = frozenset(GROUP_FIELDS) | {"schema", "pid", "seed"}

GroupKey = Tuple[Tuple[str, Any], ...]


def load_records(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """Read all complete JSON records from ``path``.

    Returns ``(records, skipped)`` where ``skipped`` counts undecodable
    lines (torn writes, a partial final line of an in-flight stream).
    """
    records: List[Dict[str, Any]] = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                skipped += 1
    return records, skipped


def flatten_numeric(
    record: Dict[str, Any], prefix: str = ""
) -> Dict[str, float]:
    """Numeric leaves of a (possibly nested) record, dotted-key flattened.

    Booleans count as 0/1 (so ``independent`` rates aggregate); strings
    and ``None`` are identity/annotation, not measurements, and are
    dropped. Histogram bucket dicts flatten like any other nesting.
    """
    flat: Dict[str, float] = {}
    for key, value in record.items():
        if not prefix and key in NON_METRIC_FIELDS:
            continue
        name = f"{prefix}{key}"
        if isinstance(value, bool):
            flat[name] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            flat[name] = float(value)
        elif isinstance(value, dict):
            flat.update(flatten_numeric(value, prefix=f"{name}."))
    return flat


def group_key(record: Dict[str, Any]) -> GroupKey:
    """The identifying coordinates of one record, as a hashable key."""
    return tuple(
        (field, record[field])
        for field in GROUP_FIELDS
        if record.get(field) is not None
    )


def aggregate_records(
    records: Iterable[Dict[str, Any]],
) -> Dict[GroupKey, Dict[str, RunningStat]]:
    """Fold records into per-group, per-key running statistics."""
    groups: Dict[GroupKey, Dict[str, RunningStat]] = {}
    for record in records:
        stats = groups.setdefault(group_key(record), {})
        for key, value in flatten_numeric(record).items():
            stat = stats.get(key)
            if stat is None:
                stat = stats[key] = RunningStat()
            stat.add(value)
    return groups


def format_report(
    groups: Dict[GroupKey, Dict[str, RunningStat]],
    *,
    skipped: int = 0,
    source: Optional[str] = None,
    max_keys: Optional[int] = None,
) -> str:
    """Human-readable summary tables, one block per configuration group.

    ``max_keys`` truncates very wide records (deep phase/histogram
    nesting) to the first N flattened keys per group, noting the cut.
    """
    total = sum(
        max((stat.count for stat in stats.values()), default=0)
        for stats in groups.values()
    )
    header = "telemetry report"
    if source:
        header += f": {source}"
    header += f" — {total} record(s), {len(groups)} group(s)"
    if skipped:
        header += f" ({skipped} partial/undecodable line(s) skipped)"
    lines = [header]
    for key in sorted(groups, key=repr):
        stats = groups[key]
        label = " ".join(f"{field}={value}" for field, value in key)
        count = max((stat.count for stat in stats.values()), default=0)
        lines.append("")
        lines.append(f"[{label or 'ungrouped'}]  records={count}")
        lines.append(
            f"  {'metric':<34} {'mean':>12} {'std':>10} "
            f"{'min':>12} {'max':>12}"
        )
        keys = sorted(stats)
        shown = keys if max_keys is None else keys[:max_keys]
        for name in shown:
            stat = stats[name]
            lines.append(
                f"  {name:<34} {stat.mean:>12.3f} {stat.std:>10.3f} "
                f"{stat.minimum:>12.3f} {stat.maximum:>12.3f}"
            )
        if len(shown) < len(keys):
            lines.append(
                f"  ... {len(keys) - len(shown)} more metric(s) truncated"
            )
    return "\n".join(lines)


def report_file(path: str, *, max_keys: Optional[int] = None) -> str:
    """Load → aggregate → format, the whole ``repro report`` pipeline."""
    records, skipped = load_records(path)
    groups = aggregate_records(records)
    return format_report(
        groups, skipped=skipped, source=path, max_keys=max_keys
    )
