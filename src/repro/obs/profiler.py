"""Wall-clock profiling instrument: nested section timers over the engine.

A :class:`Profiler` is an :class:`~repro.obs.instrument.Instrument` whose
value is not the event stream but the *time* between paired
``begin(name)``/``end()`` calls the engine places around its hot spots:

* ``round`` — one scalar/cached engine round (``Network.step``), with a
  nested ``deliver`` section for the channel's delivery phase;
* ``vector_round`` — one vectorized whole-network round, with a nested
  ``rng_prefetch`` section for the block refills of
  :class:`~repro.congest.vectorized.DrawStreams`;
* ``idle_ff`` — the O(1) idle fast-forward jumps;
* ``phase1``/``phase2``/``phase3``/... — the multi-phase drivers wrap each
  phase, so engine sections nest under the phase that ran them.

Sections form a tree keyed by name under their parent — entering the same
name twice under one parent accumulates into one node (calls, total
seconds). :meth:`Profiler.render` pretty-prints the tree with percentages
of the profiled wall clock; :meth:`Profiler.as_dict` produces the
JSON-friendly form embedded in ``MISResult.details["profile"]``.

The profiler deliberately has no disabled mode of its own: engines only
call ``begin``/``end`` when a profiler is present (the cached boolean/None
checks described in :mod:`repro.obs.instrument`), so an unprofiled run
never touches :func:`time.perf_counter`.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from time import perf_counter
from typing import Any, Dict, List, Optional

from .instrument import Instrument


class SectionStat:
    """One node of the profile tree: cumulative time of a named section."""

    __slots__ = ("name", "calls", "total_s", "children")

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.total_s = 0.0
        self.children: Dict[str, "SectionStat"] = {}

    def child(self, name: str) -> "SectionStat":
        node = self.children.get(name)
        if node is None:
            node = SectionStat(name)
            self.children[name] = node
        return node

    def as_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "calls": self.calls,
            "total_s": self.total_s,
        }
        if self.children:
            data["children"] = [
                child.as_dict() for child in self.children.values()
            ]
        return data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SectionStat({self.name!r}, calls={self.calls}, "
            f"total_s={self.total_s:.6f})"
        )


class Profiler(Instrument):
    """Nested wall-clock section timers, usable as an ambient instrument.

    The profiled wall clock runs from construction (or the last
    :meth:`reset`) to the moment a report is taken, so section totals can
    be read as fractions of real elapsed time — the engine's sections are
    guaranteed to sum to *at most* the wall clock (unattributed time is
    setup, verification, and python glue between sections).
    """

    def __init__(self) -> None:
        self.profiler = self  # engines discover the profiler through this
        self.root = SectionStat("total")
        self._stack: List[SectionStat] = [self.root]
        self._starts: List[float] = []
        self._wall_start = perf_counter()

    # -- hot-path API (engine calls) ------------------------------------
    def begin(self, name: str) -> None:
        """Enter section ``name`` under the currently open section."""
        node = self._stack[-1].child(name)
        node.calls += 1
        self._stack.append(node)
        self._starts.append(perf_counter())

    def end(self) -> None:
        """Leave the innermost open section, accumulating its elapsed time."""
        elapsed = perf_counter() - self._starts.pop()
        self._stack.pop().total_s += elapsed

    @contextmanager
    def section(self, name: str):
        """Context-managed :meth:`begin`/:meth:`end` (exception-safe)."""
        self.begin(name)
        try:
            yield self
        finally:
            self.end()

    # -- reporting ------------------------------------------------------
    @property
    def wall_s(self) -> float:
        """Wall-clock seconds since construction / the last reset."""
        return perf_counter() - self._wall_start

    def reset(self) -> None:
        if len(self._stack) != 1:
            raise RuntimeError(
                f"cannot reset with {len(self._stack) - 1} open section(s)"
            )
        self.root = SectionStat("total")
        self._stack = [self.root]
        self._starts = []
        self._wall_start = perf_counter()

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly profile: wall clock + the section tree."""
        if len(self._stack) != 1:
            raise RuntimeError(
                f"profile read with {len(self._stack) - 1} open section(s)"
            )
        return {
            "wall_s": self.wall_s,
            "sections": [
                child.as_dict() for child in self.root.children.values()
            ],
        }

    def render(self) -> str:
        return render_profile(self.as_dict())


def render_profile(profile: Dict[str, Any]) -> str:
    """Pretty-print a profile dict (from :meth:`Profiler.as_dict` or a
    deserialized ``MISResult.details["profile"]``) as an indented tree.

    Percentages are of the profiled wall clock; children of a section are
    fractions of that same wall clock, so the tree reads uniformly.
    """
    wall = float(profile.get("wall_s", 0.0))
    sections = profile.get("sections", [])
    tracked = sum(float(node.get("total_s", 0.0)) for node in sections)
    lines = [
        f"profile: wall {wall * 1000:.1f}ms, "
        f"tracked {tracked * 1000:.1f}ms "
        f"({_pct(tracked, wall)} of wall)"
    ]

    def walk(node: Dict[str, Any], depth: int) -> None:
        total = float(node.get("total_s", 0.0))
        calls = int(node.get("calls", 0))
        label = "  " * depth + str(node.get("name", "?"))
        lines.append(
            f"  {label:<28} {total * 1000:>9.1f}ms "
            f"{_pct(total, wall):>6}  x{calls}"
        )
        for child in node.get("children", []):
            walk(child, depth + 1)

    for node in sections:
        walk(node, 1)
    return "\n".join(lines)


def _pct(part: float, whole: float) -> str:
    if whole <= 0:
        return "-"
    return f"{100.0 * part / whole:.1f}%"


def section_scope(profiler: Optional[Profiler], name: str):
    """A ``with``-able section on ``profiler``, or a no-op when ``None``.

    The one-liner the phase drivers use so un-profiled runs skip timer
    calls entirely::

        with section_scope(instrument.profiler, "phase1"):
            ...
    """
    if profiler is None:
        return nullcontext()
    return profiler.section(name)
