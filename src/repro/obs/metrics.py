"""Metrics registry: counters, gauges, and histograms over run events.

The registry is the quantitative side of observability — where the
:class:`~repro.obs.profiler.Profiler` answers "where did the wall clock
go", the registry answers "how much of everything happened": awake nodes
per round, messages sent/delivered/dropped, radio collisions, energy-ledger
charges, dynamic repair sizes.

Three primitive types, all in-process and dependency-free:

* :class:`Counter` — a monotonically increasing total;
* :class:`Gauge` — a last-write-wins value;
* :class:`Histogram` — a streaming distribution (count/total/min/max plus
  power-of-two magnitude buckets, so awake-count and repair-size
  distributions stay O(log range) in memory on million-round runs).

:class:`MetricsInstrument` adapts the registry to the
:class:`~repro.obs.instrument.Instrument` event stream, which is how the
engine fills it without knowing the registry exists. Every value is
exported by :meth:`MetricsRegistry.as_dict`, ready for the JSONL telemetry
stream.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .instrument import Instrument


class Counter:
    """Monotonic total; ``inc`` is the only mutator."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot add {amount}")
        self.value += amount


class Gauge:
    """Last-write-wins value (e.g. the run's final max energy)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming distribution with power-of-two magnitude buckets.

    Bucket ``i`` counts observations ``v`` with ``2**(i-1) <= v < 2**i``
    (bucket 0 counts zeros), so the export is compact no matter how many
    rounds were observed while still showing the shape (how many rounds
    had ~1, ~100, ~10k awake nodes).
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        bucket = int(value).bit_length() if value >= 1 else 0
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Named registry of counters/gauges/histograms; idempotent getters."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_fresh(name)
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_fresh(name)
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_fresh(name)
            metric = self._histograms[name] = Histogram(name)
        return metric

    def _check_fresh(self, name: str) -> None:
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {kind}"
                )

    def as_dict(self) -> Dict[str, Any]:
        """Flat, JSON-friendly export of every registered metric."""
        data: Dict[str, Any] = {}
        for name, counter in sorted(self._counters.items()):
            data[name] = counter.value
        for name, gauge in sorted(self._gauges.items()):
            data[name] = gauge.value
        for name, histogram in sorted(self._histograms.items()):
            data[name] = histogram.as_dict()
        return data


class MetricsInstrument(Instrument):
    """Fill a :class:`MetricsRegistry` from the engine's event stream.

    Message/collision counters are accumulated as *deltas* between
    ``on_run_start`` and ``on_run_end`` snapshots of the network's own
    counters, so several sequential runs (multi-phase algorithms, dynamic
    repairs) observed by one instrument add up instead of double-counting.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._baseline: Dict[int, List[int]] = {}

    @staticmethod
    def _network_counters(network) -> List[int]:
        return [
            network.messages_sent,
            network.messages_delivered,
            network.messages_dropped,
            network.collisions,
        ]

    def on_run_start(self, network) -> None:
        self.registry.counter("runs").inc()
        self._baseline[id(network)] = self._network_counters(network)

    def on_round(self, network, round_index: int, awake: int) -> None:
        self.registry.counter("rounds").inc()
        self.registry.counter("awake_node_rounds").inc(awake)
        self.registry.histogram("awake_nodes").observe(awake)

    def on_phase_start(self, name: str) -> None:
        self.registry.counter(f"phase.{name}.runs").inc()

    def on_phase_end(self, name: str, metrics) -> None:
        self.registry.counter(f"phase.{name}.rounds").inc(metrics.rounds)
        self.registry.gauge(f"phase.{name}.max_energy").set(
            metrics.max_energy
        )

    def on_epoch(self, epoch) -> None:
        self.registry.counter("epochs").inc()
        self.registry.histogram("repair_region").observe(epoch.repair_region)
        self.registry.histogram("mis_churn").observe(epoch.mis_churn)

    def on_run_end(self, network, metrics) -> None:
        before = self._baseline.pop(id(network), [0, 0, 0, 0])
        after = self._network_counters(network)
        registry = self.registry
        registry.counter("messages_sent").inc(after[0] - before[0])
        registry.counter("messages_delivered").inc(after[1] - before[1])
        registry.counter("messages_dropped").inc(after[2] - before[2])
        registry.counter("collisions").inc(after[3] - before[3])
        # Ledger charges: the run's cumulative awake-round total (the
        # ledger may be shared across phases, so gauges — not deltas —
        # report the final accumulated account).
        registry.gauge("ledger.total_energy").set(metrics.total_energy)
        registry.gauge("ledger.max_energy").set(metrics.max_energy)
        registry.gauge("ledger.average_energy").set(metrics.average_energy)
