"""Streaming JSONL telemetry sink for harness runs.

One run (one seed of one config) produces one self-describing JSON object
on one line, appended to the sink file *as the run completes* — not
collected and dumped at the end. A sweep over thousands of seeds therefore
behaves like a job whose output can be tailed (``tail -f runs.jsonl``),
checkpointed, and aggregated mid-flight (``python -m repro report
runs.jsonl`` tolerates a partially-written final line).

Process-pool safety
-------------------

Harness sweeps fan out over :func:`repro.harness.parallel.parallel_map`
workers. Each emission opens the file in append mode, writes one line,
flushes, and closes; on POSIX, ``O_APPEND`` writes of a line well under
the pipe-buffer size are atomic, so concurrent workers interleave whole
records, never bytes. The active sink path is ambient module state
(:func:`set_telemetry_path` / :func:`telemetry_scope`); ``parallel_map``
re-installs it inside every spawned worker, which inherits nothing.

Record schema (``"schema": 1``)
-------------------------------

Common fields: ``kind`` (``"static"`` | ``"dynamic"``), ``schema``,
``pid``, ``elapsed_s``, plus the identifying coordinates of the run
(``algorithm``, ``family``, ``n``, ``seed``, ``channel`` for static runs;
``workload``, ``strategy``, ``epochs``, ``rate`` for dynamic ones).
Static records embed the full ``RunMetrics.to_dict()`` under ``metrics``
(including per-phase breakdowns) and the verification verdict; dynamic
records embed the ``DynamicRunResult.summary()`` numbers.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from typing import Any, Dict, List, Optional

#: Version tag stamped into every record so future schema changes stay
#: distinguishable in long-lived archives.
SCHEMA_VERSION = 1

_SINK_PATH: Optional[str] = None


def set_telemetry_path(path: Optional[str]) -> None:
    """Install (or, with ``None``, remove) the ambient JSONL sink path."""
    global _SINK_PATH
    _SINK_PATH = os.fspath(path) if path is not None else None


def telemetry_path() -> Optional[str]:
    """The active sink path, or ``None`` when telemetry is disabled."""
    return _SINK_PATH


@contextmanager
def telemetry_scope(path: Optional[str]):
    """Temporarily install a sink path (``None`` is a no-op passthrough)."""
    if path is None:
        yield
        return
    global _SINK_PATH
    previous = _SINK_PATH
    _SINK_PATH = os.fspath(path)
    try:
        yield
    finally:
        _SINK_PATH = previous


def emit(record: Dict[str, Any], path: Optional[str] = None) -> bool:
    """Append one record to the sink; returns whether anything was written.

    ``path=None`` uses the ambient sink; with no sink configured the call
    is a cheap no-op, so harness code can emit unconditionally. Values
    that are not JSON-serializable are stringified rather than dropped —
    a telemetry line must never kill the run that produced it.
    """
    target = path if path is not None else _SINK_PATH
    if target is None:
        return False
    line = json.dumps(record, default=str, separators=(",", ":"))
    with open(target, "a", encoding="utf-8") as sink:
        sink.write(line + "\n")
        sink.flush()
    return True


def make_record(kind: str, **fields: Any) -> Dict[str, Any]:
    """A record skeleton with the self-describing envelope fields."""
    record: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "pid": os.getpid(),
    }
    record.update(fields)
    return record


def channel_label(channel: Any) -> Optional[str]:
    """Normalize a channel spec (name, instance, factory) for a record."""
    if channel is None:
        return None
    if isinstance(channel, str):
        return channel
    name = getattr(channel, "name", None)
    if isinstance(name, str):
        return name
    return type(channel).__name__


def read_records(path: str) -> List[Dict[str, Any]]:
    """Read every complete record from a JSONL stream (see also
    :func:`repro.obs.report.load_records`, which reports skipped lines)."""
    from .report import load_records  # deferred: report pulls in analysis

    records, _ = load_records(path)
    return records
