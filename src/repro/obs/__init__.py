"""Run telemetry layer: instruments, profiling, metrics, and JSONL streams.

The observability subsystem gives every execution layer of the simulator a
single, structured way to say what it is doing:

* :class:`Instrument` — the event interface (``on_run_start``,
  ``on_round``, ``on_phase_start``/``on_phase_end``, ``on_epoch``,
  ``on_run_end``) every engine path emits through. The disabled path is a
  shared :data:`NULL_INSTRUMENT` null object plus per-network boolean
  guards, so an uninstrumented run pays only a handful of ``is not None``
  checks per round (gated ≤5% by ``benchmarks/test_bench_obs.py``).
* :class:`Profiler` — an instrument carrying nested wall-clock section
  timers over the engine hot spots (scalar rounds, channel delivery,
  vectorized rounds, RNG draw prefetch, idle fast-forward, algorithm
  phases), rendered as a per-run profile tree.
* :class:`MetricsRegistry` / :class:`MetricsInstrument` —
  counters/gauges/histograms (awake nodes, messages, collisions, ledger
  charges, repair sizes) filled from the event stream.
* :mod:`repro.obs.telemetry` — a streaming JSONL sink: harness runs append
  one self-describing record per seed/config *as it completes* (safe under
  ``parallel_map`` process pools), so a long sweep can be tailed,
  checkpointed, and aggregated while still running.
* :mod:`repro.obs.report` — loader/aggregator for those streams (tolerant
  of a partially-written final line); ``python -m repro report run.jsonl``
  pretty-prints a finished or in-flight stream.
* :mod:`repro.obs.log` — the ``repro.*`` :mod:`logging` hierarchy behind
  the CLI ``--verbose``/``--quiet`` flags.

``repro.obs.report`` is deliberately *not* imported here: the engine
(`repro.congest.network`) imports this package on module load, and the
report module depends on :mod:`repro.analysis`, which would widen the
engine's import footprint for a tool only the CLI needs.
"""

from .instrument import (
    NULL_INSTRUMENT,
    CompositeInstrument,
    Instrument,
    NullInstrument,
    RecordingInstrument,
    current_instrument,
    instrument_scope,
    resolve_instrument,
)
from .log import configure_logging, get_logger
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsInstrument,
    MetricsRegistry,
)
from .profiler import Profiler, SectionStat, render_profile, section_scope
from .telemetry import (
    SCHEMA_VERSION,
    channel_label,
    emit,
    make_record,
    set_telemetry_path,
    telemetry_path,
    telemetry_scope,
)

__all__ = [
    "CompositeInstrument",
    "Counter",
    "Gauge",
    "Histogram",
    "Instrument",
    "MetricsInstrument",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "NullInstrument",
    "Profiler",
    "RecordingInstrument",
    "SCHEMA_VERSION",
    "SectionStat",
    "channel_label",
    "configure_logging",
    "current_instrument",
    "emit",
    "get_logger",
    "instrument_scope",
    "make_record",
    "render_profile",
    "resolve_instrument",
    "section_scope",
    "set_telemetry_path",
    "telemetry_path",
    "telemetry_scope",
]
