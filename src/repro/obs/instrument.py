"""The :class:`Instrument` event interface every engine path emits through.

An instrument observes one or more simulations. The engine calls it at a
handful of well-defined points:

* ``on_run_start(network)`` — after ``on_start`` callbacks, before round 0;
* ``on_round(network, round_index, awake)`` — after every executed round
  (scalar, cached, or vectorized), with the number of awake nodes;
* ``on_phase_start(name)`` / ``on_phase_end(name, metrics)`` — around each
  phase of a multi-phase driver (``algorithm1``/``algorithm2`` and the
  constant-average-energy compositions);
* ``on_epoch(epoch)`` — after each epoch of a dynamic churn timeline, with
  the :class:`~repro.dynamic.simulator.EpochResult` row;
* ``on_run_end(network, metrics)`` — when ``Network.run``/``run_rounds``
  returns.

Idle rounds the engine fast-forwards over emit no ``on_round`` events —
they are visible as gaps in ``round_index`` (and as profiler ``idle_ff``
sections), mirroring how :class:`~repro.congest.trace.NetworkTrace` stores
them as compact spans.

Disabled-path cost
------------------

The default instrument is the shared :data:`NULL_INSTRUMENT` null object.
Networks cache ``instrument is not NULL_INSTRUMENT`` as a boolean at
construction, so the cached and vectorized round loops pay only a couple
of predictable branch checks per round when observability is off
(CI-gated by ``benchmarks/test_bench_obs.py``). Events that fire O(1)
times per run (run/phase/epoch boundaries) go through the null object's
no-op methods unconditionally — simpler call sites, unmeasurable cost.

Instruments are installed either per network (``Network(instrument=...)``)
or ambiently with :func:`instrument_scope`, which is how one profiler
observes every internal network a multi-phase algorithm builds — the same
pattern as :func:`repro.congest.channels.channel_scope`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, List, Optional, Sequence, Tuple


class Instrument:
    """Base class: every hook is a no-op, so subclasses override à la carte.

    The ``profiler`` attribute lets the engine find a wall-clock profiler
    inside whatever instrument it was handed (a bare :class:`Profiler`
    sets it to itself; a :class:`CompositeInstrument` exposes the first
    profiling member) without isinstance checks on the hot path.
    """

    #: The :class:`~repro.obs.profiler.Profiler` carried by this
    #: instrument, if any; engines cache it and call ``begin``/``end``
    #: around their hot sections only when it is not ``None``.
    profiler = None

    def on_run_start(self, network) -> None:
        """A network finished ``on_start`` and is about to run round 0."""

    def on_round(self, network, round_index: int, awake: int) -> None:
        """One synchronous round executed with ``awake`` nodes awake."""

    def on_phase_start(self, name: str) -> None:
        """A multi-phase driver is entering phase ``name``."""

    def on_phase_end(self, name: str, metrics) -> None:
        """Phase ``name`` finished with the given
        :class:`~repro.congest.metrics.RunMetrics`."""

    def on_epoch(self, epoch) -> None:
        """A dynamic timeline finished one epoch
        (:class:`~repro.dynamic.simulator.EpochResult`)."""

    def on_run_end(self, network, metrics) -> None:
        """``Network.run``/``run_rounds`` returned ``metrics``."""


class NullInstrument(Instrument):
    """The disabled path: a shared, stateless no-op (null object)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NULL_INSTRUMENT"


#: The singleton every network without an instrument resolves to. Engines
#: compare against it by identity to skip all per-round emission.
NULL_INSTRUMENT = NullInstrument()


class CompositeInstrument(Instrument):
    """Fan one event stream out to several instruments, in order."""

    def __init__(self, instruments: Sequence[Instrument]):
        self.instruments: Tuple[Instrument, ...] = tuple(
            inst for inst in instruments if inst is not NULL_INSTRUMENT
        )
        for inst in self.instruments:
            if inst.profiler is not None:
                self.profiler = inst.profiler
                break

    def on_run_start(self, network) -> None:
        for inst in self.instruments:
            inst.on_run_start(network)

    def on_round(self, network, round_index: int, awake: int) -> None:
        for inst in self.instruments:
            inst.on_round(network, round_index, awake)

    def on_phase_start(self, name: str) -> None:
        for inst in self.instruments:
            inst.on_phase_start(name)

    def on_phase_end(self, name: str, metrics) -> None:
        for inst in self.instruments:
            inst.on_phase_end(name, metrics)

    def on_epoch(self, epoch) -> None:
        for inst in self.instruments:
            inst.on_epoch(epoch)

    def on_run_end(self, network, metrics) -> None:
        for inst in self.instruments:
            inst.on_run_end(network, metrics)


class RecordingInstrument(Instrument):
    """Append every event to a list — the reference observer for tests.

    Each event is a tuple ``(kind, *payload)``; networks are recorded by
    identity-free summaries (round counts, awake counts) so recorded runs
    can be compared across engine paths without holding networks alive.
    """

    def __init__(self) -> None:
        self.events: List[Tuple[Any, ...]] = []
        self.rounds_seen = 0
        self.awake_total = 0

    def on_run_start(self, network) -> None:
        self.events.append(("run_start", network.round_index))

    def on_round(self, network, round_index: int, awake: int) -> None:
        self.rounds_seen += 1
        self.awake_total += awake
        self.events.append(("round", round_index, awake))

    def on_phase_start(self, name: str) -> None:
        self.events.append(("phase_start", name))

    def on_phase_end(self, name: str, metrics) -> None:
        self.events.append(("phase_end", name, metrics.rounds))

    def on_epoch(self, epoch) -> None:
        self.events.append(("epoch", epoch.epoch, epoch.mis_size))

    def on_run_end(self, network, metrics) -> None:
        self.events.append(("run_end", metrics.rounds))

    def of_kind(self, kind: str) -> List[Tuple[Any, ...]]:
        return [event for event in self.events if event[0] == kind]


# Ambient default, settable by instrument_scope — a stack, so nested
# scopes (e.g. a profiled run inside an instrumented sweep) restore
# correctly.
_SCOPE_STACK: List[Instrument] = []


@contextmanager
def instrument_scope(instrument: Optional[Instrument]):
    """Make ``instrument`` the default for Networks built inside.

    ``instrument_scope(None)`` is a no-op (inherits any enclosing scope),
    so wrappers can pass their own ``instrument=None`` default through
    unconditionally.
    """
    if instrument is None:
        yield
        return
    _SCOPE_STACK.append(instrument)
    try:
        yield
    finally:
        _SCOPE_STACK.pop()


def current_instrument() -> Instrument:
    """The innermost scoped instrument, or :data:`NULL_INSTRUMENT`."""
    return _SCOPE_STACK[-1] if _SCOPE_STACK else NULL_INSTRUMENT


def resolve_instrument(spec: Optional[Instrument]) -> Instrument:
    """Resolve a ``Network(instrument=...)`` argument.

    ``None`` defers to the innermost :func:`instrument_scope`, falling
    back to the shared null object.
    """
    if spec is None:
        return current_instrument()
    if isinstance(spec, Instrument):
        return spec
    raise TypeError(
        f"cannot interpret {spec!r} as an Instrument"
    )
