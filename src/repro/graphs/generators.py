"""Graph workload generators for all experiments.

Every generator returns a :class:`networkx.Graph` whose nodes are the
integers ``0 .. n-1`` (MIS algorithms assume unique comparable identifiers),
and is deterministic in its ``seed``.

The random families additionally offer an **array-native** construction
path (``as_arrays=True`` on :func:`gnp`, :func:`gnp_expected_degree` and
:func:`make_family`): edges are sampled straight into flat numpy arrays and
lexsorted into a :class:`~repro.congest.vectorized.GraphArrays` CSR — no
``networkx.Graph`` of per-node adjacency dicts is ever materialized, which
is what makes ``n = 10^6`` graphs constructible on laptop-class memory.
The array-native G(n, p) sampler is deterministic in ``seed`` but draws
from ``numpy.random.default_rng``, so it is *not* edge-identical to the
``networkx`` sampler at the same seed (both are exact G(n, p) samplers).

The families mirror the settings the paper targets:

* ``gnp`` / ``gnp_expected_degree`` — the generic dense/sparse random graphs
  used for scaling sweeps;
* ``random_geometric`` — the wireless sensor-network motivation from the
  introduction (energy matters because nodes run on batteries);
* ``random_regular`` — controlled maximum degree Δ, used for the
  Lemma 3.1/3.4 experiments;
* ``barabasi_albert`` — heavy-tailed degrees, stressing the degree-reduction
  phases;
* structured families (grids, trees, stars, cliques, paths, caterpillars)
  — adversarial shapes for correctness and property tests.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Optional

import networkx as nx
import numpy as np


def _relabel(graph: nx.Graph) -> nx.Graph:
    """Relabel nodes to 0..n-1 preserving determinism.

    Graphs already labelled ``0..n-1`` pass through untouched, and
    relabelings whose old and new label sets are disjoint (grid tuples →
    ints) rewrite the graph in place — either way at most one copy of the
    graph is alive, halving the peak memory of the old always-copy path.
    """
    n = graph.number_of_nodes()
    labels = set(graph.nodes)
    if labels == set(range(n)):
        return graph
    mapping = {
        node: index
        for index, node in enumerate(sorted(graph.nodes, key=str))
    }
    if labels.isdisjoint(mapping.values()):
        return nx.relabel_nodes(graph, mapping, copy=False)
    return nx.relabel_nodes(graph, mapping, copy=True)


def _check_n(n: int) -> None:
    if n < 1:
        raise ValueError(f"graph size must be positive, got n={n}")


def empty_graph(n: int) -> nx.Graph:
    """n isolated nodes (every node joins any MIS)."""
    _check_n(n)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    return graph


def path(n: int) -> nx.Graph:
    _check_n(n)
    return nx.path_graph(n)


def cycle(n: int) -> nx.Graph:
    _check_n(n)
    if n < 3:
        raise ValueError("cycle needs at least 3 nodes")
    return nx.cycle_graph(n)


def star(n: int) -> nx.Graph:
    """Star with one hub and n-1 leaves (max degree n-1)."""
    _check_n(n)
    return nx.star_graph(n - 1)


def clique(n: int) -> nx.Graph:
    _check_n(n)
    return nx.complete_graph(n)


def grid_2d(rows: int, cols: int) -> nx.Graph:
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    return _relabel(nx.grid_2d_graph(rows, cols))


def balanced_tree(branching: int, height: int) -> nx.Graph:
    if branching < 1 or height < 0:
        raise ValueError("invalid tree parameters")
    return _relabel(nx.balanced_tree(branching, height))


def caterpillar(spine: int, legs_per_node: int) -> nx.Graph:
    """A path of ``spine`` nodes, each with ``legs_per_node`` pendant leaves."""
    if spine < 1 or legs_per_node < 0:
        raise ValueError("invalid caterpillar parameters")
    graph = nx.path_graph(spine)
    next_id = spine
    for backbone in range(spine):
        for _ in range(legs_per_node):
            graph.add_edge(backbone, next_id)
            next_id += 1
    return graph


def _gnp_positions(rng, total: int, p: float) -> np.ndarray:
    """Sample the sorted linear positions of a G(n, p) edge set.

    Geometric skip-sampling over the linearized upper triangle
    ``[0, total)``: each gap between consecutive selected positions is
    ``Geometric(p)``, drawn in batches sized to the expected remainder, so
    the work is ``O(m)`` for ``m`` sampled edges regardless of ``total``.
    """
    chunks = []
    position = -1
    while position < total - 1:
        expect = (total - 1 - position) * p
        size = min(int(expect + 4.0 * np.sqrt(expect + 1.0)) + 16, 1 << 24)
        gaps = rng.geometric(p, size=size).astype(np.int64, copy=False)
        offsets = position + np.cumsum(gaps)
        chunks.append(offsets)
        position = int(offsets[-1])
    positions = np.concatenate(chunks) if chunks else np.empty(0, np.int64)
    return positions[positions < total]


def _gnp_arrays(n: int, p: float, seed: int):
    """Array-native G(n, p): sample straight into a CSR ``GraphArrays``."""
    from ..congest.vectorized import GraphArrays

    total = n * (n - 1) // 2
    if total == 0 or 1.0 - p == 1.0:
        empty = np.empty(0, dtype=np.int64)
        return GraphArrays.from_edges(n, empty, empty)
    if p == 1.0:
        head, tail = np.triu_indices(n, k=1)
        return GraphArrays.from_edges(n, head, tail)
    rng = np.random.default_rng(seed)
    positions = _gnp_positions(rng, total, p)
    # Decode linear position -> (head, tail): row i holds the pairs
    # (i, i+1 .. n-1), so rows occupy [starts[i], ends[i]) with
    # row lengths n-1-i.
    counts = np.arange(n - 1, 0, -1, dtype=np.int64)
    ends = np.cumsum(counts)
    head = np.searchsorted(ends, positions, side="right").astype(np.int64)
    tail = positions - (ends[head] - counts[head]) + head + 1
    return GraphArrays.from_edges(n, head, tail)


def gnp(n: int, p: float, seed: int = 0, *, as_arrays: bool = False):
    """Erdős–Rényi G(n, p).

    ``as_arrays=True`` samples edges directly into a CSR-backed
    :class:`~repro.congest.vectorized.GraphArrays` (deterministic in
    ``seed``, but not edge-identical to the networkx path — see module
    docstring) without building a ``networkx.Graph``.
    """
    _check_n(n)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"edge probability must be in [0, 1], got {p}")
    if as_arrays:
        return _gnp_arrays(n, p, seed)
    if p == 1.0:
        return clique(n)
    if 1.0 - p == 1.0:
        # p is zero or so small that networkx's geometric-skipping sampler
        # would divide by log(1-p) == 0; such graphs are empty in practice.
        return empty_graph(n)
    graph = nx.fast_gnp_random_graph(n, p, seed=seed)
    graph.add_nodes_from(range(n))
    return graph


def gnp_expected_degree(
    n: int, degree: float, seed: int = 0, *, as_arrays: bool = False
):
    """G(n, p) with p chosen so the expected degree is ``degree``."""
    _check_n(n)
    if degree < 0:
        raise ValueError(f"expected degree must be non-negative, got {degree}")
    if n == 1:
        return gnp(1, 0.0, seed=seed, as_arrays=as_arrays) if as_arrays \
            else empty_graph(1)
    p = min(1.0, degree / (n - 1))
    return gnp(n, p, seed=seed, as_arrays=as_arrays)


def random_regular(n: int, degree: int, seed: int = 0) -> nx.Graph:
    """Random ``degree``-regular graph (``n * degree`` must be even)."""
    _check_n(n)
    if degree < 0 or degree >= n:
        raise ValueError(f"degree must be in [0, n), got {degree}")
    if (n * degree) % 2 != 0:
        raise ValueError("n * degree must be even for a regular graph")
    return nx.random_regular_graph(degree, n, seed=seed)


def random_geometric(n: int, radius: Optional[float] = None, seed: int = 0) -> nx.Graph:
    """Random geometric graph on the unit square (sensor-network workload).

    When ``radius`` is omitted we pick the standard connectivity-threshold
    scale ``sqrt(2 ln n / n)``, which makes the graph connected w.h.p. while
    keeping degrees ``Θ(log n)``.
    """
    _check_n(n)
    if radius is None:
        radius = float(np.sqrt(2.0 * np.log(max(2, n)) / n))
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    graph = nx.random_geometric_graph(n, radius, seed=seed)
    graph.add_nodes_from(range(n))
    return graph


def barabasi_albert(n: int, attachment: int = 3, seed: int = 0) -> nx.Graph:
    """Preferential-attachment graph with heavy-tailed degrees."""
    _check_n(n)
    if n <= attachment:
        return clique(n)
    return nx.barabasi_albert_graph(n, attachment, seed=seed)


def disjoint_cliques(count: int, size: int) -> nx.Graph:
    """``count`` disjoint cliques of ``size`` nodes (small-component stress)."""
    if count < 1 or size < 1:
        raise ValueError("invalid clique-union parameters")
    graph = nx.Graph()
    for index in range(count):
        offset = index * size
        graph.add_nodes_from(range(offset, offset + size))
        for u, v in itertools.combinations(range(offset, offset + size), 2):
            graph.add_edge(u, v)
    return graph


def planted_max_degree(n: int, delta: int, seed: int = 0) -> nx.Graph:
    """Graph with max degree exactly ``delta``: a random near-regular graph.

    Used by the Lemma 3.1 / 3.4 experiments, which need a controlled Δ.
    """
    _check_n(n)
    if delta >= n:
        raise ValueError(f"delta={delta} must be < n={n}")
    degree = delta
    if (n * degree) % 2 != 0:
        degree -= 1
    if degree <= 0:
        return empty_graph(n)
    return random_regular(n, degree, seed=seed)


# ----------------------------------------------------------------------
# Family registry for sweeps: name -> fn(n, seed) -> graph
# ----------------------------------------------------------------------
GraphFactory = Callable[[int, int], nx.Graph]

FAMILIES: Dict[str, GraphFactory] = {
    "gnp_sqrt_degree": lambda n, seed: gnp_expected_degree(
        n, max(1.0, float(np.sqrt(n))), seed=seed
    ),
    "gnp_log_degree": lambda n, seed: gnp_expected_degree(
        n, max(1.0, float(np.log2(max(2, n)))), seed=seed
    ),
    "random_regular_16": lambda n, seed: random_regular(n, min(16, n - 1), seed=seed),
    "geometric": lambda n, seed: random_geometric(n, seed=seed),
    "barabasi_albert": lambda n, seed: barabasi_albert(n, 3, seed=seed),
    "grid": lambda n, seed: grid_2d(
        max(1, int(np.sqrt(n))), max(1, int(np.sqrt(n)))
    ),
}


#: Families with a fully array-native sampler (no networkx at any point);
#: the rest build the networkx graph and convert via ``from_graph``.
_ARRAY_FAMILIES: Dict[str, GraphFactory] = {
    "gnp_sqrt_degree": lambda n, seed: gnp_expected_degree(
        n, max(1.0, float(np.sqrt(n))), seed=seed, as_arrays=True
    ),
    "gnp_log_degree": lambda n, seed: gnp_expected_degree(
        n, max(1.0, float(np.log2(max(2, n)))), seed=seed, as_arrays=True
    ),
}


def make_family(name: str, n: int, seed: int = 0, *, as_arrays: bool = False):
    """Instantiate a registered family by name.

    ``as_arrays=True`` returns a CSR-backed
    :class:`~repro.congest.vectorized.GraphArrays`: array-natively sampled
    for the G(n, p) families, converted from the networkx graph otherwise.
    """
    if name not in FAMILIES:
        raise KeyError(f"unknown graph family {name!r}; have {sorted(FAMILIES)}")
    if as_arrays:
        native = _ARRAY_FAMILIES.get(name)
        if native is not None:
            return native(n, seed)
        from ..congest.vectorized import GraphArrays

        return GraphArrays.from_graph(FAMILIES[name](n, seed))
    return FAMILIES[name](n, seed)
