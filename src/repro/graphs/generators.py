"""Graph workload generators for all experiments.

Every generator returns a :class:`networkx.Graph` whose nodes are the
integers ``0 .. n-1`` (MIS algorithms assume unique comparable identifiers),
and is deterministic in its ``seed``.

The families mirror the settings the paper targets:

* ``gnp`` / ``gnp_expected_degree`` — the generic dense/sparse random graphs
  used for scaling sweeps;
* ``random_geometric`` — the wireless sensor-network motivation from the
  introduction (energy matters because nodes run on batteries);
* ``random_regular`` — controlled maximum degree Δ, used for the
  Lemma 3.1/3.4 experiments;
* ``barabasi_albert`` — heavy-tailed degrees, stressing the degree-reduction
  phases;
* structured families (grids, trees, stars, cliques, paths, caterpillars)
  — adversarial shapes for correctness and property tests.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Optional

import networkx as nx
import numpy as np


def _relabel(graph: nx.Graph) -> nx.Graph:
    """Relabel nodes to 0..n-1 preserving determinism."""
    mapping = {node: index for index, node in enumerate(sorted(graph.nodes, key=str))}
    return nx.relabel_nodes(graph, mapping, copy=True)


def _check_n(n: int) -> None:
    if n < 1:
        raise ValueError(f"graph size must be positive, got n={n}")


def empty_graph(n: int) -> nx.Graph:
    """n isolated nodes (every node joins any MIS)."""
    _check_n(n)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    return graph


def path(n: int) -> nx.Graph:
    _check_n(n)
    return nx.path_graph(n)


def cycle(n: int) -> nx.Graph:
    _check_n(n)
    if n < 3:
        raise ValueError("cycle needs at least 3 nodes")
    return nx.cycle_graph(n)


def star(n: int) -> nx.Graph:
    """Star with one hub and n-1 leaves (max degree n-1)."""
    _check_n(n)
    return nx.star_graph(n - 1)


def clique(n: int) -> nx.Graph:
    _check_n(n)
    return nx.complete_graph(n)


def grid_2d(rows: int, cols: int) -> nx.Graph:
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    return _relabel(nx.grid_2d_graph(rows, cols))


def balanced_tree(branching: int, height: int) -> nx.Graph:
    if branching < 1 or height < 0:
        raise ValueError("invalid tree parameters")
    return _relabel(nx.balanced_tree(branching, height))


def caterpillar(spine: int, legs_per_node: int) -> nx.Graph:
    """A path of ``spine`` nodes, each with ``legs_per_node`` pendant leaves."""
    if spine < 1 or legs_per_node < 0:
        raise ValueError("invalid caterpillar parameters")
    graph = nx.path_graph(spine)
    next_id = spine
    for backbone in range(spine):
        for _ in range(legs_per_node):
            graph.add_edge(backbone, next_id)
            next_id += 1
    return graph


def gnp(n: int, p: float, seed: int = 0) -> nx.Graph:
    """Erdős–Rényi G(n, p)."""
    _check_n(n)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"edge probability must be in [0, 1], got {p}")
    if p == 1.0:
        return clique(n)
    if 1.0 - p == 1.0:
        # p is zero or so small that networkx's geometric-skipping sampler
        # would divide by log(1-p) == 0; such graphs are empty in practice.
        return empty_graph(n)
    graph = nx.fast_gnp_random_graph(n, p, seed=seed)
    graph.add_nodes_from(range(n))
    return graph


def gnp_expected_degree(n: int, degree: float, seed: int = 0) -> nx.Graph:
    """G(n, p) with p chosen so the expected degree is ``degree``."""
    _check_n(n)
    if degree < 0:
        raise ValueError(f"expected degree must be non-negative, got {degree}")
    if n == 1:
        return empty_graph(1)
    p = min(1.0, degree / (n - 1))
    return gnp(n, p, seed=seed)


def random_regular(n: int, degree: int, seed: int = 0) -> nx.Graph:
    """Random ``degree``-regular graph (``n * degree`` must be even)."""
    _check_n(n)
    if degree < 0 or degree >= n:
        raise ValueError(f"degree must be in [0, n), got {degree}")
    if (n * degree) % 2 != 0:
        raise ValueError("n * degree must be even for a regular graph")
    return nx.random_regular_graph(degree, n, seed=seed)


def random_geometric(n: int, radius: Optional[float] = None, seed: int = 0) -> nx.Graph:
    """Random geometric graph on the unit square (sensor-network workload).

    When ``radius`` is omitted we pick the standard connectivity-threshold
    scale ``sqrt(2 ln n / n)``, which makes the graph connected w.h.p. while
    keeping degrees ``Θ(log n)``.
    """
    _check_n(n)
    if radius is None:
        radius = float(np.sqrt(2.0 * np.log(max(2, n)) / n))
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    graph = nx.random_geometric_graph(n, radius, seed=seed)
    graph.add_nodes_from(range(n))
    return graph


def barabasi_albert(n: int, attachment: int = 3, seed: int = 0) -> nx.Graph:
    """Preferential-attachment graph with heavy-tailed degrees."""
    _check_n(n)
    if n <= attachment:
        return clique(n)
    return nx.barabasi_albert_graph(n, attachment, seed=seed)


def disjoint_cliques(count: int, size: int) -> nx.Graph:
    """``count`` disjoint cliques of ``size`` nodes (small-component stress)."""
    if count < 1 or size < 1:
        raise ValueError("invalid clique-union parameters")
    graph = nx.Graph()
    for index in range(count):
        offset = index * size
        graph.add_nodes_from(range(offset, offset + size))
        for u, v in itertools.combinations(range(offset, offset + size), 2):
            graph.add_edge(u, v)
    return graph


def planted_max_degree(n: int, delta: int, seed: int = 0) -> nx.Graph:
    """Graph with max degree exactly ``delta``: a random near-regular graph.

    Used by the Lemma 3.1 / 3.4 experiments, which need a controlled Δ.
    """
    _check_n(n)
    if delta >= n:
        raise ValueError(f"delta={delta} must be < n={n}")
    degree = delta
    if (n * degree) % 2 != 0:
        degree -= 1
    if degree <= 0:
        return empty_graph(n)
    return random_regular(n, degree, seed=seed)


# ----------------------------------------------------------------------
# Family registry for sweeps: name -> fn(n, seed) -> graph
# ----------------------------------------------------------------------
GraphFactory = Callable[[int, int], nx.Graph]

FAMILIES: Dict[str, GraphFactory] = {
    "gnp_sqrt_degree": lambda n, seed: gnp_expected_degree(
        n, max(1.0, float(np.sqrt(n))), seed=seed
    ),
    "gnp_log_degree": lambda n, seed: gnp_expected_degree(
        n, max(1.0, float(np.log2(max(2, n)))), seed=seed
    ),
    "random_regular_16": lambda n, seed: random_regular(n, min(16, n - 1), seed=seed),
    "geometric": lambda n, seed: random_geometric(n, seed=seed),
    "barabasi_albert": lambda n, seed: barabasi_albert(n, 3, seed=seed),
    "grid": lambda n, seed: grid_2d(
        max(1, int(np.sqrt(n))), max(1, int(np.sqrt(n)))
    ),
}


def make_family(name: str, n: int, seed: int = 0) -> nx.Graph:
    """Instantiate a registered family by name."""
    if name not in FAMILIES:
        raise KeyError(f"unknown graph family {name!r}; have {sorted(FAMILIES)}")
    return FAMILIES[name](n, seed)
