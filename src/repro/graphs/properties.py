"""Small graph-property helpers used across phases and experiments."""

from __future__ import annotations

from typing import Dict, List, Set

import networkx as nx


def max_degree(graph) -> int:
    """Maximum degree Δ of the graph (0 for edgeless graphs)."""
    if graph.number_of_nodes() == 0:
        return 0
    degrees = getattr(graph, "degrees", None)
    if degrees is not None:  # CSR-backed GraphArrays: one array reduction
        return int(degrees.max(initial=0))
    return max((d for _, d in graph.degree), default=0)


def component_sizes(graph: nx.Graph) -> List[int]:
    """Sizes of connected components, descending."""
    return sorted(
        (len(c) for c in nx.connected_components(graph)), reverse=True
    )


def induced_subgraph(graph: nx.Graph, nodes) -> nx.Graph:
    """Copy of the subgraph induced by ``nodes`` (detached from the parent)."""
    return graph.subgraph(nodes).copy()


def remove_closed_neighborhoods(graph: nx.Graph, centers: Set[int]) -> nx.Graph:
    """Return a copy with every center and all its neighbors removed.

    This is the operation the paper applies after each phase: the computed
    independent set and its neighborhood leave the residual graph.
    """
    removed = set(centers)
    for center in centers:
        removed.update(graph.neighbors(center))
    return induced_subgraph(graph, set(graph.nodes) - removed)


def closed_neighborhood(graph: nx.Graph, nodes: Set[int]) -> Set[int]:
    """The nodes plus all their neighbors."""
    closed = set(nodes)
    for node in nodes:
        closed.update(graph.neighbors(node))
    return closed


def degrees_within(graph: nx.Graph, nodes: Set[int]) -> Dict[int, int]:
    """Degree of each node of ``nodes`` counted inside the induced subgraph."""
    node_set = set(nodes)
    return {
        v: sum(1 for u in graph.neighbors(v) if u in node_set) for v in node_set
    }


def eccentricity_upper_bound(graph: nx.Graph) -> int:
    """Cheap upper bound on the diameter: twice a BFS eccentricity per component."""
    bound = 0
    for component in nx.connected_components(graph):
        root = next(iter(component))
        lengths = nx.single_source_shortest_path_length(graph, root)
        bound = max(bound, 2 * max(lengths.values(), default=0))
    return bound
