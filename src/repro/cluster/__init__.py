"""Cluster substrate: rooted trees, energy-metered tree operations,
Linial coloring, and Borůvka-style merging (Section 2.3 of the paper)."""

from .choreography import Choreography
from .linial import (
    color_classes,
    encode_polynomial,
    evaluate_polynomial,
    is_prime,
    linial_round,
    next_prime,
    polynomial_parameters,
    reduce_coloring,
    verify_proper,
)
from .merge import (
    HIGH_INDEGREE,
    ClusterState,
    MergeReport,
    merge_component_clusters,
    singleton_clusters,
    state_from_trees,
)
from .tree import RootedTree, convergecast_fold

__all__ = [
    "HIGH_INDEGREE",
    "Choreography",
    "ClusterState",
    "MergeReport",
    "RootedTree",
    "color_classes",
    "convergecast_fold",
    "encode_polynomial",
    "evaluate_polynomial",
    "is_prime",
    "linial_round",
    "merge_component_clusters",
    "next_prime",
    "polynomial_parameters",
    "reduce_coloring",
    "singleton_clusters",
    "state_from_trees",
    "verify_proper",
]
