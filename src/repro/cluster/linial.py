"""Linial's color-reduction algorithm [Lin92, Theorem 5.1].

Phase III colors the low-indegree cluster graph ``H_L`` (max degree 10) to
schedule its maximal-matching step: Algorithm 1 runs two reduction rounds to
reach ``O(log log n)`` colors; Algorithm 2 runs ``O(log* n)`` rounds to reach
``O(1)`` colors (Section 3.2).

One reduction round, via the polynomial construction: a color ``c`` from a
palette of size ``k`` is encoded as a polynomial ``p_c`` of degree ``d`` over
``GF(q)`` (its base-``q`` digits are the coefficients). Two distinct
polynomials of degree ``<= d`` agree on at most ``d`` points, so if
``q > Δ·d``, every node ``v`` can pick an evaluation point ``x`` where its
polynomial differs from all ``<= Δ`` neighbors'; the pair ``(x, p_v(x))`` —
i.e. ``x·q + p_v(x)`` — is its new color from a palette of ``q²``. Each round
needs only one exchange of current colors between neighbors.

Iterating shrinks the palette from ``k`` to ``O(Δ² log k)``-ish per round and
reaches a fixed point of ``O(Δ²)`` colors after ``O(log* k)`` rounds.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple


def is_prime(value: int) -> bool:
    if value < 2:
        return False
    if value < 4:
        return True
    if value % 2 == 0:
        return False
    divisor = 3
    while divisor * divisor <= value:
        if value % divisor == 0:
            return False
        divisor += 2
    return True


def next_prime(value: int) -> int:
    """Smallest prime >= value."""
    candidate = max(2, value)
    while not is_prime(candidate):
        candidate += 1
    return candidate


def polynomial_parameters(palette_size: int, max_degree: int) -> Tuple[int, int]:
    """Choose ``(q, d)``: prime field size and polynomial degree.

    Requirements: ``q^(d+1) >= palette_size`` (every color encodable) and
    ``q > max_degree * d`` (a free evaluation point always exists). Among
    feasible pairs we pick the one minimizing the new palette ``q²``.
    """
    if palette_size < 1:
        raise ValueError(f"palette size must be positive, got {palette_size}")
    if max_degree < 0:
        raise ValueError(f"max degree must be non-negative, got {max_degree}")
    best: Optional[Tuple[int, int]] = None
    for degree in range(1, 66):
        field_floor = max_degree * degree + 1
        # Smallest q with q^(degree+1) >= palette_size.
        encode_floor = 2
        while encode_floor ** (degree + 1) < palette_size:
            encode_floor += 1
        q = next_prime(max(field_floor, encode_floor))
        if best is None or q < best[0]:
            best = (q, degree)
        if q == next_prime(field_floor):
            # Larger degrees only raise the Δ·d floor from here on.
            break
    assert best is not None
    return best


def encode_polynomial(color: int, q: int, degree: int) -> List[int]:
    """Base-``q`` digits of ``color`` as ``degree + 1`` coefficients."""
    if color < 0:
        raise ValueError(f"colors must be non-negative, got {color}")
    coefficients = []
    value = color
    for _ in range(degree + 1):
        coefficients.append(value % q)
        value //= q
    if value:
        raise ValueError(
            f"color {color} does not fit in {degree + 1} base-{q} digits"
        )
    return coefficients


def evaluate_polynomial(coefficients: List[int], x: int, q: int) -> int:
    """Evaluate at ``x`` over GF(q) (Horner)."""
    result = 0
    for coefficient in reversed(coefficients):
        result = (result * x + coefficient) % q
    return result


def linial_round(
    colors: Mapping[int, int],
    adjacency: Mapping[int, Iterable[int]],
    max_degree: int,
) -> Dict[int, int]:
    """One Linial reduction round; returns the new (proper) coloring.

    ``adjacency`` must be symmetric; the input coloring must be proper.
    """
    if not colors:
        return {}
    palette = max(colors.values()) + 1
    q, degree = polynomial_parameters(palette, max_degree)
    encoded = {
        node: encode_polynomial(color, q, degree)
        for node, color in colors.items()
    }
    new_colors: Dict[int, int] = {}
    for node in sorted(colors):
        mine = encoded[node]
        neighbor_polys = []
        for neighbor in adjacency.get(node, ()):
            if neighbor == node:
                continue
            if colors[neighbor] == colors[node]:
                raise ValueError(
                    f"input coloring not proper: {node} and {neighbor} share "
                    f"color {colors[node]}"
                )
            neighbor_polys.append(encoded[neighbor])
        if len(neighbor_polys) > max_degree:
            raise ValueError(
                f"node {node} has {len(neighbor_polys)} neighbors, above the "
                f"declared max degree {max_degree}"
            )
        chosen_x = None
        for x in range(q):
            value = evaluate_polynomial(mine, x, q)
            if all(
                evaluate_polynomial(other, x, q) != value
                for other in neighbor_polys
            ):
                chosen_x = x
                break
        if chosen_x is None:  # impossible when q > Δ·d and input proper
            raise RuntimeError(
                f"no conflict-free evaluation point for node {node} "
                f"(q={q}, d={degree})"
            )
        new_colors[node] = chosen_x * q + evaluate_polynomial(mine, chosen_x, q)
    return new_colors


def reduce_coloring(
    colors: Mapping[int, int],
    adjacency: Mapping[int, Iterable[int]],
    max_degree: int,
    *,
    rounds: Optional[int] = None,
    target_palette: Optional[int] = None,
    max_rounds: int = 64,
) -> Tuple[Dict[int, int], int]:
    """Iterate Linial rounds; returns ``(coloring, rounds_used)``.

    Stop conditions (first to hit wins): exactly ``rounds`` rounds; palette
    ``<= target_palette``; or the palette stops shrinking (fixed point,
    ``O(Δ²)`` colors).
    """
    if rounds is None and target_palette is None:
        target_palette = 0  # run to the fixed point
    current = dict(colors)
    used = 0
    while True:
        palette = (max(current.values()) + 1) if current else 0
        if rounds is not None and used >= rounds:
            return current, used
        if target_palette is not None and rounds is None and palette <= target_palette:
            return current, used
        if used >= max_rounds:
            return current, used
        reduced = linial_round(current, adjacency, max_degree)
        new_palette = (max(reduced.values()) + 1) if reduced else 0
        if new_palette >= palette:
            return current, used  # fixed point reached
        current = reduced
        used += 1


def color_classes(colors: Mapping[int, int]) -> List[List[int]]:
    """Nodes grouped by color, colors ascending, nodes sorted."""
    classes: Dict[int, List[int]] = {}
    for node, color in colors.items():
        classes.setdefault(color, []).append(node)
    return [sorted(classes[color]) for color in sorted(classes)]


def verify_proper(
    colors: Mapping[int, int], adjacency: Mapping[int, Iterable[int]]
) -> bool:
    """True iff no edge is monochromatic."""
    for node, neighbors in adjacency.items():
        for neighbor in neighbors:
            if neighbor != node and colors[node] == colors[neighbor]:
                return False
    return True
