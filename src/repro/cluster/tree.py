"""Rooted spanning trees of clusters.

Phase III of the paper works on clusters, each equipped with a rooted
spanning tree in which every node knows its parent and its distance to the
root (the structure called "Labeled Distance Tree" in [AMP22] and
"Distributed Layered Tree" in [BM21a]). Knowing the depth is what allows
broadcast/convergecast with O(1) awake rounds per node: a node is awake only
at clock offsets ``d_v`` and ``d_v + 1`` of the operation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

import networkx as nx


@dataclass
class RootedTree:
    """A rooted tree: parent pointers plus per-node depths.

    Invariants (checked by :meth:`validate`): the root's parent is ``None``
    and its depth 0; every other node's parent is in the tree with depth one
    less than the node's own.
    """

    root: int
    parent: Dict[int, Optional[int]]
    depth: Dict[int, int]

    @property
    def nodes(self) -> Set[int]:
        return set(self.parent)

    @property
    def size(self) -> int:
        return len(self.parent)

    @property
    def height(self) -> int:
        return max(self.depth.values())

    def children(self) -> Dict[int, List[int]]:
        """Child lists, sorted for determinism."""
        kids: Dict[int, List[int]] = {node: [] for node in self.parent}
        for node, up in self.parent.items():
            if up is not None:
                kids[up].append(node)
        for node in kids:
            kids[node].sort()
        return kids

    def path_to_root(self, node: int) -> List[int]:
        """The node, its parent, ... up to the root."""
        path = [node]
        current = node
        seen = {node}
        while self.parent[current] is not None:
            current = self.parent[current]
            if current in seen:
                raise ValueError(f"parent pointers cycle at {current}")
            seen.add(current)
            path.append(current)
        return path

    def nodes_by_depth(self) -> List[List[int]]:
        """Nodes grouped by depth, index = depth (deterministic order)."""
        layers: List[List[int]] = [[] for _ in range(self.height + 1)]
        for node in sorted(self.parent):
            layers[self.depth[node]].append(node)
        return layers

    def validate(self) -> None:
        """Raise ``ValueError`` on any structural inconsistency."""
        if self.root not in self.parent:
            raise ValueError(f"root {self.root} not among tree nodes")
        if self.parent[self.root] is not None:
            raise ValueError("root must have parent None")
        if self.depth.get(self.root) != 0:
            raise ValueError("root must have depth 0")
        if set(self.parent) != set(self.depth):
            raise ValueError("parent and depth key sets differ")
        for node, up in self.parent.items():
            if node == self.root:
                continue
            if up is None:
                raise ValueError(f"non-root {node} has no parent")
            if up not in self.parent:
                raise ValueError(f"parent {up} of {node} not in tree")
            if self.depth[node] != self.depth[up] + 1:
                raise ValueError(
                    f"depth of {node} is {self.depth[node]}, expected "
                    f"{self.depth[up] + 1}"
                )
        # Reachability: walking up from every node must reach the root.
        for node in self.parent:
            self.path_to_root(node)

    # ------------------------------------------------------------------
    @classmethod
    def bfs(
        cls,
        graph: nx.Graph,
        root: int,
        members: Optional[Iterable[int]] = None,
    ) -> "RootedTree":
        """BFS spanning tree of ``members`` (default: root's component)."""
        allowed = set(members) if members is not None else None
        if allowed is not None and root not in allowed:
            raise ValueError(f"root {root} not in members")
        parent: Dict[int, Optional[int]] = {root: None}
        depth: Dict[int, int] = {root: 0}
        queue = deque([root])
        while queue:
            node = queue.popleft()
            for neighbor in sorted(graph.neighbors(node)):
                if neighbor in parent:
                    continue
                if allowed is not None and neighbor not in allowed:
                    continue
                parent[neighbor] = node
                depth[neighbor] = depth[node] + 1
                queue.append(neighbor)
        if allowed is not None and parent.keys() != allowed:
            missing = allowed - parent.keys()
            raise ValueError(
                f"members not reachable from root {root}: {sorted(missing)[:5]}"
            )
        return cls(root=root, parent=parent, depth=depth)

    def rerooted(self, new_root: int) -> "RootedTree":
        """The same tree re-rooted at ``new_root`` (parents reversed on the
        root path, depths recomputed)."""
        if new_root not in self.parent:
            raise ValueError(f"{new_root} not in tree")
        adjacency: Dict[int, Set[int]] = {node: set() for node in self.parent}
        for node, up in self.parent.items():
            if up is not None:
                adjacency[node].add(up)
                adjacency[up].add(node)
        parent: Dict[int, Optional[int]] = {new_root: None}
        depth: Dict[int, int] = {new_root: 0}
        queue = deque([new_root])
        while queue:
            node = queue.popleft()
            for neighbor in sorted(adjacency[node]):
                if neighbor not in parent:
                    parent[neighbor] = node
                    depth[neighbor] = depth[node] + 1
                    queue.append(neighbor)
        return RootedTree(root=new_root, parent=parent, depth=depth)


def convergecast_fold(tree: RootedTree, values: Dict[int, object], combine):
    """Fold per-node values bottom-up; returns the aggregate at the root.

    This computes *what* a distributed convergecast would deliver; the
    energy/time cost of the operation is charged separately by the
    choreography layer.
    """
    missing = tree.nodes - values.keys()
    if missing:
        raise ValueError(f"values missing for nodes {sorted(missing)[:5]}")
    aggregate = dict(values)
    kids = tree.children()
    for layer in reversed(tree.nodes_by_depth()):
        for node in layer:
            for child in kids[node]:
                aggregate[node] = combine(aggregate[node], aggregate[child])
    return aggregate[tree.root]
