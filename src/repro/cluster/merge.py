"""Energy-efficient cluster merging (Lemma 2.8 of the paper).

Input: one connected component whose nodes are partitioned into clusters,
each with a rooted spanning tree (from Phase II, diameter ``O(log log n)``).
Output: a single rooted spanning tree of the component with diameter
``O(log n)``, built in ``O(log #clusters)`` Borůvka iterations, with every
node awake only ``O(1)`` rounds per iteration.

Each iteration follows the paper's five steps:

1. **Outgoing edges** — every cluster selects its edge to the neighboring
   cluster of minimum identifier (identifier = root node id; ties between
   parallel edges broken by the lexicographically smallest edge). Mutual
   choices form the set ``M``; the rest orient ``H`` acyclically.
2. **High/low indegree** — clusters with indegree ``>= 10`` drop their own
   outgoing edge and accept all remaining incoming edges (set ``E_H``).
3. **Maximal matching on H_L** — the low-indegree cluster graph has degree
   at most 10; Linial color reduction schedules a greedy pass over color
   classes in which every unmatched cluster grabs an unmatched incoming
   neighbor (set ``M_L``).
4. **Leftovers** — every still-unmerged cluster hooks onto an outgoing
   neighbor that *is* merging (set ``R``); maximality of ``M_L`` guarantees
   such a neighbor exists.
5. **Star merges** — merge along ``M``, ``E_H``, ``M_L``, ``R`` in this
   order. A leaf cluster re-roots its tree at the attachment point and
   hangs below the center's endpoint, so depths stay consistent.

Energy per iteration and node: a constant number of exchanges plus
broadcasts/convergecasts (2 awake rounds each). Iterating the color classes
costs each node only the classes its own and neighboring clusters belong to
— ``O(1)`` because ``H_L`` has degree ``<= 10``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from .choreography import Choreography
from .linial import color_classes, reduce_coloring, verify_proper
from .tree import RootedTree

HIGH_INDEGREE = 10


@dataclass
class ClusterState:
    """Clusters of one connected component, each with a rooted tree."""

    graph: nx.Graph
    cluster_of: Dict[int, int]
    trees: Dict[int, RootedTree]

    def validate(self) -> None:
        nodes = set(self.graph.nodes)
        if set(self.cluster_of) != nodes:
            raise ValueError("cluster_of must cover exactly the graph nodes")
        covered: Set[int] = set()
        for cluster_id, tree in self.trees.items():
            tree.validate()
            if tree.root != cluster_id:
                raise ValueError(
                    f"cluster id {cluster_id} must equal its tree root "
                    f"{tree.root}"
                )
            if covered & tree.nodes:
                raise ValueError("cluster trees overlap")
            covered |= tree.nodes
            for member in tree.nodes:
                if self.cluster_of[member] != cluster_id:
                    raise ValueError(
                        f"node {member} mapped to {self.cluster_of[member]}, "
                        f"but sits in tree {cluster_id}"
                    )
        if covered != nodes:
            raise ValueError("cluster trees do not cover the component")

    @property
    def cluster_count(self) -> int:
        return len(self.trees)


def singleton_clusters(graph: nx.Graph) -> ClusterState:
    """Every node its own cluster (used in tests and ablations)."""
    trees = {
        node: RootedTree(root=node, parent={node: None}, depth={node: 0})
        for node in graph.nodes
    }
    return ClusterState(
        graph=graph,
        cluster_of={node: node for node in graph.nodes},
        trees=trees,
    )


def state_from_trees(graph: nx.Graph, trees: Dict[int, RootedTree]) -> ClusterState:
    """Build and validate a state from pre-built cluster trees."""
    cluster_of = {
        member: cluster_id
        for cluster_id, tree in trees.items()
        for member in tree.nodes
    }
    state = ClusterState(graph=graph, cluster_of=cluster_of, trees=trees)
    state.validate()
    return state


@dataclass
class MergeReport:
    """What happened during one component's merge."""

    initial_clusters: int
    iterations: int
    final_height: int
    linial_rounds_total: int = 0
    color_classes_total: int = 0
    merges_by_set: Dict[str, int] = field(default_factory=dict)


@dataclass
class _OutgoingChoice:
    edge: Tuple[int, int]  # (node in this cluster, node in target cluster)
    target: int  # target cluster id


def _select_outgoing(state: ClusterState) -> Dict[int, _OutgoingChoice]:
    """Step 1: per cluster, the edge to the minimum-id neighboring cluster."""
    choices: Dict[int, _OutgoingChoice] = {}
    best: Dict[int, Tuple[int, Tuple[int, int], Tuple[int, int]]] = {}
    for u, v in state.graph.edges:
        cu, cv = state.cluster_of[u], state.cluster_of[v]
        if cu == cv:
            continue
        for mine, theirs, inner, outer in ((cu, cv, u, v), (cv, cu, v, u)):
            edge_id = (min(u, v), max(u, v))
            key = (theirs, edge_id)
            if mine not in best or key < (best[mine][0], best[mine][1]):
                best[mine] = (theirs, edge_id, (inner, outer))
    for cluster_id, (target, _edge_id, oriented) in best.items():
        choices[cluster_id] = _OutgoingChoice(edge=oriented, target=target)
    return choices


def _partition_edges(
    state: ClusterState, choices: Dict[int, _OutgoingChoice]
) -> Tuple[Set[frozenset], Dict[int, int]]:
    """Split mutual choices (set M) from oriented H edges; count indegrees."""
    mutual: Set[frozenset] = set()
    for cluster_id, choice in choices.items():
        reverse = choices.get(choice.target)
        if reverse is not None and reverse.target == cluster_id:
            mutual.add(frozenset((cluster_id, choice.target)))
    indegree: Dict[int, int] = {cluster_id: 0 for cluster_id in state.trees}
    for cluster_id, choice in choices.items():
        if frozenset((cluster_id, choice.target)) in mutual:
            continue
        indegree[choice.target] += 1
    return mutual, indegree


def _neighbor_edge_index(
    state: ClusterState,
) -> Dict[int, Dict[int, Tuple[int, int]]]:
    """For each cluster, its neighboring clusters with one canonical edge
    (oriented from this cluster outward)."""
    index: Dict[int, Dict[int, Tuple[int, int]]] = {
        cluster_id: {} for cluster_id in state.trees
    }
    for u, v in state.graph.edges:
        cu, cv = state.cluster_of[u], state.cluster_of[v]
        if cu == cv:
            continue
        for mine, theirs, inner, outer in ((cu, cv, u, v), (cv, cu, v, u)):
            known = index[mine].get(theirs)
            if known is None or (inner, outer) < known:
                index[mine][theirs] = (inner, outer)
    return index


@dataclass
class _Merge:
    center_cluster: int  # cluster id at selection time (may have merged since)
    leaf_cluster: int
    center_node: int
    leaf_node: int


def _attach_leaf(state: ClusterState, merge: _Merge) -> None:
    """Hang the leaf cluster's (re-rooted) tree below the center node."""
    center_id = state.cluster_of[merge.center_node]
    center_tree = state.trees[center_id]
    leaf_tree = state.trees.pop(merge.leaf_cluster)
    rerooted = leaf_tree.rerooted(merge.leaf_node)
    base_depth = center_tree.depth[merge.center_node] + 1
    parent = dict(center_tree.parent)
    depth = dict(center_tree.depth)
    for node, up in rerooted.parent.items():
        parent[node] = up if up is not None else merge.center_node
        depth[node] = base_depth + rerooted.depth[node]
        state.cluster_of[node] = center_id
    state.trees[center_id] = RootedTree(
        root=center_tree.root, parent=parent, depth=depth
    )


def merge_component_clusters(
    state: ClusterState,
    choreography: Choreography,
    *,
    allotment: Optional[int] = None,
    linial_rounds: Optional[int] = 2,
    linial_target_palette: Optional[int] = None,
    max_iterations: Optional[int] = None,
) -> Tuple[RootedTree, MergeReport]:
    """Run Lemma 2.8 on one component; returns the spanning tree and report.

    Parameters
    ----------
    allotment:
        Clock rounds granted to each broadcast/convergecast. Defaults to a
        bound that any merged tree can never exceed: the sum over initial
        clusters of (height + 1), plus 2.
    linial_rounds / linial_target_palette:
        Coloring budget for the matching step. Algorithm 1 uses 2 rounds
        (palette ``O(log log n)``); Algorithm 2 passes
        ``linial_rounds=None, linial_target_palette=121`` to emulate the
        ``O(log* n)``-round constant-palette variant of [BM21a].
    """
    state.validate()
    initial_clusters = state.cluster_count
    if allotment is None:
        allotment = 2 + sum(
            tree.height + 1 for tree in state.trees.values()
        )
    if max_iterations is None:
        max_iterations = 2 * max(1, math.ceil(math.log2(max(2, initial_clusters)))) + 8

    report = MergeReport(
        initial_clusters=initial_clusters,
        iterations=0,
        final_height=0,
        merges_by_set={"M": 0, "E_H": 0, "M_L": 0, "R": 0},
    )

    # Set-up (paper: leader election + BFS with all nodes awake).
    if initial_clusters > 1:
        setup_rounds = 2 * max(
            (tree.height for tree in state.trees.values()), default=0
        ) + 2
        choreography.awake_all(state.graph.nodes, setup_rounds)

    while state.cluster_count > 1:
        report.iterations += 1
        clusters_before = state.cluster_count
        if report.iterations > max_iterations:
            raise RuntimeError(
                f"cluster merging exceeded {max_iterations} iterations "
                f"({state.cluster_count} clusters remain)"
            )

        # -- Step 1: outgoing edges -----------------------------------
        choreography.exchange(state.graph.nodes)  # learn neighbor cluster ids
        choreography.parallel_convergecast(state.trees.values(), allotment)
        choreography.parallel_broadcast(state.trees.values(), allotment)
        choices = _select_outgoing(state)
        if set(choices) != set(state.trees):
            stranded = sorted(set(state.trees) - set(choices))
            raise RuntimeError(
                f"clusters {stranded[:5]} found no outgoing edge in a "
                "connected component — invariant violated"
            )
        mutual, indegree = _partition_edges(state, choices)

        # -- Step 2: high/low indegree --------------------------------
        choreography.exchange(state.graph.nodes)
        choreography.parallel_convergecast(state.trees.values(), allotment)
        choreography.parallel_broadcast(state.trees.values(), allotment)
        high = {c for c, deg in indegree.items() if deg >= HIGH_INDEGREE}
        merged_flag: Dict[int, bool] = {c: False for c in state.trees}

        merges_m: List[_Merge] = []
        for pair in sorted(mutual, key=sorted):
            a, b = sorted(pair)
            choice = choices[b]  # b's edge points into a's cluster
            merges_m.append(
                _Merge(
                    center_cluster=a,
                    leaf_cluster=b,
                    center_node=choice.edge[1],
                    leaf_node=choice.edge[0],
                )
            )
            merged_flag[a] = merged_flag[b] = True

        merges_eh: List[_Merge] = []
        for cluster_id in sorted(choices):
            choice = choices[cluster_id]
            if frozenset((cluster_id, choice.target)) in mutual:
                continue
            if choice.target in high and cluster_id not in high:
                merges_eh.append(
                    _Merge(
                        center_cluster=choice.target,
                        leaf_cluster=cluster_id,
                        center_node=choice.edge[1],
                        leaf_node=choice.edge[0],
                    )
                )
                merged_flag[cluster_id] = True
                merged_flag[choice.target] = True

        # -- Step 3: maximal matching on H_L --------------------------
        low = [c for c in sorted(state.trees) if c not in high]
        hl_edges: List[Tuple[int, int]] = []  # (source, target) both low
        for cluster_id in low:
            choice = choices[cluster_id]
            if frozenset((cluster_id, choice.target)) in mutual:
                continue
            if choice.target in high:
                continue
            hl_edges.append((cluster_id, choice.target))

        merges_ml: List[_Merge] = []
        classes_used = 0
        if hl_edges:
            adjacency: Dict[int, Set[int]] = {c: set() for c in low}
            for source, target in hl_edges:
                adjacency[source].add(target)
                adjacency[target].add(source)
            initial_colors = {c: c for c in low}
            colors, rounds_used = reduce_coloring(
                initial_colors,
                adjacency,
                HIGH_INDEGREE,
                rounds=linial_rounds,
                target_palette=linial_target_palette,
            )
            report.linial_rounds_total += rounds_used
            assert verify_proper(colors, adjacency)
            # Cluster-graph Linial rounds: each costs one broadcast, one
            # boundary exchange, and one convergecast in every low cluster.
            boundary = {
                node
                for source, target in hl_edges
                for node in choices[source].edge
            }
            low_trees = [state.trees[c] for c in low]
            for _ in range(rounds_used):
                choreography.parallel_broadcast(low_trees, allotment)
                choreography.exchange(boundary)
                choreography.parallel_convergecast(low_trees, allotment)

            incoming: Dict[int, List[int]] = {c: [] for c in low}
            for source, target in hl_edges:
                incoming[target].append(source)
            matched: Set[int] = set()
            for color_class in color_classes(colors):
                classes_used += 1
                class_nodes: Set[int] = set()
                for cluster_id in color_class:
                    class_nodes.update(state.trees[cluster_id].nodes)
                    for other in adjacency[cluster_id]:
                        class_nodes.update(state.trees[other].nodes)
                # One scheduling round per color class; only clusters of
                # this class and their H_L neighbors listen.
                choreography.exchange(class_nodes)
                for cluster_id in color_class:
                    if cluster_id in matched:
                        continue
                    candidates = [
                        source
                        for source in sorted(incoming[cluster_id])
                        if source not in matched
                    ]
                    if not candidates:
                        continue
                    source = candidates[0]
                    matched.add(cluster_id)
                    matched.add(source)
                    choice = choices[source]
                    merges_ml.append(
                        _Merge(
                            center_cluster=cluster_id,
                            leaf_cluster=source,
                            center_node=choice.edge[1],
                            leaf_node=choice.edge[0],
                        )
                    )
                    merged_flag[cluster_id] = True
                    merged_flag[source] = True
            report.color_classes_total += classes_used

        # -- Step 4: leftovers hook onto merging neighbors ------------
        # The paper's rule: an unmerged low cluster follows its outgoing
        # edge, whose target must be merging (matching maximality). We
        # additionally let a stranded *high* cluster (possible when all its
        # in-edges came from other high clusters) hook onto any merging
        # neighbor; with no merging neighbor it simply waits one iteration.
        choreography.exchange(state.graph.nodes)
        neighbor_edges = _neighbor_edge_index(state)
        merges_r: List[_Merge] = []
        for cluster_id in sorted(state.trees):
            if merged_flag[cluster_id]:
                continue
            choice = choices[cluster_id]
            if cluster_id not in high and not merged_flag.get(
                choice.target, False
            ):
                raise RuntimeError(
                    f"cluster {cluster_id} has no merging neighbor — "
                    "matching maximality violated"
                )
            if merged_flag.get(choice.target, False):
                center, edge = choice.target, choice.edge
            else:
                merging_neighbors = [
                    target
                    for target in sorted(neighbor_edges[cluster_id])
                    if merged_flag.get(target, False)
                ]
                if not merging_neighbors:
                    continue  # isolated island of high clusters; wait
                center = merging_neighbors[0]
                edge = neighbor_edges[cluster_id][center]
            merges_r.append(
                _Merge(
                    center_cluster=center,
                    leaf_cluster=cluster_id,
                    center_node=edge[1],
                    leaf_node=edge[0],
                )
            )
            merged_flag[cluster_id] = True

        # -- Step 5: star merges, stage by stage ----------------------
        for label, stage in (
            ("M", merges_m),
            ("E_H", merges_eh),
            ("M_L", merges_ml),
            ("R", merges_r),
        ):
            if not stage:
                continue
            report.merges_by_set[label] += len(stage)
            # Handshake round on the merge edges, then convergecast +
            # broadcast inside every leaf cluster to flip its orientation.
            touched = {m.center_node for m in stage} | {
                m.leaf_node for m in stage
            }
            choreography.exchange(touched)
            leaf_trees = [state.trees[m.leaf_cluster] for m in stage]
            choreography.parallel_convergecast(leaf_trees, allotment)
            choreography.parallel_broadcast(leaf_trees, allotment)
            for merge in stage:
                _attach_leaf(state, merge)

        if state.cluster_count >= clusters_before:
            raise RuntimeError(
                f"merge iteration {report.iterations} made no progress "
                f"({clusters_before} clusters)"
            )

    final_tree = next(iter(state.trees.values()))
    final_tree.validate()
    report.final_height = final_tree.height
    return final_tree, report
