"""Metered choreography: exact time/energy charging for tree operations.

Phase III's cluster machinery (Section 2.3) is built from a small set of
primitives whose distributed schedules are fully determined in advance:

* **broadcast** down a rooted tree — node ``v`` is awake exactly at clock
  offsets ``d_v`` (receive from parent) and ``d_v + 1`` (send to children),
  so 2 awake rounds per node and ``allotment`` clock rounds overall;
* **convergecast** up the tree — symmetric, node ``v`` awake at offsets
  ``allotment - d_v - 2`` and ``allotment - d_v - 1``;
* **exchange** — one round in which a chosen set of nodes is awake and talks
  to awake neighbors (used for inter-cluster steps);
* **awake_all** — a block of rounds with a node set fully awake (used for
  the initial cluster set-up where the paper keeps all nodes awake).

Rather than shipping real payloads, the caller computes the operation's
*result* centrally (e.g., with :func:`repro.cluster.tree.convergecast_fold`)
and uses this layer to charge exactly the rounds the distributed schedule
costs. This mirrors how the paper itself accounts Phase III, and keeps the
headline energy numbers honest: every charge corresponds to a concrete round
in a concrete schedule.

The layer still enforces feasibility: a broadcast over a tree taller than
its allotment is rejected, as the distributed schedule would not fit.
"""

from __future__ import annotations

from typing import Dict, Iterable

from ..congest.metrics import EnergyLedger, RunMetrics
from .tree import RootedTree


class Choreography:
    """Global clock plus energy charging for choreographed operations."""

    def __init__(self, ledger: EnergyLedger, *, clock: int = 0):
        self.ledger = ledger
        self.clock = clock
        self.operations: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _record(self, op: str) -> None:
        self.operations[op] = self.operations.get(op, 0) + 1

    def idle(self, rounds: int) -> None:
        """Advance the clock with every node asleep."""
        if rounds < 0:
            raise ValueError(f"cannot idle negative rounds ({rounds})")
        self.clock += rounds

    def exchange(self, nodes: Iterable[int]) -> None:
        """One communication round among the given awake nodes."""
        self.ledger.charge_many(set(nodes), 1)
        self.clock += 1
        self._record("exchange")

    def awake_all(self, nodes: Iterable[int], rounds: int) -> None:
        """A block of ``rounds`` rounds with all given nodes awake."""
        if rounds < 0:
            raise ValueError(f"negative duration ({rounds})")
        self.ledger.charge_many(set(nodes), rounds)
        self.clock += rounds
        self._record("awake_all")

    def broadcast(self, tree: RootedTree, allotment: int) -> None:
        """Charge one tree broadcast: 2 awake rounds/node, ``allotment`` clock.

        Node ``v`` wakes at offsets ``d_v`` and ``d_v + 1``; the deepest node
        finishes at offset ``height + 1``, so the schedule needs
        ``allotment >= height + 2``.
        """
        self._check_allotment(tree, allotment, "broadcast")
        self.ledger.charge_many(tree.nodes, 2)
        self.clock += allotment
        self._record("broadcast")

    def convergecast(self, tree: RootedTree, allotment: int) -> None:
        """Charge one convergecast: mirror image of :meth:`broadcast`."""
        self._check_allotment(tree, allotment, "convergecast")
        self.ledger.charge_many(tree.nodes, 2)
        self.clock += allotment
        self._record("convergecast")

    def parallel_broadcast(
        self, trees: Iterable[RootedTree], allotment: int
    ) -> None:
        """Broadcast in many node-disjoint clusters at once.

        All clusters run their schedules over the same ``allotment`` clock
        rounds, so the clock advances once while every participating node is
        charged its 2 awake rounds.
        """
        trees = list(trees)
        charged: set = set()
        for tree in trees:
            self._check_allotment(tree, allotment, "parallel_broadcast")
            overlap = charged & tree.nodes
            if overlap:
                raise ValueError(
                    f"clusters overlap on nodes {sorted(overlap)[:5]}"
                )
            charged |= tree.nodes
            self.ledger.charge_many(tree.nodes, 2)
        self.clock += allotment
        self._record("parallel_broadcast")

    def parallel_convergecast(
        self, trees: Iterable[RootedTree], allotment: int
    ) -> None:
        """Convergecast in many node-disjoint clusters at once."""
        trees = list(trees)
        charged: set = set()
        for tree in trees:
            self._check_allotment(tree, allotment, "parallel_convergecast")
            overlap = charged & tree.nodes
            if overlap:
                raise ValueError(
                    f"clusters overlap on nodes {sorted(overlap)[:5]}"
                )
            charged |= tree.nodes
            self.ledger.charge_many(tree.nodes, 2)
        self.clock += allotment
        self._record("parallel_convergecast")

    def _check_allotment(self, tree: RootedTree, allotment: int, op: str):
        needed = tree.height + 2
        if allotment < needed:
            raise ValueError(
                f"{op} over a tree of height {tree.height} needs an "
                f"allotment of {needed} rounds, got {allotment}"
            )

    # ------------------------------------------------------------------
    def metrics(self) -> RunMetrics:
        return RunMetrics.from_ledger(rounds=self.clock, ledger=self.ledger)
