"""Test-suite configuration: a deterministic hypothesis profile.

Property tests draw fresh examples per run by default, which makes a CI
record non-reproducible; derandomizing fixes the example stream so a green
run is a green run everywhere.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
