"""RL201 fixture: ambient RNG inside a per-node hook."""


class Program(NodeProgram):  # noqa: F821
    def __init__(self):
        self.marked = False

    def on_round(self, ctx):
        if np.random.random() < 0.5:  # noqa: F821  # EXPECT: RL201
            self.marked = True
        pick = random.choice([0, 1])  # noqa: F821  # EXPECT: RL201
        ctx.broadcast(pick)
