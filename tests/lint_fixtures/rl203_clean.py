"""RL203 fixture (clean): set boundaries crossed through sorted()."""


class Program(NodeProgram):  # noqa: F821
    def __init__(self):
        self.seen = 0

    def on_receive(self, ctx, messages):
        joiners = {m.sender for m in messages}
        for u in sorted(joiners):
            ctx.send(u, True)
        totals = [ctx.rng.random() for _ in sorted(set(ctx.neighbors))]
        self.seen += len(totals)
