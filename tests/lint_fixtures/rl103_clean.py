"""RL103 fixture (clean): sentinels fit their declared dtypes."""


class Program(NodeProgram):  # noqa: F821
    @classmethod
    def state_schema(cls):
        return (
            StateField("join_round", np.int64, default=-1),  # noqa: F821
            StateField("flag", np.bool_, default=False),  # noqa: F821
        )
