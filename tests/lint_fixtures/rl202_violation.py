"""RL202 fixture: wall-clock and OS entropy inside hooks."""


class Program(NodeProgram):  # noqa: F821
    def __init__(self):
        self.stamp = 0.0
        self.token = b""

    def on_round(self, ctx):
        self.stamp = time.time()  # noqa: F821  # EXPECT: RL202
        self.token = os.urandom(4)  # noqa: F821  # EXPECT: RL202
