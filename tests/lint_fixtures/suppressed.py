"""Suppression fixture: real violations silenced by directives.

Must lint clean — proves both the line-scoped and file-wide forms.
"""
# repro-lint: disable-file=RL202


class Program(NodeProgram):  # noqa: F821
    def __init__(self):
        self.stamp = 0.0

    def on_round(self, ctx):
        self.scratch = 1  # repro-lint: disable=RL101 -- vetted scratch slot
        self.stamp = time.time()  # noqa: F821  (file-wide RL202 disable)
