"""RL201 fixture (clean): every draw comes from the per-node stream."""


class Program(NodeProgram):  # noqa: F821
    def __init__(self):
        self.marked = False

    def on_round(self, ctx):
        if ctx.rng.random() < 0.5:
            self.marked = True
        pick = int(ctx.rng.integers(0, 2))
        ctx.broadcast(pick)
