"""RL403 fixture (clean): the kernel pops the wake calendar each round."""


class Kernel(VectorRound):  # noqa: F821
    supports_schedules = True

    def load(self):
        pass

    def step_round(self):
        awake = self.pop_scheduled_awake()
        return awake

    def flush_state(self):
        pass
