"""RL301 fixture (clean): values are copied out of the Context."""


class Program(NodeProgram):  # noqa: F821
    def __init__(self):
        self.last_degree = 0
        self.history = []

    def on_round(self, ctx):
        self.last_degree = ctx.degree
        self.history.append(ctx.round)
