"""RL405 fixture: the capability hook builds a non-kernel object."""


class Helper:
    def __init__(self, network):
        self.network = network


class Program(NodeProgram):  # noqa: F821
    @classmethod
    def vector_round(cls, network):
        return Helper(network)  # EXPECT: RL405
