"""RL404 fixture (clean): both registries carry the same names."""

ALGORITHMS = {
    "luby": luby_mis,  # noqa: F821
    "newalg": newalg_mis,  # noqa: F821
}


def _program_classes():
    return {
        "luby": (LubyProgram,),  # noqa: F821
        "newalg": (NewAlgProgram,),  # noqa: F821
    }
