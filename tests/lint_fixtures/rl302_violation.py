"""RL302 fixture: the inbox view and its Message objects escape."""


class Program(NodeProgram):  # noqa: F821
    def __init__(self):
        self.pending = None
        self.best = None

    def on_receive(self, ctx, messages):
        self.pending = messages  # EXPECT: RL302
        for m in messages:
            if m.payload:
                self.best = m  # EXPECT: RL302
