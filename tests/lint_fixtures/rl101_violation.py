"""RL101 fixture: a hook touches state that was never declared."""


class Program(NodeProgram):  # noqa: F821
    def __init__(self):
        self.count = 0

    def on_round(self, ctx):
        self.scratch = ctx.degree  # EXPECT: RL101
        self.count += self.scratch  # EXPECT: RL101
