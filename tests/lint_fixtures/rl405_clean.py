"""RL405 fixture (clean): the hook constructs a real VectorRound."""


class _Kernel(VectorRound):  # noqa: F821
    def load(self):
        pass

    def step_round(self):
        pass

    def flush_state(self):
        pass


class Program(NodeProgram):  # noqa: F821
    @classmethod
    def vector_round(cls, network):
        return _Kernel(network)
