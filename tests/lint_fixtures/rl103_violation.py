"""RL103 fixture: a -1 sentinel in an unsigned column (wraps to max)."""


class Program(NodeProgram):  # noqa: F821
    @classmethod
    def state_schema(cls):
        return (
            StateField("join_round", np.uint32, default=-1),  # noqa: F821  # EXPECT: RL103
            StateField("flag", np.bool_, default=7),  # noqa: F821  # EXPECT: RL103
        )
