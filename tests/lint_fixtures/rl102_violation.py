"""RL102 fixture: ``width=`` names an attribute the program lacks."""


class Program(NodeProgram):  # noqa: F821
    def __init__(self, executions):
        self.execs = executions

    @classmethod
    def state_schema(cls):
        return (
            StateField("status", np.int8, width="executions"),  # noqa: F821  # EXPECT: RL102
        )
