"""RL203 fixture: hash-order iteration over a set inside a hook."""


class Program(NodeProgram):  # noqa: F821
    def __init__(self):
        self.seen = 0

    def on_receive(self, ctx, messages):
        joiners = {m.sender for m in messages}
        for u in joiners:  # EXPECT: RL203
            ctx.send(u, True)
        totals = [ctx.rng.random() for _ in set(ctx.neighbors)]  # EXPECT: RL203
        self.seen += len(totals)
