"""RL403 fixture: schedule capability declared but the calendar ignored."""


class Kernel(VectorRound):  # noqa: F821  # EXPECT: RL403
    supports_schedules = True

    def load(self):
        pass

    def step_round(self):
        pass

    def flush_state(self):
        pass
