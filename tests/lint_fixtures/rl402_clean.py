"""RL402 fixture (clean): the declared fault capability is consumed."""


class Kernel(VectorRound):  # noqa: F821
    supports_edge_faults = True

    def load(self):
        pass

    def step_round(self):
        keep = self.fault_keep() if self.faults is not None else None
        return keep

    def flush_state(self):
        pass
