"""RL301 fixture: the per-round Context escapes onto ``self``."""


class Program(NodeProgram):  # noqa: F821
    def __init__(self):
        self.last_ctx = None
        self.history = []

    def on_round(self, ctx):
        self.last_ctx = ctx  # EXPECT: RL301
        self.history.append(ctx)  # EXPECT: RL301
