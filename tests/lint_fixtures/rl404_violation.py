"""RL404 fixture: the two harness registries disagree on names."""

ALGORITHMS = {  # EXPECT: RL404
    "luby": luby_mis,  # noqa: F821
    "newalg": newalg_mis,  # noqa: F821
}


def _program_classes():  # EXPECT: RL404
    return {
        "luby": (LubyProgram,),  # noqa: F821
        "oldalg": (OldAlgProgram,),  # noqa: F821
    }
