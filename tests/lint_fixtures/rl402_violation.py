"""RL402 fixture: fault capability declared but never implemented."""


class Kernel(VectorRound):  # noqa: F821  # EXPECT: RL402
    supports_edge_faults = True

    def load(self):
        pass

    def step_round(self):
        pass

    def flush_state(self):
        pass
