"""RL302 fixture (clean): payloads are extracted inside the hook."""


class Program(NodeProgram):  # noqa: F821
    def __init__(self):
        self.pending = []
        self.best = None

    def on_receive(self, ctx, messages):
        self.pending = [m.payload for m in messages]
        for m in messages:
            if m.payload:
                self.best = m.payload
