"""RL102 fixture (clean): the width string matches a real attribute."""


class Program(NodeProgram):  # noqa: F821
    def __init__(self, executions):
        self.executions = executions

    @classmethod
    def state_schema(cls):
        return (
            StateField("status", np.int8, width="executions"),  # noqa: F821
        )
