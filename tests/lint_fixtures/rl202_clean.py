"""RL202 fixture (clean): only logical time and seeded draws."""


class Program(NodeProgram):  # noqa: F821
    def __init__(self):
        self.stamp = 0
        self.token = 0

    def on_round(self, ctx):
        self.stamp = ctx.round
        self.token = int(ctx.rng.integers(0, 2**16))
