"""RL401 fixture: a kernel missing part of the dense-round protocol."""


class Kernel(VectorRound):  # noqa: F821  # EXPECT: RL401
    def load(self):
        pass

    def step_round(self):
        pass

    # flush_state is missing: results never leave the dense arrays.
