"""RL401 fixture (clean): the full dense-round protocol is implemented."""


class Kernel(VectorRound):  # noqa: F821
    def load(self):
        pass

    def step_round(self):
        pass

    def flush_state(self):
        pass
