"""RL101 fixture (clean): all touched state is staged in ``__init__``."""


class Program(NodeProgram):  # noqa: F821
    def __init__(self):
        self.count = 0
        self.scratch = 0

    def on_round(self, ctx):
        self.scratch = ctx.degree
        self.count += self.scratch
