"""Cross-check: the engine-observed wake rounds of Phase I participants
must be exactly the rounds their Lemma 2.5 schedule dictates."""

from repro import graphs
from repro.congest import Network
from repro.core.config import DEFAULT_CONFIG
from repro.core.phase1_alg1 import Phase1Alg1Program
from repro.graphs.properties import max_degree
from repro.schedule import schedule_for_round


def test_phase1_wakes_match_schedule():
    n = 500
    graph = graphs.gnp_expected_degree(n, 200.0, seed=0)
    delta = max_degree(graph)
    iterations = DEFAULT_CONFIG.phase1_iterations(n, delta)
    rounds = DEFAULT_CONFIG.phase1_rounds_per_iteration(n)
    assert iterations >= 1
    total = iterations * rounds

    programs = {
        v: Phase1Alg1Program(iterations, rounds, delta, 10.0)
        for v in graph.nodes
    }
    network = Network(graph, programs, seed=0, trace=True)
    network.run_rounds(3 * total)

    checked = 0
    for node, program in programs.items():
        observed = network.trace.wake_rounds_of(node)
        if program.marked_round is None:
            assert observed == []
            continue
        schedule = schedule_for_round(total, program.marked_round)
        expected = set()
        for entry in schedule:
            expected.add(3 * entry)  # status sub-round
            expected.add(3 * entry + 2)  # join sub-round
            if entry == program.marked_round:
                expected.add(3 * entry + 1)  # mark sub-round
        # A dominated node halts early: its observed wakes are a prefix.
        assert set(observed) <= expected
        if not program.dominated:
            assert set(observed) == expected
        checked += 1
    assert checked >= 1  # some nodes were sampled


def test_phase1_energy_equals_wake_count():
    n = 400
    graph = graphs.gnp_expected_degree(n, 160.0, seed=1)
    delta = max_degree(graph)
    iterations = DEFAULT_CONFIG.phase1_iterations(n, delta)
    rounds = DEFAULT_CONFIG.phase1_rounds_per_iteration(n)
    programs = {
        v: Phase1Alg1Program(iterations, rounds, delta, 10.0)
        for v in graph.nodes
    }
    network = Network(graph, programs, seed=0, trace=True)
    network.run_rounds(3 * iterations * rounds)
    for node in graph.nodes:
        assert network.ledger.awake_rounds(node) == len(
            network.trace.wake_rounds_of(node)
        )
