"""Tests for Phase I of Algorithm 2 (Lemma 3.1 / Corollary 3.2)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import graphs
from repro.analysis import is_independent_set
from repro.core import run_lemma31_iteration, run_phase1_alg2
from repro.core.config import DEFAULT_CONFIG
from repro.core.phase1_alg2 import sampling_rounds


class TestSamplingRounds:
    def test_capped_at_small_delta(self):
        n = 10_000
        assert sampling_rounds(n, 100, DEFAULT_CONFIG) <= math.ceil(
            4 * 100**0.1
        )

    def test_uncapped_at_huge_delta(self):
        """In the paper's regime (Δ >= log^20 n) the cap is inactive."""
        n = 10_000
        huge_delta = 10**40
        assert sampling_rounds(n, huge_delta, DEFAULT_CONFIG) == (
            DEFAULT_CONFIG.alg2_rounds(n)
        )

    def test_at_least_four(self):
        assert sampling_rounds(16, 2, DEFAULT_CONFIG) >= 4


class TestLemma31Iteration:
    def test_independence(self):
        g = graphs.planted_max_degree(400, 100, seed=0)
        result = run_lemma31_iteration(g, 100, seed=0)
        assert is_independent_set(g, result.joined)
        result.check_partition(set(g.nodes))

    def test_degree_contraction(self):
        """Lemma 3.1 shape: Δ drops toward Δ^0.7 (strongly below Δ)."""
        delta = 200
        g = graphs.planted_max_degree(800, delta, seed=1)
        result = run_lemma31_iteration(g, delta, seed=0)
        assert result.details["residual_max_degree"] <= delta / 2

    def test_energy_loglog_scale(self):
        g = graphs.planted_max_degree(600, 150, seed=2)
        result = run_lemma31_iteration(g, 150, seed=0)
        rounds = result.details["rounds"]
        schedule_bound = math.floor(math.log2(max(2, rounds))) + 1
        # 2 listen sub-rounds per schedule entry + own 2 + end block 4.
        assert result.metrics.max_energy <= 2 * schedule_bound + 2 + 4

    def test_message_bits_within_congest(self):
        g = graphs.planted_max_degree(400, 100, seed=3)
        result = run_lemma31_iteration(g, 100, seed=0)
        # A_v counts fit in O(log n) bits.
        assert result.metrics.max_message_bits <= 8 * 10 + 32

    def test_dominated_are_covered(self):
        g = graphs.planted_max_degree(400, 100, seed=4)
        result = run_lemma31_iteration(g, 100, seed=1)
        for node in result.dominated:
            assert any(u in result.joined for u in g.neighbors(node))


class TestCorollary32:
    def test_low_degree_graph_is_noop(self):
        g = graphs.path(40)
        result = run_phase1_alg2(g, seed=0)
        assert result.details["iterations"] == 0
        assert result.remaining == set(g.nodes)

    def test_reduces_to_floor(self):
        n = 600
        g = graphs.gnp_expected_degree(n, 150.0, seed=5)
        result = run_phase1_alg2(g, seed=0)
        floor = DEFAULT_CONFIG.alg2_degree_floor(n)
        # After the recursion the residual degree sits at/below the scaled
        # floor-regime (allow slack for the probabilistic contraction).
        assert result.details["residual_max_degree"] <= 2 * floor

    def test_partition(self):
        g = graphs.gnp_expected_degree(500, 120.0, seed=6)
        result = run_phase1_alg2(g, seed=0)
        result.check_partition(set(g.nodes))
        assert is_independent_set(g, result.joined)

    def test_determinism(self):
        g = graphs.gnp_expected_degree(400, 100.0, seed=7)
        a = run_phase1_alg2(g, seed=9)
        b = run_phase1_alg2(g, seed=9)
        assert a.joined == b.joined
        assert a.metrics.rounds == b.metrics.rounds

    def test_empty_graph(self):
        g = graphs.empty_graph(3)
        result = run_phase1_alg2(g, seed=0)
        assert result.remaining == {0, 1, 2}


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=50, max_value=200),
    delta=st.integers(min_value=20, max_value=60),
    graph_seed=st.integers(min_value=0, max_value=50),
    run_seed=st.integers(min_value=0, max_value=50),
)
def test_lemma31_independence_property(n, delta, graph_seed, run_seed):
    delta = min(delta, n - 2)
    g = graphs.planted_max_degree(n, delta, seed=graph_seed)
    result = run_lemma31_iteration(g, max(2, delta), seed=run_seed)
    assert is_independent_set(g, result.joined)
    result.check_partition(set(g.nodes))
