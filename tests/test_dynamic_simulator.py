"""Tests for the timeline driver: verification, accounting, determinism."""

import pytest

from repro import graphs
from repro.dynamic import (
    WORKLOADS,
    GraphEvent,
    MISInvariantError,
    MISMaintainer,
    make_workload,
    run_dynamic,
)
from repro.dynamic.events import NODE_REMOVE, battery_deaths
from repro.harness import measure_dynamic, run_dynamic_workload


class TestRunDynamic:
    def test_epoch_zero_is_initial_election(self):
        graph = graphs.random_geometric(30, seed=1)
        result = run_dynamic(graph, [], "luby", seed=1)
        assert len(result.epochs) == 1
        first = result.epochs[0]
        assert first.epoch == 0 and first.events == 0
        assert first.nodes == 30
        assert first.valid

    def test_per_epoch_rows_and_cumulative_sums(self):
        graph = graphs.random_geometric(40, seed=2)
        timeline = battery_deaths(graph, 5, deaths_per_epoch=2, seed=3)
        result = run_dynamic(graph, timeline, "luby", seed=2)
        assert len(result.epochs) == 6
        assert [row.epoch for row in result.epochs] == list(range(6))
        assert result.epochs[-1].nodes == 30
        assert result.all_valid
        assert result.epochs[-1].cumulative_energy == sum(
            row.energy for row in result.epochs
        )
        assert result.epochs[-1].cumulative_rounds == sum(
            row.rounds for row in result.epochs
        )
        # ledger totals must agree with the per-epoch energy stream
        assert result.cumulative_energy == result.epochs[-1].cumulative_energy

    def test_lifetime_energy_counts_departed_nodes(self):
        graph = graphs.random_geometric(40, seed=2)
        timeline = battery_deaths(graph, 5, deaths_per_epoch=2, seed=3)
        result = run_dynamic(graph, timeline, "luby", seed=2)
        assert len(result.ledger_snapshot) == 40  # 10 died, still on the books
        assert result.average_energy == result.cumulative_energy / 40

    def test_invariant_error_raised_on_bad_algorithm(self):
        def broken(graph, seed=0, ledger=None, **kwargs):
            from repro.baselines import luby_mis

            result = luby_mis(graph, seed=seed, ledger=ledger)
            result.mis.clear()  # never elects anyone: nothing is covered
            return result

        graph = graphs.path(6)
        with pytest.raises(MISInvariantError):
            run_dynamic(graph, [], broken)

    def test_invariant_flag_mode_records_failure(self):
        def broken(graph, seed=0, ledger=None, **kwargs):
            from repro.baselines import luby_mis

            result = luby_mis(graph, seed=seed, ledger=ledger)
            result.mis.clear()
            return result

        graph = graphs.path(6)
        result = run_dynamic(graph, [], broken, check_invariant=False)
        assert not result.all_valid
        assert not result.epochs[0].maximal

    def test_deterministic_in_seed(self):
        graph, timeline = make_workload("link_flap", n=40, epochs=4, seed=5)

        def summary():
            return run_dynamic(
                graph, timeline, "algorithm1", seed=5
            ).summary()

        assert summary() == summary()

    def test_graph_can_shrink_to_empty(self):
        graph = graphs.empty_graph(3)
        timeline = [[GraphEvent(NODE_REMOVE, v)] for v in range(3)]
        result = run_dynamic(graph, timeline, "luby")
        assert result.epochs[-1].nodes == 0
        assert result.epochs[-1].mis_size == 0
        assert result.all_valid


class TestStrategies:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_both_strategies_hold_invariant(self, workload):
        graph, timeline = make_workload(workload, n=40, epochs=3, seed=7)
        for strategy in ("incremental", "full_recompute"):
            result = run_dynamic(
                graph, timeline, "luby", strategy=strategy, seed=7
            )
            assert result.all_valid

    def test_incremental_is_cheaper_on_battery_decay(self):
        graph, timeline = make_workload(
            "sensor_battery_decay", n=80, epochs=6, seed=11
        )
        incremental = run_dynamic(
            graph, timeline, "luby", strategy="incremental", seed=11
        )
        full = run_dynamic(
            graph, timeline, "luby", strategy="full_recompute", seed=11
        )
        assert incremental.cumulative_energy < full.cumulative_energy
        assert incremental.total_rounds < full.total_rounds


class TestHarnessEntryPoints:
    def test_run_dynamic_workload(self):
        result = run_dynamic_workload(
            "sensor_battery_decay", "luby", n=40, epochs=3, seed=1
        )
        assert result.all_valid
        assert len(result.epochs) == 4

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            run_dynamic_workload("meteor_strike")

    def test_measure_dynamic_keys(self):
        outcome = measure_dynamic("growth", "luby", n=24, epochs=2, seed=0)
        assert set(outcome) == {
            "epochs", "total_rounds", "cumulative_energy", "max_energy",
            "average_energy", "total_repair_region", "total_mis_churn",
            "all_valid",
        }
        assert outcome["all_valid"] == 1.0
        assert outcome["epochs"] == 2.0


class TestMaintainerTimeline:
    def test_run_timeline_generator(self):
        graph = graphs.random_geometric(30, seed=0)
        timeline = battery_deaths(graph, 3, deaths_per_epoch=1, seed=1)
        maintainer = MISMaintainer(graph, "luby")
        reports = list(maintainer.run_timeline(timeline))
        assert [r.epoch for r in reports] == [1, 2, 3]
        assert maintainer.graph.number_of_nodes() == 27
