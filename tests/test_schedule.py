"""Tests for the Lemma 2.5 awake-overlap schedules, including the
property-based check of the lemma's two guarantees."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedule import (
    all_schedules,
    common_round,
    schedule_for_round,
    schedule_size_bound,
    verify_overlap_property,
)


class TestScheduleForRound:
    def test_single_round(self):
        assert schedule_for_round(1, 0) == [0]

    def test_contains_own_round(self):
        for total in (1, 2, 7, 16, 100):
            for k in range(total):
                assert k in schedule_for_round(total, k)

    def test_sorted_output(self):
        schedule = schedule_for_round(100, 37)
        assert schedule == sorted(schedule)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            schedule_for_round(10, 10)
        with pytest.raises(ValueError):
            schedule_for_round(10, -1)
        with pytest.raises(ValueError):
            schedule_for_round(0, 0)

    def test_midpoint_is_everyones_first_entry(self):
        total = 33
        mid = (total - 1) // 2
        for k in range(total):
            assert schedule_for_round(total, k)[0] <= mid or mid in (
                schedule_for_round(total, k)
            )

    def test_all_rounds_share_global_midpoint(self):
        total = 64
        mid = (total - 1) // 2
        for k in range(total):
            assert mid in schedule_for_round(total, k)


class TestSizeBound:
    def test_logarithmic(self):
        assert schedule_size_bound(1) == 1
        assert schedule_size_bound(2) == 2
        assert schedule_size_bound(1024) == 11

    def test_bound_holds_exhaustively(self):
        for total in range(1, 130):
            bound = schedule_size_bound(total)
            for k in range(total):
                assert len(schedule_for_round(total, k)) <= bound

    def test_invalid_total_rejected(self):
        with pytest.raises(ValueError):
            schedule_size_bound(0)


class TestOverlapProperty:
    def test_exhaustive_small(self):
        for total in range(1, 65):
            assert verify_overlap_property(total)

    def test_common_round_returns_witness(self):
        total = 50
        schedules = all_schedules(total)
        l = common_round(schedules[10], schedules[40], 10, 40)
        assert 10 <= l <= 40
        assert l in schedules[10] and l in schedules[40]

    def test_common_round_equal_rounds(self):
        schedules = all_schedules(10)
        assert common_round(schedules[4], schedules[4], 4, 4) == 4

    def test_common_round_rejects_inverted_range(self):
        schedules = all_schedules(10)
        with pytest.raises(ValueError):
            common_round(schedules[5], schedules[2], 5, 2)

    def test_common_round_detects_violation(self):
        with pytest.raises(ValueError):
            common_round([0], [9], 0, 9)


@settings(max_examples=200, deadline=None)
@given(
    total=st.integers(min_value=1, max_value=4096),
    data=st.data(),
)
def test_lemma_2_5_property(total, data):
    """Lemma 2.5: any i <= j share a round l in [i, j]; sizes are O(log T)."""
    i = data.draw(st.integers(min_value=0, max_value=total - 1))
    j = data.draw(st.integers(min_value=i, max_value=total - 1))
    schedule_i = schedule_for_round(total, i)
    schedule_j = schedule_for_round(total, j)
    witness = common_round(schedule_i, schedule_j, i, j)
    assert i <= witness <= j
    bound = schedule_size_bound(total)
    assert len(schedule_i) <= bound
    assert len(schedule_j) <= bound


@settings(max_examples=50, deadline=None)
@given(total=st.integers(min_value=1, max_value=512))
def test_direct_construction_matches_materialized(total):
    """The O(log T) per-round path equals the recursive materialization."""
    schedules = all_schedules(total)
    for k in range(0, total, max(1, total // 17)):
        assert schedules[k] == schedule_for_round(total, k)
