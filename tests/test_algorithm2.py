"""End-to-end tests for Algorithm 2 (Theorem 1.2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import graphs
from repro.analysis import is_independent_set, log_star, verify_mis
from repro.core import algorithm2


class TestAlgorithm2Correctness:
    def test_valid_mis_on_gnp(self):
        g = graphs.gnp_expected_degree(300, 20.0, seed=0)
        result = algorithm2(g, seed=0)
        report = verify_mis(g, result.mis)
        assert report.independent
        if not result.details["undecided"]:
            assert report.maximal

    def test_empty_graph_rejected(self):
        import networkx as nx

        with pytest.raises(ValueError):
            algorithm2(nx.Graph())

    def test_edgeless_graph(self):
        g = graphs.empty_graph(15)
        result = algorithm2(g, seed=0)
        assert result.mis == set(range(15))

    def test_clique(self):
        g = graphs.clique(15)
        result = algorithm2(g, seed=0)
        assert len(result.mis) == 1

    def test_dense_graph_exercises_phase1(self):
        g = graphs.gnp_expected_degree(500, 120.0, seed=1)
        result = algorithm2(g, seed=0)
        assert result.details["phase1"]["iterations"] >= 1
        assert verify_mis(g, result.mis).valid

    def test_geometric_graph(self):
        g = graphs.random_geometric(250, seed=2)
        result = algorithm2(g, seed=0)
        assert verify_mis(g, result.mis).valid

    def test_maximality_across_seeds(self):
        g = graphs.gnp_expected_degree(250, 18.0, seed=3)
        for seed in range(4):
            result = algorithm2(g, seed=seed)
            assert verify_mis(g, result.mis).valid

    def test_determinism(self):
        g = graphs.gnp_expected_degree(200, 15.0, seed=4)
        a = algorithm2(g, seed=7)
        b = algorithm2(g, seed=7)
        assert a.mis == b.mis
        assert a.max_energy == b.max_energy


class TestAlgorithm2Complexity:
    def test_phase_breakdown(self):
        g = graphs.gnp_expected_degree(300, 20.0, seed=5)
        result = algorithm2(g, seed=0)
        assert set(result.metrics.phases) == {"phase1", "phase2", "phase3"}

    def test_time_within_bound_shape(self):
        n = 1024
        g = graphs.gnp_expected_degree(n, 32.0, seed=6)
        result = algorithm2(g, seed=0)
        bound = 12 * math.log2(n) * math.log2(math.log2(n)) * log_star(n)
        assert result.rounds <= bound

    def test_energy_below_time(self):
        g = graphs.gnp_expected_degree(512, 22.0, seed=7)
        result = algorithm2(g, seed=0)
        assert result.max_energy <= result.rounds


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=120),
    degree=st.floats(min_value=0.0, max_value=20.0),
    graph_seed=st.integers(min_value=0, max_value=30),
    run_seed=st.integers(min_value=0, max_value=30),
)
def test_algorithm2_independence_property(n, degree, graph_seed, run_seed):
    g = graphs.gnp_expected_degree(n, min(degree, n - 1.0), seed=graph_seed)
    result = algorithm2(g, seed=run_seed)
    assert is_independent_set(g, result.mis)
    if not result.details["undecided"]:
        assert verify_mis(g, result.mis).valid
