"""Tests for Lemma 2.8 cluster merging."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import graphs
from repro.cluster import (
    Choreography,
    RootedTree,
    merge_component_clusters,
    singleton_clusters,
    state_from_trees,
)
from repro.congest import EnergyLedger


def run_merge(graph, state=None, **kwargs):
    if state is None:
        state = singleton_clusters(graph)
    ledger = EnergyLedger(graph.nodes)
    chor = Choreography(ledger)
    tree, report = merge_component_clusters(state, chor, **kwargs)
    return tree, report, chor, ledger


class TestStateConstruction:
    def test_singletons(self):
        state = singleton_clusters(graphs.path(4))
        state.validate()
        assert state.cluster_count == 4

    def test_state_from_trees(self):
        g = graphs.path(4)
        trees = {
            0: RootedTree.bfs(g, 0, members={0, 1}),
            2: RootedTree.bfs(g, 2, members={2, 3}),
        }
        state = state_from_trees(g, trees)
        assert state.cluster_of[3] == 2

    def test_mismatched_root_rejected(self):
        g = graphs.path(2)
        trees = {1: RootedTree.bfs(g, 0)}  # id 1 but root 0
        with pytest.raises(ValueError):
            state_from_trees(g, trees)

    def test_overlap_rejected(self):
        g = graphs.path(3)
        trees = {
            0: RootedTree.bfs(g, 0, members={0, 1}),
            1: RootedTree.bfs(g, 1, members={1, 2}),
        }
        with pytest.raises(ValueError):
            state_from_trees(g, trees)


class TestMergeBasics:
    def test_two_singletons(self):
        g = graphs.path(2)
        tree, report, chor, _ = run_merge(g)
        tree.validate()
        assert tree.nodes == {0, 1}
        assert report.iterations == 1
        assert report.merges_by_set["M"] == 1

    def test_single_cluster_is_noop(self):
        g = graphs.path(3)
        state = state_from_trees(g, {0: RootedTree.bfs(g, 0)})
        tree, report, chor, ledger = run_merge(g, state=state)
        assert report.iterations == 0
        assert ledger.total_energy() == 0
        assert chor.clock == 0

    def test_path_merges_to_spanning_tree(self):
        g = graphs.path(9)
        tree, report, _, _ = run_merge(g)
        tree.validate()
        assert tree.nodes == set(g.nodes)

    def test_cycle(self):
        g = graphs.cycle(12)
        tree, _, _, _ = run_merge(g)
        tree.validate()
        assert tree.nodes == set(g.nodes)

    def test_clique(self):
        g = graphs.clique(8)
        tree, report, _, _ = run_merge(g)
        tree.validate()
        assert tree.size == 8

    def test_star_triggers_high_indegree(self):
        g = graphs.star(20)  # every leaf picks the hub or... leaves pick hub
        tree, report, _, _ = run_merge(g)
        tree.validate()
        # hub is chosen by many leaf singletons: E_H merges occur
        assert report.merges_by_set["E_H"] + report.merges_by_set["M"] >= 1

    def test_iterations_logarithmic(self):
        g = graphs.path(64)
        _, report, _, _ = run_merge(g)
        assert report.iterations <= 2 * math.ceil(math.log2(64)) + 8


class TestMergeFromClusters:
    def test_pre_clustered_path(self):
        g = graphs.path(8)
        trees = {
            0: RootedTree.bfs(g, 0, members={0, 1}),
            2: RootedTree.bfs(g, 2, members={2, 3}),
            4: RootedTree.bfs(g, 4, members={4, 5}),
            6: RootedTree.bfs(g, 6, members={6, 7}),
        }
        state = state_from_trees(g, trees)
        tree, report, _, _ = run_merge(g, state=state)
        tree.validate()
        assert tree.nodes == set(g.nodes)
        assert report.initial_clusters == 4

    def test_spanning_tree_height_bounded_by_cluster_mass(self):
        g = graphs.path(32)
        state = singleton_clusters(g)
        tree, _, _, _ = run_merge(g)
        # Height can never exceed the sum of (height+1) over initial clusters.
        assert tree.height <= 32


class TestEnergyAndTime:
    def test_energy_logarithmic_in_cluster_count(self):
        """Per iteration each node pays O(1); O(log k) iterations."""
        g = graphs.path(64)
        _, report, _, ledger = run_merge(g)
        per_iteration = ledger.max_energy() / max(1, report.iterations)
        assert per_iteration <= 40  # constant per iteration, with slack

    def test_clock_advances(self):
        g = graphs.path(16)
        _, _, chor, _ = run_merge(g)
        assert chor.clock > 0

    def test_small_allotment_rejected(self):
        g = graphs.path(16)
        with pytest.raises(ValueError):
            run_merge(g, allotment=1)

    def test_alg2_variant_constant_palette(self):
        g = graphs.path(32)
        tree, report, _, _ = run_merge(
            g, linial_rounds=None, linial_target_palette=121
        )
        tree.validate()
        assert tree.nodes == set(g.nodes)


class TestTreeEdgesComeFromGraph:
    def test_tree_edges_are_graph_edges(self):
        g = graphs.gnp(30, 0.2, seed=3)
        component = max(nx.connected_components(g), key=len)
        sub = g.subgraph(component).copy()
        state = singleton_clusters(sub)
        ledger = EnergyLedger(sub.nodes)
        tree, _ = merge_component_clusters(state, Choreography(ledger))
        for node, parent in tree.parent.items():
            if parent is not None:
                assert sub.has_edge(node, parent)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=40),
    p=st.floats(min_value=0.05, max_value=0.6),
    seed=st.integers(min_value=0, max_value=300),
)
def test_merge_property_random_components(n, p, seed):
    """On any connected graph, merging singletons yields a valid spanning
    tree whose edges exist in the graph, within O(log n) iterations."""
    g = graphs.gnp(n, p, seed=seed)
    component = max(
        nx.connected_components(g), key=lambda c: (len(c), sorted(c))
    )
    sub = g.subgraph(component).copy()
    state = singleton_clusters(sub)
    ledger = EnergyLedger(sub.nodes)
    tree, report = merge_component_clusters(state, Choreography(ledger))
    tree.validate()
    assert tree.nodes == set(sub.nodes)
    for node, parent in tree.parent.items():
        if parent is not None:
            assert sub.has_edge(node, parent)
    assert report.iterations <= 2 * math.ceil(math.log2(max(2, len(component)))) + 8
