"""Cross-module integration tests: every algorithm on every family.

These are the "does the whole library hold together" tests: one pass of
each registered algorithm over each registered graph family, checking the
output contract (independence always; maximality unless the run reported
undecided nodes) and the metric invariants (energy <= rounds, averages
consistent with the ledger).
"""

import pytest

from repro import graphs
from repro.analysis import verify_mis
from repro.harness import ALGORITHMS, run_algorithm

FAMILIES = sorted(graphs.FAMILIES)
ALGORITHM_NAMES = sorted(ALGORITHMS)


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
def test_algorithm_on_family(algorithm, family):
    graph = graphs.make_family(family, 200, seed=13)
    result = run_algorithm(algorithm, graph, seed=13)
    report = verify_mis(graph, result.mis)
    assert report.independent, f"{algorithm} on {family}: dependence!"
    undecided = result.details.get("undecided", [])
    if not undecided:
        assert report.maximal, f"{algorithm} on {family}: not maximal"
    assert 0 < len(result.mis) <= graph.number_of_nodes()


@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
def test_metric_invariants(algorithm):
    graph = graphs.gnp_expected_degree(250, 16.0, seed=3)
    result = run_algorithm(algorithm, graph, seed=3)
    assert result.max_energy <= result.rounds
    assert 0 <= result.average_energy <= result.max_energy
    assert result.metrics.total_energy >= result.metrics.max_energy


@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
def test_seed_determinism_everywhere(algorithm):
    graph = graphs.gnp_expected_degree(150, 12.0, seed=5)
    a = run_algorithm(algorithm, graph, seed=21)
    b = run_algorithm(algorithm, graph, seed=21)
    assert a.mis == b.mis
    assert a.rounds == b.rounds
    assert a.max_energy == b.max_energy


def test_tiny_graphs_every_algorithm():
    """Edge sizes: n = 1 and n = 2 must work everywhere."""
    for n in (1, 2):
        for builder in (graphs.empty_graph, graphs.clique):
            graph = builder(n)
            for algorithm in ALGORITHM_NAMES:
                result = run_algorithm(algorithm, graph, seed=0)
                assert verify_mis(graph, result.mis).valid


def test_disconnected_graph_every_algorithm():
    graph = graphs.disjoint_cliques(3, 4)
    graph.add_node(100)  # plus an isolated node
    for algorithm in ALGORITHM_NAMES:
        result = run_algorithm(algorithm, graph, seed=1)
        report = verify_mis(graph, result.mis)
        assert report.independent
        assert 100 in result.mis
