"""Tests for Phase II (Lemma 2.6): shattering + ball-carving clustering."""

import math

import networkx as nx
import pytest

from repro import graphs
from repro.analysis import is_independent_set
from repro.cluster import Choreography
from repro.congest import EnergyLedger
from repro.core import ball_carving, run_phase2
from repro.core.config import DEFAULT_CONFIG


class TestBallCarving:
    def _carve(self, graph, radius):
        ledger = EnergyLedger(graph.nodes)
        chor = Choreography(ledger)
        trees = ball_carving(graph, radius, chor)
        return trees, chor, ledger

    def test_partitions_all_nodes(self):
        g = graphs.gnp(60, 0.1, seed=0)
        trees, _, _ = self._carve(g, radius=2)
        covered = set()
        for tree in trees.values():
            assert not (covered & tree.nodes)
            covered |= tree.nodes
        assert covered == set(g.nodes)

    def test_cluster_heights_bounded_by_radius(self):
        g = graphs.gnp(80, 0.08, seed=1)
        radius = 3
        trees, _, _ = self._carve(g, radius)
        assert all(tree.height <= radius for tree in trees.values())

    def test_clusters_are_connected_subgraphs(self):
        g = graphs.gnp(60, 0.1, seed=2)
        trees, _, _ = self._carve(g, 2)
        for tree in trees.values():
            tree.validate()
            for node, parent in tree.parent.items():
                if parent is not None:
                    assert g.has_edge(node, parent)

    def test_centers_are_local_minima_first_sweep(self):
        g = graphs.path(10)
        trees, _, _ = self._carve(g, radius=2)
        assert 0 in trees  # global minimum is always a center

    def test_path_single_sweep_needs_multiple(self):
        """A long descending path forces several carving sweeps."""
        g = graphs.path(30)
        trees, chor, _ = self._carve(g, radius=1)
        assert len(trees) >= 2
        assert chor.clock >= 2

    def test_energy_charged_to_all_participants(self):
        g = graphs.clique(10)
        trees, chor, ledger = self._carve(g, radius=2)
        assert len(trees) == 1  # one ball swallows the clique
        assert ledger.max_energy() == chor.clock

    def test_invalid_radius_rejected(self):
        with pytest.raises(ValueError):
            self._carve(graphs.path(3), 0)

    def test_singleton_graph(self):
        g = graphs.empty_graph(1)
        trees, _, _ = self._carve(g, 2)
        assert set(trees) == {0}


class TestPhase2:
    def test_empty_graph(self):
        result = run_phase2(nx.Graph(), seed=0, size_bound=10)
        assert result.joined == set()
        assert result.components == []

    def test_partition_and_independence(self):
        g = graphs.gnp_expected_degree(300, 16.0, seed=3)
        result = run_phase2(g, seed=0, size_bound=300)
        result.check_partition(set(g.nodes))
        assert is_independent_set(g, result.joined)

    def test_components_cover_remaining(self):
        g = graphs.gnp_expected_degree(400, 20.0, seed=4)
        result = run_phase2(g, seed=1, size_bound=400)
        covered = set()
        for state in result.components:
            covered |= set(state.graph.nodes)
        assert covered == result.remaining

    def test_component_states_validate(self):
        g = graphs.gnp_expected_degree(400, 20.0, seed=5)
        result = run_phase2(g, seed=0, size_bound=400)
        for state in result.components:
            state.validate()

    def test_shattering_leaves_small_components(self):
        """Lemma 2.6's headline: residual components are small."""
        n = 1024
        g = graphs.gnp_expected_degree(n, 32.0, seed=6)
        result = run_phase2(g, seed=0, size_bound=n)
        largest = result.details["largest_component"]
        assert largest <= 4 * math.log2(n) ** 2

    def test_cluster_diameter_is_loglog(self):
        n = 512
        g = graphs.gnp_expected_degree(n, 20.0, seed=7)
        result = run_phase2(g, seed=0, size_bound=n)
        radius = DEFAULT_CONFIG.phase2_radius(n)
        for state in result.components:
            for tree in state.trees.values():
                assert tree.height <= radius

    def test_energy_is_logarithmic_in_delta2(self):
        """All nodes awake for O(log Δ₂) rounds — affordable at polylog Δ₂."""
        n = 512
        g = graphs.gnp_expected_degree(n, 16.0, seed=8)
        result = run_phase2(g, seed=0, size_bound=n)
        delta2 = result.details["delta2"]
        bound = 2 * DEFAULT_CONFIG.phase2_shatter_factor * math.log2(delta2 + 2)
        assert result.metrics.max_energy <= bound + 4 * (
            DEFAULT_CONFIG.phase2_radius(n) * (n + 1)
        )  # carving sweeps add radius-rounds per sweep

    def test_determinism(self):
        g = graphs.gnp_expected_degree(200, 14.0, seed=9)
        a = run_phase2(g, seed=5, size_bound=200)
        b = run_phase2(g, seed=5, size_bound=200)
        assert a.joined == b.joined
        assert a.remaining == b.remaining
