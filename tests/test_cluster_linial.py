"""Tests for Linial color reduction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import graphs
from repro.cluster import (
    color_classes,
    encode_polynomial,
    evaluate_polynomial,
    is_prime,
    linial_round,
    next_prime,
    polynomial_parameters,
    reduce_coloring,
    verify_proper,
)


def adjacency_of(graph):
    return {v: set(graph.neighbors(v)) for v in graph.nodes}


class TestPrimes:
    def test_is_prime_basics(self):
        primes = [2, 3, 5, 7, 11, 13, 101]
        composites = [0, 1, 4, 9, 100, 121]
        assert all(is_prime(p) for p in primes)
        assert not any(is_prime(c) for c in composites)

    def test_next_prime(self):
        assert next_prime(10) == 11
        assert next_prime(11) == 11
        assert next_prime(1) == 2


class TestPolynomialEncoding:
    def test_roundtrip_digits(self):
        coeffs = encode_polynomial(123, q=7, degree=3)
        value = sum(c * 7**i for i, c in enumerate(coeffs))
        assert value == 123

    def test_too_large_color_rejected(self):
        with pytest.raises(ValueError):
            encode_polynomial(1000, q=3, degree=1)

    def test_negative_color_rejected(self):
        with pytest.raises(ValueError):
            encode_polynomial(-1, q=3, degree=1)

    def test_evaluation_horner(self):
        # p(x) = 1 + 2x + 3x^2 over GF(11) at x=2 -> 1 + 4 + 12 = 17 = 6
        assert evaluate_polynomial([1, 2, 3], 2, 11) == 6

    def test_distinct_polynomials_agree_rarely(self):
        q, d = 11, 2
        a = encode_polynomial(5, q, d)
        b = encode_polynomial(17, q, d)
        agreements = sum(
            evaluate_polynomial(a, x, q) == evaluate_polynomial(b, x, q)
            for x in range(q)
        )
        assert agreements <= d


class TestParameters:
    def test_requirements_met(self):
        for palette, delta in [(10, 3), (1000, 10), (2**20, 10), (5, 0)]:
            q, d = polynomial_parameters(palette, delta)
            assert is_prime(q)
            assert q > delta * d
            assert q ** (d + 1) >= palette

    def test_palette_shrinks_for_large_inputs(self):
        q, _ = polynomial_parameters(2**30, 10)
        assert q * q < 2**30

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            polynomial_parameters(0, 3)
        with pytest.raises(ValueError):
            polynomial_parameters(5, -1)


class TestLinialRound:
    def test_preserves_properness(self):
        g = graphs.cycle(7)
        colors = {v: v for v in g.nodes}
        new = linial_round(colors, adjacency_of(g), max_degree=2)
        assert verify_proper(new, adjacency_of(g))

    def test_shrinks_large_palette(self):
        g = graphs.cycle(10)
        colors = {v: v * 1000 + 17 for v in g.nodes}
        new = linial_round(colors, adjacency_of(g), max_degree=2)
        assert max(new.values()) < max(colors.values())

    def test_rejects_improper_input(self):
        g = graphs.path(3)
        with pytest.raises(ValueError):
            linial_round({0: 1, 1: 1, 2: 2}, adjacency_of(g), max_degree=2)

    def test_rejects_degree_violation(self):
        g = graphs.star(5)
        colors = {v: v for v in g.nodes}
        with pytest.raises(ValueError):
            linial_round(colors, adjacency_of(g), max_degree=1)

    def test_empty_input(self):
        assert linial_round({}, {}, 3) == {}

    def test_isolated_nodes(self):
        colors = {0: 100, 1: 200}
        new = linial_round(colors, {0: set(), 1: set()}, max_degree=0)
        assert len(new) == 2


class TestReduceColoring:
    def test_reaches_constant_palette(self):
        g = graphs.cycle(64)
        colors = {v: v for v in g.nodes}
        reduced, rounds = reduce_coloring(
            colors, adjacency_of(g), max_degree=2
        )
        assert verify_proper(reduced, adjacency_of(g))
        assert max(reduced.values()) + 1 <= 49  # O(Δ²) fixed point
        assert rounds <= 6  # log*-ish

    def test_fixed_round_budget(self):
        g = graphs.cycle(32)
        colors = {v: v + 500 for v in g.nodes}
        reduced, rounds = reduce_coloring(
            colors, adjacency_of(g), max_degree=2, rounds=2
        )
        assert rounds == 2
        assert verify_proper(reduced, adjacency_of(g))

    def test_target_palette_stop(self):
        g = graphs.cycle(32)
        colors = {v: v for v in g.nodes}
        reduced, _ = reduce_coloring(
            colors, adjacency_of(g), max_degree=2, target_palette=60
        )
        assert max(reduced.values()) + 1 <= 60


class TestColorClasses:
    def test_grouping(self):
        classes = color_classes({1: 5, 2: 5, 3: 0})
        assert classes == [[3], [1, 2]]

    def test_empty(self):
        assert color_classes({}) == []


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=24),
    d=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=200),
)
def test_linial_property_on_bounded_degree_graphs(n, d, seed):
    """On any degree-<=10 graph, iterated reduction stays proper and lands on
    a small palette — the guarantee Phase III's matching step relies on."""
    if (n * min(d, n - 1)) % 2 == 1:
        n += 1
    degree = min(d, n - 1)
    g = graphs.random_regular(n, degree, seed=seed)
    adjacency = adjacency_of(g)
    colors = {v: v * 7 for v in g.nodes}  # arbitrary distinct colors
    reduced, _ = reduce_coloring(colors, adjacency, max_degree=10)
    assert verify_proper(reduced, adjacency)
    assert max(reduced.values()) + 1 <= next_prime(10 * 1 + 1) ** 2
