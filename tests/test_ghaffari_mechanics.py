"""White-box tests of the Ghaffari-2016 desire-level mechanics."""


from repro import graphs
from repro.baselines import ACTIVE, JOINED, REMOVED, GhaffariProgram
from repro.congest import Network


def run(graph, iterations, executions=1, seed=0):
    programs = {
        v: GhaffariProgram(iterations=iterations, executions=executions)
        for v in graph.nodes
    }
    network = Network(graph, programs, seed=seed)
    network.run(max_rounds=10 * iterations + 20)
    return programs, network


class TestDesireDynamics:
    def test_initial_desire_half(self):
        program = GhaffariProgram()
        assert list(program.desire) == [0.5]

    def test_desire_capped_at_half(self):
        """Doubling never exceeds 1/2."""
        g = graphs.empty_graph(2)  # no neighbors: desires only double
        programs, _ = run(g, iterations=6)
        for program in programs.values():
            assert all(d <= 0.5 for d in program.desire)

    def test_desire_floor(self):
        """Halving never underflows the numeric floor."""
        g = graphs.clique(6)
        programs, _ = run(g, iterations=30)
        for program in programs.values():
            assert all(d >= 2.0**-60 for d in program.desire)

    def test_isolated_node_joins_quickly(self):
        g = graphs.empty_graph(1)
        programs, network = run(g, iterations=50)
        assert programs[0].status[0] == JOINED
        # With p=1/2 and no competition, expected ~2 iterations.
        assert programs[0].join_round[0] >= 0

    def test_join_round_recorded(self):
        g = graphs.gnp(20, 0.2, seed=1)
        programs, _ = run(g, iterations=60)
        for program in programs.values():
            if program.status[0] == JOINED:
                assert program.join_round[0] >= 0
            else:
                # -1 is the "never joined" sentinel.
                assert program.join_round[0] == -1


class TestStatusMachine:
    def test_statuses_partition(self):
        g = graphs.gnp(40, 0.2, seed=2)
        programs, _ = run(g, iterations=80)
        for program in programs.values():
            assert program.status[0] in (ACTIVE, JOINED, REMOVED)

    def test_removed_nodes_have_joined_neighbor(self):
        g = graphs.gnp(40, 0.2, seed=3)
        programs, _ = run(g, iterations=80)
        joined = {v for v, p in programs.items() if p.status[0] == JOINED}
        for v, program in programs.items():
            if program.status[0] == REMOVED:
                assert any(u in joined for u in g.neighbors(v))

    def test_no_adjacent_joiners(self):
        g = graphs.gnp(40, 0.25, seed=4)
        programs, _ = run(g, iterations=80)
        joined = {v for v, p in programs.items() if p.status[0] == JOINED}
        for v in joined:
            assert not any(u in joined for u in g.neighbors(v))


class TestMultiExecutionIsolation:
    def test_executions_have_independent_states(self):
        g = graphs.gnp(30, 0.2, seed=5)
        programs, _ = run(g, iterations=60, executions=4, seed=6)
        # Desire vectors across executions should diverge somewhere.
        diverged = any(
            len(set(p.desire)) > 1 for p in programs.values()
        )
        assert diverged

    def test_per_execution_independence_invariant(self):
        g = graphs.gnp(30, 0.25, seed=7)
        executions = 5
        programs, _ = run(g, iterations=60, executions=executions, seed=8)
        for e in range(executions):
            joined = {
                v for v, p in programs.items() if p.status[e] == JOINED
            }
            for v in joined:
                assert not any(u in joined for u in g.neighbors(v))
