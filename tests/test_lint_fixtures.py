"""Fixture-corpus contract for the ``repro.lint`` analyzer.

Every ``rlXXX_violation.py`` fixture marks its expected findings with
``# EXPECT: RLxxx`` comments on the exact anchor line; this suite
asserts the analyzer reports exactly that set of ``(line, check_id)``
pairs — no extras, no misses, no drifted line numbers — and that every
``*_clean.py`` twin and the suppression fixture lint clean.
"""

import re
from pathlib import Path

import pytest

from repro.lint import ALL_CHECKS, lint_file, lint_paths

FIXTURES = Path(__file__).parent / "lint_fixtures"

_EXPECT_RE = re.compile(r"#\s*EXPECT:\s*(RL\d{3}(?:\s*,\s*RL\d{3})*)")

VIOLATION_FILES = sorted(FIXTURES.glob("rl*_violation.py"))
CLEAN_FILES = sorted(FIXTURES.glob("rl*_clean.py"))


def expected_findings(path: Path):
    """``{(line, check_id)}`` parsed from the EXPECT markers."""
    expected = set()
    for lineno, line in enumerate(
        path.read_text().splitlines(), start=1
    ):
        match = _EXPECT_RE.search(line)
        if match:
            for check_id in match.group(1).split(","):
                expected.add((lineno, check_id.strip()))
    return expected


def test_corpus_covers_every_check():
    """One violation + one clean fixture exists per registered check."""
    ids = {check.id for check in ALL_CHECKS}
    violation_ids = {
        p.name[: len("rl000")].upper() for p in VIOLATION_FILES
    }
    clean_ids = {p.name[: len("rl000")].upper() for p in CLEAN_FILES}
    assert violation_ids == ids
    assert clean_ids == ids


@pytest.mark.parametrize(
    "path", VIOLATION_FILES, ids=lambda p: p.name
)
def test_violation_fixture_exact_findings(path):
    expected = expected_findings(path)
    assert expected, f"{path.name} has no EXPECT markers"
    actual = {(f.line, f.check_id) for f in lint_file(str(path))}
    assert actual == expected


@pytest.mark.parametrize("path", CLEAN_FILES, ids=lambda p: p.name)
def test_clean_fixture_has_no_findings(path):
    assert lint_file(str(path)) == []


def test_suppression_fixture_lints_clean():
    """Line- and file-scoped directives both silence real violations."""
    path = FIXTURES / "suppressed.py"
    assert lint_file(str(path)) == []


def test_corpus_as_a_whole_is_nonzero_and_exact():
    """The full corpus yields exactly the union of the EXPECT markers."""
    findings = lint_paths([str(FIXTURES)])
    assert findings, "fixture corpus unexpectedly lints clean"
    actual = {
        (Path(f.path).name, f.line, f.check_id) for f in findings
    }
    expected = set()
    for path in VIOLATION_FILES:
        for line, check_id in expected_findings(path):
            expected.add((path.name, line, check_id))
    assert actual == expected


def test_every_check_id_fires_somewhere_in_corpus():
    fired = {f.check_id for f in lint_paths([str(FIXTURES)])}
    assert fired == {check.id for check in ALL_CHECKS}
