"""End-to-end tests for Algorithm 1 (Theorem 1.1)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import graphs
from repro.analysis import is_independent_set, verify_mis
from repro.core import algorithm1


class TestAlgorithm1Correctness:
    def test_valid_mis_on_gnp(self):
        g = graphs.gnp_expected_degree(300, 20.0, seed=0)
        result = algorithm1(g, seed=0)
        report = verify_mis(g, result.mis)
        assert report.independent
        if not result.details["undecided"]:
            assert report.maximal

    def test_empty_graph_rejected(self):
        import networkx as nx

        with pytest.raises(ValueError):
            algorithm1(nx.Graph())

    def test_edgeless_graph_takes_everyone(self):
        g = graphs.empty_graph(20)
        result = algorithm1(g, seed=0)
        assert result.mis == set(range(20))

    def test_single_node(self):
        g = graphs.empty_graph(1)
        result = algorithm1(g, seed=0)
        assert result.mis == {0}

    def test_clique(self):
        g = graphs.clique(20)
        result = algorithm1(g, seed=1)
        assert len(result.mis) == 1

    def test_star(self):
        g = graphs.star(40)
        result = algorithm1(g, seed=2)
        assert verify_mis(g, result.mis).valid

    def test_path(self):
        g = graphs.path(60)
        result = algorithm1(g, seed=3)
        assert verify_mis(g, result.mis).valid

    def test_geometric_graph(self):
        g = graphs.random_geometric(300, seed=4)
        result = algorithm1(g, seed=0)
        assert verify_mis(g, result.mis).valid

    def test_heavy_tail_graph(self):
        g = graphs.barabasi_albert(400, 4, seed=5)
        result = algorithm1(g, seed=0)
        assert verify_mis(g, result.mis).valid

    def test_maximality_across_seeds(self):
        g = graphs.gnp_expected_degree(250, 18.0, seed=6)
        for seed in range(5):
            result = algorithm1(g, seed=seed)
            assert verify_mis(g, result.mis).valid

    def test_determinism(self):
        g = graphs.gnp_expected_degree(200, 15.0, seed=7)
        a = algorithm1(g, seed=11)
        b = algorithm1(g, seed=11)
        assert a.mis == b.mis
        assert a.rounds == b.rounds
        assert a.max_energy == b.max_energy


class TestAlgorithm1Complexity:
    def test_phase_breakdown_present(self):
        g = graphs.gnp_expected_degree(300, 20.0, seed=8)
        result = algorithm1(g, seed=0)
        assert set(result.metrics.phases) == {"phase1", "phase2", "phase3"}
        assert result.rounds == sum(
            p.rounds for p in result.metrics.phases.values()
        )

    def test_time_within_log_squared(self):
        n = 1024
        g = graphs.gnp_expected_degree(n, 32.0, seed=9)
        result = algorithm1(g, seed=0)
        assert result.rounds <= 6 * math.log2(n) ** 2

    def test_energy_below_time(self):
        g = graphs.gnp_expected_degree(512, 22.0, seed=10)
        result = algorithm1(g, seed=0)
        assert result.max_energy <= result.rounds

    def test_energy_loglog_shape(self):
        """Energy should grow far slower than log² n (the time bound)."""
        n = 1024
        g = graphs.gnp_expected_degree(n, 32.0, seed=11)
        result = algorithm1(g, seed=0)
        # Generous constant x loglog² n bound: the point is the gap to
        # log² n = 100 at this size.
        assert result.max_energy <= 30 * math.log2(math.log2(n)) ** 2


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=150),
    degree=st.floats(min_value=0.0, max_value=20.0),
    graph_seed=st.integers(min_value=0, max_value=50),
    run_seed=st.integers(min_value=0, max_value=50),
)
def test_algorithm1_independence_property(n, degree, graph_seed, run_seed):
    g = graphs.gnp_expected_degree(n, min(degree, n - 1.0), seed=graph_seed)
    result = algorithm1(g, seed=run_seed)
    assert is_independent_set(g, result.mis)
    if not result.details["undecided"]:
        assert verify_mis(g, result.mis).valid
