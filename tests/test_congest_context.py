"""Direct tests of the node Context API."""


from repro import graphs
from repro.congest import EnergyLedger, Network, NodeProgram


class Recorder(NodeProgram):
    def __init__(self):
        self.rounds_seen = []

    def on_round(self, ctx):
        self.rounds_seen.append(ctx.round)
        if len(self.rounds_seen) >= 3:
            ctx.halt()


class TestContextBasics:
    def test_degree_and_neighbors(self):
        graph = graphs.star(4)
        observed = {}

        class Inspect(NodeProgram):
            def on_round(self, ctx):
                observed[ctx.node] = (ctx.degree, ctx.neighbors)
                ctx.halt()

        Network(graph, {v: Inspect() for v in graph.nodes}).run()
        assert observed[0] == (3, (1, 2, 3))
        assert observed[1] == (1, (0,))

    def test_round_is_minus_one_in_on_start(self):
        seen = {}

        class StartRound(NodeProgram):
            def on_start(self, ctx):
                seen[ctx.node] = ctx.round

            def on_round(self, ctx):
                ctx.halt()

        graph = graphs.path(2)
        Network(graph, {v: StartRound() for v in graph.nodes}).run()
        assert set(seen.values()) == {-1}

    def test_output_dict_accessible_after_run(self):
        class Writer(NodeProgram):
            def on_round(self, ctx):
                ctx.output["value"] = ctx.node * 2
                ctx.halt()

        graph = graphs.path(3)
        network = Network(graph, {v: Writer() for v in graph.nodes})
        network.run()
        assert network.outputs("value") == {0: 0, 1: 2, 2: 4}

    def test_outputs_default(self):
        class Silent(NodeProgram):
            def on_round(self, ctx):
                ctx.halt()

        graph = graphs.path(2)
        network = Network(graph, {v: Silent() for v in graph.nodes})
        network.run()
        assert network.outputs("missing", default=-1) == {0: -1, 1: -1}


class TestWakeControl:
    def test_stay_awake_after_schedule(self):
        """A node can return to always-awake mode mid-run."""
        woke = []

        class NapThenWork(NodeProgram):
            def on_start(self, ctx):
                ctx.use_wake_schedule([3])

            def on_round(self, ctx):
                woke.append(ctx.round)
                if ctx.round == 3:
                    ctx.stay_awake()
                elif ctx.round >= 5:
                    ctx.halt()

        graph = graphs.empty_graph(1)
        network = Network(graph, {0: NapThenWork()})
        network.run()
        assert woke == [3, 4, 5]

    def test_wake_at_single_round(self):
        class OneShot(NodeProgram):
            def on_start(self, ctx):
                ctx.wake_at(2)

            def on_round(self, ctx):
                ctx.output["at"] = ctx.round

        graph = graphs.empty_graph(1)
        network = Network(graph, {0: OneShot()})
        network.run()
        assert network.outputs("at")[0] == 2

    def test_halted_property(self):
        class CheckHalt(NodeProgram):
            def on_round(self, ctx):
                assert not ctx.halted
                ctx.halt()
                assert ctx.halted

        graph = graphs.empty_graph(1)
        Network(graph, {0: CheckHalt()}).run()

    def test_stay_awake_noop_after_halt(self):
        class HaltThenStay(NodeProgram):
            def on_round(self, ctx):
                ctx.halt()
                ctx.stay_awake()  # must not resurrect the node

        graph = graphs.empty_graph(1)
        ledger = EnergyLedger(graph.nodes)
        network = Network(graph, {0: HaltThenStay()}, ledger=ledger)
        network.run()
        assert ledger.awake_rounds(0) == 1

    def test_rescheduling_extends_wakes(self):
        class Chain(NodeProgram):
            def __init__(self):
                self.count = 0

            def on_start(self, ctx):
                ctx.use_wake_schedule([1])

            def on_round(self, ctx):
                self.count += 1
                if self.count < 3:
                    ctx.use_wake_schedule([ctx.round + 2])

        graph = graphs.empty_graph(1)
        ledger = EnergyLedger(graph.nodes)
        network = Network(graph, {0: Chain()}, ledger=ledger)
        network.run()
        assert ledger.awake_rounds(0) == 3
