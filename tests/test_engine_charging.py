"""Property tests for the engine's energy charging: the ledger must count
exactly the rounds each node was awake, no more, no less."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import graphs
from repro.congest import EnergyLedger, Network, NodeProgram


class ScheduledSleeper(NodeProgram):
    """Wakes exactly at a preset list of rounds and records each wake."""

    def __init__(self, wake_rounds):
        self.wake_rounds = sorted(set(wake_rounds))
        self.observed = []

    def on_start(self, ctx):
        ctx.use_wake_schedule(self.wake_rounds)

    def on_round(self, ctx):
        self.observed.append(ctx.round)


@settings(max_examples=60, deadline=None)
@given(
    schedules=st.lists(
        st.lists(st.integers(min_value=0, max_value=40), max_size=8),
        min_size=2,
        max_size=6,
    )
)
def test_ledger_matches_observed_wakes(schedules):
    graph = graphs.clique(len(schedules))
    programs = {
        v: ScheduledSleeper(schedules[v]) for v in graph.nodes
    }
    ledger = EnergyLedger(graph.nodes)
    network = Network(graph, programs, ledger=ledger)
    network.run()
    for v in graph.nodes:
        assert ledger.awake_rounds(v) == len(programs[v].observed)
        assert programs[v].observed == programs[v].wake_rounds


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=8),
    halt_round=st.integers(min_value=0, max_value=10),
)
def test_halting_stops_charging(n, halt_round):
    class HaltAt(NodeProgram):
        def on_round(self, ctx):
            if ctx.round >= halt_round:
                ctx.halt()

    graph = graphs.empty_graph(n)
    ledger = EnergyLedger(graph.nodes)
    network = Network(
        graph, {v: HaltAt() for v in graph.nodes}, ledger=ledger
    )
    network.run()
    for v in graph.nodes:
        assert ledger.awake_rounds(v) == halt_round + 1


def test_metrics_round_count_includes_idle_gaps():
    class LateWaker(NodeProgram):
        def on_start(self, ctx):
            ctx.use_wake_schedule([7])

        def on_round(self, ctx):
            ctx.halt()

    graph = graphs.empty_graph(2)
    network = Network(graph, {v: LateWaker() for v in graph.nodes})
    metrics = network.run()
    assert metrics.rounds == 8
    assert metrics.total_energy == 2
