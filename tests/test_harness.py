"""Tests for the experiment harness: runner, sweeps, tables, registry, CLI."""

import pytest

from repro import graphs
from repro.harness import (
    ALGORITHMS,
    DESCRIPTIONS,
    REGISTRY,
    format_table,
    measure,
    run_algorithm,
    run_experiment,
    section,
    series,
    sweep,
)


class TestRunner:
    def test_registry_contents(self):
        assert {"luby", "algorithm1", "algorithm2"} <= set(ALGORITHMS)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(KeyError):
            run_algorithm("quantum_mis", graphs.path(3))

    def test_measure_keys(self):
        outcome = measure("luby", graphs.path(10), seed=0)
        assert set(outcome) == {
            "rounds", "max_energy", "average_energy", "mis_size",
            "collisions", "independent", "maximal",
        }
        assert outcome["collisions"] == 0.0  # point-to-point channel
        assert outcome["independent"] == 1.0


class TestSweep:
    def test_sweep_shape(self):
        points = sweep(["luby"], [32, 64], seeds=2)
        assert len(points) == 2
        assert points[0].seeds == 2
        assert points[0].summaries["rounds"].count == 2

    def test_series_extraction(self):
        points = sweep(["luby"], [32, 64], seeds=2)
        rounds = series(points, "luby", "rounds")
        assert set(rounds) == {32, 64}

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            sweep([], [32])
        with pytest.raises(ValueError):
            sweep(["luby"], [])
        with pytest.raises(ValueError):
            sweep(["luby"], [32], seeds=0)


class TestTables:
    def test_format_alignment(self):
        table = format_table(["a", "bb"], [[1, 2], [30, 40]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_float_formatting(self):
        table = format_table(["x"], [[3.14159]])
        assert "3.14" in table

    def test_section_underline(self):
        text = section("Title", "body")
        assert "=====" in text


class TestExperimentRegistry:
    def test_all_experiments_registered(self):
        expected = (
            {f"E{i}" for i in range(1, 12)}
            | {"A1", "A2", "A3"}
            | {"C1", "D1", "F1"}
        )
        assert expected == set(REGISTRY)
        assert expected == set(DESCRIPTIONS)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    def test_e6_quick(self):
        report, data = run_experiment("E6", quick=True)
        assert "E6" in report
        assert data["verified"]

    def test_e10_quick(self):
        report, data = run_experiment("E10", quick=True)
        assert "E10" in report
        # Concentration improves with delta.
        deltas = sorted(data)
        assert data[deltas[-1]] >= data[deltas[0]] - 0.05

    def test_e5_quick(self):
        report, _ = run_experiment("E5", quick=True)
        assert "residual" in report


class TestCLI:
    def test_main_runs(self, capsys):
        from repro.__main__ import main

        code = main(["--algorithm", "luby", "--family", "grid", "--n", "64"])
        captured = capsys.readouterr()
        assert code == 0
        assert "independent:  True" in captured.out

    def test_main_list(self, capsys):
        from repro.__main__ import main

        assert main(["--list"]) == 0
        assert "algorithms:" in capsys.readouterr().out

    def test_harness_cli_list(self, capsys):
        from repro.harness.__main__ import main

        assert main(["--list"]) == 0
        assert "E1:" in capsys.readouterr().out

    def test_harness_cli_experiment(self, capsys):
        from repro.harness.__main__ import main

        assert main(["--experiment", "E6", "--quick"]) == 0
        assert "overlap" in capsys.readouterr().out.lower()


class TestResultType:
    def test_repr_and_properties(self):
        result = run_algorithm("luby", graphs.path(6), seed=0)
        assert result.rounds == result.metrics.rounds
        assert result.max_energy == result.metrics.max_energy
        assert result.average_energy == pytest.approx(
            result.metrics.average_energy
        )
