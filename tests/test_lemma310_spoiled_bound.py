"""Lemma 3.10: each node has at most ~4·Δ^0.6 sampled (spoilable) neighbors.

We observe the sampling directly from the Phase-1-of-Algorithm-2 programs:
the bound is what keeps the residual degree at ``8·Δ^0.6`` after the final
sweep removes the high-degree independent set.
"""

import pytest

from repro import graphs
from repro.congest import Network
from repro.core.config import DEFAULT_CONFIG
from repro.core.phase1_alg2 import Phase1Alg2Program, sampling_rounds


def run_programs(graph, delta, seed=0):
    n = graph.number_of_nodes()
    rounds = sampling_rounds(n, delta, DEFAULT_CONFIG)
    programs = {
        v: Phase1Alg2Program(delta, rounds, DEFAULT_CONFIG)
        for v in graph.nodes
    }
    network = Network(graph, programs, seed=seed, size_bound=n)
    network.run_rounds(4 * rounds + 4)
    return programs


class TestSpoiledNeighborBound:
    @pytest.mark.parametrize("delta", [100, 200, 300])
    def test_sampled_neighbors_bounded(self, delta):
        n = max(400, 4 * delta)
        graph = graphs.planted_max_degree(n, delta, seed=delta)
        programs = run_programs(graph, delta)
        sampled = {
            v for v, p in programs.items() if p.action_round >= 0
        }
        bound = 1.5 * 4 * delta**0.6  # Lemma 3.10's 4Δ^0.6, 50% slack
        worst = max(
            sum(1 for u in graph.neighbors(v) if u in sampled)
            for v in graph.nodes
        )
        assert worst <= bound

    def test_each_node_acts_at_most_once(self):
        delta = 150
        graph = graphs.planted_max_degree(600, delta, seed=1)
        programs = run_programs(graph, delta)
        for program in programs.values():
            roles = [
                r for r in (program.tag_round, program.premark_round)
                if r >= 0
            ]
            if roles:
                # both roles, if present, coincide with the action round
                assert all(r == program.action_round for r in roles)

    def test_sampling_probability_shape(self):
        """The fraction of sampled nodes tracks R·(Δ^-0.5 + Δ^-0.6/2)."""
        delta = 200
        n = 800
        graph = graphs.planted_max_degree(n, delta, seed=2)
        programs = run_programs(graph, delta)
        sampled = sum(
            1 for p in programs.values() if p.action_round >= 0
        )
        rounds = sampling_rounds(n, delta, DEFAULT_CONFIG)
        expected = n * rounds * (delta**-0.5 + 0.5 * delta**-0.6)
        assert sampled <= 2.5 * expected
        assert sampled >= expected / 4
