"""Fault-matrix smoke: every algorithm × fault wrapper × engine path.

The wide-but-shallow companion to the focused fault suites: every
registered algorithm must *run to completion, deterministically* under an
active lossy channel (and, for radio algorithms, under adversarial
jamming) on every engine path that supports it. Fault runs are allowed to
produce degraded MIS quality — that is the point of the F-series
experiments — but they must never hang, crash, or lose determinism.
"""

import pytest

from repro.congest import set_engine_mode
from repro.graphs import make_family
from repro.harness import ALGORITHMS, run_algorithm
from repro.harness.runner import (
    RADIO_SAFE_ALGORITHMS,
    VECTOR_CAPABLE_ALGORITHMS,
)

N = 24
SEED = 5

LOSSY = "lossy(drop=0.15,seed=3):{base}"
JAM = "jam(rate=0.25,seed=3):broadcast"


def _channels(algorithm):
    if algorithm in RADIO_SAFE_ALGORITHMS:
        return [LOSSY.format(base="broadcast"), JAM]
    return [LOSSY.format(base="congest")]


def _engines(algorithm, channel):
    engines = ["legacy", "fast"]
    if algorithm in VECTOR_CAPABLE_ALGORITHMS and channel.startswith("lossy"):
        engines.append("vectorized")
    return engines


MATRIX = [
    (algorithm, channel, engine)
    for algorithm in sorted(ALGORITHMS)
    for channel in _channels(algorithm)
    for engine in _engines(algorithm, channel)
]


@pytest.fixture(autouse=True)
def _reset_engine():
    yield
    set_engine_mode("auto")


@pytest.mark.parametrize("algorithm,channel,engine", MATRIX)
def test_faulty_run_terminates_deterministically(algorithm, channel, engine):
    set_engine_mode(engine)
    graph = make_family("gnp_log_degree", N, seed=SEED)
    first = run_algorithm(algorithm, graph, seed=SEED, channel=channel)
    second = run_algorithm(algorithm, graph, seed=SEED, channel=channel)
    assert first.rounds > 0
    assert first.mis == second.mis
    assert first.rounds == second.rounds
    assert first.metrics.to_dict() == second.metrics.to_dict()
    # Faults must actually be active on this path: something was sent,
    # and the wrapper visibly interfered (drops for lossy erasure,
    # ledger-billed collisions for jamming). The strict
    # sent == delivered + dropped invariant is channel-specific (a radio
    # broadcast has per-listener outcomes, and sends to sleeping nodes
    # are sleeping-model drops, not fault drops) — it is locked for the
    # always-awake CONGEST case in test_faults_channels.py.
    assert first.metrics.messages_sent > 0
    if channel.startswith("lossy"):
        assert first.metrics.messages_dropped > 0
    else:
        assert first.metrics.collisions > 0
