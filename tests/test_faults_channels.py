"""Fault-injection channel wrappers: determinism and transparency.

The two contracts everything else builds on:

* **zero-rate transparency** — an inactive wrapper (drop/flip/jam rate 0,
  empty fault plan) draws no randomness and returns every inbox
  untouched, so a wrapped run is bit-identical to the unwrapped one on
  every engine path (legacy, fast, vectorized);
* **fault determinism** — the fault stream is seeded independently of the
  algorithm RNG (a per-round ``SeedSequence([fault_seed, round])``), so
  the same fault seed reproduces the identical faulty run, serially and
  across process pools.
"""

import numpy as np
import pytest

from repro.congest import (
    BroadcastChannel,
    ChannelError,
    CongestChannel,
    VectorizationError,
    legacy_engine,
    make_channel,
    set_engine_mode,
)
from repro.faults import (
    CORRUPTED,
    AdversarialJammer,
    CorruptingChannel,
    FaultPlan,
    LossyChannel,
    compose_faulty_spec,
    parse_channel_spec,
    parse_fault_flags,
)
from repro.graphs import make_family
from repro.harness import measure_many, run_algorithm

N = 48
SEED = 7


def _graph():
    return make_family("gnp_log_degree", N, seed=SEED)


def _fingerprint(result):
    return (
        frozenset(result.mis),
        result.rounds,
        result.max_energy,
        result.average_energy,
        result.metrics.messages_sent,
        result.metrics.messages_delivered,
        result.metrics.messages_dropped,
        result.metrics.total_message_bits,
    )


@pytest.fixture(autouse=True)
def _reset_engine():
    yield
    set_engine_mode("auto")


# -- zero-rate transparency -----------------------------------------------

ENGINES = ["legacy", "fast", "auto"]


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize(
    "spec",
    [
        "lossy(drop=0.0,seed=3):congest",
        "corrupt(flip=0.0,seed=3):congest",
        "lossy(drop=0.0):corrupt(flip=0.0):congest",
    ],
)
def test_zero_rate_wrapper_is_transparent(engine, spec):
    graph = _graph()
    set_engine_mode(engine)
    bare = run_algorithm("luby", graph, seed=SEED, channel="congest")
    wrapped = run_algorithm("luby", graph, seed=SEED, channel=spec)
    assert _fingerprint(bare) == _fingerprint(wrapped)


def test_zero_rate_transparent_on_forced_vectorized():
    graph = make_family("gnp_log_degree", 96, seed=SEED)
    set_engine_mode("vectorized")
    bare = run_algorithm("luby", graph, seed=SEED, channel="congest")
    wrapped = run_algorithm(
        "luby", graph, seed=SEED, channel="lossy(drop=0.0,seed=3):congest"
    )
    assert _fingerprint(bare) == _fingerprint(wrapped)


@pytest.mark.parametrize("engine", ENGINES)
def test_zero_rate_jammer_is_transparent(engine):
    graph = _graph()
    set_engine_mode(engine)
    bare = run_algorithm("radio_decay", graph, seed=SEED, channel="broadcast")
    wrapped = run_algorithm(
        "radio_decay", graph, seed=SEED, channel="jam(rate=0.0):broadcast"
    )
    assert _fingerprint(bare) == _fingerprint(wrapped)


def test_noop_fault_plan_is_transparent():
    graph = _graph()
    bare = run_algorithm("luby", graph, seed=SEED)
    wrapped = run_algorithm(
        "luby", graph, seed=SEED, faults=FaultPlan(events=(), seed=0)
    )
    assert _fingerprint(bare) == _fingerprint(wrapped)


# -- fault determinism ----------------------------------------------------

def test_same_fault_seed_reproduces_identical_run():
    graph = _graph()
    spec = "lossy(drop=0.2,seed=11):congest"
    first = run_algorithm("luby", graph, seed=SEED, channel=spec)
    second = run_algorithm("luby", graph, seed=SEED, channel=spec)
    assert _fingerprint(first) == _fingerprint(second)


def test_different_fault_seed_changes_the_run():
    graph = _graph()
    runs = {
        _fingerprint(
            run_algorithm(
                "luby", graph, seed=SEED,
                channel=f"lossy(drop=0.2,seed={s}):congest",
            )
        )
        for s in range(4)
    }
    assert len(runs) > 1


def test_fault_seed_independent_of_algorithm_seed():
    # Changing the algorithm seed must not perturb which deliveries the
    # fault stream destroys being a function of (fault_seed, round) only;
    # we check the weaker, observable property: both seeds matter.
    graph = _graph()
    spec = "lossy(drop=0.2,seed=11):congest"
    a = run_algorithm("luby", graph, seed=1, channel=spec)
    b = run_algorithm("luby", graph, seed=2, channel=spec)
    assert _fingerprint(a) != _fingerprint(b)


def test_fast_and_legacy_agree_under_active_faults():
    graph = _graph()
    spec = "lossy(drop=0.15,seed=5):congest"
    set_engine_mode("fast")
    fast = run_algorithm("luby", graph, seed=SEED, channel=spec)
    with legacy_engine():
        legacy = run_algorithm("luby", graph, seed=SEED, channel=spec)
    assert _fingerprint(fast) == _fingerprint(legacy)


def test_faulty_runs_identical_across_n_jobs():
    tasks = [
        ("luby", "gnp_log_degree", N, seed, "lossy(drop=0.2,seed=9):congest")
        for seed in range(4)
    ]
    serial = measure_many(tasks, n_jobs=1)
    parallel = measure_many(tasks, n_jobs=2)
    assert serial == parallel


def test_node_fault_runs_identical_across_n_jobs():
    plan_params = {"seed": 4, "crash": 0.08, "straggle": 0.08, "horizon": 6}
    tasks = [
        ("luby", "gnp_log_degree", N, seed, None, plan_params)
        for seed in range(4)
    ]
    serial = measure_many(tasks, n_jobs=1)
    parallel = measure_many(tasks, n_jobs=2)
    assert serial == parallel


# -- vectorized engine interplay ------------------------------------------

def test_forced_vectorized_engages_with_lossy_wrapper():
    from repro.congest import reset_vector_stats, vector_stats

    graph = make_family("gnp_log_degree", 96, seed=SEED)
    set_engine_mode("vectorized")
    reset_vector_stats()
    result = run_algorithm(
        "luby", graph, seed=SEED, channel="lossy(drop=0.2,seed=3):congest"
    )
    stats = vector_stats()
    assert stats["networks"] >= 1 and stats["rounds"] > 0
    assert result.rounds > 0
    assert result.metrics.messages_dropped > 0


def test_forced_vectorized_refuses_node_fault_plans():
    graph = _graph()
    plan = FaultPlan.random(graph.nodes, seed=3, crash=0.1, horizon=5)
    set_engine_mode("vectorized")
    with pytest.raises(VectorizationError, match="node-fault"):
        run_algorithm("luby", graph, seed=SEED, faults=plan)


def test_auto_mode_falls_back_for_node_fault_plans():
    graph = make_family("gnp_log_degree", 96, seed=SEED)
    plan = FaultPlan.random(graph.nodes, seed=3, crash=0.1, horizon=5)
    set_engine_mode("auto")
    result = run_algorithm("luby", graph, seed=SEED, faults=plan)
    assert result.rounds > 0


# -- drops are counted, not invented --------------------------------------

def test_lossy_drop_accounting():
    graph = _graph()
    bare = run_algorithm("luby", graph, seed=SEED, channel="congest")
    lossy = run_algorithm(
        "luby", graph, seed=SEED, channel="lossy(drop=0.3,seed=2):congest"
    )
    assert lossy.metrics.messages_dropped > bare.metrics.messages_dropped
    assert (
        lossy.metrics.messages_sent
        == lossy.metrics.messages_delivered + lossy.metrics.messages_dropped
    )


def test_burst_loss_blankets_whole_rounds():
    graph = _graph()
    channel = make_channel("lossy(drop=0.0,burst=0.5,seed=3):congest")
    result = run_algorithm("luby", graph, seed=SEED, channel=channel)
    assert channel.burst_rounds > 0
    assert result.metrics.messages_dropped >= channel.fault_drops > 0


def test_jammer_bills_collisions():
    graph = _graph()
    bare = run_algorithm(
        "radio_decay", graph, seed=SEED, channel="broadcast"
    )
    jammed = run_algorithm(
        "radio_decay", graph, seed=SEED,
        channel="jam(rate=0.5,seed=2):broadcast",
    )
    assert jammed.metrics.collisions > bare.metrics.collisions


def test_jammer_requires_broadcast_base():
    graph = _graph()
    with pytest.raises(ChannelError, match="radio medium"):
        run_algorithm(
            "luby", graph, seed=SEED, channel="jam(rate=0.1):congest"
        )


def test_corruption_alters_payloads():
    channel = CorruptingChannel(flip=1.0, seed=1)
    # bool payloads flip; ints flip one bit; unknown types become the
    # CORRUPTED sentinel
    rng = np.random.default_rng(0)
    assert channel.corrupt_payload(True, rng) is False
    corrupted_int = channel.corrupt_payload(12, rng)
    assert isinstance(corrupted_int, int) and corrupted_int != 12
    assert channel.corrupt_payload(object(), rng) is CORRUPTED


# -- spec grammar ---------------------------------------------------------

def test_parse_channel_spec_builds_wrapper_stack():
    channel = parse_channel_spec("lossy(drop=0.1,seed=4):congest")
    assert isinstance(channel, LossyChannel)
    assert channel.drop == pytest.approx(0.1)
    assert channel.seed == 4
    assert isinstance(channel.unwrapped(), CongestChannel)


def test_parse_channel_spec_nested():
    channel = parse_channel_spec(
        "lossy(drop=0.1):corrupt(flip=0.05):congest"
    )
    assert isinstance(channel, LossyChannel)
    assert isinstance(channel.inner, CorruptingChannel)
    assert isinstance(channel.unwrapped(), CongestChannel)


def test_make_channel_dispatches_fault_specs():
    channel = make_channel("jam(rate=0.3,seed=1):broadcast")
    assert isinstance(channel, AdversarialJammer)
    assert isinstance(channel.unwrapped(), BroadcastChannel)


def test_wrapper_without_base_uses_its_default_inner():
    # Each wrapper knows its natural medium: lossy/corrupt default to
    # CONGEST, the jammer to the broadcast radio.
    assert isinstance(
        parse_channel_spec("lossy(drop=0.1)").unwrapped(), CongestChannel
    )
    assert isinstance(
        parse_channel_spec("jam(rate=0.1)").unwrapped(), BroadcastChannel
    )


@pytest.mark.parametrize(
    "spec",
    [
        "lossy(drop=0.1):bogus",    # unknown base
        "bogus(x=1):congest",       # unknown wrapper
        "lossy(drop=2.0):congest",  # out-of-range probability
        "lossy(wibble=1):congest",  # unknown parameter
    ],
)
def test_parse_channel_spec_rejects_bad_specs(spec):
    with pytest.raises((ValueError, KeyError)):
        parse_channel_spec(spec)


def test_parse_fault_flags_splits_channel_and_plan_keys():
    wrappers, plan = parse_fault_flags(
        "drop=0.1,jam=0.2,crash=0.05,seed=7"
    )
    assert wrappers["lossy"]["drop"] == pytest.approx(0.1)
    assert wrappers["jam"]["rate"] == pytest.approx(0.2)
    assert plan["crash"] == pytest.approx(0.05)
    assert wrappers["lossy"]["seed"] == 7 and plan["seed"] == 7


def test_compose_faulty_spec_is_a_plain_string():
    wrappers, _ = parse_fault_flags("drop=0.1,seed=7")
    spec = compose_faulty_spec("congest", wrappers)
    assert isinstance(spec, str)
    assert isinstance(make_channel(spec), LossyChannel)


@pytest.mark.parametrize("bad", [-0.1, 1.5])
def test_wrapper_probability_validation(bad):
    with pytest.raises(ValueError):
        LossyChannel(drop=bad)
    with pytest.raises(ValueError):
        CorruptingChannel(flip=bad)
    with pytest.raises(ValueError):
        AdversarialJammer(rate=bad)
