"""Unit tests for CONGEST message sizing and budgets."""

import pytest

from repro.congest import Message, default_bit_budget, payload_bits


class TestPayloadBits:
    def test_none_is_free_beacon(self):
        assert payload_bits(None) == 0

    def test_bool_is_one_bit(self):
        assert payload_bits(True) == 1
        assert payload_bits(False) == 1

    def test_small_int(self):
        assert payload_bits(0) == 2
        assert payload_bits(1) == 2
        assert payload_bits(7) == 4

    def test_int_grows_with_bit_length(self):
        assert payload_bits(2**20) == 22
        assert payload_bits(2**40) == 42

    def test_negative_int_counts_magnitude(self):
        assert payload_bits(-8) == payload_bits(8)

    def test_float_fixed_cost(self):
        assert payload_bits(3.14) == 32

    def test_string_costs_eight_bits_per_char(self):
        assert payload_bits("ab") == 16

    def test_tuple_sums_elements_with_framing(self):
        assert payload_bits((True, True)) == (1 + 2) * 2

    def test_nested_structures(self):
        flat = payload_bits((1, 2, 3))
        nested = payload_bits(((1, 2), 3))
        assert nested >= flat

    def test_dict_counts_keys_and_values(self):
        assert payload_bits({1: True}) == payload_bits(1) + 1 + 4

    def test_unpriceable_type_raises(self):
        with pytest.raises(TypeError):
            payload_bits(object())


class TestDefaultBitBudget:
    def test_grows_logarithmically(self):
        assert default_bit_budget(2**10) < default_bit_budget(2**20)

    def test_fits_constant_many_identifiers(self):
        n = 1024
        # An identifier needs 10 bits; the budget should fit several.
        assert default_bit_budget(n) >= 3 * 10

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            default_bit_budget(0)

    def test_single_node_graph_has_budget(self):
        assert default_bit_budget(1) > 0


class TestMessage:
    def test_carries_sender_and_payload(self):
        msg = Message(sender=3, payload=(1, True))
        assert msg.sender == 3
        assert msg.payload == (1, True)

    def test_bits_property_matches_pricing(self):
        msg = Message(sender=0, payload=42)
        assert msg.bits == payload_bits(42)

    def test_frozen(self):
        msg = Message(sender=0, payload=None)
        with pytest.raises(AttributeError):
            msg.sender = 1
