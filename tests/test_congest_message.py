"""Unit tests for CONGEST message sizing and budgets."""

import pytest

from repro.congest import (
    Message,
    default_bit_budget,
    payload_bits,
    payload_bits_cached,
)


class TestPayloadBits:
    def test_none_is_free_beacon(self):
        assert payload_bits(None) == 0

    def test_bool_is_one_bit(self):
        assert payload_bits(True) == 1
        assert payload_bits(False) == 1

    def test_small_int(self):
        assert payload_bits(0) == 2
        assert payload_bits(1) == 2
        assert payload_bits(7) == 4

    def test_int_grows_with_bit_length(self):
        assert payload_bits(2**20) == 22
        assert payload_bits(2**40) == 42

    def test_negative_int_counts_magnitude(self):
        assert payload_bits(-8) == payload_bits(8)

    def test_float_fixed_cost(self):
        assert payload_bits(3.14) == 32

    def test_string_costs_eight_bits_per_char(self):
        assert payload_bits("ab") == 16

    def test_tuple_sums_elements_with_framing(self):
        assert payload_bits((True, True)) == (1 + 2) * 2

    def test_nested_structures(self):
        flat = payload_bits((1, 2, 3))
        nested = payload_bits(((1, 2), 3))
        assert nested >= flat

    def test_dict_counts_keys_and_values(self):
        assert payload_bits({1: True}) == payload_bits(1) + 1 + 4

    def test_unpriceable_type_raises(self):
        with pytest.raises(TypeError):
            payload_bits(object())

    def test_bool_inside_containers_prices_as_bool(self):
        """bool is an int subclass; framing must stay consistent inside
        containers: a bool element costs 1 bit + 2 framing, never the int
        price of its numeric value."""
        assert payload_bits((True,)) == 1 + 2
        assert payload_bits((1,)) == 2 + 2
        assert payload_bits([False, True]) == (1 + 2) * 2
        assert payload_bits({True: 7}) == 1 + 4 + 4
        assert payload_bits(frozenset([True])) == 1 + 2
        # Mixed nesting: ((True, 1),) = ((1+2)+(2+2)) + 2 outer framing.
        assert payload_bits(((True, 1),)) == 7 + 2


class TestPayloadBitsCached:
    """The memoized pricer must agree with the plain pricer everywhere —
    including the regression where ``(True,)`` and ``(1,)`` are equal,
    hash-equal tuples that price differently."""

    CASES = [
        None, True, False, 0, 1, 7, -8, 2**20, 3.14, "ab",
        (True,), (1,), (True, 1), (1, True), ((True,), (1,)),
        frozenset([True]), frozenset([2]),
        [True, 1], {True: 1}, {1: True},  # unhashable: uncached path
    ]

    @pytest.mark.parametrize("payload", CASES, ids=repr)
    def test_matches_uncached(self, payload):
        assert payload_bits_cached(payload) == payload_bits(payload)

    def test_equal_containers_of_different_element_types_do_not_collide(self):
        # Prime the cache with the bool variant first, then price the int
        # variant: a (type, value) cache key would return 3 for both.
        assert payload_bits_cached((True,)) == 3
        assert payload_bits_cached((1,)) == 4
        assert payload_bits_cached(frozenset([True])) == 3
        assert payload_bits_cached(frozenset([1])) == 4

    def test_scalar_bool_int_distinguished(self):
        assert payload_bits_cached(True) == 1
        assert payload_bits_cached(1) == 2

    def test_repeat_calls_stable(self):
        for _ in range(3):
            assert payload_bits_cached((True, 5)) == payload_bits((True, 5))


class TestDefaultBitBudget:
    def test_grows_logarithmically(self):
        assert default_bit_budget(2**10) < default_bit_budget(2**20)

    def test_fits_constant_many_identifiers(self):
        n = 1024
        # An identifier needs 10 bits; the budget should fit several.
        assert default_bit_budget(n) >= 3 * 10

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            default_bit_budget(0)

    def test_single_node_graph_has_budget(self):
        assert default_bit_budget(1) > 0


class TestMessage:
    def test_carries_sender_and_payload(self):
        msg = Message(sender=3, payload=(1, True))
        assert msg.sender == 3
        assert msg.payload == (1, True)

    def test_bits_property_matches_pricing(self):
        msg = Message(sender=0, payload=42)
        assert msg.bits == payload_bits(42)

    def test_frozen(self):
        msg = Message(sender=0, payload=None)
        with pytest.raises(AttributeError):
            msg.sender = 1
