"""Tests for Phase III (Lemma 2.7): merge + parallel executions + selection."""

import networkx as nx
import pytest

from repro import graphs
from repro.analysis import is_independent_set, verify_mis
from repro.cluster import singleton_clusters
from repro.congest import EnergyLedger
from repro.core import run_phase2, run_phase3
from repro.core.config import DEFAULT_CONFIG


def components_of(graph, size_bound=None, seed=0):
    """Build phase-3 inputs from a graph via phase 2's clustering."""
    n = size_bound or graph.number_of_nodes()
    result = run_phase2(graph, seed=seed, size_bound=n)
    return result


class TestPhase3Basics:
    def test_empty_components(self):
        result = run_phase3([], seed=0, size_bound=100)
        assert result.joined == set()
        assert result.details["components"] == 0

    def test_single_component_decided(self):
        g = graphs.clique(6)
        state = singleton_clusters(g)
        result = run_phase3([state], seed=0, size_bound=1000)
        assert len(result.joined) == 1
        assert result.remaining == set()
        result.check_partition(set(g.nodes))

    def test_path_component(self):
        g = graphs.path(15)
        state = singleton_clusters(g)
        result = run_phase3([state], seed=0, size_bound=1000)
        assert verify_mis(g, result.joined).valid

    def test_multiple_components_in_parallel(self):
        g1 = graphs.path(8)
        g2 = nx.relabel_nodes(graphs.cycle(6), {i: 100 + i for i in range(6)})
        states = [singleton_clusters(g1), singleton_clusters(g2)]
        result = run_phase3(states, seed=0, size_bound=1000)
        assert verify_mis(g1, result.joined & set(g1.nodes)).valid
        assert verify_mis(g2, result.joined & set(g2.nodes)).valid

    def test_rounds_are_max_not_sum(self):
        """Components run in parallel: rounds should not scale with count."""
        single = [singleton_clusters(graphs.path(8))]
        many = [
            singleton_clusters(
                nx.relabel_nodes(
                    graphs.path(8), {i: 100 * k + i for i in range(8)}
                )
            )
            for k in range(1, 6)
        ]
        r1 = run_phase3(single, seed=0, size_bound=1000)
        r2 = run_phase3(many, seed=0, size_bound=1000)
        assert r2.metrics.rounds <= 2 * r1.metrics.rounds + 40

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            run_phase3([], seed=0, size_bound=10, variant="alg3")


class TestVariants:
    def test_alg2_variant_also_valid(self):
        g = graphs.gnp(40, 0.15, seed=1)
        comp = max(nx.connected_components(g), key=lambda c: (len(c), min(c)))
        sub = g.subgraph(comp).copy()
        state = singleton_clusters(sub)
        result = run_phase3([state], seed=0, size_bound=1000, variant="alg2")
        assert verify_mis(sub, result.joined & comp).valid


class TestEndToEndWithPhase2:
    def test_phase2_to_phase3_pipeline(self):
        n = 600
        g = graphs.gnp_expected_degree(n, 24.0, seed=2)
        ledger = EnergyLedger(g.nodes)
        p2 = run_phase2(g, seed=0, ledger=ledger, size_bound=n)
        p3 = run_phase3(
            p2.components, seed=1, ledger=ledger, size_bound=n
        )
        mis = p2.joined | p3.joined
        if not p3.remaining:  # no component failures
            assert verify_mis(g, mis).valid
        else:
            assert is_independent_set(g, mis)

    def test_failures_are_rare(self):
        failures = 0
        for seed in range(5):
            n = 400
            g = graphs.gnp_expected_degree(n, 20.0, seed=seed)
            p2 = run_phase2(g, seed=seed, size_bound=n)
            p3 = run_phase3(p2.components, seed=seed, size_bound=n)
            failures += p3.details["failures"]
        assert failures == 0

    def test_energy_stays_small(self):
        """Phase III energy: O(1) per merge iteration + execution block."""
        n = 600
        g = graphs.gnp_expected_degree(n, 24.0, seed=3)
        p2 = run_phase2(g, seed=0, size_bound=n)
        ledger = EnergyLedger(g.nodes)
        p3 = run_phase3(p2.components, seed=0, ledger=ledger, size_bound=n)
        if p2.components:
            iterations = DEFAULT_CONFIG.phase3_iterations(
                max(len(c.graph) for c in p2.components)
            )
            # executions block: 2 rounds/iteration; merge: bounded constant
            # per Borůvka iteration; selection: a few tree ops.
            assert p3.metrics.max_energy <= 2 * iterations + 40 * 10
